#!/usr/bin/env python3
"""Decoupled cache hierarchy study (paper §5.4, figures 7-9).

Compares three memory organizations for the 8-thread SMT+MOM machine:

* perfect    — no misses, no bank conflicts (upper bound),
* conventional — 4 shared ports into the 32 KB direct-mapped L1,
* decoupled  — 2 scalar ports into L1, 2 stream ports straight into the
  banked L2 (exclusive-bit coherence), which rescues the L1 from
  inter-thread stream interference.

Run:  python examples/decoupled_cache_study.py
"""

from repro.core import FetchPolicy, SMTConfig, SMTProcessor
from repro.memory import (
    ConventionalHierarchy,
    DecoupledHierarchy,
    PerfectMemory,
)
from repro.workloads import build_workload_traces

SCALE = 2e-5

MEMORIES = {
    "perfect": PerfectMemory,
    "conventional": ConventionalHierarchy,
    "decoupled": DecoupledHierarchy,
}


def run(isa: str, n_threads: int, memory_name: str):
    traces = build_workload_traces(isa, scale=SCALE)
    policy = FetchPolicy.OCOUNT if isa == "mom" else FetchPolicy.ICOUNT
    processor = SMTProcessor(
        SMTConfig(isa=isa, n_threads=n_threads),
        MEMORIES[memory_name](),
        traces,
        fetch_policy=policy,
    )
    return processor.run()


def main() -> None:
    print("SMT+MOM with 4 and 8 threads under three memory organizations\n")
    print(f"{'memory':>14s}  {'T=4 EIPC':>9s}  {'T=8 EIPC':>9s}  "
          f"{'L1 hit @8T':>10s}  {'coherence inv.':>14s}")
    ideal8 = None
    for name in MEMORIES:
        r4 = run("mom", 4, name)
        r8 = run("mom", 8, name)
        if name == "perfect":
            ideal8 = r8.eipc
        print(
            f"{name:>14s}  {r4.eipc:9.2f}  {r8.eipc:9.2f}  "
            f"{r8.memory.l1.hit_rate:10.1%}  "
            f"{r8.memory.coherence_invalidations:14d}"
        )
    degraded = 1 - run("mom", 8, "decoupled").eipc / ideal8
    print(
        f"\nDecoupling keeps MOM within ~{degraded:.0%} of ideal memory at 8 "
        "threads\n(the paper reports 15%, versus 30% for SMT+MMX): stream "
        "accesses tolerate the\n12-cycle L2 latency, and the scalar working "
        "set keeps the L1 to itself."
    )


if __name__ == "__main__":
    main()
