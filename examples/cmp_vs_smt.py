#!/usr/bin/env python3
"""SMT vs CMP on the media workload (the paper's section-3 debate).

The paper chooses SMT over CMP because SMT keeps single-thread
performance high when thread-level parallelism is scarce (Amdahl), while
a CMP of simple cores wins silicon simplicity.  This example runs both:
an 8-thread SMT and CMPs of 2-8 simple cores, on the same workload,
ISA and shared L2/DRDRAM.

Run:  python examples/cmp_vs_smt.py
"""

from repro.core import SMTConfig, SMTProcessor
from repro.core.cmp import CmpSystem
from repro.memory import ConventionalHierarchy
from repro.workloads import build_workload_traces

SCALE = 2e-5
ISA = "mom"


def run_smt(n_threads: int):
    traces = build_workload_traces(ISA, scale=SCALE)
    return SMTProcessor(
        SMTConfig(isa=ISA, n_threads=n_threads),
        ConventionalHierarchy(),
        traces,
    ).run()


def run_cmp(n_cores: int):
    traces = build_workload_traces(ISA, scale=SCALE)
    return CmpSystem(ISA, n_cores, traces).run()


def main() -> None:
    print(f"workload: 8-program media mix, ISA={ISA}, scale={SCALE}\n")
    print(f"{'machine':>22s}  {'EIPC':>6s}  {'L1 hit':>7s}")
    smt1 = run_smt(1)
    print(f"{'1-thread wide core':>22s}  {smt1.eipc:6.2f}  {smt1.memory.l1.hit_rate:7.1%}")
    for cores in (2, 4, 8):
        result = run_cmp(cores)
        print(
            f"{f'CMP x{cores} simple cores':>22s}  {result.eipc:6.2f}  "
            f"{result.memory.l1.hit_rate:7.1%}"
        )
    smt8 = run_smt(8)
    print(f"{'SMT x8 contexts':>22s}  {smt8.eipc:6.2f}  {smt8.memory.l1.hit_rate:7.1%}")
    print(
        "\nThe SMT shares one wide pipeline (strong with few threads); the\n"
        "CMP multiplies narrow pipelines (strong when TLP is abundant but\n"
        "each stream is capped by its core's width) — the trade-off the\n"
        "paper describes when picking SMT for media workloads."
    )


if __name__ == "__main__":
    main()
