#!/usr/bin/env python3
"""End-to-end MPEG-2-style video coding on the kernel substrate.

This example exercises the *functional* side of the library: the media
kernels the workload model is built from.  It encodes a synthetic video
sequence (motion estimation + DCT + quantization + run-length coding),
decodes it back, reports rate/distortion, and then shows the µ-SIMD
connection: the SAD kernel computed through the executable packed
semantics (psadbw / the MOM packed accumulator) against the scalar
reference.

Run:  python examples/mpeg2_pipeline.py
"""

import numpy as np

from repro.kernels.blockmatch import sad_block, sad_block_mmx, sad_block_packed
from repro.kernels.jpeg import HuffmanCodec
from repro.kernels.mpeg2 import (
    Mpeg2Decoder,
    Mpeg2Encoder,
    psnr,
    synthetic_video,
)


def encode_decode() -> None:
    frames = synthetic_video(8, height=48, width=48)
    encoder = Mpeg2Encoder(quality=70, gop=4, search_range=4)
    decoder = Mpeg2Decoder(quality=70)
    print("frame  type  coded-blocks  PSNR(dB)")
    total_symbols = []
    for index, frame in enumerate(frames):
        encoded = encoder.encode_frame(frame)
        decoded = decoder.decode_frame(encoded)
        quality = psnr(frame, decoded)
        print(
            f"{index:5d}  {encoded.frame_type:>4s}  "
            f"{encoded.coded_block_count:12d}  {quality:8.2f}"
        )
        for block in encoded.blocks:
            total_symbols.extend(block)
    # Entropy-code the (run, level) symbols — the scalar VLC stage.
    codec = HuffmanCodec.from_symbols(total_symbols)
    bits = sum(len(codec.code[s]) for s in total_symbols)
    raw_bits = len(frames) * frames[0].size * 8
    print(f"\nentropy-coded size: {bits / 8:.0f} bytes "
          f"({bits / raw_bits:.1%} of raw)")


def packed_sad_demo() -> None:
    rng = np.random.default_rng(11)
    current = rng.integers(0, 256, (16, 16)).astype(np.uint8)
    candidate = rng.integers(0, 256, (16, 16)).astype(np.uint8)
    scalar = sad_block(current, candidate)
    mmx = sad_block_mmx(current, candidate)        # psadbw semantics
    mom = sad_block_packed(current, candidate)     # vsadab accumulator
    print("\nSAD of one macroblock (motion-estimation inner kernel):")
    print(f"  scalar reference : {scalar}")
    print(f"  MMX psadbw       : {mmx}   (32 instructions)")
    print(f"  MOM vsadab       : {mom}   (2 stream instructions)")
    assert scalar == mmx == mom


if __name__ == "__main__":
    encode_decode()
    packed_sad_demo()
