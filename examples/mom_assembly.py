#!/usr/bin/env python3
"""Writing MOM streaming-SIMD assembly against the architectural machine.

Shows the ISA from the programmer's side: a dot product and a motion-
estimation SAD written with real MOM mnemonics, assembled, executed on
the architectural-state machine, and verified against numpy — and the
instruction-count comparison that motivates the whole paper (one stream
opcode does the work of an unrolled MMX loop).

Run:  python examples/mom_assembly.py
"""

import numpy as np

from repro.isa.assembler import assemble
from repro.isa.datatypes import ElementType as ET, pack_lanes
from repro.isa.machine import MediaMachine

DOT_PRODUCT = """
    # r1 = &a, r2 = &b   (64 int16 samples each)
    li       r1, 0x1000
    li       r2, 0x2000
    setslri  16              # one full stream = 16 x 64-bit words
    vclracc  a0
    vldq     v0, r1, 0, 8    # stream load a[0..63]
    vldq     v1, r2, 0, 8    # stream load b[0..63]
    vmaddawd a0, v0, v1      # 64 MACs in one opcode
"""

SAD_16x8 = """
    li       r1, 0x3000
    li       r2, 0x4000
    setslri  16
    vclracc  a1
    vldq     v2, r1, 0, 8
    vldq     v3, r2, 0, 8
    vsadab   a1, v2, v3      # 128 absolute differences, one opcode
"""


def load_i16(machine, base, values):
    for i in range(0, len(values), 4):
        quad = [int(v) for v in values[i : i + 4]]
        machine.memory.write(base + i * 2, pack_lanes(quad, ET.INT16), 8)


def load_u8(machine, base, values):
    for i in range(0, len(values), 8):
        octet = [int(v) for v in values[i : i + 8]]
        machine.memory.write(base + i, pack_lanes(octet, ET.UINT8), 8)


def main() -> None:
    rng = np.random.default_rng(21)
    machine = MediaMachine()

    a = rng.integers(-300, 300, 64)
    b = rng.integers(-300, 300, 64)
    load_i16(machine, 0x1000, a)
    load_i16(machine, 0x2000, b)
    program = assemble(DOT_PRODUCT)
    machine = program.run(machine)
    print("64-element dot product")
    print(f"  MOM assembly : {machine.acc[0].total()}")
    print(f"  numpy        : {int(np.dot(a, b))}")
    print(f"  instructions : {machine.executed} "
          "(an MMX loop needs ~16 loads + 16 pmaddwd + adds + loop control)")

    cur = rng.integers(0, 256, 128)
    ref = rng.integers(0, 256, 128)
    load_u8(machine, 0x3000, cur)
    load_u8(machine, 0x4000, ref)
    before = machine.executed
    assemble(SAD_16x8).run(machine)
    sad = machine.acc[1].lanes[0]
    print("\n16x8 block SAD (motion estimation inner loop)")
    print(f"  MOM assembly : {sad}")
    print(f"  numpy        : {int(np.abs(cur - ref).sum())}")
    print(f"  instructions : {machine.executed - before}")


if __name__ == "__main__":
    main()
