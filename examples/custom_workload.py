#!/usr/bin/env python3
"""Define your own media workload and run it on the paper's machines.

Models a two-way video-conference client: an H.26x-style encoder and two
decoders (the remote party's stream plus a self-view), a speech codec
pair, and a compositing/UI task — then compares SMT+MMX and SMT+MOM on
it.  Everything below uses only the public API.

Run:  python examples/custom_workload.py
"""

from repro.core import FetchPolicy, SMTConfig, SMTProcessor
from repro.memory import ConventionalHierarchy
from repro.workloads.custom import (
    build_custom_workload,
    define_program,
    remove_program,
)

SCALE = 3e-5

PROGRAMS = {
    "h26x_enc": dict(
        minsts=380.0, frac_int=0.58, frac_fp=0.005, frac_simd=0.25,
        frac_mem=0.165, vector_profile="motion_search",
        description="videoconf encoder (motion search dominated)",
    ),
    "h26x_dec": dict(
        minsts=90.0, frac_int=0.61, frac_fp=0.005, frac_simd=0.15,
        frac_mem=0.235, vector_profile="block_transform",
        description="videoconf decoder",
    ),
    "speech": dict(
        minsts=110.0, frac_int=0.68, frac_fp=0.0, frac_simd=0.10,
        frac_mem=0.22, vector_profile="stream_filter",
        description="speech codec (both directions)",
    ),
    "compositor": dict(
        minsts=70.0, frac_int=0.62, frac_fp=0.16, frac_simd=0.0,
        frac_mem=0.22, vector_profile="scalar_only",
        description="scene compositing + UI",
    ),
}

#: The conference client's eight concurrent tasks.
MIX = [
    "h26x_enc", "h26x_dec", "h26x_dec", "speech",
    "speech", "compositor", "h26x_dec", "h26x_enc",
]


def main() -> None:
    for name, spec in PROGRAMS.items():
        define_program(name, **spec)
    try:
        print("video-conference workload on the paper's 8-thread machines\n")
        results = {}
        for isa in ("mmx", "mom"):
            traces = build_custom_workload(MIX, isa, scale=SCALE)
            policy = FetchPolicy.OCOUNT if isa == "mom" else FetchPolicy.ICOUNT
            result = SMTProcessor(
                SMTConfig(isa=isa, n_threads=8),
                ConventionalHierarchy(),
                traces,
                fetch_policy=policy,
            ).run()
            results[isa] = result
            print(
                f"SMT+{isa.upper():4s}: EIPC={result.eipc:.2f} "
                f"L1={result.memory.l1.hit_rate:.1%} "
                f"I$={result.memory.icache.hit_rate:.1%}"
            )
        gain = results["mom"].eipc / results["mmx"].eipc - 1
        print(
            f"\nThe streaming ISA delivers {gain:+.0%} equivalent throughput "
            "on this\nuser-defined workload — the paper's conclusion is not "
            "specific to its\nexact Mediabench mix."
        )
    finally:
        for name in PROGRAMS:
            remove_program(name)


if __name__ == "__main__":
    main()
