#!/usr/bin/env python3
"""The functional codec substrate: JPEG and GSM end to end.

The workload model is calibrated on these algorithms; this example runs
them as real codecs — a JPEG-style image roundtrip at several quality
factors, and a GSM-style speech roundtrip with segmental SNR.

Run:  python examples/media_codecs.py
"""

import numpy as np

from repro.kernels.gsm import FRAME_SIZE
from repro.kernels.gsm_codec import (
    GsmDecoder,
    GsmEncoder,
    segmental_snr,
    synthetic_speech,
)
from repro.kernels.jpeg_codec import JpegCodec, image_psnr, synthetic_image


def jpeg_demo() -> None:
    image = synthetic_image(96, 120, color=True)
    print("JPEG-style codec, 96x120 RGB test image")
    print(f"{'quality':>8s}  {'bits':>8s}  {'ratio':>6s}  {'PSNR(dB)':>8s}")
    for quality in (25, 50, 75, 95):
        codec = JpegCodec(quality=quality)
        encoded = codec.encode(image)
        decoded = codec.decode(encoded)
        print(
            f"{quality:8d}  {encoded.total_bits:8d}  "
            f"{encoded.compression_ratio():6.1f}  "
            f"{image_psnr(image, decoded):8.2f}"
        )


def gsm_demo() -> None:
    n_frames = 8
    speech = synthetic_speech(n_frames)
    encoder, decoder = GsmEncoder(), GsmDecoder()
    reconstructed = []
    for i in range(n_frames):
        frame = speech[i * FRAME_SIZE : (i + 1) * FRAME_SIZE]
        reconstructed.append(decoder.decode_frame(encoder.encode_frame(frame)))
    recon = np.concatenate(reconstructed)
    quality = segmental_snr(speech[FRAME_SIZE:], recon[FRAME_SIZE:])
    # Rough rate estimate: lag(7b) + gain(7b) + grid(2b) + 14 pulses x 4b
    bits_per_subframe = 7 + 7 + 2 + 14 * 4
    rate = bits_per_subframe * 4 * 50       # subframes/frame x frames/sec
    print(f"\nGSM-style codec, {n_frames} frames of synthetic voiced speech")
    print(f"  segmental SNR : {quality:.1f} dB (steady state)")
    print(f"  bit rate      : ~{rate / 1000:.1f} kbit/s "
          "(full-rate GSM is 13 kbit/s)")


if __name__ == "__main__":
    jpeg_demo()
    gsm_demo()
