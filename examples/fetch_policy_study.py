#!/usr/bin/env python3
"""Fetch-policy study: RR vs ICOUNT vs OCOUNT vs BALANCE (paper §5.3).

Sweeps the four fetch thread-selection policies on an 8-thread SMT+MOM
machine with the real memory hierarchy and shows which policy best mixes
scalar and vector instructions.  OCOUNT — ICOUNT made stream-aware via
the stream-length register — is the paper's winner for MOM.

Run:  python examples/fetch_policy_study.py
"""

from repro.core import FetchPolicy, SMTConfig, SMTProcessor
from repro.memory import ConventionalHierarchy
from repro.workloads import build_workload_traces

SCALE = 2e-5
THREADS = 8


def main() -> None:
    print(f"8-thread SMT+MOM, conventional hierarchy, scale={SCALE}\n")
    print(f"{'policy':>8s}  {'EIPC':>6s}  {'vs RR':>7s}  {'vector-only cycles':>18s}")
    baseline = None
    for policy in (
        FetchPolicy.RR,
        FetchPolicy.ICOUNT,
        FetchPolicy.OCOUNT,
        FetchPolicy.BALANCE,
    ):
        traces = build_workload_traces("mom", scale=SCALE)
        processor = SMTProcessor(
            SMTConfig(isa="mom", n_threads=THREADS),
            ConventionalHierarchy(),
            traces,
            fetch_policy=policy,
        )
        result = processor.run()
        if baseline is None:
            baseline = result.eipc
        print(
            f"{policy.value:>8s}  {result.eipc:6.2f}  "
            f"{result.eipc / baseline - 1:+6.1%}  "
            f"{result.vector_only_fraction:18.1%}"
        )
    print(
        "\nThe paper finds policies matter only at high thread counts, "
        "buying up to ~9% over round-robin; OCOUNT leads for MOM because "
        "a queued stream instruction represents up to 16 operations."
    )


if __name__ == "__main__":
    main()
