#!/usr/bin/env python3
"""Quickstart: simulate the paper's workload on an SMT media processor.

Builds the 8-program MPEG-4-style multiprogrammed workload, runs it on a
4-thread SMT core with MMX-like and with MOM streaming µ-SIMD extensions,
and prints throughput plus cache behaviour.

Run:  python examples/quickstart.py
"""

from repro.core import FetchPolicy, SMTConfig, SMTProcessor
from repro.memory import ConventionalHierarchy
from repro.workloads import build_workload_traces

#: Dynamic instructions per million paper instructions; lower = faster.
SCALE = 2e-5


def main() -> None:
    print("Building traces and simulating (a few seconds per run)...\n")
    results = {}
    for isa in ("mmx", "mom"):
        traces = build_workload_traces(isa, scale=SCALE)
        processor = SMTProcessor(
            SMTConfig(isa=isa, n_threads=4),
            ConventionalHierarchy(),
            traces,
            fetch_policy=FetchPolicy.ICOUNT,
        )
        result = processor.run()
        results[isa] = result
        memory = result.memory
        print(f"SMT+{isa.upper()} (4 threads, ICOUNT fetch, real memory)")
        print(f"  cycles                {result.cycles}")
        print(f"  IPC  (committed)      {result.ipc:.2f}")
        print(f"  EIPC (equivalent)     {result.eipc:.2f}")
        print(f"  I-cache hit rate      {memory.icache.hit_rate:.1%}")
        print(f"  L1 hit rate (loads)   {memory.l1.hit_rate:.1%}")
        print(f"  L1 mean latency       {memory.l1.mean_latency:.2f} cycles")
        print(f"  branch mispredicts    {result.mispredict_rate:.1%}")
        print()
    speedup = results["mom"].eipc / results["mmx"].eipc
    print(
        f"MOM streaming vector u-SIMD delivers {speedup:.2f}x the throughput "
        "of conventional packed SIMD on the same core\n"
        "(the paper's central claim: SMT hides vector execution under the "
        "integer bottleneck, and streams relieve fetch/issue pressure)."
    )


if __name__ == "__main__":
    main()
