#!/usr/bin/env python3
"""Pipeline utilization report — seeing the paper's thesis directly.

Section 4.2 of the paper concludes that "the integer pipeline will be
the main performance bottleneck within the CPU when executing our
approximation of a next generation media workload".  This example
instruments full runs and prints per-queue issue utilization: the
integer queue saturates while the SIMD units idle — and the SMT's job is
visible as the vector/memory work hiding underneath.

Run:  python examples/pipeline_report.py
"""

from repro.core import SMTConfig, SMTProcessor
from repro.core.stats import InstrumentedRun
from repro.memory import ConventionalHierarchy
from repro.workloads import build_workload_traces

SCALE = 2e-5


def report(isa: str, n_threads: int) -> None:
    config = SMTConfig(isa=isa, n_threads=n_threads)
    processor = SMTProcessor(
        config,
        ConventionalHierarchy(),
        build_workload_traces(isa, scale=SCALE),
    )
    instrumented = InstrumentedRun(processor)
    result = instrumented.run()
    widths = {
        "int": config.issue_int,
        "mem": config.issue_mem,
        "fp": config.issue_fp,
        "simd": config.issue_simd,
    }
    print(f"--- SMT+{isa.upper()}, {n_threads} thread(s): "
          f"EIPC={result.eipc:.2f} ---")
    print(instrumented.stats.report(widths))
    print()


def main() -> None:
    for isa in ("mmx", "mom"):
        for n_threads in (1, 8):
            report(isa, n_threads)
    print(
        "Note how the integer queue approaches saturation at 8 threads\n"
        "while SIMD issue stays low — the media workload is scalar-bound,\n"
        "and SMT 'hides vector execution underneath integer execution'."
    )


if __name__ == "__main__":
    main()
