#!/usr/bin/env python3
"""Timing-regression guard for the simulator hot loop.

Guards three timing curves pinned in ``results/hotloop_baseline.json``:

1. The detailed-model hot loop (protocol in
   :func:`run_experiments.measure_hot_loop`): fails when the
   drift-normalized speedup over the pre-optimization baseline has
   regressed more than ``--max-regression`` (default 25 %) below the
   recorded ``optimized_speedup``.
2. The sampled-point latency curve (protocol in
   :func:`run_experiments.measure_sampled_point`): re-times one sampled
   simulation point under the serial and window-sharded schedules and
   fails when either drift-normalized latency regresses more than
   ``--max-regression`` past its recorded baseline — or, regardless of
   any tolerance, when the two schedules stop being bit-identical
   (that is a correctness bug in the window sharding, not drift).
   The sharded-vs-serial latency comparison only holds on a machine
   with the same core count the baseline was recorded on; when
   ``os.cpu_count()`` differs from the baseline's ``cpu_count``, the
   sharded curve's latency check is skipped with a notice (the serial
   curve and the bit-identity check still run).
3. The flat-backend latency curve (protocol in
   :func:`run_experiments.measure_flat_backend`): re-times the
   hot-loop reference point under ``backend="flat"`` and
   ``backend="object"`` and fails when the drift-normalized flat
   latency regresses more than ``--max-regression`` past its recorded
   baseline — or, regardless of any tolerance, when the two engines
   stop hashing bit-identically (a correctness bug in the flat
   engine, not drift).  The drift-normalized speedup over the
   pre-PR-2 hot-loop floor is reported against the recorded
   ``target_speedup_vs_prepr2`` (≥5x for the compiled kernel); the
   pure-Python kernel lands below the target and is tracked, not
   gated, against it.

The guard also fails when the run's cycle count drifts from the
baseline: a changed cycle count means the detailed model's semantics
changed, so the wall-time comparison is no longer like-for-like.  When
the semantic change is intentional, re-record the baseline and pass
``--allow-drift`` for the transition run.

Exit status: 0 when within budget, 1 on a regression or drift, 2 when
the measurement itself could not run.

Usage:  python scripts/check_hotloop.py [--max-regression 0.25]
            [--allow-drift] [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from run_experiments import (  # noqa: E402  (scripts/ is not a package)
    CACHE_DIR,
    HOTLOOP_BASELINE,
    Runner,
    measure_flat_backend,
    measure_hot_loop,
    measure_sampled_point,
)


def check_sampled_point(runner, baseline, max_regression: float) -> int:
    """Guard the second curve: sampled-point latency, serial and sharded.

    Returns the exit status contribution: 0 when within budget, 1 on a
    regression or a bit-identity break, 2 when the measurement could
    not run.
    """
    if "sampled_point" not in baseline:
        print(
            "error: baseline has no sampled_point record.\n"
            "The guard compares the serial and window-sharded latency of "
            "one sampled simulation point against recorded timings; "
            "restore results/hotloop_baseline.json from version control "
            "or re-record it per the protocol in "
            "run_experiments.measure_sampled_point."
        )
        return 2

    record = measure_sampled_point(runner)
    if record is None:
        print("sampled-point measurement failed to run")
        return 2

    if not record["identical"]:
        print(
            "sampled point: BIT-IDENTITY BROKEN — the serial and "
            "window-sharded schedules no longer hash to the same result. "
            "This is a correctness bug in the window sharding, not a "
            "timing drift; no tolerance applies."
        )
        return 1

    # Each curve is judged against its own baseline, normalized by the
    # same machine-drift factor.  The serial curve's cost does not
    # depend on the core count, but the sharded curve's does (pool
    # dispatch overhead vs actual parallelism), so its latency check is
    # only like-for-like on a machine with the baseline's core count.
    baseline_cores = baseline.get(
        "cpu_count", baseline["sampled_point"].get("cores_recorded")
    )
    curves = ["serial", "sharded"]
    if baseline_cores is not None and record["cores"] != baseline_cores:
        curves.remove("sharded")
        print(
            f"sampled point [sharded]: latency check skipped — this "
            f"machine has {record['cores']} cores but the baseline was "
            f"recorded on {baseline_cores}, so the sharded schedule's "
            f"cost is not comparable (bit-identity was still checked)"
        )
    factor = record["machine_factor"]
    status = 0
    for curve in curves:
        measured = record[f"{curve}_seconds"]
        budget = record[f"baseline_{curve}_seconds"] * factor
        ceiling = budget * (1.0 + max_regression)
        verdict = "OK" if measured <= ceiling else "REGRESSION"
        if verdict == "REGRESSION":
            status = 1
        print(
            f"sampled point [{curve}]: {budget:.3f} s baseline -> "
            f"{measured:.3f} s now (ceiling {ceiling:.3f}, "
            f"machine drift x{factor:.3f}) [{verdict}]"
        )
    print(
        f"sampled point: {record['chunks']} chunks, "
        f"window_jobs={record['config']['window_jobs']}, "
        f"{record['cores']} cores, bit-identical=True"
    )
    return status


def check_flat_backend(
    runner, baseline, max_regression: float, allow_drift: bool
) -> int:
    """Guard the third curve: flat-engine latency and bit-identity.

    Returns the exit status contribution: 0 when within budget, 1 on a
    regression, a cross-engine bit-identity break, or unallowed cycle
    drift, 2 when the measurement could not run.
    """
    if "flat_backend" not in baseline:
        print(
            "error: baseline has no flat_backend record.\n"
            "The guard compares the flat-engine latency of the hot-loop "
            "reference point against a recorded timing; restore "
            "results/hotloop_baseline.json from version control or "
            "re-record it per the protocol in "
            "run_experiments.measure_flat_backend."
        )
        return 2

    record = measure_flat_backend(runner)
    if record is None:
        print("flat-backend measurement failed to run")
        return 2

    if not record["identical"]:
        print(
            "flat backend: BIT-IDENTITY BROKEN — the flat and object "
            "engines no longer hash to the same result. This is a "
            "correctness bug in the flat engine, not a timing drift; "
            "no tolerance applies."
        )
        return 1

    if record.get("speedup_vs_prepr2") is None:
        print(f"flat backend: cycle drift: {record.get('note', 'unknown')}")
        if allow_drift:
            print("--allow-drift given; skipping the timing comparison")
            return 0
        print(
            "the detailed model changed semantics; re-record "
            f"{os.path.relpath(HOTLOOP_BASELINE)} if this is intentional"
        )
        return 1

    factor = record["machine_factor"]
    budget = record["baseline_flat_seconds"] * factor
    ceiling = budget * (1.0 + max_regression)
    measured = record["flat_seconds"]
    verdict = "OK" if measured <= ceiling else "REGRESSION"
    kernel = "compiled" if record["compiled"] else "pure-python"
    print(
        f"flat backend [{kernel}]: {budget:.3f} s baseline -> "
        f"{measured:.3f} s now (ceiling {ceiling:.3f}, "
        f"machine drift x{factor:.3f}) [{verdict}]"
    )
    target = record.get("target_speedup_vs_prepr2")
    gated = record["compiled"] and record.get("baseline_compiled")
    print(
        f"flat backend: {record['speedup_vs_object']:.2f}x vs object "
        f"engine, {record['speedup_vs_prepr2']:.2f}x vs pre-PR-2 floor "
        f"(target {target}, "
        f"{'gated' if gated else 'tracked only: pure-python kernel'}), "
        f"bit-identical=True"
    )
    status = 0 if verdict == "OK" else 1
    if (
        gated
        and target
        and record["speedup_vs_prepr2"] < target / (1.0 + max_regression)
    ):
        print(
            "flat backend: compiled kernel fell below the recorded "
            "target speedup over the pre-PR-2 floor [REGRESSION]"
        )
        status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="tolerated fractional slowdown vs the recorded "
        "optimized_speedup (default 0.25)",
    )
    parser.add_argument(
        "--allow-drift", action="store_true",
        help="do not fail when the cycle count differs from the baseline "
        "(use for the run that intentionally changes model semantics)",
    )
    parser.add_argument(
        "--repeats", type=int, default=8,
        help="timing repeats, min is taken (default 8)",
    )
    args = parser.parse_args(argv)

    if not os.path.exists(HOTLOOP_BASELINE):
        print(
            f"error: no hot-loop baseline at {HOTLOOP_BASELINE}.\n"
            "The guard compares current timings against a recorded "
            "pre-optimization run; restore the file from version control "
            "(git checkout -- results/hotloop_baseline.json) or re-record "
            "it per the protocol in run_experiments.measure_hot_loop."
        )
        return 2
    try:
        with open(HOTLOOP_BASELINE) as handle:
            baseline = json.load(handle)
        if not isinstance(baseline, dict):
            raise ValueError("baseline JSON is not an object")
        for field in ("config", "before_seconds", "calibration_seconds"):
            if field not in baseline:
                raise KeyError(field)
    except (OSError, ValueError, KeyError) as exc:
        print(
            f"error: hot-loop baseline {HOTLOOP_BASELINE} is "
            f"unreadable or malformed ({exc!r}).\n"
            "Restore it from version control "
            "(git checkout -- results/hotloop_baseline.json) or re-record "
            "it per the protocol in run_experiments.measure_hot_loop."
        )
        return 2
    target = baseline.get("optimized_speedup")
    if not target:
        print(
            "baseline has no optimized_speedup record; nothing to guard. "
            "Re-record results/hotloop_baseline.json with the current "
            "optimized timing to arm the guard."
        )
        return 2

    runner = Runner(cache_dir=CACHE_DIR)
    record = measure_hot_loop(runner, args.repeats)
    if record is None:
        print("hot-loop measurement failed to run")
        return 2

    if record.get("speedup") is None:
        print(f"cycle drift: {record.get('note', 'unknown cause')}")
        if args.allow_drift:
            print("--allow-drift given; skipping the timing comparison")
            return max(
                check_sampled_point(runner, baseline, args.max_regression),
                check_flat_backend(
                    runner, baseline, args.max_regression, args.allow_drift
                ),
            )
        print(
            "the detailed model changed semantics; re-record "
            f"{os.path.relpath(HOTLOOP_BASELINE)} if this is intentional"
        )
        return 1

    floor = target / (1.0 + args.max_regression)
    verdict = "OK" if record["speedup"] >= floor else "REGRESSION"
    print(
        f"hot loop: {record['adjusted_before_seconds']:.3f} s baseline -> "
        f"{record['after_seconds']:.3f} s now "
        f"(speedup {record['speedup']:.3f}, recorded optimum {target:.3f}, "
        f"floor {floor:.3f}, machine drift x{record['machine_factor']:.3f}) "
        f"[{verdict}]"
    )
    hot_status = 0 if verdict == "OK" else 1
    shard_status = check_sampled_point(runner, baseline, args.max_regression)
    flat_status = check_flat_backend(
        runner, baseline, args.max_regression, args.allow_drift
    )
    return max(hot_status, shard_status, flat_status)


if __name__ == "__main__":
    sys.exit(main())
