#!/usr/bin/env python3
"""Timing-regression guard for the simulator hot loop.

Guards two timing curves pinned in ``results/hotloop_baseline.json``:

1. The detailed-model hot loop (protocol in
   :func:`run_experiments.measure_hot_loop`): fails when the
   drift-normalized speedup over the pre-optimization baseline has
   regressed more than ``--max-regression`` (default 25 %) below the
   recorded ``optimized_speedup``.
2. The sampled-point latency curve (protocol in
   :func:`run_experiments.measure_sampled_point`): re-times one sampled
   simulation point under the serial and window-sharded schedules and
   fails when either drift-normalized latency regresses more than
   ``--max-regression`` past its recorded baseline — or, regardless of
   any tolerance, when the two schedules stop being bit-identical
   (that is a correctness bug in the window sharding, not drift).

The guard also fails when the run's cycle count drifts from the
baseline: a changed cycle count means the detailed model's semantics
changed, so the wall-time comparison is no longer like-for-like.  When
the semantic change is intentional, re-record the baseline and pass
``--allow-drift`` for the transition run.

Exit status: 0 when within budget, 1 on a regression or drift, 2 when
the measurement itself could not run.

Usage:  python scripts/check_hotloop.py [--max-regression 0.25]
            [--allow-drift] [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from run_experiments import (  # noqa: E402  (scripts/ is not a package)
    CACHE_DIR,
    HOTLOOP_BASELINE,
    Runner,
    measure_hot_loop,
    measure_sampled_point,
)


def check_sampled_point(runner, baseline, max_regression: float) -> int:
    """Guard the second curve: sampled-point latency, serial and sharded.

    Returns the exit status contribution: 0 when within budget, 1 on a
    regression or a bit-identity break, 2 when the measurement could
    not run.
    """
    if "sampled_point" not in baseline:
        print(
            "error: baseline has no sampled_point record.\n"
            "The guard compares the serial and window-sharded latency of "
            "one sampled simulation point against recorded timings; "
            "restore results/hotloop_baseline.json from version control "
            "or re-record it per the protocol in "
            "run_experiments.measure_sampled_point."
        )
        return 2

    record = measure_sampled_point(runner)
    if record is None:
        print("sampled-point measurement failed to run")
        return 2

    if not record["identical"]:
        print(
            "sampled point: BIT-IDENTITY BROKEN — the serial and "
            "window-sharded schedules no longer hash to the same result. "
            "This is a correctness bug in the window sharding, not a "
            "timing drift; no tolerance applies."
        )
        return 1

    # Each curve is judged against its own baseline, normalized by the
    # same machine-drift factor, so the recording machine's core count
    # does not skew the comparison.
    factor = record["machine_factor"]
    status = 0
    for curve in ("serial", "sharded"):
        measured = record[f"{curve}_seconds"]
        budget = record[f"baseline_{curve}_seconds"] * factor
        ceiling = budget * (1.0 + max_regression)
        verdict = "OK" if measured <= ceiling else "REGRESSION"
        if verdict == "REGRESSION":
            status = 1
        print(
            f"sampled point [{curve}]: {budget:.3f} s baseline -> "
            f"{measured:.3f} s now (ceiling {ceiling:.3f}, "
            f"machine drift x{factor:.3f}) [{verdict}]"
        )
    print(
        f"sampled point: {record['chunks']} chunks, "
        f"window_jobs={record['config']['window_jobs']}, "
        f"{record['cores']} cores, bit-identical=True"
    )
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="tolerated fractional slowdown vs the recorded "
        "optimized_speedup (default 0.25)",
    )
    parser.add_argument(
        "--allow-drift", action="store_true",
        help="do not fail when the cycle count differs from the baseline "
        "(use for the run that intentionally changes model semantics)",
    )
    parser.add_argument(
        "--repeats", type=int, default=8,
        help="timing repeats, min is taken (default 8)",
    )
    args = parser.parse_args(argv)

    if not os.path.exists(HOTLOOP_BASELINE):
        print(
            f"error: no hot-loop baseline at {HOTLOOP_BASELINE}.\n"
            "The guard compares current timings against a recorded "
            "pre-optimization run; restore the file from version control "
            "(git checkout -- results/hotloop_baseline.json) or re-record "
            "it per the protocol in run_experiments.measure_hot_loop."
        )
        return 2
    try:
        with open(HOTLOOP_BASELINE) as handle:
            baseline = json.load(handle)
        if not isinstance(baseline, dict):
            raise ValueError("baseline JSON is not an object")
        for field in ("config", "before_seconds", "calibration_seconds"):
            if field not in baseline:
                raise KeyError(field)
    except (OSError, ValueError, KeyError) as exc:
        print(
            f"error: hot-loop baseline {HOTLOOP_BASELINE} is "
            f"unreadable or malformed ({exc!r}).\n"
            "Restore it from version control "
            "(git checkout -- results/hotloop_baseline.json) or re-record "
            "it per the protocol in run_experiments.measure_hot_loop."
        )
        return 2
    target = baseline.get("optimized_speedup")
    if not target:
        print(
            "baseline has no optimized_speedup record; nothing to guard. "
            "Re-record results/hotloop_baseline.json with the current "
            "optimized timing to arm the guard."
        )
        return 2

    runner = Runner(cache_dir=CACHE_DIR)
    record = measure_hot_loop(runner, args.repeats)
    if record is None:
        print("hot-loop measurement failed to run")
        return 2

    if record.get("speedup") is None:
        print(f"cycle drift: {record.get('note', 'unknown cause')}")
        if args.allow_drift:
            print("--allow-drift given; skipping the timing comparison")
            return check_sampled_point(
                runner, baseline, args.max_regression
            )
        print(
            "the detailed model changed semantics; re-record "
            f"{os.path.relpath(HOTLOOP_BASELINE)} if this is intentional"
        )
        return 1

    floor = target / (1.0 + args.max_regression)
    verdict = "OK" if record["speedup"] >= floor else "REGRESSION"
    print(
        f"hot loop: {record['adjusted_before_seconds']:.3f} s baseline -> "
        f"{record['after_seconds']:.3f} s now "
        f"(speedup {record['speedup']:.3f}, recorded optimum {target:.3f}, "
        f"floor {floor:.3f}, machine drift x{record['machine_factor']:.3f}) "
        f"[{verdict}]"
    )
    hot_status = 0 if verdict == "OK" else 1
    shard_status = check_sampled_point(runner, baseline, args.max_regression)
    return max(hot_status, shard_status)


if __name__ == "__main__":
    sys.exit(main())
