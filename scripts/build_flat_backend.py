#!/usr/bin/env python3
"""Build the optional compiled kernel for the flat pipeline engine.

Compiles ``src/repro/core/_flatstep.py`` into an extension module
``repro.core._flatstep_c`` (a ``.so``/``.pyd`` next to the source),
which ``repro.core.engine_flat`` picks up at import time — and which
flips ``backend="auto"`` from the object engine to the flat one.

The compiler is optional tooling (``pip install .[compiled]``); this
script degrades to a no-op exit 0 with a notice when neither mypyc nor
Cython is importable, so CI can always run it best-effort.  The
pure-Python kernel remains the reference: the compiled module is a
transparent drop-in whose output must stay bit-identical
(``scripts/backend_smoke.py`` enforces that after every build).

Exit status: 0 on a successful build or when no compiler is available,
1 when a compiler was found but the build failed.

Usage:  python scripts/build_flat_backend.py [--compiler mypyc|cython]
            [--force]
"""

from __future__ import annotations

import argparse
import glob
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORE_DIR = os.path.join(REPO_ROOT, "src", "repro", "core")
KERNEL_SOURCE = os.path.join(CORE_DIR, "_flatstep.py")
MODULE_NAME = "_flatstep_c"


def have(module: str) -> bool:
    try:
        __import__(module)
        return True
    except ImportError:
        return False


def built_artifacts() -> list[str]:
    return glob.glob(os.path.join(CORE_DIR, f"{MODULE_NAME}*.so")) + glob.glob(
        os.path.join(CORE_DIR, f"{MODULE_NAME}*.pyd")
    )


def build_with_cython(workdir: str) -> list[str]:
    """Cythonize a renamed copy of the kernel and return built files."""
    source = os.path.join(workdir, f"{MODULE_NAME}.py")
    shutil.copyfile(KERNEL_SOURCE, source)
    setup = os.path.join(workdir, "setup.py")
    with open(setup, "w") as handle:
        handle.write(
            "from setuptools import setup\n"
            "from Cython.Build import cythonize\n"
            f"setup(ext_modules=cythonize([{source!r}], language_level=3))\n"
        )
    subprocess.run(
        [sys.executable, setup, "build_ext", "--inplace"],
        cwd=workdir,
        check=True,
    )
    return glob.glob(os.path.join(workdir, f"{MODULE_NAME}*.so")) + glob.glob(
        os.path.join(workdir, f"{MODULE_NAME}*.pyd")
    )


def build_with_mypyc(workdir: str) -> list[str]:
    """Compile a renamed copy of the kernel with mypyc."""
    source = os.path.join(workdir, f"{MODULE_NAME}.py")
    shutil.copyfile(KERNEL_SOURCE, source)
    setup = os.path.join(workdir, "setup.py")
    with open(setup, "w") as handle:
        handle.write(
            "from setuptools import setup\n"
            "from mypyc.build import mypycify\n"
            f"setup(ext_modules=mypycify([{source!r}]))\n"
        )
    subprocess.run(
        [sys.executable, setup, "build_ext", "--inplace"],
        cwd=workdir,
        check=True,
    )
    return glob.glob(os.path.join(workdir, f"{MODULE_NAME}*.so")) + glob.glob(
        os.path.join(workdir, f"{MODULE_NAME}*.pyd")
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--compiler",
        choices=("mypyc", "cython"),
        default=None,
        help="force one compiler instead of auto-detecting "
        "(mypyc preferred, then Cython)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="rebuild even when a compiled module already exists",
    )
    args = parser.parse_args(argv)

    existing = built_artifacts()
    if existing and not args.force:
        print(f"compiled kernel already present: {existing[0]} (use --force)")
        return 0

    modules = {"mypyc": "mypyc", "cython": "Cython"}
    if args.compiler:
        compiler = args.compiler if have(modules[args.compiler]) else None
    else:
        compiler = (
            "mypyc" if have("mypyc") else "cython" if have("Cython") else None
        )
    if compiler is None:
        wanted = modules[args.compiler] if args.compiler else "mypyc nor Cython"
        print(
            f"no compiler available ({wanted} is not installed); "
            "skipping the compiled kernel build — the pure-Python flat "
            "kernel stays in use. Install with pip install .[compiled] "
            "to enable this step."
        )
        return 0

    workdir = tempfile.mkdtemp(prefix="flatstep_build_")
    try:
        build = build_with_mypyc if compiler == "mypyc" else build_with_cython
        try:
            artifacts = build(workdir)
        except (subprocess.CalledProcessError, OSError) as exc:
            print(f"FAIL: {compiler} build of {KERNEL_SOURCE} failed: {exc}")
            return 1
        if not artifacts:
            print(f"FAIL: {compiler} build produced no extension module")
            return 1
        for stale in built_artifacts():
            os.remove(stale)
        destination = os.path.join(CORE_DIR, os.path.basename(artifacts[0]))
        shutil.copyfile(artifacts[0], destination)
        print(f"built {destination} with {compiler}")

        probe = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.core.engine_flat import COMPILED; "
                "import sys; sys.exit(0 if COMPILED else 1)",
            ],
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    p
                    for p in (
                        os.path.join(REPO_ROOT, "src"),
                        os.environ.get("PYTHONPATH"),
                    )
                    if p
                ),
            },
        )
        if probe.returncode != 0:
            print(
                "FAIL: engine_flat did not pick up the compiled module "
                "(COMPILED is still False)"
            )
            return 1
        print("engine_flat reports COMPILED=True; backend='auto' now "
              "selects the flat engine")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
