#!/usr/bin/env python3
"""CI smoke test for window-sharded sampled execution.

Runs one sampled simulation point that genuinely chunks
(``sampled_chunk_count > 1``) through the full (backend x window_jobs)
matrix — the object and flat engines, each under the serial and
window-sharded (``window_jobs=2``) schedules, every cell through its
own cold cache — and asserts:

1. the sharded runs actually fanned out (shard provenance events with
   more than one chunk),
2. all four cells produce the same canonical result hash — neither
   intra-run parallelism nor the engine choice may move a result by a
   single bit,
3. a warm rerun pointed at the flat engine's serial cache, but asking
   for the object backend window-sharded, hits that cache entry
   (``backend`` and ``window_jobs`` are both exempt from the
   fingerprint, so the whole matrix shares one cache slot and the warm
   rerun simulates nothing).

Exit status: 0 on success, 1 on any violated invariant.

Usage:  python scripts/shard_smoke.py
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis.runner import (  # noqa: E402
    Runner,
    RunRequest,
    result_to_dict,
    workload_traces,
)
from repro.core.smt import sampled_chunk_count  # noqa: E402

#: Small enough for a sub-minute CI step; the short sampling period
#: makes the schedule chunk even at smoke scale (5 chunks here, vs the
#: default 40000-cycle period which only chunks at production scales).
REQUEST = RunRequest(
    isa="mom",
    n_threads=8,
    memory="conventional",
    fetch_policy="rr",
    scale=2e-5,
    sampling=(1000, 200, 50),
)


def canonical_sha256(result) -> str:
    blob = json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def main() -> int:
    scratch = tempfile.mkdtemp(prefix="shard_smoke_")
    try:
        traces = workload_traces(
            REQUEST.isa, REQUEST.scale, REQUEST.seed,
            os.path.join(scratch, "traces"),
        )
        n_chunks = sampled_chunk_count(
            REQUEST.sampling, traces, REQUEST.completions_target
        )
        if n_chunks <= 1:
            print(
                f"FAIL: smoke configuration no longer chunks "
                f"(sampled_chunk_count={n_chunks}); pick a configuration "
                "that exercises the sharded path"
            )
            return 1

        hashes = {}
        wall = 0.0
        for backend in ("object", "flat"):
            for window_jobs in (1, 2):
                cache = os.path.join(scratch, f"{backend}_{window_jobs}")
                runner = Runner(
                    cache_dir=cache,
                    window_jobs=window_jobs,
                    backend=backend,
                )
                result = runner.run_batch([REQUEST])[REQUEST]
                hashes[(backend, window_jobs)] = canonical_sha256(result)
                if window_jobs == 2:
                    shards = runner.stats.window_shards
                    if shards != n_chunks:
                        print(
                            f"FAIL: sharded {backend} run reported "
                            f"{shards} window shards, expected {n_chunks} "
                            "— the request did not fan out"
                        )
                        return 1
                    wall += sum(
                        event["wall_seconds"]
                        for event in runner.window_shard_events
                    )

        reference = hashes[("object", 1)]
        divergent = {
            cell: digest
            for cell, digest in hashes.items()
            if digest != reference
        }
        if divergent:
            print(
                "FAIL: bit-identity broken across the "
                "(backend x window_jobs) matrix — reference "
                f"object/serial {reference[:16]}, divergent: "
                + ", ".join(
                    f"{backend}/window_jobs={jobs} {digest[:16]}"
                    for (backend, jobs), digest in sorted(divergent.items())
                )
            )
            return 1

        # The whole matrix shares one cache slot: an object-backend
        # sharded runner pointed at the flat engine's serial cache must
        # hit it, not resimulate.
        warm = Runner(
            cache_dir=os.path.join(scratch, "flat_1"),
            window_jobs=2,
            backend="object",
        )
        warm.run_batch([REQUEST])
        if warm.stats.simulated != 0 or warm.stats.disk_hits != 1:
            print(
                "FAIL: object-backend sharded runner missed the flat "
                f"serial cache entry (simulated={warm.stats.simulated}, "
                f"disk_hits={warm.stats.disk_hits}) — backend or "
                "window_jobs leaked into the fingerprint"
            )
            return 1

        print(
            f"shard smoke OK: {n_chunks} chunks, "
            f"hash {reference[:16]} identical across "
            "{object,flat} x {window_jobs=1,2}, "
            f"warm cache shared cross-backend ({wall:.2f} s sharded wall)"
        )
        return 0
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
