#!/usr/bin/env python3
"""CI smoke test for window-sharded sampled execution.

Runs one sampled simulation point that genuinely chunks
(``sampled_chunk_count > 1``), first under the serial schedule through a
cold cache, then window-sharded (``window_jobs=2``) through a second
cold cache, and asserts:

1. the sharded run actually fanned out (shard provenance events with
   more than one chunk),
2. both schedules produce the same canonical result hash — intra-run
   parallelism must never move a result by a single bit,
3. the sharded runner hits the serial runner's cache entry when pointed
   at it (``window_jobs`` is exempt from the fingerprint, so the two
   schedules share one cache slot and a warm rerun simulates nothing).

Exit status: 0 on success, 1 on any violated invariant.

Usage:  python scripts/shard_smoke.py
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis.runner import (  # noqa: E402
    Runner,
    RunRequest,
    result_to_dict,
    workload_traces,
)
from repro.core.smt import sampled_chunk_count  # noqa: E402

#: Small enough for a sub-minute CI step; the short sampling period
#: makes the schedule chunk even at smoke scale (5 chunks here, vs the
#: default 40000-cycle period which only chunks at production scales).
REQUEST = RunRequest(
    isa="mom",
    n_threads=8,
    memory="conventional",
    fetch_policy="rr",
    scale=2e-5,
    sampling=(1000, 200, 50),
)


def canonical_sha256(result) -> str:
    blob = json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def main() -> int:
    scratch = tempfile.mkdtemp(prefix="shard_smoke_")
    try:
        serial_cache = os.path.join(scratch, "serial")
        sharded_cache = os.path.join(scratch, "sharded")

        traces = workload_traces(
            REQUEST.isa, REQUEST.scale, REQUEST.seed,
            os.path.join(scratch, "traces"),
        )
        n_chunks = sampled_chunk_count(
            REQUEST.sampling, traces, REQUEST.completions_target
        )
        if n_chunks <= 1:
            print(
                f"FAIL: smoke configuration no longer chunks "
                f"(sampled_chunk_count={n_chunks}); pick a configuration "
                "that exercises the sharded path"
            )
            return 1

        serial_runner = Runner(cache_dir=serial_cache)
        serial = serial_runner.run(REQUEST)
        serial_hash = canonical_sha256(serial)

        sharded_runner = Runner(cache_dir=sharded_cache, window_jobs=2)
        sharded = sharded_runner.run_batch([REQUEST])[REQUEST]
        sharded_hash = canonical_sha256(sharded)

        shards = sharded_runner.stats.window_shards
        if shards != n_chunks:
            print(
                f"FAIL: sharded run reported {shards} window shards, "
                f"expected {n_chunks} — the request did not fan out"
            )
            return 1
        if sharded_hash != serial_hash:
            print(
                "FAIL: bit-identity broken — serial and window-sharded "
                f"schedules diverge ({serial_hash[:16]} vs "
                f"{sharded_hash[:16]})"
            )
            return 1

        # The schedules share one cache slot: a sharded runner pointed
        # at the serial cache must hit it, not resimulate.
        warm = Runner(cache_dir=serial_cache, window_jobs=2)
        warm.run_batch([REQUEST])
        if warm.stats.simulated != 0 or warm.stats.disk_hits != 1:
            print(
                "FAIL: sharded runner missed the serial cache entry "
                f"(simulated={warm.stats.simulated}, "
                f"disk_hits={warm.stats.disk_hits}) — window_jobs leaked "
                "into the fingerprint"
            )
            return 1

        wall = sum(
            event["wall_seconds"]
            for event in sharded_runner.window_shard_events
        )
        print(
            f"shard smoke OK: {n_chunks} chunks, window_jobs=2, "
            f"hash {serial_hash[:16]} identical serial/sharded, "
            f"warm cache shared ({wall:.2f} s sharded wall)"
        )
        return 0
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
