#!/usr/bin/env python
"""Operate the distributed sweep service (``repro.service``).

Subcommands:

* ``serve`` — run the scheduler daemon until drained (SIGTERM, SIGINT
  or a client ``drain`` frame all trigger the same graceful path:
  stop accepting, finish in-flight work, flush stats, exit 0).
* ``submit`` — run a figure sweep through a server as a client,
  reconnecting across server restarts; exits 1 if any point failed.
* ``status`` — print one JSON status snapshot.
* ``drain`` — ask a server to drain.

Examples::

    python scripts/sweep_service.py serve --cache-dir results/.runcache \\
        --socket /tmp/sweep.sock --jobs 4 --timeout 300
    python scripts/sweep_service.py submit --socket /tmp/sweep.sock \\
        --scale 2e-5 --figures fig4,fig5
    python scripts/sweep_service.py status --socket /tmp/sweep.sock

The server and ``run_experiments.py`` share the result-store format:
point either at the same ``--cache-dir`` and each is a warm cache for
the other.  See ``docs/RESILIENCE.md`` ("Sweep service").
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.analysis.experiments import figure_requests, sweep_requests  # noqa: E402
from repro.analysis.resilience import ResilienceConfig  # noqa: E402
from repro.service import (  # noqa: E402
    ServiceConfig,
    ServiceUnavailable,
    SweepClient,
    resolve_endpoint,
    serve,
)


def _endpoint_from_args(args) -> str | tuple[str, int]:
    if args.socket:
        return args.socket
    if args.port:
        return (args.host, args.port)
    if args.cache_dir:
        return resolve_endpoint(args.cache_dir)
    raise SystemExit("need --socket, --port or --cache-dir to find a server")


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", help="unix socket path of the server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--cache-dir",
        help="find the server via its advertised endpoint file",
    )


def cmd_serve(args) -> int:
    resilience = ResilienceConfig(
        timeout=args.timeout,
        max_attempts=args.retries,
        backoff_base=args.backoff_base,
        backoff_max=args.backoff_max,
    )
    config = ServiceConfig(
        cache_dir=args.cache_dir,
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        resilience=resilience,
        lease_poll=args.lease_poll,
        drain_grace=args.drain_grace,
        name=args.name,
    )
    return asyncio.run(serve(config))


def cmd_submit(args) -> int:
    figures = None
    if args.figures:
        figures = [name.strip() for name in args.figures.split(",") if name]
        known = set(figure_requests(args.scale))
        unknown = sorted(set(figures) - known)
        if unknown:
            raise SystemExit(
                f"unknown figure(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
    sampling = (
        tuple(int(v) for v in args.sampling.split(","))
        if args.sampling
        else None
    )
    requests = sweep_requests(args.scale, sampling, figures=figures)
    client = SweepClient(_endpoint_from_args(args), name=args.name)
    try:
        outcome = client.sweep(requests, deadline=args.deadline)
    except ServiceUnavailable as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()
    sources = ", ".join(
        f"{count} {source}" for source, count in sorted(outcome.sources.items())
    )
    print(
        f"sweep of {len(requests)} points: {len(outcome.results)} ok "
        f"({sources}), {len(outcome.failed)} failed, "
        f"{outcome.reconnects} reconnects"
    )
    for fingerprint, frame in sorted(outcome.failed.items()):
        failures = frame.get("failures") or []
        last = failures[-1] if failures else {}
        print(
            f"  FAILED {fingerprint[:12]}: {last.get('error')}: "
            f"{last.get('message')}",
            file=sys.stderr,
        )
    return 1 if outcome.failed else 0


def cmd_status(args) -> int:
    client = SweepClient(_endpoint_from_args(args), name=args.name)
    try:
        print(json.dumps(client.status(), indent=2, sort_keys=True))
    finally:
        client.close()
    return 0


def cmd_drain(args) -> int:
    client = SweepClient(_endpoint_from_args(args), name=args.name)
    client.drain()
    print("drain requested")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run the scheduler daemon")
    p_serve.add_argument("--cache-dir", required=True,
                         help="shared result-store directory")
    p_serve.add_argument("--socket", help="unix socket to listen on")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = ephemeral; used when no --socket)")
    p_serve.add_argument("--jobs", type=int, default=2,
                         help="worker processes (default 2)")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-run lease/timeout seconds (default: none)")
    p_serve.add_argument("--retries", type=int, default=4,
                         help="max attempts per point (default 4)")
    p_serve.add_argument("--backoff-base", type=float, default=0.25)
    p_serve.add_argument("--backoff-max", type=float, default=8.0)
    p_serve.add_argument("--lease-poll", type=float, default=0.25,
                         help="scheduler tick seconds (default 0.25)")
    p_serve.add_argument("--drain-grace", type=float, default=600.0,
                         help="max seconds a drain waits for in-flight work")
    p_serve.add_argument("--name", default="sweep-service")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser("submit", help="run a sweep as a client")
    _add_endpoint_args(p_submit)
    p_submit.add_argument("--scale", type=float, default=2e-5)
    p_submit.add_argument("--sampling", default=None,
                          help="ff,window,warmup instruction counts")
    p_submit.add_argument("--figures", default=None,
                          help="comma-separated subset (default: all)")
    p_submit.add_argument("--deadline", type=float, default=1800.0)
    p_submit.add_argument("--name", default=f"submit-{os.getpid()}")
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser("status", help="print a status snapshot")
    _add_endpoint_args(p_status)
    p_status.add_argument("--name", default="status")
    p_status.set_defaults(func=cmd_status)

    p_drain = sub.add_parser("drain", help="ask the server to drain")
    _add_endpoint_args(p_drain)
    p_drain.add_argument("--name", default="drain")
    p_drain.set_defaults(func=cmd_drain)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
