#!/usr/bin/env python3
"""CI smoke test for the flat pipeline engine's equivalence contract.

Runs the flat engine (``SMTConfig(backend="flat")``, pure-Python kernel
unless the optional compiled module is installed) against the strongest
references the repo pins and demands *exact* agreement:

1. **bit-identity pins** — every configuration recorded in
   ``tests/golden/bitident.json`` (full-detail and sampled, 1T and 8T,
   both ISAs) is re-run under the flat engine through a cold cache and
   must reproduce the pinned canonical ``result_sha256`` — the flat
   engine may not move any result by a single bit.
2. **golden metrics** — all four golden experiments (table3, fig4,
   fig6, fig8) are recomputed with a flat-backend runner and every
   metric must equal its golden value exactly (no tolerance bands: the
   simulator is deterministic, so on a correct engine the values are
   equal, not merely close).

Exit status: 0 on success, 1 on any divergence.

Usage:  python scripts/backend_smoke.py
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis.goldens import (  # noqa: E402
    EXPERIMENTS,
    compute_golden_metrics,
    golden_path,
)
from repro.analysis.runner import (  # noqa: E402
    Runner,
    RunRequest,
    result_to_dict,
)
from repro.core.engine_flat import COMPILED  # noqa: E402

GOLDEN_DIR = os.path.join(REPO_ROOT, "tests", "golden")
BITIDENT = os.path.join(GOLDEN_DIR, "bitident.json")


def canonical_sha256(result) -> str:
    blob = json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def pin_request(entry: dict) -> RunRequest:
    request = dict(entry["request"])
    if request.get("sampling") is not None:
        request["sampling"] = tuple(request["sampling"])
    return RunRequest(**request)


def main() -> int:
    kernel = "compiled" if COMPILED else "pure-python"
    print(f"backend smoke: flat engine, {kernel} kernel")
    scratch = tempfile.mkdtemp(prefix="backend_smoke_")
    failures = 0
    try:
        with open(BITIDENT) as handle:
            document = json.load(handle)
        pins = dict(document["runs"])
        pins.update(document.get("sharded_runs", {}))

        runner = Runner(
            cache_dir=os.path.join(scratch, "pins"), backend="flat"
        )
        for name, entry in pins.items():
            result = runner.run(pin_request(entry))
            digest = canonical_sha256(result)
            if digest == entry["result_sha256"]:
                print(f"  [ok] pin {name}: {digest[:16]}")
            else:
                failures += 1
                print(
                    f"  [FAIL] pin {name}: flat engine hashed "
                    f"{digest[:16]}, pinned {entry['result_sha256'][:16]}"
                )

        checked = 0
        golden_runner = Runner(
            cache_dir=os.path.join(scratch, "golden"), backend="flat"
        )
        for experiment in EXPERIMENTS:
            with open(golden_path(experiment, GOLDEN_DIR)) as handle:
                golden = json.load(handle)
            measured = compute_golden_metrics(
                experiment, golden_runner, float(golden["scale"])
            )
            mismatched = [
                name
                for name, metric in golden["metrics"].items()
                if measured[name]["value"] != metric["value"]
            ]
            checked += len(golden["metrics"])
            if mismatched:
                failures += len(mismatched)
                for name in mismatched:
                    print(
                        f"  [FAIL] golden {experiment}.{name}: flat "
                        f"engine measured {measured[name]['value']!r}, "
                        f"golden {golden['metrics'][name]['value']!r}"
                    )
            else:
                print(
                    f"  [ok] golden {experiment}: "
                    f"{len(golden['metrics'])} metrics exact"
                )

        if failures:
            print(
                f"backend smoke: {failures} divergence(s) — the flat "
                "engine broke the bit-identity contract"
            )
            return 1
        print(
            f"backend smoke OK: {len(pins)} pins reproduced, "
            f"{checked} golden metrics exact ({kernel} kernel)"
        )
        return 0
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
