#!/usr/bin/env python3
"""Run every static verification check over the repository's artifacts.

Usage:
    python scripts/verify_tool.py            # all checks
    python scripts/verify_tool.py isa        # ISA table cross-validation
    python scripts/verify_tool.py asm        # lint examples + kernel library
    python scripts/verify_tool.py traces     # validate generated traces

Exit status is 0 when no checker reports an ERROR-severity diagnostic
(warnings are printed but do not fail the run), non-zero otherwise.
See docs/VERIFY.md for the full rule catalogue.
"""

import sys

from repro.isa import codegen
from repro.tracegen.mixes import WORKLOAD_MIXES
from repro.tracegen.program import build_program_trace
from repro.verify.asmcheck import lint_program, lint_source
from repro.verify.diagnostics import Report
from repro.verify.isacheck import check_isa
from repro.verify.tracecheck import check_trace

#: Scale for the smoke traces: small enough to validate in seconds,
#: large enough to exercise every emission path of the generator.
TRACE_SCALE = 2e-5

#: The kernel library: representative instances of every generator.
KERNEL_PROGRAMS = {
    "codegen.mom_dot_product": lambda: codegen.mom_dot_product(0x1000, 0x2000, 64),
    "codegen.mom_sad": lambda: codegen.mom_sad(0x1000, 0x2000, 128),
    "codegen.mom_saturating_add": lambda: codegen.mom_saturating_add(
        0x1000, 0x2000, 0x3000, 64
    ),
    "codegen.mmx_dot_product": lambda: codegen.mmx_dot_product(0x1000, 0x2000, 64),
    "codegen.mmx_saturating_add": lambda: codegen.mmx_saturating_add(
        0x1000, 0x2000, 0x3000, 64
    ),
}


def run_isa(report: Report) -> None:
    report.extend(check_isa())
    print("isacheck: ISA tables cross-validated")


def run_asm(report: Report) -> None:
    import examples.mom_assembly as mom_assembly

    # Assembly listings are the module's multi-line string constants
    # (DOT_PRODUCT, SAD_16x8, ...).
    sources = {
        name: value
        for name in dir(mom_assembly)
        if not name.startswith("_")
        and isinstance(value := getattr(mom_assembly, name), str)
        and "\n" in value
    }
    for name, source in sorted(sources.items()):
        report.extend(
            lint_source(source, name=f"examples/mom_assembly.py::{name}")
        )
    for name, factory in KERNEL_PROGRAMS.items():
        report.extend(lint_program(factory(), name=name))
    print(
        f"asmcheck: {len(sources)} example programs, "
        f"{len(KERNEL_PROGRAMS)} library kernels"
    )


def run_traces(report: Report) -> None:
    checked = 0
    for name in WORKLOAD_MIXES:
        for isa in ("mmx", "mom"):
            trace = build_program_trace(name, isa, scale=TRACE_SCALE)
            report.extend(check_trace(trace))
            checked += 1
    print(f"tracecheck: {checked} generated traces validated")


COMMANDS = {
    "isa": run_isa,
    "asm": run_asm,
    "traces": run_traces,
}


def main(argv: list[str]) -> int:
    if len(argv) > 1 and argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0
    selected = argv[1:] or list(COMMANDS)
    unknown = [name for name in selected if name not in COMMANDS]
    if unknown:
        print(f"unknown check(s): {', '.join(unknown)}", file=sys.stderr)
        print(__doc__, file=sys.stderr)
        return 2

    report = Report()
    for name in selected:
        COMMANDS[name](report)
    if report.diagnostics:
        print()
        print(report.render())
    print()
    print(
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
