#!/usr/bin/env python3
"""Run every static verification check over the repository's artifacts.

Usage:
    python scripts/verify_tool.py            # all checks + codelint
    python scripts/verify_tool.py isa        # ISA table cross-validation
    python scripts/verify_tool.py asm        # lint examples + kernel library
    python scripts/verify_tool.py traces     # validate generated traces
    python scripts/verify_tool.py lint       # whole-repo AST invariant linter
    python scripts/verify_tool.py cache      # integrity-scan the runcache

``lint`` options:
    --json PATH            write the machine-readable report (CI artifact)
    --baseline PATH        baseline file (default: .codelint-baseline.json)
    --update-baseline      accept all current findings into the baseline

``cache`` options (the shared result store that ``run_experiments.py``
and the sweep service both use; see docs/RESILIENCE.md):
    --cache-dir PATH       store to scan (default: results/.runcache)
    --purge-corrupt        quarantine corrupt entries and delete all
                           quarantined (``.corrupt``) files

Exit status (CI keys on these — see docs/VERIFY.md):
    0  clean
    1  artifact checks (isa/asm/traces) reported ERROR diagnostics, or
       ``cache`` found corrupt entries (without --purge-corrupt)
    2  usage error
    3  codelint reported non-baselined diagnostics (and artifact checks,
       if also selected, were clean)
"""

import json
import os
import sys

from repro.isa import codegen
from repro.tracegen.mixes import WORKLOAD_MIXES
from repro.tracegen.program import build_program_trace
from repro.verify.asmcheck import lint_program, lint_source
from repro.verify.diagnostics import Report
from repro.verify.isacheck import check_isa
from repro.verify.tracecheck import check_trace
from repro.verify import codelint

#: Scale for the smoke traces: small enough to validate in seconds,
#: large enough to exercise every emission path of the generator.
TRACE_SCALE = 2e-5

#: The kernel library: representative instances of every generator.
KERNEL_PROGRAMS = {
    "codegen.mom_dot_product": lambda: codegen.mom_dot_product(0x1000, 0x2000, 64),
    "codegen.mom_sad": lambda: codegen.mom_sad(0x1000, 0x2000, 128),
    "codegen.mom_saturating_add": lambda: codegen.mom_saturating_add(
        0x1000, 0x2000, 0x3000, 64
    ),
    "codegen.mmx_dot_product": lambda: codegen.mmx_dot_product(0x1000, 0x2000, 64),
    "codegen.mmx_saturating_add": lambda: codegen.mmx_saturating_add(
        0x1000, 0x2000, 0x3000, 64
    ),
}


def run_isa(report: Report) -> None:
    report.extend(check_isa())
    print("isacheck: ISA tables cross-validated")


def run_asm(report: Report) -> None:
    import examples.mom_assembly as mom_assembly

    # Assembly listings are the module's multi-line string constants
    # (DOT_PRODUCT, SAD_16x8, ...).
    sources = {
        name: value
        for name in dir(mom_assembly)
        if not name.startswith("_")
        and isinstance(value := getattr(mom_assembly, name), str)
        and "\n" in value
    }
    for name, source in sorted(sources.items()):
        report.extend(
            lint_source(source, name=f"examples/mom_assembly.py::{name}")
        )
    for name, factory in KERNEL_PROGRAMS.items():
        report.extend(lint_program(factory(), name=name))
    print(
        f"asmcheck: {len(sources)} example programs, "
        f"{len(KERNEL_PROGRAMS)} library kernels"
    )


def run_traces(report: Report) -> None:
    checked = 0
    for name in WORKLOAD_MIXES:
        for isa in ("mmx", "mom"):
            trace = build_program_trace(name, isa, scale=TRACE_SCALE)
            report.extend(check_trace(trace))
            checked += 1
    print(f"tracecheck: {checked} generated traces validated")


def run_lint(
    json_path: str | None = None,
    baseline_path: str | None = None,
    update_baseline: bool = False,
) -> bool:
    """Run the repo-wide AST linter; returns True when clean."""
    root = codelint.repo_root(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = baseline_path or os.path.join(
        root, codelint.BASELINE_NAME
    )
    diagnostics, files = codelint.lint_repo(root)
    if update_baseline:
        codelint.save_baseline(baseline_path, diagnostics, files)
        print(
            f"codelint: baseline rewritten with {len(diagnostics)} "
            f"finding(s) -> {os.path.relpath(baseline_path, root)}"
        )
        return True
    entries = codelint.load_baseline(baseline_path)
    new, baselined, stale = codelint.apply_baseline(
        diagnostics, files, entries
    )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(
                codelint.json_report(new, files, baselined, stale),
                handle, indent=2,
            )
            handle.write("\n")
    print(
        f"codelint: {len(files)} files, {len(new)} new finding(s), "
        f"{len(baselined)} baselined, {len(stale)} stale baseline entr"
        f"{'y' if len(stale) == 1 else 'ies'}"
    )
    if new:
        print()
        print(codelint.render_text(new))
    if stale:
        print(
            "codelint: stale baseline entries (fixed findings) — "
            "refresh with --update-baseline:"
        )
        for entry in stale:
            print(f"  {entry['path']}: [{entry['code']}] {entry['content']}")
    return not new


def run_cache(cache_dir: str | None = None, purge: bool = False) -> bool:
    """Integrity-scan (and optionally purge) a result store.

    Returns True when the store is clean: no corrupt entries, or every
    corrupt entry was just purged.  Legacy and already-quarantined
    files never fail the scan — they are inert (skipped by every
    reader) and listed for the operator.
    """
    import warnings

    from repro.analysis.runner import (
        CacheIntegrityWarning,
        quarantine_entry,
        verify_cache,
    )

    if cache_dir is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        cache_dir = os.path.join(root, "results", ".runcache")
    if not os.path.isdir(cache_dir):
        print(f"cache: no cache directory at {cache_dir} (nothing to scan)")
        return True
    scan = verify_cache(cache_dir)
    print(
        f"cache: {scan['ok']} ok, {len(scan['corrupt'])} corrupt, "
        f"{len(scan['legacy'])} legacy, {len(scan['quarantined'])} "
        f"quarantined in {cache_dir}"
    )
    for path in scan["legacy"]:
        print(f"  LEGACY      {path} (pre-checksum format; ignored)")
    for path in scan["quarantined"]:
        print(f"  QUARANTINED {path}")
    for path in scan["corrupt"]:
        print(f"  CORRUPT     {path}")
    if not purge:
        if scan["corrupt"]:
            print(
                "cache: corrupt entries found — rerun with "
                "--purge-corrupt to quarantine and remove them "
                "(results are recomputed on next use)"
            )
        return not scan["corrupt"]
    removed = 0
    with warnings.catch_warnings():
        # The scan output above already lists every victim; the
        # per-entry "recomputing" warning is runner-context noise here.
        warnings.simplefilter("ignore", CacheIntegrityWarning)
        for path in scan["corrupt"]:
            quarantine_entry(path)
    for path in scan["quarantined"] + [
        f"{path}.corrupt" for path in scan["corrupt"]
    ]:
        try:
            os.unlink(path)
            removed += 1
        except OSError:
            pass
    print(
        f"cache: purged {removed} quarantined "
        f"entr{'y' if removed == 1 else 'ies'}"
    )
    return True


COMMANDS = {
    "isa": run_isa,
    "asm": run_asm,
    "traces": run_traces,
}


def main(argv: list[str]) -> int:
    args = argv[1:]
    if args and args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    json_path = None
    baseline_path = None
    update_baseline = False
    cache_dir = None
    purge_corrupt = False
    selected = []
    it = iter(args)
    for arg in it:
        if arg == "--json":
            json_path = next(it, None)
            if json_path is None:
                print("--json needs a path", file=sys.stderr)
                return 2
        elif arg == "--baseline":
            baseline_path = next(it, None)
            if baseline_path is None:
                print("--baseline needs a path", file=sys.stderr)
                return 2
        elif arg == "--update-baseline":
            update_baseline = True
        elif arg == "--cache-dir":
            cache_dir = next(it, None)
            if cache_dir is None:
                print("--cache-dir needs a path", file=sys.stderr)
                return 2
        elif arg == "--purge-corrupt":
            purge_corrupt = True
        elif arg.startswith("-"):
            print(f"unknown option {arg}", file=sys.stderr)
            print(__doc__, file=sys.stderr)
            return 2
        else:
            selected.append(arg)
    known = set(COMMANDS) | {"lint", "cache"}
    unknown = [name for name in selected if name not in known]
    if unknown:
        print(f"unknown check(s): {', '.join(unknown)}", file=sys.stderr)
        print(__doc__, file=sys.stderr)
        return 2
    if not selected:
        # ``cache`` stays opt-in: the default selection must not depend
        # on what experiments have (or have not) been run locally.
        selected = list(COMMANDS) + ["lint"]

    report = Report()
    lint_clean = True
    cache_clean = True
    for name in selected:
        if name == "lint":
            lint_clean = run_lint(json_path, baseline_path, update_baseline)
        elif name == "cache":
            cache_clean = run_cache(cache_dir, purge_corrupt)
        else:
            COMMANDS[name](report)
    if report.diagnostics:
        print()
        print(report.render())
    print()
    print(
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
        + ("" if lint_clean else " + codelint findings")
        + ("" if cache_clean else " + corrupt cache entries")
    )
    if not report.ok or not cache_clean:
        return 1
    if not lint_clean:
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
