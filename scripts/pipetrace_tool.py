#!/usr/bin/env python3
"""Pipeline-trace tooling: record an observed run, export, inspect.

Runs one simulation point with full observability and renders the
per-instruction pipeline event stream:

* ``chrome`` — Trace Event ("JSON Object Format") output, loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev (one process per
  hardware context, one track per instruction, memory events as global
  instants);
* ``ascii`` — Konata-style text diagram (``F``etch ``D``ispatch
  ``I``ssue e``X``ecute-complete ``C``ommit), which round-trips through
  ``repro.obs.trace.parse_ascii``;
* ``summary`` — metrics tree + per-thread stall-cause breakdown only.

Usage:
    python scripts/pipetrace_tool.py run [--isa mom] [--threads 8]
        [--memory conventional] [--policy rr] [--scale 2e-5]
        [--completions 1] [--format chrome|ascii|summary]
        [--first N] [--output PATH]
    python scripts/pipetrace_tool.py check TRACE.json

``check`` validates an existing Chrome-trace JSON file against the
trace-event schema subset this tool emits (exit 1 on violation).

Observed runs never touch the result cache: observability changes no
simulated outcome (``tests/test_obs_bitident.py`` proves it), but cache
entries must stay byte-stable for unobserved sweeps.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.runner import memory_factory, workload_traces
from repro.core.fetch import FetchPolicy
from repro.core.params import SMTConfig
from repro.core.smt import SMTProcessor
from repro.obs import (
    PipelineObserver,
    chrome_trace,
    render_ascii,
    validate_chrome_trace,
    validate_records,
)


def record_run(
    isa: str = "mom",
    n_threads: int = 8,
    memory: str = "conventional",
    policy: str = "rr",
    scale: float = 2e-5,
    completions: int = 1,
) -> tuple[PipelineObserver, object]:
    """Simulate one observed point; returns (observer, RunResult)."""
    observer = PipelineObserver()
    traces = workload_traces(isa, scale, 0)
    processor = SMTProcessor(
        SMTConfig(isa=isa, n_threads=n_threads, observe=observer),
        memory_factory(memory)(),
        traces,
        fetch_policy=FetchPolicy(policy),
        completions_target=completions,
        warmup_fraction=0.0,
    )
    result = processor.run()
    return observer, result


def _cmd_run(args: argparse.Namespace) -> int:
    observer, result = record_run(
        args.isa, args.threads, args.memory, args.policy, args.scale,
        args.completions,
    )
    validate_records(observer.records)
    records = observer.records
    mem_events = observer.mem_events
    if args.first:
        records = records[: args.first]
        horizon = records[-1].commit or records[-1].fetch if records else 0
        mem_events = [e for e in mem_events if e[0] <= horizon]
    if args.format == "chrome":
        document = chrome_trace(
            records, mem_events,
            label=f"{args.isa}/{args.threads}T/{args.memory}/{args.policy}",
        )
        validate_chrome_trace(document)
        payload = json.dumps(document, indent=1)
    elif args.format == "ascii":
        payload = render_ascii(records)
    else:
        payload = json.dumps(
            {
                "run": result.summary(),
                "observability": result.observability,
                "stall_breakdown": observer.stall_breakdown(),
            },
            indent=2,
        )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload)
        print(
            f"wrote {len(records)} instruction records "
            f"({len(mem_events)} memory events) to {args.output}",
            file=sys.stderr,
        )
    else:
        print(payload)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    try:
        with open(args.trace) as handle:
            document = json.load(handle)
        count = validate_chrome_trace(document)
    except (OSError, ValueError) as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    print(f"{args.trace}: {count} events, schema OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="simulate and export a trace")
    run.add_argument("--isa", default="mom", choices=["mmx", "mom"])
    run.add_argument("--threads", type=int, default=8)
    run.add_argument(
        "--memory", default="conventional",
        choices=["perfect", "conventional", "decoupled"],
    )
    run.add_argument("--policy", default="rr")
    run.add_argument("--scale", type=float, default=2e-5)
    run.add_argument("--completions", type=int, default=1)
    run.add_argument(
        "--format", default="chrome", choices=["chrome", "ascii", "summary"]
    )
    run.add_argument(
        "--first", type=int, default=0,
        help="keep only the first N instruction records",
    )
    run.add_argument("--output", default=None)
    run.set_defaults(func=_cmd_run)

    check = commands.add_parser("check", help="validate a Chrome-trace file")
    check.add_argument("trace")
    check.set_defaults(func=_cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
