#!/usr/bin/env python3
"""Chaos smoke test: the sweep must survive injected faults, bit-identically.

Runs ``scripts/run_experiments.py`` four times against scratch cache
directories and asserts the resilience layer's headline guarantees:

1. **baseline** — a fault-free cold sweep records the reference report
   (object engine).
2. **chaos cold** — the same sweep under deterministic fault injection
   (default: 20 % worker crashes, 10 % hangs killed by the ``--timeout``
   watchdog, 25 % corrupted cache writes), run with ``--backend flat``,
   must complete unattended with a bit-identical report, and its
   provenance must show faults were actually handled
   (retries/timeouts/pool restarts > 0).  Matching the object-engine
   baseline byte-for-byte also proves the flat engine's bit-identity
   under faults.
3. **chaos warm** — rerunning on the chaos cache with injection off
   (and the default object engine) must quarantine the corrupt entries,
   recompute only those points — served alongside the flat engine's
   surviving entries, exercising the shared cross-backend cache slot —
   match the reference report again, and leave a cache with zero
   corrupt entries.
4. **SIGKILL resume** — a fresh sweep is SIGKILLed mid-flight; the rerun
   must serve every already-completed point from the cache (verified
   via the run-provenance counters), resume from the figure checkpoint,
   match the reference report, and leave no corrupt entries.

Reports are compared after stripping the provenance lines that
legitimately differ between runs (wall time, cached/simulated split,
hot-loop timing); every table byte must match.

Exit status: 0 when all phases pass, 1 on any violated guarantee.

Usage:  python scripts/chaos_smoke.py [--scale 2e-5] [--jobs 2]
            [--timeout 30] [--crash 0.2] [--hang 0.1] [--corrupt 0.25]
            [--seed 7] [--kill-after N] [--keep]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis.runner import verify_cache  # noqa: E402
from repro.verify.faultinject import ENV_VAR, FaultPlan  # noqa: E402

RUN_EXPERIMENTS = os.path.join(REPO_ROOT, "scripts", "run_experiments.py")
BENCH_PATH = os.path.join(REPO_ROOT, "results", "BENCH_experiments.json")

#: Report lines that legitimately vary between runs of the same sweep.
_VOLATILE_PREFIXES = ("runs:", "total wall time", "hot loop")


def canonical_report(path: str) -> str:
    """The report with run-to-run provenance lines stripped."""
    lines = []
    with open(path) as handle:
        for line in handle:
            if line.startswith(_VOLATILE_PREFIXES):
                continue
            lines.append(line)
    return "".join(lines)


def base_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")) if p
    )
    env.pop(ENV_VAR, None)
    return env


def sweep_command(args, cache_dir: str, output: str, extra=()) -> list[str]:
    return [
        sys.executable, RUN_EXPERIMENTS,
        "--scale", repr(args.scale),
        "--jobs", str(args.jobs),
        "--cache-dir", cache_dir,
        "--output", output,
        "--no-hotloop",
        *extra,
    ]


def run_sweep(args, cache_dir: str, output: str, env=None, extra=()) -> dict:
    """Run one sweep to completion; returns the BENCH provenance dict."""
    command = sweep_command(args, cache_dir, output, extra)
    proc = subprocess.run(command, env=env or base_env(), cwd=REPO_ROOT)
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: sweep exited with status {proc.returncode}: "
            f"{' '.join(command)}"
        )
    with open(BENCH_PATH) as handle:
        return json.load(handle)


def count_run_entries(cache_dir: str) -> int:
    """Completed simulation points on disk (not checkpoint/artifacts)."""
    if not os.path.isdir(cache_dir):
        return 0
    return sum(
        1
        for name in os.listdir(cache_dir)
        if name.endswith(".json")
        and not name.startswith("artifact-")
        and name != "sweep-checkpoint.json"
    )


def check(condition: bool, message: str, failures: list) -> None:
    tag = "ok" if condition else "FAIL"
    print(f"  [{tag}] {message}")
    if not condition:
        failures.append(message)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=2e-5)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-run watchdog budget for the chaos phase (default 30)",
    )
    parser.add_argument("--crash", type=float, default=0.2)
    parser.add_argument("--hang", type=float, default=0.1)
    parser.add_argument("--corrupt", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--kill-after", type=int, default=12, metavar="N",
        help="SIGKILL the resume-phase sweep once N points are cached "
        "(default 12 — past the first figure, so the checkpoint "
        "resume path is exercised too)",
    )
    parser.add_argument(
        "--keep", action="store_true",
        help="keep the scratch directory for inspection",
    )
    args = parser.parse_args(argv)

    scratch = tempfile.mkdtemp(prefix="chaos-smoke-")
    failures: list[str] = []
    try:
        baseline_cache = os.path.join(scratch, "cache-baseline")
        chaos_cache = os.path.join(scratch, "cache-chaos")
        resume_cache = os.path.join(scratch, "cache-resume")
        baseline_report = os.path.join(scratch, "baseline.txt")
        chaos_report = os.path.join(scratch, "chaos.txt")
        warm_report = os.path.join(scratch, "chaos-warm.txt")
        resume_report = os.path.join(scratch, "resume.txt")

        print(f"== phase 1: fault-free baseline (scale {args.scale:g}) ==")
        run_sweep(args, baseline_cache, baseline_report)
        reference = canonical_report(baseline_report)

        print(
            "\n== phase 2: cold sweep under fault injection "
            "(flat engine) =="
        )
        plan = FaultPlan(
            seed=args.seed,
            crash_fraction=args.crash,
            hang_fraction=args.hang,
            corrupt_fraction=args.corrupt,
            hang_seconds=max(4 * args.timeout, 120.0),
        )
        chaos_env = base_env()
        chaos_env[ENV_VAR] = plan.to_json()
        bench = run_sweep(
            args, chaos_cache, chaos_report,
            env=chaos_env,
            extra=("--timeout", repr(args.timeout), "--backend", "flat"),
        )
        stats = bench["runner"]
        handled = (
            stats["retries"] + stats["timeouts"] + stats["pool_breaks"]
        )
        print(
            f"  chaos provenance: {stats['retries']} retries, "
            f"{stats['timeouts']} timeouts, {stats['pool_breaks']} pool "
            f"restarts, {stats['degraded']} degradations"
        )
        check(
            canonical_report(chaos_report) == reference,
            "chaos flat-engine report is bit-identical to the fault-free "
            "object-engine report",
            failures,
        )
        check(
            handled > 0,
            "injected faults were actually handled (retries+timeouts+breaks > 0)",
            failures,
        )
        check(
            stats["failed_points"] == 0,
            "no point failed permanently under injection",
            failures,
        )

        print("\n== phase 3: warm rerun quarantines injected corruption ==")
        bench = run_sweep(args, chaos_cache, warm_report)
        stats = bench["runner"]
        print(
            f"  warm provenance: {stats['disk_hits']} disk hits, "
            f"{stats['simulated']} resimulated, "
            f"{stats['corrupt_quarantined']} quarantined"
        )
        check(
            canonical_report(warm_report) == reference,
            "warm-rerun report is bit-identical to the fault-free report",
            failures,
        )
        check(
            stats["corrupt_quarantined"] > 0,
            "corrupted cache entries were quarantined (not silently eaten)",
            failures,
        )
        check(
            stats["corrupt_quarantined"] == stats["simulated"],
            "exactly the quarantined entries were resimulated",
            failures,
        )
        scan = verify_cache(chaos_cache)
        check(
            not scan["corrupt"],
            f"post-quarantine cache holds no corrupt entries "
            f"({scan['ok']} valid, {len(scan['quarantined'])} quarantined files)",
            failures,
        )

        print("\n== phase 4: SIGKILL mid-sweep, then resume ==")
        command = sweep_command(args, resume_cache, resume_report)
        # Own session so the SIGKILL can take out the whole process
        # group: killing only the parent leaves its pool workers as
        # orphans that hold inherited pipes (and CI logs) open forever.
        child = subprocess.Popen(
            command, env=base_env(), cwd=REPO_ROOT, start_new_session=True
        )
        deadline = time.monotonic() + 600
        while (
            count_run_entries(resume_cache) < args.kill_after
            and child.poll() is None
            and time.monotonic() < deadline
        ):
            time.sleep(0.1)
        killed = child.poll() is None
        if killed:
            os.killpg(child.pid, signal.SIGKILL)
            child.wait()
            print(f"  killed sweep (pgid {child.pid}) with SIGKILL")
        else:
            print("  note: sweep finished before the kill threshold")
        survivors = count_run_entries(resume_cache)
        print(f"  {survivors} completed points survive on disk")
        scan = verify_cache(resume_cache)
        check(
            not scan["corrupt"],
            "no torn cache entries after SIGKILL (atomic writes)",
            failures,
        )
        bench = run_sweep(args, resume_cache, resume_report)
        stats = bench["runner"]
        print(
            f"  resume provenance: {stats['disk_hits']} disk hits, "
            f"{stats['simulated']} simulated, resumed figures: "
            f"{bench['resumed_figures']}"
        )
        check(
            canonical_report(resume_report) == reference,
            "resumed-sweep report is bit-identical to the fault-free report",
            failures,
        )
        check(
            stats["disk_hits"] >= survivors,
            f"every pre-kill point was served from cache "
            f"(disk_hits {stats['disk_hits']} >= {survivors})",
            failures,
        )
        check(
            stats["corrupt_quarantined"] == 0,
            "resume quarantined nothing (SIGKILL left no corrupt entries)",
            failures,
        )
        check(
            not killed
            or bool(bench["resumed_figures"])
            or survivors < args.kill_after,
            "figure checkpoint was picked up by the resumed sweep",
            failures,
        )

        print()
        if failures:
            print(f"chaos smoke: {len(failures)} guarantee(s) violated:")
            for message in failures:
                print(f"  - {message}")
            return 1
        print("chaos smoke: all guarantees held")
        return 0
    finally:
        if args.keep:
            print(f"scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
