#!/usr/bin/env python3
"""CI smoke test for the media-server scenario's cache discipline.

Runs a small serving grid — both ISAs on the CMP×SMT design point under
all three admission policies — through the cached runner and asserts the
serving contract (docs/SERVING.md):

1. a cold parallel sweep (``jobs=2``) simulates every point exactly
   once,
2. a warm rerun against the same cache directory simulates nothing and
   reproduces every result hash bit for bit,
3. a cold *serial* sweep in a fresh cache produces the identical
   hashes — neither process fan-out nor the cache layer may move a
   serving metric by a single bit,
4. the three policies produce at least two distinct results per ISA
   (the grid genuinely exercises placement, not a degenerate point).

Exit status: 0 on success, 1 on any violated invariant.

Usage:  python scripts/serving_smoke.py
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis.runner import Runner  # noqa: E402
from repro.analysis.serving import (  # noqa: E402
    ServingRequest,
    run_serving_batch,
)

#: Smoke scale — the golden scale, sub-minute for the whole grid.
SCALE = 2e-5

REQUESTS = [
    ServingRequest(
        isa=isa, arch="cmp", cores=4, contexts=2,
        policy=policy, n_streams=8, scale=SCALE,
    )
    for isa in ("mmx", "mom")
    for policy in ("rr", "least", "affinity")
]


def canonical_sha256(result: dict) -> str:
    blob = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def sweep(cache_dir: str | None, jobs: int) -> tuple[dict, Runner]:
    runner = Runner(jobs=jobs, cache_dir=cache_dir)
    results = run_serving_batch(REQUESTS, runner)
    hashes = {
        f"{request.isa}/{request.policy}": canonical_sha256(results[request])
        for request in REQUESTS
    }
    return hashes, runner


def main() -> int:
    failures: list[str] = []
    scratch = tempfile.mkdtemp(prefix="serving-smoke-")
    try:
        warm_dir = os.path.join(scratch, "parallel-cache")
        cold_hashes, cold_runner = sweep(warm_dir, jobs=2)
        if cold_runner.stats.simulated != len(REQUESTS):
            failures.append(
                f"cold sweep simulated {cold_runner.stats.simulated} "
                f"points, expected {len(REQUESTS)}"
            )

        warm_hashes, warm_runner = sweep(warm_dir, jobs=2)
        if warm_runner.stats.simulated != 0:
            failures.append(
                f"warm rerun simulated {warm_runner.stats.simulated} "
                "points, expected 0 (every point must come from the cache)"
            )
        if warm_runner.stats.disk_hits != len(REQUESTS):
            failures.append(
                f"warm rerun took {warm_runner.stats.disk_hits} disk "
                f"hits, expected {len(REQUESTS)}"
            )
        if warm_hashes != cold_hashes:
            failures.append("warm rerun hashes diverged from the cold sweep")

        serial_hashes, serial_runner = sweep(
            os.path.join(scratch, "serial-cache"), jobs=1
        )
        if serial_runner.stats.simulated != len(REQUESTS):
            failures.append(
                f"serial sweep simulated {serial_runner.stats.simulated} "
                f"points, expected {len(REQUESTS)}"
            )
        if serial_hashes != cold_hashes:
            failures.append(
                "serial sweep hashes diverged from the parallel sweep"
            )

        for isa in ("mmx", "mom"):
            distinct = {
                value
                for key, value in cold_hashes.items()
                if key.startswith(f"{isa}/")
            }
            if len(distinct) < 2:
                failures.append(
                    f"{isa}: all three admission policies produced one "
                    "result — the smoke grid no longer exercises placement"
                )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    for name in sorted(cold_hashes):
        print(f"  {name:14s} {cold_hashes[name][:16]}")
    if failures:
        for failure in failures:
            print(f"serving smoke FAILED: {failure}")
        return 1
    print(
        f"serving smoke OK: {len(REQUESTS)} points, cold parallel == warm "
        "== cold serial, policies distinct"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
