#!/usr/bin/env python3
"""Regenerate (or check) the golden-run regression baselines.

``tests/golden/{table3,fig4,fig6,fig8}.json`` lock each experiment's
headline metrics at smoke scale (2e-5) with tolerance bands;
``tests/test_golden_runs.py`` re-measures them on every run of the
suite.  After a deliberate modelling change moves a headline number,
regenerate with:

    PYTHONPATH=src python scripts/update_goldens.py

``--check`` recomputes and diffs without writing (exit 1 when any
metric leaves its band — same verdict the test suite gives, usable from
a shell loop or CI without pytest).  ``--experiments`` narrows the set;
``--jobs`` fans cache-missing simulations out over worker processes.

The goldens are measurements, not aspirations: the script records what
the current tree produces.  Review the printed paper-vs-measured lines
before committing a regeneration — a golden that drifts away from the
paper's targets is a modelling regression even when every test passes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis.goldens import (
    EXPERIMENTS,
    GOLDEN_SCALE,
    build_golden_document,
    check_experiment,
    compare_metrics,
    golden_path,
)
from repro.analysis.runner import Runner

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_GOLDEN_DIR = os.path.join(REPO_ROOT, "tests", "golden")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--experiments", nargs="+", default=list(EXPERIMENTS),
        choices=EXPERIMENTS, metavar="EXP",
        help=f"subset to regenerate (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--golden-dir", default=DEFAULT_GOLDEN_DIR,
        help="where the golden JSON files live",
    )
    parser.add_argument(
        "--scale", type=float, default=GOLDEN_SCALE,
        help="trace fidelity to record at (default: %(default)g)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for cache-missing simulations",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="recompute and diff against the existing goldens; write nothing",
    )
    args = parser.parse_args(argv)

    runner = Runner(jobs=args.jobs)
    status = 0
    for experiment in args.experiments:
        if args.check:
            failures, report = check_experiment(
                experiment, args.golden_dir, runner
            )
            print(report)
            print()
            if failures:
                status = 1
            continue
        document = build_golden_document(experiment, runner, args.scale)
        path = golden_path(experiment, args.golden_dir)
        previous = None
        if os.path.exists(path):
            with open(path) as handle:
                previous = json.load(handle)["metrics"]
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        changed, report = (
            compare_metrics(previous, document["metrics"])
            if previous is not None
            else ([], None)
        )
        print(
            f"wrote {path}: {len(document['metrics'])} metrics"
            + (f", {len(changed)} moved outside their previous band"
               if previous is not None else " (new)")
        )
        if changed and report:
            print(report)
            print()
    stats = runner.stats
    print(
        f"runner: {stats.simulated} simulated, {stats.memo_hits} memoized, "
        f"{stats.sim_seconds:.1f}s simulating",
        file=sys.stderr,
    )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
