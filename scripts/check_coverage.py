#!/usr/bin/env python3
"""Coverage gate: the observability layer stays >= 90 % line-covered.

Runs the tier-1 suite under ``coverage.py`` and enforces three floors:

* ``src/repro/obs/`` — 90 %.  The observability layer is pure
  measurement code: a hook nobody exercises is a hook that silently
  breaks, so its floor is set at the package's actual test saturation.
* ``src/repro/serving/`` — 90 %.  The media-server scenario layer
  (admission, metering, stream scheduling) is golden-pinned end to end;
  an unexercised branch there is a silent hole in the pins.
* the whole ``src/repro`` tree — a conservative ratchet floor.  Raise
  it (never lower it) as coverage improves; a PR that drops repo-wide
  coverage below the ratchet fails here rather than eroding quietly.

When ``coverage.py`` is not importable the gate SKIPS with exit 0 and a
notice: the simulation container deliberately ships no third-party
measurement dependencies (see docs/TESTING.md).  CI installs coverage
explicitly, so the gate is always enforced where it matters, and the
HTML report (``--html``) is uploaded as a build artifact there.

Usage:
    PYTHONPATH=src python scripts/check_coverage.py
        [--obs-floor 90] [--serving-floor 90] [--total-floor 75]
        [--html htmlcov]
        [--reuse-data]   # gate an existing .coverage file without rerunning
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OBS_PREFIX = os.path.join("src", "repro", "obs") + os.sep
SERVING_PREFIX = os.path.join("src", "repro", "serving") + os.sep
JSON_PATH = os.path.join(REPO_ROOT, "results", "coverage.json")


def coverage_available() -> bool:
    try:
        import coverage  # noqa: F401
    except ImportError:
        return False
    return True


def run(command: list[str]) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        path
        for path in (
            os.path.join(REPO_ROOT, "src"),
            os.environ.get("PYTHONPATH"),
        )
        if path
    )
    return subprocess.run(command, cwd=REPO_ROOT, env=env).returncode


def aggregate(files: dict, predicate) -> tuple[int, int]:
    """(covered, statements) over report files matching ``predicate``."""
    covered = statements = 0
    for path, entry in files.items():
        if predicate(path.replace("/", os.sep)):
            covered += entry["summary"]["covered_lines"]
            statements += entry["summary"]["num_statements"]
    return covered, statements


def percent(covered: int, statements: int) -> float:
    return 100.0 * covered / statements if statements else 100.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--obs-floor", type=float, default=90.0)
    parser.add_argument("--serving-floor", type=float, default=90.0)
    parser.add_argument(
        "--total-floor", type=float, default=75.0,
        help="repo-wide ratchet floor; raise as coverage improves",
    )
    parser.add_argument(
        "--html", default=None, metavar="DIR",
        help="also write an HTML report (CI uploads it as an artifact)",
    )
    parser.add_argument(
        "--reuse-data", action="store_true",
        help="gate an existing .coverage file instead of rerunning pytest",
    )
    args = parser.parse_args(argv)

    if not coverage_available():
        print(
            "coverage gate SKIPPED: coverage.py is not installed in this "
            "environment (the simulation container ships none; CI "
            "installs it — see docs/TESTING.md)."
        )
        return 0

    if not args.reuse_data:
        status = run(
            [
                sys.executable, "-m", "coverage", "run",
                "--source", "src/repro",
                "-m", "pytest", "-x", "-q",
            ]
        )
        if status != 0:
            print(f"coverage gate FAILED: pytest exited {status}")
            return 1

    os.makedirs(os.path.dirname(JSON_PATH), exist_ok=True)
    if run(
        [sys.executable, "-m", "coverage", "json", "-q", "-o", JSON_PATH]
    ) != 0:
        print("coverage gate FAILED: could not export coverage.json")
        return 1
    if args.html and run(
        [sys.executable, "-m", "coverage", "html", "-q", "-d", args.html]
    ) != 0:
        print("coverage gate FAILED: could not write the HTML report")
        return 1

    with open(JSON_PATH) as handle:
        report = json.load(handle)
    files = report["files"]
    obs = percent(*aggregate(files, lambda p: OBS_PREFIX in p))
    serving = percent(*aggregate(files, lambda p: SERVING_PREFIX in p))
    total = percent(*aggregate(files, lambda p: True))

    print(f"src/repro/obs/      {obs:6.2f}%  (floor {args.obs_floor:.0f}%)")
    print(
        f"src/repro/serving/  {serving:6.2f}%  "
        f"(floor {args.serving_floor:.0f}%)"
    )
    print(f"src/repro           {total:6.2f}%  (floor {args.total_floor:.0f}%)")
    if args.html:
        print(f"HTML report in {args.html}/")

    failures = []
    if obs < args.obs_floor:
        failures.append(
            f"observability coverage {obs:.2f}% is below the "
            f"{args.obs_floor:.0f}% floor"
        )
    if serving < args.serving_floor:
        failures.append(
            f"serving coverage {serving:.2f}% is below the "
            f"{args.serving_floor:.0f}% floor"
        )
    if total < args.total_floor:
        failures.append(
            f"repo-wide coverage {total:.2f}% regressed below the "
            f"{args.total_floor:.0f}% ratchet floor"
        )
    if failures:
        for failure in failures:
            print(f"coverage gate FAILED: {failure}")
        return 1
    print("coverage gate OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
