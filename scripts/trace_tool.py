#!/usr/bin/env python3
"""Command-line trace tooling: generate, inspect, diff.

Usage:
    python scripts/trace_tool.py generate mpeg2enc mom out.trace [scale]
    python scripts/trace_tool.py info out.trace
    python scripts/trace_tool.py breakdown mpeg2enc [scale]
    python scripts/trace_tool.py head out.trace [n]
"""

import sys

from repro.analysis.reporting import format_table
from repro.tracegen.program import DEFAULT_SCALE, build_program_trace
from repro.tracegen.serialize import load_trace, save_trace


def cmd_generate(args) -> None:
    name, isa, path = args[0], args[1], args[2]
    scale = float(args[3]) if len(args) > 3 else DEFAULT_SCALE
    trace = build_program_trace(name, isa, scale=scale)
    save_trace(trace, path)
    print(f"wrote {len(trace)} instructions "
          f"({trace.expanded_length} expanded) to {path}")


def cmd_info(args) -> None:
    trace = load_trace(args[0])
    counts = trace.class_counts()
    fractions = trace.class_fractions()
    print(f"name            {trace.name}")
    print(f"isa             {trace.isa}")
    print(f"instructions    {len(trace)}")
    print(f"expanded        {trace.expanded_length}")
    print(f"mmx equivalent  {trace.mmx_equivalent}")
    for key in ("int", "fp", "simd", "mem"):
        print(f"  {key:4s} {counts[key]:8d}  ({fractions[key]:.1%})")
    branches = [i for i in trace.instructions if i.is_branch]
    taken = sum(1 for b in branches if b.taken)
    print(f"branches        {len(branches)} ({taken / max(len(branches), 1):.0%} taken)")
    streams = [i for i in trace.instructions if i.stream_length > 1]
    if streams:
        mean_sl = sum(i.stream_length for i in streams) / len(streams)
        print(f"stream insts    {len(streams)} (mean length {mean_sl:.1f})")


def cmd_breakdown(args) -> None:
    name = args[0]
    scale = float(args[1]) if len(args) > 1 else DEFAULT_SCALE
    rows = []
    for isa in ("mmx", "mom"):
        trace = build_program_trace(name, isa, scale=scale)
        fractions = trace.class_fractions()
        rows.append(
            [
                isa.upper(),
                trace.expanded_length,
                f"{fractions['int']:.0%}",
                f"{fractions['fp']:.0%}",
                f"{fractions['simd']:.0%}",
                f"{fractions['mem']:.0%}",
            ]
        )
    print(format_table(
        ["isa", "expanded", "int", "fp", "simd", "mem"],
        rows,
        title=f"{name} @ scale {scale:g}",
    ))


def cmd_head(args) -> None:
    trace = load_trace(args[0])
    n = int(args[1]) if len(args) > 1 else 20
    for inst in trace.instructions[:n]:
        print(inst)


COMMANDS = {
    "generate": cmd_generate,
    "info": cmd_info,
    "breakdown": cmd_breakdown,
    "head": cmd_head,
}


def main() -> None:
    if len(sys.argv) < 2 or sys.argv[1] not in COMMANDS:
        print(__doc__)
        sys.exit(1)
    try:
        COMMANDS[sys.argv[1]](sys.argv[2:])
    except BrokenPipeError:
        # Output piped into head/less that closed early — not an error.
        sys.exit(0)


if __name__ == "__main__":
    main()
