#!/usr/bin/env python3
"""Service smoke test: the sweep service must survive chaos, bit-identically.

Exercises ``repro.service`` end to end, the way ``chaos_smoke.py``
exercises the in-process runner:

1. **serial baseline** — ``run_experiments.py --jobs 1`` records the
   reference report from a cold cache.
2. **chaos service sweep** — a ``sweep_service.py serve`` daemon runs
   under deterministic fault injection (worker crashes, hangs killed by
   the lease watchdog, injected client disconnects) while **two
   concurrent clients** submit the full overlapping figure sweep.
   Mid-sweep the server is SIGKILLed and restarted on the same socket;
   the clients ride out the restart by reconnecting and resubmitting
   their outstanding points.  Both sweeps must converge with zero
   failed points, and the execution log must show **single-flight
   dedup**: no fingerprint was logged as executed more than once across
   both server generations, despite two clients requesting all of them.
3. **graceful drain** — SIGTERM must make the surviving server finish
   in-flight work, flush a checksummed stats snapshot and exit 0.
4. **warm verification** — ``run_experiments.py`` pointed at the
   service's cache must produce a report bit-identical to the serial
   baseline *without simulating anything* (``simulated == 0``): the
   service and the runner share one result-store format.

Reports are compared after stripping the provenance lines that
legitimately differ between runs (wall time, cached/simulated split,
hot-loop timing); every table byte must match.

Exit status: 0 when all guarantees held, 1 otherwise.

Usage:  python scripts/service_smoke.py [--scale 1e-5] [--jobs 2]
            [--timeout 10] [--crash 0.2] [--hang 0.1] [--disconnect 0.15]
            [--seed 7] [--kill-after N] [--log-dir DIR] [--keep]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis.experiments import sweep_requests  # noqa: E402
from repro.analysis.runner import read_checked_json, verify_cache  # noqa: E402
from repro.service import SweepClient, SweepOutcome  # noqa: E402
from repro.service.server import (  # noqa: E402
    EXECUTIONS_FILENAME,
    STATS_FILENAME,
)
from repro.verify.faultinject import ENV_VAR, FaultPlan  # noqa: E402

RUN_EXPERIMENTS = os.path.join(REPO_ROOT, "scripts", "run_experiments.py")
SWEEP_SERVICE = os.path.join(REPO_ROOT, "scripts", "sweep_service.py")
BENCH_PATH = os.path.join(REPO_ROOT, "results", "BENCH_experiments.json")

#: Report lines that legitimately vary between runs of the same sweep.
_VOLATILE_PREFIXES = ("runs:", "total wall time", "hot loop")


def canonical_report(path: str) -> str:
    """The report with run-to-run provenance lines stripped."""
    lines = []
    with open(path) as handle:
        for line in handle:
            if line.startswith(_VOLATILE_PREFIXES):
                continue
            lines.append(line)
    return "".join(lines)


def base_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")) if p
    )
    env.pop(ENV_VAR, None)
    return env


def run_sweep(args, cache_dir: str, output: str) -> dict:
    """One serial run_experiments sweep; returns the BENCH provenance."""
    command = [
        sys.executable, RUN_EXPERIMENTS,
        "--scale", repr(args.scale),
        "--jobs", "1",
        "--cache-dir", cache_dir,
        "--output", output,
        "--no-hotloop",
    ]
    proc = subprocess.run(command, env=base_env(), cwd=REPO_ROOT)
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: sweep exited with status {proc.returncode}: "
            f"{' '.join(command)}"
        )
    with open(BENCH_PATH) as handle:
        return json.load(handle)


def count_run_entries(cache_dir: str) -> int:
    """Completed simulation points on disk (not service/artifact files)."""
    if not os.path.isdir(cache_dir):
        return 0
    return sum(
        1
        for name in os.listdir(cache_dir)
        if name.endswith(".json")
        and not name.startswith("artifact-")
        and not name.startswith("service-")
        and name != "sweep-checkpoint.json"
    )


def start_server(args, cache_dir: str, socket_path: str, env: dict,
                 log_path: str) -> subprocess.Popen:
    """Launch a server generation in its own process group.

    Its own session so a SIGKILL can take out the whole group: killing
    only the parent would leave pool workers holding inherited pipes
    (and CI logs) open forever.
    """
    command = [
        sys.executable, SWEEP_SERVICE, "serve",
        "--cache-dir", cache_dir,
        "--socket", socket_path,
        "--jobs", str(args.jobs),
        "--timeout", repr(args.timeout),
        "--lease-poll", "0.1",
        "--name", os.path.basename(log_path).rsplit(".", 1)[0],
    ]
    log = open(log_path, "ab")
    try:
        return subprocess.Popen(
            command, env=env, cwd=REPO_ROOT, start_new_session=True,
            stdout=log, stderr=subprocess.STDOUT,
        )
    finally:
        log.close()


def wait_for_socket(socket_path: str, server: subprocess.Popen,
                    deadline: float = 30.0) -> None:
    """Wait until the server *accepts* — a SIGKILLed predecessor leaves
    a stale socket file behind, so existence alone proves nothing."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if os.path.exists(socket_path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(1.0)
            try:
                probe.connect(socket_path)
                return
            except OSError:
                pass
            finally:
                probe.close()
        if server.poll() is not None:
            raise SystemExit(
                f"FAIL: server died during startup "
                f"(exit {server.returncode})"
            )
        time.sleep(0.05)
    raise SystemExit(f"FAIL: server socket {socket_path} never accepted")


def client_sweep(socket_path: str, requests, name: str,
                 results: dict, deadline: float) -> None:
    """One client thread: sweep every point, riding out chaos."""
    client = SweepClient(socket_path, name=name, connect_timeout=60.0)
    try:
        results[name] = client.sweep(requests, deadline=deadline)
    except Exception as exc:  # surfaced by the main thread
        results[name] = exc
    finally:
        client.close()


def execution_counts(cache_dir: str) -> dict[str, int]:
    """Per-fingerprint execution counts across all server generations.

    A line torn by the SIGKILL is skipped: the append happens *after*
    the store write, so a missing line only under-counts (a fingerprint
    can appear zero times when the kill landed between store and log —
    never twice).
    """
    counts: dict[str, int] = {}
    path = os.path.join(cache_dir, EXECUTIONS_FILENAME)
    if not os.path.exists(path):
        return counts
    with open(path) as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except ValueError:
                continue
            fingerprint = record.get("fingerprint")
            if fingerprint:
                counts[fingerprint] = counts.get(fingerprint, 0) + 1
    return counts


def check(condition: bool, message: str, failures: list) -> None:
    tag = "ok" if condition else "FAIL"
    print(f"  [{tag}] {message}")
    if not condition:
        failures.append(message)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1e-5)
    parser.add_argument("--jobs", type=int, default=2,
                        help="server worker processes (default 2)")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-run lease budget on the server (default 10)")
    parser.add_argument("--crash", type=float, default=0.2)
    parser.add_argument("--hang", type=float, default=0.1)
    parser.add_argument("--disconnect", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--kill-after", type=int, default=12, metavar="N",
        help="SIGKILL the first server generation once N points are "
        "cached (default 12)",
    )
    parser.add_argument(
        "--deadline", type=float, default=900.0,
        help="per-client sweep deadline seconds (default 900)",
    )
    parser.add_argument(
        "--log-dir", default=None,
        help="copy server logs + stats there (CI artifact)",
    )
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory for inspection")
    args = parser.parse_args(argv)

    scratch = tempfile.mkdtemp(prefix="service-smoke-")
    failures: list[str] = []
    servers: list[subprocess.Popen] = []
    try:
        baseline_cache = os.path.join(scratch, "cache-baseline")
        service_cache = os.path.join(scratch, "cache-service")
        baseline_report = os.path.join(scratch, "baseline.txt")
        warm_report = os.path.join(scratch, "warm.txt")
        socket_path = os.path.join(scratch, "sweep.sock")

        print(f"== phase 1: serial baseline (scale {args.scale:g}) ==")
        run_sweep(args, baseline_cache, baseline_report)
        reference = canonical_report(baseline_report)

        print("\n== phase 2: chaos service sweep, two clients, one "
              "mid-sweep server SIGKILL ==")
        plan = FaultPlan(
            seed=args.seed,
            crash_fraction=args.crash,
            hang_fraction=args.hang,
            disconnect_fraction=args.disconnect,
            hang_seconds=max(4 * args.timeout, 45.0),
        )
        chaos_env = base_env()
        chaos_env[ENV_VAR] = plan.to_json()
        requests = sweep_requests(args.scale)
        print(f"  {len(requests)} unique points, crash {args.crash:g} / "
              f"hang {args.hang:g} / disconnect {args.disconnect:g}")

        server = start_server(args, service_cache, socket_path, chaos_env,
                              os.path.join(scratch, "server-gen1.log"))
        servers.append(server)
        wait_for_socket(socket_path, server)

        outcomes: dict[str, SweepOutcome | Exception] = {}
        threads = [
            threading.Thread(
                target=client_sweep,
                args=(socket_path, requests, name, outcomes, args.deadline),
                daemon=True,
            )
            for name in ("client-a", "client-b")
        ]
        for thread in threads:
            thread.start()

        kill_deadline = time.monotonic() + args.deadline
        while (
            count_run_entries(service_cache) < args.kill_after
            and any(thread.is_alive() for thread in threads)
            and time.monotonic() < kill_deadline
        ):
            time.sleep(0.05)
        killed = any(thread.is_alive() for thread in threads)
        if killed:
            os.killpg(server.pid, signal.SIGKILL)
            server.wait()
            survivors = count_run_entries(service_cache)
            print(f"  SIGKILLed server gen 1 (pgid {server.pid}) with "
                  f"{survivors} points cached; restarting on same socket")
            server = start_server(
                args, service_cache, socket_path, chaos_env,
                os.path.join(scratch, "server-gen2.log"),
            )
            servers.append(server)
            wait_for_socket(socket_path, server)
        else:
            print("  note: sweep finished before the kill threshold")

        for thread in threads:
            thread.join(timeout=args.deadline)
        for name in ("client-a", "client-b"):
            outcome = outcomes.get(name)
            if isinstance(outcome, Exception) or outcome is None:
                check(False, f"{name} sweep converged ({outcome!r})",
                      failures)
                continue
            sources = ", ".join(
                f"{count} {source}"
                for source, count in sorted(outcome.sources.items())
            )
            print(f"  {name}: {len(outcome.results)} ok ({sources}), "
                  f"{len(outcome.failed)} failed, "
                  f"{outcome.reconnects} reconnects")
            check(outcome.ok, f"{name} sweep converged with zero failed "
                  "points", failures)
        reconnects = sum(
            outcome.reconnects
            for outcome in outcomes.values()
            if isinstance(outcome, SweepOutcome)
        )
        check(reconnects >= 1,
              f"clients reconnected through chaos ({reconnects} reconnects)",
              failures)

        counts = execution_counts(service_cache)
        repeats = {fp: n for fp, n in counts.items() if n > 1}
        check(
            not repeats,
            f"single-flight dedup held: no fingerprint executed more than "
            f"once across both server generations ({len(counts)} logged, "
            f"{len(repeats)} repeats)",
            failures,
        )
        scan = verify_cache(service_cache)
        check(
            scan["ok"] >= len(requests) and not scan["corrupt"],
            f"shared store holds every point intact ({scan['ok']} valid, "
            f"{len(scan['corrupt'])} corrupt)",
            failures,
        )

        status_client = SweepClient(socket_path, name="smoke-status")
        try:
            status = status_client.status()
        finally:
            status_client.close()
        stats = status["stats"]
        dedup_hits = (
            stats["warm_hits"] + stats["memo_hits"] + stats["joined_inflight"]
        )
        handled = (
            stats["retries"] + stats["lease_expiries"]
            + stats["pool_breaks"] + stats["injected_disconnects"]
        )
        print(f"  final server: {stats['executed']} executed, "
              f"{stats['warm_hits']} warm, {stats['memo_hits']} memo, "
              f"{stats['joined_inflight']} joined, {stats['retries']} "
              f"retries, {stats['lease_expiries']} lease expiries, "
              f"{stats['pool_breaks']} pool breaks, "
              f"{stats['injected_disconnects']} dropped deliveries")
        check(dedup_hits > 0,
              "overlapping submissions were deduplicated "
              "(warm+memo+joined > 0)", failures)
        check(handled > 0,
              "injected faults were actually handled "
              "(retries+leases+breaks+disconnects > 0)", failures)
        check(stats["failed_points"] == 0,
              "no point failed permanently under injection", failures)

        print("\n== phase 3: graceful drain on SIGTERM ==")
        os.killpg(server.pid, signal.SIGTERM)
        try:
            code = server.wait(timeout=max(4 * args.timeout, 60.0))
        except subprocess.TimeoutExpired:
            os.killpg(server.pid, signal.SIGKILL)
            server.wait()
            code = None
        check(code == 0, f"server drained and exited 0 (exit {code})",
              failures)
        stats_payload, stats_status = read_checked_json(
            os.path.join(service_cache, STATS_FILENAME)
        )
        check(
            stats_status == "ok" and bool(stats_payload.get("drained")),
            f"drain flushed a checksummed stats snapshot "
            f"(status {stats_status})",
            failures,
        )

        print("\n== phase 4: warm run_experiments on the service cache ==")
        bench = run_sweep(args, service_cache, warm_report)
        runner_stats = bench["runner"]
        print(f"  warm provenance: {runner_stats['disk_hits']} disk hits, "
              f"{runner_stats['simulated']} simulated")
        check(
            canonical_report(warm_report) == reference,
            "service-cache report is bit-identical to the serial baseline",
            failures,
        )
        check(
            runner_stats["simulated"] == 0,
            "the runner simulated nothing: every point came from the "
            "service's store",
            failures,
        )

        print()
        if failures:
            print(f"service smoke: {len(failures)} guarantee(s) violated:")
            for message in failures:
                print(f"  - {message}")
            return 1
        print("service smoke: all guarantees held")
        return 0
    finally:
        for server in servers:
            if server.poll() is None:
                with_suppress_kill(server)
        if args.log_dir:
            os.makedirs(args.log_dir, exist_ok=True)
            for name in os.listdir(scratch):
                if name.endswith(".log") or name.endswith(".txt"):
                    shutil.copy(os.path.join(scratch, name), args.log_dir)
            for name in (STATS_FILENAME, EXECUTIONS_FILENAME):
                path = os.path.join(scratch, "cache-service", name)
                if os.path.exists(path):
                    shutil.copy(path, args.log_dir)
            print(f"logs copied to {args.log_dir}")
        if args.keep:
            print(f"scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)


def with_suppress_kill(server: subprocess.Popen) -> None:
    try:
        os.killpg(server.pid, signal.SIGKILL)
        server.wait()
    except (OSError, subprocess.SubprocessError):
        pass


if __name__ == "__main__":
    sys.exit(main())
