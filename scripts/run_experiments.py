#!/usr/bin/env python3
"""Regenerate every table and figure at full experiment fidelity.

Writes the combined report to stdout (tee it into EXPERIMENTS.md's data
section).  Runtime is dominated by the 2x-scale simulations: expect a few
minutes.

Usage:  python scripts/run_experiments.py [scale]
"""

import sys
import time

from repro.analysis import (
    run_breakdown_table3,
    run_fig4_ideal,
    run_fig5_real,
    run_fig6_fetch,
    run_fig8_decoupled,
    run_fig9_summary,
    run_table4_cache,
)

#: Default fidelity: 1e-4 = one trace instruction per 10k paper instructions.
DEFAULT_SCALE = 1e-4


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_SCALE
    print(f"# Experiment run at scale={scale}\n")
    start = time.time()

    table3 = run_breakdown_table3(scale=scale)
    print(table3.report, "\n")

    fig4 = run_fig4_ideal(scale=scale)
    print(fig4.report, "\n")

    fig5 = run_fig5_real(scale=scale, ideal=fig4)
    print(fig5.report, "\n")

    table4 = run_table4_cache(scale=scale, fig5=fig5)
    print(table4.report, "\n")

    fig6 = run_fig6_fetch(scale=scale)
    print(fig6.report, "\n")

    fig8 = run_fig8_decoupled(scale=scale)
    print(fig8.report, "\n")

    fig9 = run_fig9_summary(scale=scale)
    print(fig9.report, "\n")

    # Section 5.3's scalar/vector mixing statistic at 8 threads.
    for isa in ("mmx", "mom"):
        run = fig6.runs[(isa, "rr", 8)]
        print(
            f"{isa.upper()} vector-only issue cycles @8T (RR): "
            f"{run.vector_only_fraction:.1%} "
            f"(paper: {'1%' if isa == 'mmx' else '4%'})"
        )

    print(f"\ntotal wall time: {time.time() - start:.0f} s")


if __name__ == "__main__":
    main()
