#!/usr/bin/env python3
"""Regenerate every table and figure at full experiment fidelity.

All figures share one cached, deduplicated run engine
(:mod:`repro.analysis.runner`): overlapping simulation points (figure 5
/ figure 6's round-robin rows / table 4) are simulated once, results are
persisted under ``results/.runcache/`` so re-running an unchanged sweep
performs zero simulations, and cache misses fan out over ``--jobs``
worker processes.  Serial and parallel sweeps, cold or warm, produce
bit-identical reports.

The combined report goes to stdout and (unless ``--output -``) to
``results/experiments_scale<scale>.txt``; machine-readable timing data
lands in ``results/BENCH_experiments.json``.

Runtime knobs:

* ``--scale`` — trace fidelity (fraction of paper instruction counts;
  default 1e-4 ≈ one trace instruction per 10k paper instructions).
  Runtime grows roughly linearly with scale; 2e-5 suits smoke tests.
* ``--jobs`` — worker processes for cache-missing simulations.

The sweep is fault tolerant (``docs/RESILIENCE.md``): every completed
simulation persists to the runcache immediately, so a sweep killed at
any point — even SIGKILL — resumes from its completed points on the
next invocation (a figure-level checkpoint in the cache directory
reports what a resumed sweep skipped).  ``--timeout`` bounds each run's
wall clock, transient worker failures retry with seeded backoff, and
``--max-failures`` / ``--fail-fast`` choose between salvaging partial
results and aborting early; a sweep that still has permanently-failed
points prints a structured failure report and exits with status 3.

Usage:  python scripts/run_experiments.py [--scale S] [--jobs N]
            [--no-cache] [--output PATH|-] [--timeout S] [--retries N]
            [--max-failures N | --fail-fast]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time

from repro.analysis import (
    DEFAULT_SAMPLING,
    ResilienceConfig,
    Runner,
    SweepFailure,
    run_breakdown_table3,
    run_fig4_ideal,
    run_fig5_real,
    run_fig6_fetch,
    run_fig8_decoupled,
    run_fig9_summary,
    run_serving_scenario,
    run_stall_breakdown,
    run_table4_cache,
)
from repro.analysis.runner import (
    code_version,
    read_checked_json,
    write_checked_json,
)
from repro.obs import PhaseProfiler

#: Default fidelity: 1e-4 = one trace instruction per 10k paper instructions.
DEFAULT_SCALE = 1e-4

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(REPO_ROOT, "results")
CACHE_DIR = os.path.join(RESULTS_DIR, ".runcache")
HOTLOOP_BASELINE = os.path.join(RESULTS_DIR, "hotloop_baseline.json")


def scale_tag(scale: float) -> str:
    """Compact scientific tag for filenames: 1e-4, 2e-5, 1.5e-3."""
    mantissa, exponent = f"{scale:e}".split("e")
    mantissa = mantissa.rstrip("0").rstrip(".")
    return f"{mantissa}e{int(exponent)}"


#: Child body for :func:`measure_hot_loop`.  The baseline figure was
#: recorded in a fresh interpreter (min over back-to-back repeats), so
#: the re-measurement runs in one too — timing inside the sweep process
#: would charge its accumulated heap to the simulator under test.
_HOTLOOP_CHILD = r"""
import json, sys, time
from repro.analysis.runner import memory_factory, workload_traces
from repro.core.fetch import FetchPolicy
from repro.core.params import SMTConfig
from repro.core.smt import SMTProcessor


def calibrate():
    # Machine-speed calibration: the same fixed integer loop the
    # baseline recording timed (inside a function, as here — module
    # level would run on dict lookups and skew the comparison), so the
    # baseline figure can be scaled to this machine's current speed
    # (shared boxes drift +-30% between sessions).
    t0 = time.perf_counter()
    acc = 0
    for i in range(2_000_000):
        acc += i ^ (i >> 3)
    return time.perf_counter() - t0


def main():
    cfg = json.loads(sys.argv[1])
    traces = workload_traces(
        cfg["isa"], cfg["scale"], cfg["seed"], cfg["trace_dir"]
    )
    best = None
    cycles = None
    calibration = None
    for __ in range(cfg["repeats"]):
        t0 = time.perf_counter()
        processor = SMTProcessor(
            SMTConfig(isa=cfg["isa"], n_threads=cfg["n_threads"]),
            memory_factory(cfg["memory"])(),
            traces,
            fetch_policy=FetchPolicy(cfg["fetch_policy"]),
            completions_target=cfg["completions_target"],
        )
        result = processor.run()
        elapsed = time.perf_counter() - t0
        cycles = result.cycles
        if best is None or elapsed < best:
            best = elapsed
        # Interleaved with the simulation repeats so both minima sample
        # the same load window.
        elapsed = calibrate()
        if calibration is None or elapsed < calibration:
            calibration = elapsed
    print(json.dumps(
        {"best": best, "cycles": cycles, "calibration": calibration}
    ))


main()
"""


#: Child body for :func:`measure_sampled_point`: times one sampled
#: simulation point serial (window_jobs=1) vs window-sharded, in a fresh
#: interpreter for the same reasons as the hot-loop child, and asserts
#: the two schedules hash identically (sharding must be a pure
#: execution-strategy change).
_SHARDPOINT_CHILD = r"""
import hashlib, json, os, sys, time
from dataclasses import replace
from repro.analysis.runner import (
    RunRequest, execute_request, result_to_dict, workload_traces,
)
from repro.core.smt import sampled_chunk_count


def calibrate():
    # Same fixed loop as the hot-loop child (see its comment).
    t0 = time.perf_counter()
    acc = 0
    for i in range(2_000_000):
        acc += i ^ (i >> 3)
    return time.perf_counter() - t0


def canonical(result):
    blob = json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def main():
    cfg = json.loads(sys.argv[1])
    request = RunRequest(
        isa=cfg["isa"],
        n_threads=cfg["n_threads"],
        memory=cfg["memory"],
        fetch_policy=cfg["fetch_policy"],
        scale=cfg["scale"],
        seed=cfg["seed"],
        completions_target=cfg["completions_target"],
        sampling=cfg["sampling"],
    )
    trace_dir = cfg["trace_dir"]
    traces = workload_traces(
        request.isa, request.scale, request.seed, trace_dir
    )
    chunks = sampled_chunk_count(
        request.sampling, traces, request.completions_target
    )
    sharded_request = replace(request, window_jobs=cfg["window_jobs"])
    serial = sharded = calibration = None
    serial_hash = sharded_hash = None
    for __ in range(cfg["repeats"]):
        t0 = time.perf_counter()
        result = execute_request(request, trace_dir)
        elapsed = time.perf_counter() - t0
        serial_hash = canonical(result)
        if serial is None or elapsed < serial:
            serial = elapsed
        t0 = time.perf_counter()
        result = execute_request(sharded_request, trace_dir)
        elapsed = time.perf_counter() - t0
        sharded_hash = canonical(result)
        if sharded is None or elapsed < sharded:
            sharded = elapsed
        elapsed = calibrate()
        if calibration is None or elapsed < calibration:
            calibration = elapsed
    print(json.dumps({
        "serial": serial,
        "sharded": sharded,
        "chunks": chunks,
        "serial_hash": serial_hash,
        "sharded_hash": sharded_hash,
        "identical": serial_hash == sharded_hash,
        "calibration": calibration,
        "cores": os.cpu_count(),
    }))


main()
"""


#: Child body for :func:`measure_flat_backend`: times the reference
#: hot-loop configuration under the flat engine vs the object engine in
#: a fresh interpreter (same protocol as the hot-loop child), asserting
#: the two backends hash identically — the flat engine is a pure
#: execution-strategy change, like window sharding.
_FLATBACKEND_CHILD = r"""
import hashlib, json, sys, time
from repro.analysis.runner import (
    memory_factory, result_to_dict, workload_traces,
)
from repro.core.engine_flat import COMPILED
from repro.core.fetch import FetchPolicy
from repro.core.params import SMTConfig
from repro.core.smt import SMTProcessor


def calibrate():
    # Same fixed loop as the hot-loop child (see its comment).
    t0 = time.perf_counter()
    acc = 0
    for i in range(2_000_000):
        acc += i ^ (i >> 3)
    return time.perf_counter() - t0


def canonical(result):
    blob = json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def run_once(cfg, traces, backend):
    t0 = time.perf_counter()
    processor = SMTProcessor(
        SMTConfig(
            isa=cfg["isa"], n_threads=cfg["n_threads"], backend=backend
        ),
        memory_factory(cfg["memory"])(),
        traces,
        fetch_policy=FetchPolicy(cfg["fetch_policy"]),
        completions_target=cfg["completions_target"],
    )
    result = processor.run()
    return time.perf_counter() - t0, result


def main():
    cfg = json.loads(sys.argv[1])
    traces = workload_traces(
        cfg["isa"], cfg["scale"], cfg["seed"], cfg["trace_dir"]
    )
    flat = obj = calibration = None
    flat_hash = obj_hash = cycles = None
    for __ in range(cfg["repeats"]):
        elapsed, result = run_once(cfg, traces, "flat")
        flat_hash = canonical(result)
        cycles = result.cycles
        if flat is None or elapsed < flat:
            flat = elapsed
        elapsed, result = run_once(cfg, traces, "object")
        obj_hash = canonical(result)
        if obj is None or elapsed < obj:
            obj = elapsed
        elapsed = calibrate()
        if calibration is None or elapsed < calibration:
            calibration = elapsed
    print(json.dumps({
        "flat": flat,
        "object": obj,
        "cycles": cycles,
        "identical": flat_hash == obj_hash,
        "compiled": COMPILED,
        "calibration": calibration,
    }))


main()
"""


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        path
        for path in (
            os.path.join(REPO_ROOT, "src"),
            os.environ.get("PYTHONPATH"),
        )
        if path
    )
    return env


def measure_sampled_point(
    runner: Runner, repeats: int = 2
) -> dict | None:
    """Re-time the reference sampled point, serial vs window-sharded.

    ``results/hotloop_baseline.json``'s ``sampled_point`` section pins
    the wall time of one sampled simulation point under both schedules
    (config + protocol inside).  This re-runs the identical
    configuration in a fresh subprocess — min over ``repeats`` of
    ``execute_request`` serial and with the recorded ``window_jobs`` —
    asserts the two schedules are bit-identical, and returns the
    before/after record for BENCH_experiments.json and
    ``scripts/check_hotloop.py``'s second curve.  Returns ``None`` when
    the baseline has no ``sampled_point`` section or the subprocess
    fails.
    """
    if not os.path.exists(HOTLOOP_BASELINE):
        return None
    try:
        with open(HOTLOOP_BASELINE) as handle:
            baseline = json.load(handle)["sampled_point"]
        cfg = baseline["config"]
    except (OSError, ValueError, KeyError):
        return None
    payload = dict(cfg, repeats=repeats, trace_dir=runner.trace_dir)
    if payload["trace_dir"]:
        runner.workload(cfg["isa"], cfg["scale"], cfg["seed"])
    proc = subprocess.run(
        [sys.executable, "-c", _SHARDPOINT_CHILD, json.dumps(payload)],
        capture_output=True,
        text=True,
        env=_child_env(),
    )
    if proc.returncode != 0:
        return None
    measured = json.loads(proc.stdout.strip().splitlines()[-1])
    machine_factor = measured["calibration"] / baseline["calibration_seconds"]
    return {
        "config": cfg,
        "repeats": repeats,
        "chunks": measured["chunks"],
        "cores": measured["cores"],
        "identical": measured["identical"],
        "machine_factor": round(machine_factor, 3),
        "baseline_serial_seconds": baseline["serial_seconds"],
        "baseline_sharded_seconds": baseline["sharded_seconds"],
        "serial_seconds": round(measured["serial"], 4),
        "sharded_seconds": round(measured["sharded"], 4),
        "shard_speedup": round(measured["serial"] / measured["sharded"], 3),
    }


def measure_flat_backend(runner: Runner, repeats: int = 4) -> dict | None:
    """Re-time the reference point under the flat vs object engine.

    ``results/hotloop_baseline.json``'s ``flat_backend`` section pins
    the wall time of the hot-loop reference configuration under
    ``SMTConfig(backend="flat")`` (protocol and compile state inside).
    This re-runs both backends in a fresh subprocess — min over
    ``repeats`` each — asserts they hash identically, and returns the
    record for BENCH_experiments.json and ``check_hotloop.py``'s third
    curve, including the drift-normalized speedup over the *pre-PR-2*
    hot-loop floor (``before_seconds``), the number the ≥5× compiled
    target is defined against.  Returns ``None`` when the baseline has
    no ``flat_backend`` section or the subprocess fails.
    """
    if not os.path.exists(HOTLOOP_BASELINE):
        return None
    try:
        with open(HOTLOOP_BASELINE) as handle:
            baseline = json.load(handle)
        cfg = baseline["config"]
        flat_baseline = baseline["flat_backend"]
    except (OSError, ValueError, KeyError):
        return None
    payload = dict(cfg, repeats=repeats, trace_dir=runner.trace_dir)
    if payload["trace_dir"]:
        runner.workload(cfg["isa"], cfg["scale"], cfg["seed"])
    proc = subprocess.run(
        [sys.executable, "-c", _FLATBACKEND_CHILD, json.dumps(payload)],
        capture_output=True,
        text=True,
        env=_child_env(),
    )
    if proc.returncode != 0:
        return None
    measured = json.loads(proc.stdout.strip().splitlines()[-1])
    # Two drift factors, one per recording machine: the flat baseline's
    # own calibration normalizes the regression guard, the pre-PR-2
    # calibration normalizes the headline speedup-over-floor figure.
    machine_factor = (
        measured["calibration"] / flat_baseline["calibration_seconds"]
    )
    adjusted_floor = baseline["before_seconds"] * (
        measured["calibration"] / baseline["calibration_seconds"]
    )
    record = {
        "config": cfg,
        "repeats": repeats,
        "compiled": measured["compiled"],
        "identical": measured["identical"],
        "machine_factor": round(machine_factor, 3),
        "baseline_flat_seconds": flat_baseline["flat_seconds"],
        "baseline_compiled": flat_baseline.get("compiled", False),
        "target_speedup_vs_prepr2": flat_baseline.get(
            "target_speedup_vs_prepr2"
        ),
        "flat_seconds": round(measured["flat"], 4),
        "object_seconds": round(measured["object"], 4),
        "speedup_vs_object": round(
            measured["object"] / measured["flat"], 3
        ),
        "adjusted_prepr2_seconds": round(adjusted_floor, 4),
        "speedup_vs_prepr2": round(adjusted_floor / measured["flat"], 3),
    }
    if measured["cycles"] != baseline["cycles"]:
        record["speedup_vs_prepr2"] = None
        record["note"] = (
            f"cycle count drifted from the baseline "
            f"({measured['cycles']} vs {baseline['cycles']})"
        )
    return record


def measure_hot_loop(runner: Runner, repeats: int = 8) -> dict | None:
    """Re-time the reference hot-loop run against the recorded baseline.

    ``results/hotloop_baseline.json`` pins the pre-optimization wall
    time of one simulation (config + measurement protocol inside).
    This runs the identical configuration on the current tree in a
    fresh subprocess — trace construction is excluded, only
    SMTProcessor construction + ``run()`` is measured, min over
    ``repeats`` — and returns the before/after record for
    BENCH_experiments.json.  Returns ``None`` when no baseline file is
    present or the subprocess fails (the sweep still completes).
    """
    if not os.path.exists(HOTLOOP_BASELINE):
        return None
    try:
        with open(HOTLOOP_BASELINE) as handle:
            baseline = json.load(handle)
        cfg = baseline["config"]
    except (OSError, ValueError, KeyError) as exc:
        print(
            f"warning: hot-loop baseline {HOTLOOP_BASELINE} is unreadable "
            f"({exc!r}); skipping the hot-loop re-measurement",
            file=sys.stderr,
        )
        return None
    payload = dict(cfg, repeats=repeats, trace_dir=runner.trace_dir)
    if payload["trace_dir"]:
        # Warm the on-disk trace cache so the child only deserializes.
        runner.workload(cfg["isa"], cfg["scale"], cfg["seed"])
    proc = subprocess.run(
        [sys.executable, "-c", _HOTLOOP_CHILD, json.dumps(payload)],
        capture_output=True,
        text=True,
        env=_child_env(),
    )
    if proc.returncode != 0:
        return None
    measured = json.loads(proc.stdout.strip().splitlines()[-1])
    # Scale the recorded baseline by the calibration drift so the ratio
    # compares simulator versions, not machine moods.
    machine_factor = measured["calibration"] / baseline["calibration_seconds"]
    adjusted_before = baseline["before_seconds"] * machine_factor
    record = {
        "config": cfg,
        "repeats": repeats,
        "before_seconds": baseline["before_seconds"],
        "machine_factor": round(machine_factor, 3),
        "adjusted_before_seconds": round(adjusted_before, 4),
        "after_seconds": round(measured["best"], 4),
        "speedup": round(adjusted_before / measured["best"], 3),
    }
    if measured["cycles"] != baseline["cycles"]:
        # The model changed since the baseline was recorded; the
        # comparison is no longer like-for-like, so flag that instead
        # of reporting a bogus speedup.
        record["speedup"] = None
        record["note"] = (
            f"cycle count drifted from the baseline "
            f"({measured['cycles']} vs {baseline['cycles']})"
        )
    return record


class SweepCheckpoint:
    """Figure-level progress marker for killed sweeps.

    The runcache itself is the point-level checkpoint — every completed
    simulation persists the moment it finishes — so a rerun after a
    crash never re-simulates completed points.  On top of that, this
    file (``sweep-checkpoint.json`` in the cache directory, checksummed
    and atomically written like every cache entry) records which
    figures already completed, so a resumed invocation can say what it
    is skipping.  The key ties the checkpoint to (scale, sampling, code
    version); a mismatched or unreadable checkpoint is simply ignored.
    It is removed when a sweep runs to completion.
    """

    def __init__(self, cache_dir: str | None, key: dict):
        self.path = (
            os.path.join(cache_dir, "sweep-checkpoint.json")
            if cache_dir
            else None
        )
        self.key = key
        self.completed: list[str] = []
        self.resumed_from: list[str] = []
        if self.path and os.path.exists(self.path):
            payload, status = read_checked_json(self.path)
            if status == "ok" and payload.get("key") == key:
                self.resumed_from = list(payload.get("completed", []))

    def mark(self, name: str) -> None:
        self.completed.append(name)
        self.flush()

    def flush(self) -> None:
        """Persist current progress unconditionally.

        ``mark`` flushes after every completed figure; the separate
        entry point exists for the SIGTERM/SIGINT handler, so a polite
        kill leaves exactly the checkpoint a SIGKILL-and-resume would
        find.
        """
        if self.path is None:
            return
        try:
            write_checked_json(
                self.path,
                {
                    "key": self.key,
                    "completed": self.completed,
                    "updated_at": time.time(),
                },
            )
        except OSError:
            pass  # a lost checkpoint only costs the resume notice

    def clear(self) -> None:
        if self.path and os.path.exists(self.path):
            os.unlink(self.path)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scale_pos", nargs="?", type=float, default=None,
        help="positional scale (backward compatible with the old CLI)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help=f"trace fidelity (default {DEFAULT_SCALE:g})",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for cache-missing runs (default 1)",
    )
    parser.add_argument(
        "--window-jobs", type=int, default=1, metavar="N",
        help="worker processes per sampled point's measurement windows "
        "(intra-run parallelism; bit-identical to serial; default 1). "
        "Complements --jobs: use --jobs for many points in flight, "
        "--window-jobs to cut the latency of a few large sampled points.",
    )
    parser.add_argument(
        "--backend", choices=("object", "flat", "auto"), default=None,
        help="pipeline engine for every simulation point (default: the "
        "per-request 'auto' — the flat engine when its compiled kernel "
        "is installed, else the object engine).  A pure execution-"
        "strategy knob: results are bit-identical and share one cache "
        "slot across backends.",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk result/trace cache (still dedups in process)",
    )
    parser.add_argument(
        "--output", default=None,
        help="report file (default results/experiments_scale<scale>.txt; "
        "'-' for stdout only)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result/trace cache directory (default results/.runcache; "
        "ignored with --no-cache)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget: a run exceeding it is killed, "
        "charged a timeout failure and retried (default: no timeout)",
    )
    parser.add_argument(
        "--retries", type=int, default=3,
        help="retries per run for transient failures — worker crashes, "
        "timeouts, I/O errors (default 3)",
    )
    parser.add_argument(
        "--max-failures", type=int, default=None, metavar="N",
        help="abort the sweep once N points have failed permanently "
        "(default: salvage mode — finish and cache every completable "
        "point, then report the failures and exit 3)",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="abort on the first permanently-failed point instead of "
        "salvaging the rest of the sweep",
    )
    parser.add_argument(
        "--serving", action="store_true",
        help="also run the media-server scenario: open-loop stream "
        "traffic over the SMT/CMP×SMT grid with the three admission "
        "policies (docs/SERVING.md); cached through the same runner",
    )
    parser.add_argument(
        "--no-hotloop", action="store_true",
        help="skip the hot-loop re-measurement (used by harnesses that "
        "run many short sweeps)",
    )
    parser.add_argument(
        "--sampling", nargs="?", const="default", default=None,
        metavar="FF,WIN,WARM",
        help="statistical sampling: the bare flag uses the default "
        f"(ff,window,warmup)={DEFAULT_SAMPLING}; or give three "
        "comma-separated instruction counts.  Every EIPC table then "
        "reports a 95%% confidence interval.",
    )
    args = parser.parse_args(argv)
    if args.scale is not None and args.scale_pos is not None:
        parser.error("give the scale positionally or via --scale, not both")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.window_jobs < 1:
        parser.error("--window-jobs must be >= 1")
    if args.max_failures is not None and args.max_failures < 1:
        parser.error("--max-failures must be >= 1")
    args.scale = (
        args.scale if args.scale is not None
        else args.scale_pos if args.scale_pos is not None
        else DEFAULT_SCALE
    )
    if args.sampling is not None:
        if args.sampling == "default":
            args.sampling = DEFAULT_SAMPLING
        else:
            try:
                parts = tuple(int(v) for v in args.sampling.split(","))
            except ValueError:
                parts = ()
            if len(parts) != 3:
                parser.error("--sampling takes FF,WIN,WARM (three integers)")
            args.sampling = parts
    return args


def main(argv=None) -> int:
    args = parse_args(argv)
    scale = args.scale
    sampling = args.sampling
    cache_dir = None if args.no_cache else (args.cache_dir or CACHE_DIR)
    resilience = ResilienceConfig(
        timeout=args.timeout,
        max_attempts=args.retries + 1,
        max_failures=args.max_failures,
        fail_fast=args.fail_fast,
    )
    runner = Runner(
        jobs=args.jobs,
        cache_dir=cache_dir,
        resilience=resilience,
        window_jobs=args.window_jobs,
        backend=args.backend,
    )
    checkpoint = SweepCheckpoint(
        cache_dir,
        key={
            "scale": repr(scale),
            "sampling": list(sampling) if sampling else None,
            "code_version": code_version(),
        },
    )
    if checkpoint.resumed_from:
        # Stdout only, never the report: a straight-through sweep and a
        # killed-and-resumed sweep must produce identical report files.
        print(
            f"resuming from checkpoint: {', '.join(checkpoint.resumed_from)} "
            "completed previously; their points are served from the runcache"
        )

    lines: list[str] = []

    def emit(*parts: str) -> None:
        text = " ".join(parts)
        print(text)
        lines.append(text)

    emit(f"# Experiment run at scale={scale:g} (jobs={args.jobs}, "
         f"cache={'off' if args.no_cache else 'on'}, "
         f"sampling={'off' if not sampling else sampling})\n")
    start = time.time()
    timings: dict[str, dict] = {}
    profiler = PhaseProfiler()
    stall_breakdown: dict | None = None

    def timed(name, fn, **kwargs):
        before = runner.stats.snapshot()
        t0 = time.time()
        with profiler.phase(name):
            result = fn(scale=scale, runner=runner, **kwargs)
        timings[name] = {
            "wall_seconds": time.time() - t0,
            **runner.stats.delta_since(before),
        }
        emit(result.report, "\n")
        checkpoint.mark(name)
        return result

    def write_bench(
        status: str,
        hot_loop: dict | None = None,
        sampled_point: dict | None = None,
        flat_backend: dict | None = None,
    ) -> None:
        stats = runner.stats
        # Throughput covers cache hits too: cached results carry the
        # wall time of the run that produced them, so a fully-cached
        # sweep still reports the throughput its numbers were simulated
        # at instead of null.
        throughput_seconds = stats.sim_seconds + stats.cached_sim_seconds
        throughput_instructions = (
            stats.sim_instructions + stats.cached_instructions
        )
        bench = {
            "scale": scale,
            "jobs": args.jobs,
            "backend": args.backend or "auto",
            "cache": not args.no_cache,
            "sampling": list(sampling) if sampling else None,
            "code_version": code_version(),
            "status": status,
            "wall_seconds": time.time() - start,
            "resumed_figures": checkpoint.resumed_from,
            "resilience": {
                "timeout": args.timeout,
                "max_attempts": args.retries + 1,
                "max_failures": args.max_failures,
                "fail_fast": args.fail_fast,
            },
            "runner": stats.snapshot(),
            "failures": [
                outcome.to_dict()
                for outcome in runner.outcomes.values()
                if outcome.status != "ok"
            ],
            "instructions_per_second": (
                throughput_instructions / throughput_seconds
                if throughput_seconds else None
            ),
            "figures": timings,
        }
        if hot_loop is not None:
            bench["hot_loop"] = hot_loop
        if sampled_point is not None:
            bench["sampled_point"] = sampled_point
        if flat_backend is not None:
            bench["flat_backend"] = flat_backend
        # Shard provenance: how many points used intra-run parallelism
        # and what each one's chunk fan-out cost.
        bench["window_sharding"] = {
            "window_jobs": args.window_jobs,
            "points_sharded": len(runner.window_shard_events),
            "shards": stats.window_shards,
            "events": runner.window_shard_events,
        }
        if stall_breakdown is not None:
            bench["stall_breakdown"] = stall_breakdown
        # Wall-clock phase tree (repro.obs.PhaseProfiler): volatile by
        # construction, never part of report comparisons.
        bench["profile"] = profiler.to_dict()
        os.makedirs(RESULTS_DIR, exist_ok=True)
        bench_path = os.path.join(RESULTS_DIR, "BENCH_experiments.json")
        with open(bench_path, "w") as handle:
            json.dump(bench, handle, indent=2)
            handle.write("\n")
        print(f"timing data written to {bench_path}")

    def print_resilience_summary() -> None:
        # Stdout only (not the report): fault handling varies run to
        # run, the tables must not.  Printed unconditionally so a clean
        # run is visibly clean and a salvaged run visibly salvaged —
        # these counts previously rode BENCH provenance only.
        stats = runner.stats
        print(
            f"resilience: {stats.retries} retries, {stats.timeouts} timeouts, "
            f"{stats.pool_breaks} pool restarts, "
            f"{stats.corrupt_quarantined} corrupt cache entries quarantined, "
            f"{stats.cache_write_errors} cache write errors, "
            f"{stats.degraded} serial degradations, "
            f"{stats.failed_points} failed points"
        )

    def _interrupted(signum, frame):
        raise SystemExit(128 + signum)

    # A polite kill (TERM from a scheduler, Ctrl-C) must leave the same
    # resumable state a SIGKILL does: the handler turns the signal into
    # an orderly unwind, and the except branch below flushes the figure
    # checkpoint before exiting.  Only the main thread may install
    # signal handlers; elsewhere (tests driving main() from a worker
    # thread) the default disposition stays.
    previous_handlers: dict[int, object] = {}
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous_handlers[signum] = signal.signal(
                    signum, _interrupted
                )
            except (ValueError, OSError):  # pragma: no cover
                pass

    try:
        try:
            timed("table3", run_breakdown_table3)
            fig4 = timed("fig4", run_fig4_ideal, sampling=sampling)
            fig5 = timed("fig5", run_fig5_real, ideal=fig4, sampling=sampling)
            timed("table4", run_table4_cache, fig5=fig5)
            fig6 = timed("fig6", run_fig6_fetch, sampling=sampling)
            timed("fig8", run_fig8_decoupled, sampling=sampling)
            timed("fig9", run_fig9_summary, sampling=sampling)
            # Observed companion runs (full detail, artifact-cached):
            # where the fetch/dispatch slots went at the headline 8T
            # point.
            stall_breakdown = timed("stalls", run_stall_breakdown).measured
            if args.serving:
                # The media-server scenario (open-loop arrivals over the
                # serving grid) rides the same cached runner: a warm
                # rerun simulates nothing and reproduces the report byte
                # for byte.
                timed("serving", run_serving_scenario)
        except SweepFailure as failure:
            # Completed points are cached; the checkpoint stays so a
            # rerun resumes instead of restarting.
            print(f"\n{failure.summary()}", file=sys.stderr)
            print(
                "sweep stopped; every completed point is cached — fix the "
                "cause (or relax --max-failures) and rerun to resume from "
                "the checkpoint",
                file=sys.stderr,
            )
            print_resilience_summary()
            write_bench("failed")
            return 3
        except SystemExit as exc:
            # The signal handler above (or an injected stand-in): flush
            # the figure checkpoint so the interrupted sweep resumes
            # exactly like a crashed one, then exit with the
            # conventional 128+signum status.
            checkpoint.flush()
            print(
                "\ninterrupted; figure checkpoint flushed — every "
                "completed point is cached, rerun to resume",
                file=sys.stderr,
            )
            print_resilience_summary()
            write_bench("interrupted")
            code = exc.code
            return code if isinstance(code, int) else 1
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)

    # Section 5.3's scalar/vector mixing statistic at 8 threads.
    for isa in ("mmx", "mom"):
        run = fig6.runs[(isa, "rr", 8)]
        emit(
            f"{isa.upper()} vector-only issue cycles @8T (RR): "
            f"{run.vector_only_fraction:.1%} "
            f"(paper: {'1%' if isa == 'mmx' else '4%'})"
        )

    if args.no_hotloop:
        hot_loop = None
        sampled_point = None
        flat_backend = None
    else:
        with profiler.phase("hot_loop"):
            hot_loop = measure_hot_loop(runner)
        with profiler.phase("sampled_point"):
            sampled_point = measure_sampled_point(runner)
        with profiler.phase("flat_backend"):
            flat_backend = measure_flat_backend(runner)
    if hot_loop is not None and hot_loop.get("speedup"):
        emit(
            f"\nhot loop (mom/8T/conventional/rr @1e-4): "
            f"{hot_loop['adjusted_before_seconds']:.2f} s -> "
            f"{hot_loop['after_seconds']:.2f} s "
            f"({hot_loop['speedup']:.2f}x vs pre-optimization baseline, "
            f"machine-drift normalized)"
        )
    if sampled_point is not None:
        # Stdout only: wall clocks vary machine to machine, the report
        # must not.
        cfg = sampled_point["config"]
        print(
            f"sampled point ({cfg['isa']}/{cfg['n_threads']}T/"
            f"{cfg['memory']}/{cfg['fetch_policy']} @{cfg['scale']:g}, "
            f"{sampled_point['chunks']} chunks, "
            f"window_jobs={sampled_point['config']['window_jobs']}, "
            f"{sampled_point['cores']} cores): "
            f"{sampled_point['serial_seconds']:.2f} s serial -> "
            f"{sampled_point['sharded_seconds']:.2f} s sharded "
            f"({sampled_point['shard_speedup']:.2f}x, bit-identical="
            f"{sampled_point['identical']})"
        )
    if flat_backend is not None:
        # Stdout only: same rationale as the sampled point above.
        kernel = "compiled" if flat_backend["compiled"] else "pure-python"
        speedup = flat_backend.get("speedup_vs_prepr2")
        vs_prepr2 = f", {speedup:.2f}x vs pre-PR-2 floor" if speedup else ""
        print(
            f"flat backend ({kernel} kernel): "
            f"{flat_backend['object_seconds']:.2f} s object -> "
            f"{flat_backend['flat_seconds']:.2f} s flat "
            f"({flat_backend['speedup_vs_object']:.2f}x vs object engine"
            f"{vs_prepr2}, bit-identical={flat_backend['identical']})"
        )

    wall = time.time() - start
    stats = runner.stats
    emit(
        f"\nruns: {stats.requested} requested, {stats.deduplicated} deduped, "
        f"{stats.memo_hits + stats.disk_hits} cached, {stats.simulated} simulated"
    )
    print_resilience_summary()
    emit(f"total wall time: {wall:.0f} s")

    os.makedirs(RESULTS_DIR, exist_ok=True)
    if args.output != "-":
        suffix = "_sampled" if sampling else ""
        report_path = args.output or os.path.join(
            RESULTS_DIR, f"experiments_scale{scale_tag(scale)}{suffix}.txt"
        )
        with open(report_path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"report written to {report_path}")

    write_bench("ok", hot_loop, sampled_point, flat_backend)
    checkpoint.clear()
    return 0


if __name__ == "__main__":
    sys.exit(main())
