"""Benchmark: regenerate Figure 6 (fetch policies, conventional memory)."""

from conftest import run_once
from repro.analysis import run_fig6_fetch


def test_fig6_fetch_policies(benchmark, bench_scale, bench_threads, bench_runner):
    result = run_once(
        benchmark, run_fig6_fetch, scale=bench_scale, threads=bench_threads, runner=bench_runner
    )
    print("\n" + result.report)
    top = max(bench_threads)
    eipc = result.measured["eipc"]
    # Policies are a second-order effect: within ~15 % of round-robin.
    for isa in ("mmx", "mom"):
        rr = eipc[isa]["rr"][top]
        for policy, series in eipc[isa].items():
            assert abs(series[top] / rr - 1) < 0.2, (isa, policy)
    # OCOUNT exists only for MOM (it reads the stream-length register).
    assert "ocount" in eipc["mom"]
    assert "ocount" not in eipc["mmx"]
