"""Benchmark: regenerate Table 3 (instruction breakdown and counts)."""

import pytest

from conftest import run_once
from repro.analysis import run_breakdown_table3
from repro.analysis import paper


def test_table3_breakdown(benchmark, bench_scale):
    result = run_once(benchmark, run_breakdown_table3, scale=bench_scale)
    print("\n" + result.report)
    # Shape assertions: totals within a few percent of 1429/1087 M.
    total_mmx = sum(m["mmx"]["minsts"] for m in result.measured.values())
    total_mmx += result.measured["mpeg2dec"]["mmx"]["minsts"]
    total_mom = sum(m["mom"]["minsts"] for m in result.measured.values())
    total_mom += result.measured["mpeg2dec"]["mom"]["minsts"]
    assert total_mmx == pytest.approx(paper.TABLE3_TOTALS["mmx"], rel=0.03)
    assert total_mom == pytest.approx(paper.TABLE3_TOTALS["mom"], rel=0.03)
