"""Benchmark: Table 1 resource scaling — the near-saturation sweep.

The paper sized register files and windows "to achieve reasonable (near
saturation) processor performance" per thread count.  This ablation
validates our sizing: halving the 8-thread resources must cost clearly
more performance than doubling them gains (i.e., the chosen point sits on
the flat part of the curve).
"""

from dataclasses import replace

from conftest import run_once
from repro.analysis import format_table
from repro.core import SMTConfig, SMTProcessor
from repro.core.params import Resources, scaled_resources
from repro.isa.registers import RegisterClass
from repro.memory import PerfectMemory
from repro.workloads import build_workload_traces


def _scaled(resources: Resources, factor: float) -> Resources:
    return Resources(
        rename_regs={
            cls: max(8, int(count * factor))
            for cls, count in resources.rename_regs.items()
        },
        queue_sizes={
            name: max(8, int(size * factor))
            for name, size in resources.queue_sizes.items()
        },
        graduation_window=max(16, int(resources.graduation_window * factor)),
    )


def _run(isa: str, factor: float, scale: float) -> float:
    resources = _scaled(scaled_resources(8), factor)
    config = SMTConfig(isa=isa, n_threads=8, resources=resources)
    traces = build_workload_traces(isa, scale=scale)
    return SMTProcessor(config, PerfectMemory(), traces).run().eipc


def test_table1_resource_saturation(benchmark, bench_scale):
    def sweep():
        rows = {}
        for isa in ("mmx", "mom"):
            rows[isa] = {
                factor: _run(isa, factor, bench_scale)
                for factor in (0.5, 1.0, 2.0)
            }
        return rows

    rows = run_once(benchmark, sweep)
    table = [
        [isa.upper(), rows[isa][0.5], rows[isa][1.0], rows[isa][2.0]]
        for isa in rows
    ]
    print(
        "\n"
        + format_table(
            ["ISA", "0.5x resources", "1x (Table 1)", "2x resources"],
            table,
            title="Table 1 ablation — 8-thread EIPC vs. resource scaling",
        )
    )
    for isa in rows:
        gain_up = rows[isa][2.0] / rows[isa][1.0] - 1
        loss_down = 1 - rows[isa][0.5] / rows[isa][1.0]
        # Near saturation: doubling buys little; halving hurts more.
        assert gain_up < 0.15
        assert loss_down > gain_up - 0.02
