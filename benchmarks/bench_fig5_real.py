"""Benchmark: regenerate Figure 5 (performance under real memory)."""

from conftest import run_once
from repro.analysis import run_fig5_real


def test_fig5_real_memory(benchmark, bench_scale, bench_threads, bench_runner):
    result = run_once(
        benchmark, run_fig5_real, scale=bench_scale, threads=bench_threads, runner=bench_runner
    )
    print("\n" + result.report)
    eipc = result.measured["eipc"]
    degradation = result.measured["degradation"]
    # Shape: the real memory system costs both ISAs real throughput...
    assert 0.05 < degradation["mmx"] < 0.6
    assert 0.05 < degradation["mom"] < 0.6
    # ...and MOM still delivers more equivalent work than MMX throughout.
    for n in bench_threads:
        assert eipc["mom"][n] > 0.9 * eipc["mmx"][n]
    # Diminishing returns: going 4 -> 8 threads buys little or nothing
    # (the paper's central figure-5 observation).
    if 4 in bench_threads and 8 in bench_threads:
        assert eipc["mom"][8] < 1.15 * eipc["mom"][4]
