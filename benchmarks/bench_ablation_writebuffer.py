"""Ablation: coalescing write-buffer depth (paper section 3 sizing).

The paper uses an 8-deep coalescing write buffer with selective flush on
the write-through L1.  This bench shows the sizing rationale: a 2-entry
buffer back-pressures stores visibly, while 16 entries add nothing.
"""

from conftest import run_once
from repro.analysis import format_table
from repro.core import SMTConfig, SMTProcessor
from repro.memory import ConventionalHierarchy
from repro.workloads import build_workload_traces


def _run(depth: int, scale: float):
    memory = ConventionalHierarchy(write_buffer_depth=depth)
    config = SMTConfig(isa="mmx", n_threads=4)
    traces = build_workload_traces("mmx", scale=scale)
    result = SMTProcessor(config, memory, traces).run()
    return result.eipc, memory.l1.write_buffer.full_stalls


def test_write_buffer_depth_ablation(benchmark, bench_scale):
    def sweep():
        return {depth: _run(depth, bench_scale) for depth in (2, 8, 16)}

    results = run_once(benchmark, sweep)
    print(
        "\n"
        + format_table(
            ["depth", "EIPC", "full-buffer stalls"],
            [[d, e, s] for d, (e, s) in results.items()],
            title="Ablation — write-buffer depth, 4 threads",
        )
    )
    # Shallow buffers stall more often.
    assert results[2][1] >= results[8][1]
    # The paper's 8 entries sit at the knee: 16 entries buy almost nothing.
    assert results[16][0] <= results[8][0] * 1.05
