"""Benchmark: regenerate Table 4 (cache behaviour vs. thread count)."""

from conftest import run_once
from repro.analysis import run_table4_cache


def test_table4_cache_behaviour(benchmark, bench_scale, bench_threads, bench_runner):
    result = run_once(
        benchmark, run_table4_cache, scale=bench_scale, threads=bench_threads, runner=bench_runner
    )
    print("\n" + result.report)
    low, high = min(bench_threads), max(bench_threads)
    for isa in ("mmx", "mom"):
        l1 = result.measured["l1_hit"][isa]
        icache = result.measured["icache_hit"][isa]
        latency = result.measured["l1_latency"][isa]
        # Inter-thread interference: hit rates fall, latency rises.
        assert l1[low] > l1[high]
        assert icache[low] >= icache[high]
        assert latency[high] > latency[low]
        # Single-thread locality is high (algorithm-level reuse).
        assert l1[low] > 0.95
    # MOM pays comparable-or-more L1 latency at one thread (stream
    # element queuing), as in the paper's Table 4 (1.74 vs 1.39).  Small
    # bench scales carry a little noise, hence the tolerance.
    assert (
        result.measured["l1_latency"]["mom"][low]
        > 0.75 * result.measured["l1_latency"]["mmx"][low]
    )
