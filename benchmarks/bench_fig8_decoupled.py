"""Benchmark: regenerate Figure 8 (fetch policies, decoupled hierarchy)."""

from conftest import run_once
from repro.analysis import run_fig8_decoupled


def test_fig8_decoupled_hierarchy(benchmark, bench_scale, bench_threads, bench_runner):
    result = run_once(
        benchmark, run_fig8_decoupled, scale=bench_scale, threads=bench_threads, runner=bench_runner
    )
    print("\n" + result.report)
    eipc = result.measured["eipc"]
    # Every configuration still completes the workload sensibly.
    for isa in ("mmx", "mom"):
        for series in eipc[isa].values():
            for value in series.values():
                assert value > 0.5
    # MOM gains more from decoupling-aware fetch than MMX does (the
    # paper: up to 7 % for MOM, almost nothing for MMX).
    assert result.measured["gain"]["mom"] >= result.measured["gain"]["mmx"] - 0.05
