"""Sensitivity: do the conclusions survive memory-technology changes?

Sweeps the two memory-timing constants the paper fixed by its 2001
technology point — DRDRAM device latency and L2 latency — and checks the
qualitative conclusion (SMT+MOM delivers the most equivalent work) holds
across a 2-4x range of each.
"""

from conftest import run_once
from repro.analysis import format_table
from repro.core import SMTConfig, SMTProcessor
from repro.memory import ConventionalHierarchy
from repro.memory.cache import CacheConfig, L2_UNIFIED
from repro.memory.dram import RambusChannel
from repro.workloads import build_workload_traces


def _run(isa: str, scale: float, dram_latency: int = 60, l2_latency: int = 12):
    l2_config = CacheConfig(
        "L2",
        size=L2_UNIFIED.size,
        assoc=L2_UNIFIED.assoc,
        line=L2_UNIFIED.line,
        banks=L2_UNIFIED.banks,
        latency=l2_latency,
    )
    memory = ConventionalHierarchy(dram=RambusChannel(latency=dram_latency))
    # Rebuild the L2 with the swept latency on the shared DRAM channel.
    from repro.memory.cache import L2Cache

    memory.l2 = L2Cache(memory.dram, config=l2_config)
    memory.l1.l2 = memory.l2
    memory.icache.l2 = memory.l2
    memory.stats.l2 = memory.l2.stats
    traces = build_workload_traces(isa, scale=scale)
    return SMTProcessor(
        SMTConfig(isa=isa, n_threads=4), memory, traces
    ).run()


def test_memory_technology_sensitivity(benchmark, bench_scale):
    points = [
        ("paper (60/12)", dict(dram_latency=60, l2_latency=12)),
        ("slow DRAM (120)", dict(dram_latency=120, l2_latency=12)),
        ("fast DRAM (30)", dict(dram_latency=30, l2_latency=12)),
        ("slow L2 (24)", dict(dram_latency=60, l2_latency=24)),
        ("fast L2 (6)", dict(dram_latency=60, l2_latency=6)),
    ]

    def sweep():
        return {
            label: {
                isa: _run(isa, bench_scale, **params).eipc
                for isa in ("mmx", "mom")
            }
            for label, params in points
        }

    results = run_once(benchmark, sweep)
    rows = [
        [label, values["mmx"], values["mom"], values["mom"] / values["mmx"]]
        for label, values in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["memory timing", "MMX EIPC", "MOM EIPC", "MOM/MMX"],
            rows,
            title="Sensitivity — memory latency vs. the MOM advantage, 4T",
        )
    )
    # The streaming ISA keeps its equivalent-work lead at the paper's
    # technology point and when memory gets faster...
    for label in ("paper (60/12)", "fast DRAM (30)", "fast L2 (6)"):
        assert results[label]["mom"] > 0.95 * results[label]["mmx"], label
    # ...while very slow DRAM erodes it — our MOM model has no vector
    # chaining, so whole-stream waits amplify miss latency (the known
    # deviation documented in docs/MODEL.md and EXPERIMENTS.md).
    assert results["slow DRAM (120)"]["mom"] > 0.85 * results["slow DRAM (120)"]["mmx"]
    # Slower memory hurts absolute throughput.
    assert results["slow DRAM (120)"]["mmx"] <= results["fast DRAM (30)"]["mmx"] * 1.05
