"""Methodology bench: the compared metrics are scale-free.

DESIGN.md substitutes 1:10,000-scaled traces for the paper's 1.4 G
instructions, on the claim that the *ratio* metrics stabilize well below
full length.  This bench runs the key metrics at 3 trace scales spanning
4x and asserts they agree within tolerance — the empirical license for
the whole scaled methodology.
"""

from conftest import run_once
from repro.analysis import format_table
from repro.analysis.sweeps import relative_spread, scale_convergence


def test_metrics_converge_across_scales(benchmark, bench_scale):
    scales = (bench_scale, bench_scale * 2, bench_scale * 4)

    def sweep():
        return scale_convergence(scales, n_threads=4)

    results = run_once(benchmark, sweep)
    rows = [
        [
            f"{scale:g}",
            data["eipc_ratio"],
            data["mmx_ipc"],
            f"{data['mmx_l1_hit']:.1%}",
            f"{data['mom_l1_hit']:.1%}",
        ]
        for scale, data in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["scale", "MOM/MMX EIPC", "MMX IPC", "MMX L1", "MOM L1"],
            rows,
            title="Methodology — metric convergence across trace scales",
        )
    )
    ratios = [d["eipc_ratio"] for d in results.values()]
    ipcs = [d["mmx_ipc"] for d in results.values()]
    # The headline comparison metric varies modestly across a 4x scale
    # span, and the two larger scales (where cold effects are amortized)
    # agree closely — the convergence that licenses the methodology.
    assert relative_spread(ratios) < 0.25
    assert relative_spread(ratios[-2:]) < 0.10
    assert relative_spread(ipcs) < 0.35
