"""Benchmark: sampled vs. full-detail simulation of the reference run.

Times the SMARTS-style sampled mode on the hot-loop configuration
(mom/8T/conventional/rr) and prints it next to the full-detail run: the
effective instruction throughput, the number of measurement windows and
the 95 % confidence interval the samples produce.
"""

import time

from conftest import run_once
from repro.analysis.runner import RunRequest, execute_request
from repro.analysis.experiments import DEFAULT_SAMPLING


def test_sampled_vs_full_detail(benchmark, bench_scale, bench_runner):
    sampled_request = RunRequest(
        "mom", 8, scale=bench_scale, sampling=DEFAULT_SAMPLING
    )
    t0 = time.perf_counter()
    full = execute_request(
        RunRequest("mom", 8, scale=bench_scale),
        bench_runner.trace_dir,
    )
    full_seconds = time.perf_counter() - t0
    sampled = run_once(
        benchmark, execute_request, sampled_request, bench_runner.trace_dir
    )

    windows = len(sampled.samples)
    detail_fraction = (
        sampled.committed_instructions / full.committed_instructions
    )
    print(
        f"\nfull detail: EIPC {full.eipc:.3f}, "
        f"{full.committed_instructions} insts in {full_seconds:.2f} s"
    )
    print(
        f"sampled:     EIPC {sampled.eipc:.3f} "
        f"(mean {sampled.eipc_mean:.3f} ± {sampled.eipc_ci95:.3f}, "
        f"{windows} windows, {detail_fraction:.1%} of the stream in detail)"
    )

    assert windows >= 2
    assert sampled.program_completions == full.program_completions
    # Accuracy at benchmark scale: full detail inside (or near) the
    # sampled CI — the tight statement is tested at 1e-4 in tier 1;
    # at smoke scales few windows fit, so allow 2x the half-width.
    assert abs(full.eipc - sampled.eipc_mean) <= 2 * sampled.eipc_ci95
