"""Ablation: hardware stride prefetching vs stream ISA latency tolerance.

The paper argues MOM's stream instructions are a *better* answer to
memory latency than prefetching bolted onto a packed-SIMD ISA.  This
bench gives the MMX machine a stride prefetcher and measures how much of
the gap it closes.
"""

from conftest import run_once
from repro.analysis import format_table
from repro.core import SMTConfig, SMTProcessor
from repro.memory import ConventionalHierarchy
from repro.memory.prefetch import PrefetchingHierarchy
from repro.workloads import build_workload_traces


def _run(isa: str, memory, scale: float):
    traces = build_workload_traces(isa, scale=scale)
    return SMTProcessor(
        SMTConfig(isa=isa, n_threads=4), memory, traces
    ).run()


def test_prefetch_ablation(benchmark, bench_scale):
    def sweep():
        out = {}
        out["mmx"] = _run("mmx", ConventionalHierarchy(), bench_scale)
        for depth in (1, 2, 4):
            out[f"mmx+pf{depth}"] = _run(
                "mmx", PrefetchingHierarchy(depth=depth), bench_scale
            )
        out["mom"] = _run("mom", ConventionalHierarchy(), bench_scale)
        return out

    results = run_once(benchmark, sweep)
    rows = [
        [name, r.eipc, f"{r.memory.l1.hit_rate:.1%}", f"{r.memory.l1.mean_latency:.2f}"]
        for name, r in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["machine", "EIPC", "L1 hit", "L1 latency"],
            rows,
            title="Ablation — stride prefetch vs streaming ISA, 4 threads",
        )
    )
    base = results["mmx"]
    best_prefetch = max(
        results[k].eipc for k in results if k.startswith("mmx+pf")
    )
    # Prefetching must not cripple the machine, and the streaming ISA
    # still delivers the most equivalent work.
    assert best_prefetch > 0.9 * base.eipc
    assert results["mom"].eipc > best_prefetch
