"""Extension bench: SMT vs CMP (the paper's section-3 architecture debate).

Not a figure in the paper — the authors assert SMT's advantage without
evaluating CMP.  This bench builds the comparison: an 8-context SMT vs a
CMP of 8 simple cores with private L1s, same ISA, same workload, same
shared L2/DRDRAM.
"""

from conftest import run_once
from repro.analysis import format_table
from repro.core import SMTConfig, SMTProcessor
from repro.core.cmp import CmpSystem
from repro.memory import ConventionalHierarchy
from repro.workloads import build_workload_traces


def _smt(isa: str, n_threads: int, scale: float):
    traces = build_workload_traces(isa, scale=scale)
    return SMTProcessor(
        SMTConfig(isa=isa, n_threads=n_threads),
        ConventionalHierarchy(),
        traces,
    ).run()


def _cmp(isa: str, n_cores: int, scale: float):
    traces = build_workload_traces(isa, scale=scale)
    return CmpSystem(isa, n_cores, traces).run()


def test_smt_vs_cmp(benchmark, bench_scale):
    def sweep():
        out = {}
        for isa in ("mmx", "mom"):
            out[isa] = {
                "smt1": _smt(isa, 1, bench_scale).eipc,
                "smt8": _smt(isa, 8, bench_scale).eipc,
                "cmp4": _cmp(isa, 4, bench_scale).eipc,
                "cmp8": _cmp(isa, 8, bench_scale).eipc,
            }
        return out

    results = run_once(benchmark, sweep)
    rows = [
        [isa.upper()] + [results[isa][k] for k in ("smt1", "cmp4", "cmp8", "smt8")]
        for isa in results
    ]
    print(
        "\n"
        + format_table(
            ["ISA", "SMT 1T", "CMP x4", "CMP x8", "SMT 8T"],
            rows,
            title="Extension — SMT vs CMP, EIPC on the media workload",
        )
    )
    for isa in results:
        r = results[isa]
        # Both TLP machines beat the single wide core on throughput.
        assert r["cmp8"] > r["smt1"]
        assert r["smt8"] > r["smt1"]
        # Adding cores helps the CMP.
        assert r["cmp8"] > r["cmp4"] * 0.95
