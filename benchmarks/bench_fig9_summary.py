"""Benchmark: regenerate Figure 9 and the paper's headline summary."""

from conftest import run_once
from repro.analysis import run_fig9_summary


def test_fig9_memory_organizations(benchmark, bench_scale, bench_threads, bench_runner):
    result = run_once(
        benchmark, run_fig9_summary, scale=bench_scale, threads=bench_threads, runner=bench_runner
    )
    print("\n" + result.report)
    eipc = result.measured["eipc"]
    summary = result.measured["summary"]
    top = max(bench_threads)
    for isa in ("mmx", "mom"):
        # Ideal memory is the upper bound for each ISA.
        assert eipc[isa]["perfect"][top] >= eipc[isa]["conventional"][top]
        assert eipc[isa]["perfect"][top] >= eipc[isa]["decoupled"][top]
    # Decoupling is at worst mildly negative for either ISA (its gains
    # for the streaming ISA resolve at larger trace scales; see
    # EXPERIMENTS.md).
    assert (
        eipc["mom"]["decoupled"][top] >= 0.90 * eipc["mom"]["conventional"][top]
    )
    # Headline: both SMT machines multiply the superscalar baseline's
    # throughput, and SMT+MOM delivers the most equivalent work.
    assert summary["mmx"]["speedup"] > 1.7
    assert summary["mom"]["speedup"] > summary["mmx"]["speedup"]
