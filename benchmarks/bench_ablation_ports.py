"""Ablation: memory-port count of the conventional hierarchy.

The decoupled organization halves the ports per cache level; this bench
measures what raw port count is worth on the conventional hierarchy,
separating the port effect from the working-set decoupling effect.
"""

from conftest import run_once
from repro.analysis import format_table
from repro.core import SMTConfig, SMTProcessor
from repro.memory import ConventionalHierarchy
from repro.workloads import build_workload_traces


def _run(isa: str, n_ports: int, scale: float) -> float:
    config = SMTConfig(isa=isa, n_threads=8)
    traces = build_workload_traces(isa, scale=scale)
    memory = ConventionalHierarchy(n_ports=n_ports)
    return SMTProcessor(config, memory, traces).run().eipc


def test_memory_port_ablation(benchmark, bench_scale):
    def sweep():
        return {
            isa: {ports: _run(isa, ports, bench_scale) for ports in (2, 4, 8)}
            for isa in ("mmx", "mom")
        }

    results = run_once(benchmark, sweep)
    rows = [
        [isa.upper()] + [results[isa][p] for p in (2, 4, 8)] for isa in results
    ]
    print(
        "\n"
        + format_table(
            ["ISA", "2 ports", "4 ports (paper)", "8 ports"],
            rows,
            title="Ablation — L1 memory ports, 8 threads, EIPC",
        )
    )
    for isa in results:
        # More ports never hurt, and 4 -> 8 is worth less than 2 -> 4.
        assert results[isa][4] >= results[isa][2] * 0.98
        gain_24 = results[isa][4] - results[isa][2]
        gain_48 = results[isa][8] - results[isa][4]
        assert gain_48 <= gain_24 + 0.1
