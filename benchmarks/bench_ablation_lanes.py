"""Ablation: MOM vector-unit width (1, 2 and 4 parallel pipes).

The paper fixes the media unit at two pipes; this bench verifies the
design point: one pipe leaves stream arithmetic throughput-bound, while
four pipes buy little because the workload is integer-dominated (Amdahl —
the paper's own argument for why DLP hardware alone cannot win).
"""

from conftest import run_once
from repro.analysis import format_table
from repro.core import SMTConfig, SMTProcessor
from repro.memory import PerfectMemory
from repro.workloads import build_workload_traces


def _run(lanes: int, scale: float) -> float:
    config = SMTConfig(isa="mom", n_threads=4, vector_lanes=lanes)
    traces = build_workload_traces("mom", scale=scale)
    return SMTProcessor(config, PerfectMemory(), traces).run().eipc


def test_vector_lane_ablation(benchmark, bench_scale):
    def sweep():
        return {lanes: _run(lanes, bench_scale) for lanes in (1, 2, 4)}

    results = run_once(benchmark, sweep)
    print(
        "\n"
        + format_table(
            ["lanes", "EIPC (4 threads, ideal memory)"],
            [[lanes, eipc] for lanes, eipc in results.items()],
            title="Ablation — MOM vector pipes",
        )
    )
    assert results[2] >= results[1]          # second pipe helps
    # Doubling again buys far less than the first doubling (integer-bound).
    first_gain = results[2] - results[1]
    second_gain = results[4] - results[2]
    assert second_gain <= first_gain + 0.05
