"""Benchmark: regenerate Figure 4 (performance with perfect cache)."""

from conftest import run_once
from repro.analysis import run_fig4_ideal


def test_fig4_ideal_memory(benchmark, bench_scale, bench_threads, bench_runner):
    result = run_once(
        benchmark, run_fig4_ideal, scale=bench_scale, threads=bench_threads, runner=bench_runner
    )
    print("\n" + result.report)
    measured = result.measured
    low, high = min(bench_threads), max(bench_threads)
    # Shape: SMT scales both ISAs by roughly 2x from 1 to 8 threads...
    assert measured["mmx"][high] > 1.6 * measured["mmx"][low]
    assert measured["mom"][high] > 1.6 * measured["mom"][low]
    # ...and MOM outperforms MMX at every thread count.
    for n in bench_threads:
        assert measured["mom"][n] > measured["mmx"][n]
    # Headline: SMT+MOM @8T is well over 2x the 8-way superscalar w/ MMX.
    assert measured["mom"][high] / measured["mmx"][low] > 2.0
