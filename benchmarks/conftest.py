"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints
the measured rows next to the published values.  ``REPRO_BENCH_SCALE``
(instructions per million paper instructions) trades fidelity for
runtime; the EXPERIMENTS.md numbers were recorded at the default
experiment scale 5e-5.
"""

import os

import pytest

from repro.analysis.runner import Runner

#: Trace scale used by the benchmark suite (smaller = faster).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2e-5"))

#: Thread sweep; override with REPRO_BENCH_THREADS="1,8" for quick runs.
BENCH_THREADS = tuple(
    int(t) for t in os.environ.get("REPRO_BENCH_THREADS", "1,2,4,8").split(",")
)


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_threads():
    return BENCH_THREADS


@pytest.fixture(scope="session")
def bench_runner():
    """Session-shared run engine for the sweep benchmarks.

    Sweeps that overlap — figure 5, table 4 and figure 6's round-robin
    rows request identical simulation points — are simulated once per
    session, so each benchmark times its *incremental* work, exactly as
    ``scripts/run_experiments.py`` executes the full sweep.  Set
    ``REPRO_BENCH_CACHE=<dir>`` to also persist results across suite
    invocations.
    """
    cache_dir = os.environ.get("REPRO_BENCH_CACHE") or None
    return Runner(cache_dir=cache_dir)


def run_once(benchmark, func, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
