"""Legacy setup shim.

The primary build configuration lives in ``pyproject.toml``.  This file
exists so the package can be installed editable in offline environments
that lack the ``wheel`` package (``python setup.py develop``).
"""

from setuptools import setup

setup()
