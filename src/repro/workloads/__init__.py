"""Workload definition: the paper's MPEG-4-inspired multiprogrammed mix."""

from repro.workloads.mediabench import (
    BenchmarkProgram,
    MEDIABENCH_PROGRAMS,
    WORKLOAD_ORDER,
    build_stream_trace_variants,
    build_workload_traces,
)
from repro.workloads.multiprog import MultiprogramScheduler
from repro.workloads.streams import (
    CODE_BASE_STRIDE,
    SERVING_MIXES,
    STREAM_DEADLINE_SLACK,
    StreamDescriptor,
    generate_stream_schedule,
    rebase_trace,
)

__all__ = [
    "BenchmarkProgram",
    "MEDIABENCH_PROGRAMS",
    "WORKLOAD_ORDER",
    "build_stream_trace_variants",
    "build_workload_traces",
    "MultiprogramScheduler",
    "CODE_BASE_STRIDE",
    "SERVING_MIXES",
    "STREAM_DEADLINE_SLACK",
    "StreamDescriptor",
    "generate_stream_schedule",
    "rebase_trace",
]
