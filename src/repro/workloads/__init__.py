"""Workload definition: the paper's MPEG-4-inspired multiprogrammed mix."""

from repro.workloads.mediabench import (
    BenchmarkProgram,
    MEDIABENCH_PROGRAMS,
    WORKLOAD_ORDER,
    build_workload_traces,
)
from repro.workloads.multiprog import MultiprogramScheduler

__all__ = [
    "BenchmarkProgram",
    "MEDIABENCH_PROGRAMS",
    "WORKLOAD_ORDER",
    "build_workload_traces",
    "MultiprogramScheduler",
]
