"""User-defined workloads: bring your own media programs.

The paper's workload is one instantiation of the model; downstream users
can define their own program profiles (a video conferencing mix, a pure
audio server, ...) and run them through the same machine models:

    from repro.workloads.custom import define_program, build_custom_workload

    define_program(
        "h26x_enc", minsts=400.0,
        frac_int=0.58, frac_fp=0.0, frac_simd=0.26, frac_mem=0.16,
        vector_profile="motion_search",
    )
    traces = build_custom_workload(["h26x_enc", "gsmdec"], "mom")

``vector_profile`` selects a kernel template from a small library of
archetypes instead of requiring users to hand-tune the per-word costs.
"""

from __future__ import annotations

from repro.tracegen.mixes import WORKLOAD_MIXES, ProgramMix
from repro.tracegen.program import DEFAULT_SCALE, Trace, build_program_trace

#: Kernel-template archetypes: per-word costs of common media loop styles.
VECTOR_PROFILES: dict[str, dict[str, float]] = {
    # Sliding-window search: heavy reuse, big MMX overhead, redundant loads.
    "motion_search": dict(
        core_ops_per_word=2.0, overhead_ops_per_word=5.0, int_per_word=6.5,
        redundant_loads_per_word=0.8, loads_per_word=2.4,
        stores_per_word=0.3, stream_stride=8, tile_bytes=1024,
        tile_passes=40, stream_length=16,
    ),
    # Block transform: moderate overhead, row-strided access.
    "block_transform": dict(
        core_ops_per_word=2.0, overhead_ops_per_word=2.4, int_per_word=2.0,
        redundant_loads_per_word=0.0, loads_per_word=1.5,
        stores_per_word=0.5, stream_stride=16, tile_bytes=2048,
        tile_passes=12, stream_length=8,
    ),
    # Sample-stream filter: unit stride, light overhead.
    "stream_filter": dict(
        core_ops_per_word=2.0, overhead_ops_per_word=1.2, int_per_word=1.2,
        redundant_loads_per_word=0.0, loads_per_word=1.3,
        stores_per_word=0.3, stream_stride=8, tile_bytes=1024,
        tile_passes=16, stream_length=8,
    ),
    # No vectorizable kernel at all (pure scalar/FP program).
    "scalar_only": dict(
        core_ops_per_word=0.0, overhead_ops_per_word=0.0, int_per_word=0.0,
        redundant_loads_per_word=0.0, loads_per_word=0.0,
        stores_per_word=0.0,
    ),
}


def define_program(
    name: str,
    minsts: float,
    frac_int: float,
    frac_fp: float,
    frac_simd: float,
    frac_mem: float,
    vector_profile: str = "stream_filter",
    description: str = "",
    kernel_working_set: int = 256 << 10,
    scalar_working_set: int = 12 << 10,
    replace: bool = False,
) -> ProgramMix:
    """Register a new workload program; returns its :class:`ProgramMix`.

    ``minsts`` is the dynamic instruction count in millions at full
    (paper) scale — it sets the program's relative length in a workload.
    """
    if name in WORKLOAD_MIXES and not replace:
        raise ValueError(
            f"program {name!r} already defined (pass replace=True to override)"
        )
    if vector_profile not in VECTOR_PROFILES:
        raise KeyError(
            f"unknown vector profile {vector_profile!r}; "
            f"choose from {sorted(VECTOR_PROFILES)}"
        )
    if frac_simd > 0 and vector_profile == "scalar_only":
        raise ValueError("a SIMD fraction needs a vectorizable profile")
    template = VECTOR_PROFILES[vector_profile]
    mix = ProgramMix(
        name=name,
        description=description or f"user-defined ({vector_profile})",
        mmx_minsts=minsts,
        frac_int=frac_int,
        frac_fp=frac_fp,
        frac_simd=frac_simd,
        frac_mem=frac_mem,
        kernel_working_set=kernel_working_set,
        scalar_working_set=scalar_working_set,
        **template,
    )
    WORKLOAD_MIXES[name] = mix
    return mix


def remove_program(name: str) -> None:
    """Unregister a user-defined program (paper programs refuse)."""
    from repro.workloads.mediabench import MEDIABENCH_PROGRAMS

    if name in MEDIABENCH_PROGRAMS:
        raise ValueError(f"{name!r} is part of the paper's workload")
    WORKLOAD_MIXES.pop(name, None)


def build_custom_workload(
    names: list[str],
    isa: str,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
) -> list[Trace]:
    """Build traces for an arbitrary program list (duplicates allowed)."""
    if not names:
        raise ValueError("workload needs at least one program")
    traces = []
    seen: dict[str, int] = {}
    for name in names:
        instance = seen.get(name, 0)
        seen[name] = instance + 1
        traces.append(
            build_program_trace(name, isa, scale=scale, seed=seed + 7 * instance)
        )
    return traces
