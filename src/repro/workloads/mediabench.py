"""The multiprogrammed workload (paper Table 2 and section 4.1).

Seven Mediabench-derived programs stand in for the four MPEG-4 profiles;
MPEG-2 decode — "the most significant program" — is included twice to
round the multiprogrammed list to 8 slots.  The MPEG-4 control profile
(BIFS scene composition) is not represented, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tracegen.mixes import WORKLOAD_MIXES
from repro.tracegen.program import DEFAULT_SCALE, Trace, build_program_trace


@dataclass(frozen=True)
class BenchmarkProgram:
    """One row of the paper's Table 2."""

    name: str
    instances: int
    profile: str
    description: str
    data_set: str
    characteristics: str


#: Table 2: programs, the MPEG-4 profile each represents, and datasets.
MEDIABENCH_PROGRAMS: dict[str, BenchmarkProgram] = {
    program.name: program
    for program in [
        BenchmarkProgram(
            "mpeg2enc", 1, "MPEG-4 video",
            "MPEG-2 video encoder",
            "4 CIF frames (synthetic moving scene)",
            "motion-estimation dominated; highly vectorizable SAD kernels",
        ),
        BenchmarkProgram(
            "mpeg2dec", 2, "MPEG-4 video",
            "MPEG-2 video decoder",
            "coded bitstream of the encoder's output",
            "IDCT + motion compensation; moderate DLP, VLC scalar overhead",
        ),
        BenchmarkProgram(
            "jpegenc", 1, "MPEG-4 still image (2D)",
            "JPEG still-image encoder",
            "one 512x512 greyscale image",
            "DCT + quantization loops; entropy-coding scalar tail",
        ),
        BenchmarkProgram(
            "jpegdec", 1, "MPEG-4 still image (2D)",
            "JPEG still-image decoder",
            "coded image from jpegenc",
            "IDCT + upsampling; unrolled loops, mostly integer",
        ),
        BenchmarkProgram(
            "gsmenc", 1, "MPEG-4 audio (speech)",
            "GSM 06.10 full-rate speech encoder",
            "4 s of 8 kHz speech (synthetic)",
            "LTP correlation search vectorizable; LPC recursion scalar",
        ),
        BenchmarkProgram(
            "gsmdec", 1, "MPEG-4 audio (speech)",
            "GSM 06.10 full-rate speech decoder",
            "coded frames from gsmenc",
            "serial synthesis filtering; almost no exploitable DLP",
        ),
        BenchmarkProgram(
            "mesa", 1, "MPEG-4 still image (3D)",
            "Mesa OpenGL software renderer",
            "textured polygon scene, 64x64 viewport",
            "FP geometry + rasterization; NOT vectorized (no FP u-SIMD)",
        ),
    ]
}

#: The randomized program order of section 5.1 (MPEG-2 decode twice).
WORKLOAD_ORDER: tuple[str, ...] = (
    "mpeg2enc",
    "gsmdec",
    "mpeg2dec",
    "gsmenc",
    "jpegdec",
    "jpegenc",
    "mesa",
    "mpeg2dec",
)


def build_workload_traces(
    isa: str,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    cache=None,
) -> list[Trace]:
    """Build the 8 program traces of the workload, in §5.1 order.

    The second mpeg2dec instance gets a different seed so its trace is a
    distinct execution of the same program.  ``cache`` is an optional
    :class:`repro.tracegen.serialize.TraceCache`: when given, traces are
    loaded from (or persisted to) its directory instead of being rebuilt
    — generation is deterministic, so the result is identical either way.
    """
    if isa not in ("mmx", "mom"):
        raise ValueError(f"unknown ISA {isa!r}")
    traces = []
    seen: dict[str, int] = {}
    for name in WORKLOAD_ORDER:
        instance = seen.get(name, 0)
        seen[name] = instance + 1
        program_seed = seed + 7 * instance
        if cache is not None:
            traces.append(cache.get(name, isa, scale, program_seed))
        else:
            traces.append(
                build_program_trace(name, isa, scale=scale, seed=program_seed)
            )
    return traces


def build_stream_trace_variants(
    isa: str,
    needed: dict[str, int],
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    cache=None,
) -> dict[str, list[Trace]]:
    """Per-program trace variants for concurrent serving streams.

    ``needed`` maps program name to how many distinct instances the
    open-loop schedule requires.  Variant ``v`` uses seed ``seed + 7*v``
    — the same per-instance scheme as :func:`build_workload_traces`, so
    variant 0 of every program (and variant 1 of mpeg2dec) shares trace
    -cache entries with the closed-loop workload.  Distinct variants
    matter for correctness, not just realism: two concurrent streams
    running one identical trace walk the same pc sequence in lockstep,
    and their thread-salted I-cache lines can phase-lock into a
    permanent conflict-miss cycle.
    """
    if isa not in ("mmx", "mom"):
        raise ValueError(f"unknown ISA {isa!r}")
    variants: dict[str, list[Trace]] = {}
    for name in sorted(needed):
        if name not in MEDIABENCH_PROGRAMS:
            raise ValueError(f"unknown program {name!r}")
        variants[name] = []
        for instance in range(needed[name]):
            program_seed = seed + 7 * instance
            if cache is not None:
                variants[name].append(
                    cache.get(name, isa, scale, program_seed)
                )
            else:
                variants[name].append(
                    build_program_trace(
                        name, isa, scale=scale, seed=program_seed
                    )
                )
    return variants


def workload_total_minsts(isa: str) -> float:
    """Paper-scale workload instruction total (millions) for one ISA."""
    from repro.tracegen.mixes import predicted_counts

    total = 0.0
    for name in WORKLOAD_ORDER:
        total += predicted_counts(WORKLOAD_MIXES[name], isa)["total"]
    return total
