"""The paper's multiprogramming methodology (section 5.1).

Simulation starts with as many programs as hardware contexts.  When a
program completes, the next program from the ordered list starts in the
freed context; when the list is exhausted it restarts from the beginning.
The run ends when the 8th context-occupancy completes, so the machine is
never running fewer threads than it supports — the measure is throughput,
matching continuous media streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tracegen.program import Trace


@dataclass
class ThreadSlot:
    """One hardware context's current program assignment."""

    trace: Trace
    #: Index into the workload list this assignment came from.
    program_index: int


@dataclass
class MultiprogramScheduler:
    """Rotates the workload's programs through hardware thread contexts."""

    traces: list[Trace]
    n_threads: int
    #: Total program completions after which the run ends (the paper runs
    #: "until the end of the 8th context").
    completions_target: int = 8
    _next_program: int = field(default=0, init=False)
    _completions: int = field(default=0, init=False)
    #: True once the completion target is reached.  A plain attribute
    #: rather than a property: the simulator loop polls it several times
    #: per cycle.
    done: bool = field(default=False, init=False)

    def __post_init__(self):
        if self.n_threads < 1:
            raise ValueError("need at least one hardware context")
        if not self.traces:
            raise ValueError("empty workload")
        self.done = self._completions >= self.completions_target

    def initial_assignments(self) -> list[ThreadSlot]:
        """Programs for each context at cycle zero."""
        return self.next_assignments(self.n_threads)

    def next_assignments(self, count: int) -> list[ThreadSlot]:
        """Issue the next ``count`` program assignments.

        Multi-core drivers share one scheduler across processors, each of
        which requests only its own contexts' worth of programs.
        """
        return [self._issue_next() for __ in range(count)]

    def _issue_next(self) -> ThreadSlot:
        index = self._next_program % len(self.traces)
        self._next_program += 1
        return ThreadSlot(trace=self.traces[index], program_index=index)

    def on_completion(self) -> ThreadSlot | None:
        """Record a program completion; returns the replacement program.

        Returns ``None`` once the completion target is reached — the
        simulation should then drain and stop.
        """
        self._completions += 1
        if self._completions >= self.completions_target:
            self.done = True
            return None
        return self._issue_next()

    @property
    def completions(self) -> int:
        return self._completions
