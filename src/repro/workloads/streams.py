"""Open-loop stream traffic: codec jobs arriving on a seeded schedule.

The closed-loop §5.1 methodology (``multiprog.py``) always keeps every
hardware context busy; a media *server* sees the opposite regime —
streams arrive when users connect, queue when the machine is full, and
carry deadlines (a decoder that finishes after its presentation time
has already glitched).  This module defines the traffic side of the
serving scenario: stream descriptors with per-codec deadline slack and
a deterministic Poisson-like arrival generator.

Determinism contract (docs/SERVING.md): all randomness flows through
one explicitly seeded ``random.Random(seed)`` instance — the schedule
is a pure function of ``(n_streams, mean_interarrival, seed, mix)`` —
and arrivals are strictly increasing by construction, so no tie-break
depends on iteration order.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace as dc_replace

from repro.isa.instruction import Instruction
from repro.tracegen.program import Trace
from repro.workloads.mediabench import MEDIABENCH_PROGRAMS

#: Byte distance between successive streams' code bases (8 I-cache
#: lines).  Page-offset bits pass through address translation untouched,
#: so with a shared code base every program's hot loop competes for the
#: handful of cache sets selected by the pfn hash alone; three streams
#: drawing the same page colour then thrash a 2-way set forever.  Real
#: server processes are not loaded at one address — spacing stream code
#: bases apart restores that diversity.
CODE_BASE_STRIDE = 256

#: Per-program deadline slack: the deadline is ``arrival + slack *
#: expanded_length`` cycles — i.e. the stream must finish within
#: ``slack`` times its standalone service estimate (the trace's
#: stream-expanded instruction count at EIPC 1.0).  Decoders are tight
#: (playback deadlines are user-visible), encoders and the renderer are
#: batch-like and tolerate more queueing.
STREAM_DEADLINE_SLACK: dict[str, float] = {
    "mpeg2dec": 4.0,
    "jpegdec": 4.0,
    "gsmdec": 3.0,
    "mpeg2enc": 8.0,
    "jpegenc": 6.0,
    "gsmenc": 5.0,
    "mesa": 8.0,
}

#: Named traffic mixes as ``(program, weight)`` tuples (ordered — the
#: weighted draw must not depend on dict iteration).  ``mixed`` models
#: a general media portal (decode-heavy, as served traffic is); the
#: narrow mixes stress one codec family.
SERVING_MIXES: dict[str, tuple[tuple[str, int], ...]] = {
    "mixed": (
        ("mpeg2dec", 4),
        ("jpegdec", 2),
        ("gsmdec", 2),
        ("mpeg2enc", 1),
        ("jpegenc", 1),
        ("gsmenc", 1),
        ("mesa", 1),
    ),
    "video": (
        ("mpeg2dec", 3),
        ("mpeg2enc", 1),
    ),
    "audio": (
        ("gsmdec", 3),
        ("gsmenc", 1),
    ),
}


@dataclass(frozen=True)
class StreamDescriptor:
    """One codec job of the open-loop traffic."""

    stream_id: int
    #: Mediabench program name (``repro.workloads.mediabench``).
    program: str
    #: Arrival cycle (strictly increasing across a schedule, >= 1 so
    #: every stream flows through admission, never a constructor).
    arrival: int
    #: Deadline slack multiplier over the standalone service estimate
    #: (see :data:`STREAM_DEADLINE_SLACK`).
    deadline_slack: float

    def deadline(self, expanded_length: int) -> int:
        """Absolute deadline cycle for a trace of ``expanded_length``."""
        return self.arrival + max(1, int(self.deadline_slack * expanded_length))


def rebase_trace(trace: Trace, byte_offset: int) -> Trace:
    """Clone ``trace`` with its code region moved by ``byte_offset``.

    Every pc (and branch target — also a code address) shifts by the
    same amount; data addresses, register operands and stream shapes are
    untouched, so the rebased trace performs identical work through a
    differently-placed code image.  ``byte_offset`` must be a multiple
    of 32 (the I-cache line size) so fetch-group line boundaries fall
    between the same instructions as in the original.
    """
    if byte_offset == 0:
        return trace
    if byte_offset < 0 or byte_offset % 32:
        raise ValueError("byte_offset must be a non-negative multiple of 32")
    instructions = []
    for inst in trace.instructions:
        clone = Instruction(
            op=inst.op,
            pc=inst.pc + byte_offset,
            dst=inst.dst,
            srcs=inst.srcs,
            mem_addr=inst.mem_addr,
            mem_size=inst.mem_size,
            stream_length=inst.stream_length,
            stride=inst.stride,
            taken=inst.taken,
            target=inst.target + byte_offset if inst.is_branch else inst.target,
            equiv_mmx=inst.equiv_mmx,
        )
        instructions.append(clone)
    return dc_replace(trace, instructions=instructions)


def generate_stream_schedule(
    n_streams: int,
    mean_interarrival: int,
    seed: int = 0,
    mix: str = "mixed",
    slack_scale: float = 1.0,
) -> list[StreamDescriptor]:
    """Deterministic Poisson-like arrival schedule.

    Inter-arrival gaps are exponential draws (inverse-CDF over the
    seeded generator's uniforms) floored at one cycle; programs are
    weighted draws from the named ``mix``.  Two calls with equal
    arguments return equal schedules on any platform or hash seed.
    """
    if n_streams < 1:
        raise ValueError("need at least one stream")
    if mean_interarrival < 1:
        raise ValueError("mean inter-arrival must be >= 1 cycle")
    if mix not in SERVING_MIXES:
        raise ValueError(
            f"unknown serving mix {mix!r}; expected one of "
            f"{tuple(sorted(SERVING_MIXES))}"
        )
    if slack_scale <= 0:
        raise ValueError("slack_scale must be positive")
    weighted = SERVING_MIXES[mix]
    for name, __ in weighted:
        if name not in MEDIABENCH_PROGRAMS:
            raise ValueError(f"mix {mix!r} names unknown program {name!r}")
    total_weight = sum(weight for __, weight in weighted)
    rng = random.Random(seed)
    schedule: list[StreamDescriptor] = []
    now = 0
    for stream_id in range(n_streams):
        # 1 - random() is in (0, 1], so the log argument never hits 0.
        gap = 1 + int(-math.log(1.0 - rng.random()) * mean_interarrival)
        now += gap
        draw = rng.random() * total_weight
        program = weighted[-1][0]
        for name, weight in weighted:
            if draw < weight:
                program = name
                break
            draw -= weight
        schedule.append(
            StreamDescriptor(
                stream_id=stream_id,
                program=program,
                arrival=now,
                deadline_slack=STREAM_DEADLINE_SLACK[program] * slack_scale,
            )
        )
    return schedule
