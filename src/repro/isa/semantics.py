"""Executable semantics for the packed µ-SIMD operations.

This module makes the ISA tables *runnable*: given a mnemonic and 64-bit
register images it computes the architecturally-defined result.  The media
kernels in :mod:`repro.kernels` use these semantics in their packed
implementations, and the test suite checks them against plain-Python
reference code (saturation laws, commutativity, pack/unpack inverses...).

MOM stream operations apply the corresponding MMX semantics element-wise
over a list of 64-bit words (:func:`execute_mom`), which is exactly how the
ISA is defined: a stream instruction is the fusion of up to 16 MMX-like
instructions.  Packed-accumulator operations accumulate into 48-bit lanes
of a 192-bit accumulator (:class:`PackedAccumulator`).
"""

from __future__ import annotations

from repro.isa.datatypes import (
    ElementType as ET,
    REGISTER_BITS,
    lanewise,
    lanewise_unary,
    pack_lanes,
    saturate,
    to_signed,
    to_unsigned,
    unpack_lanes,
    wrap,
)

_U64 = (1 << REGISTER_BITS) - 1


def _mul_low(etype: ET):
    def op(x: int, y: int) -> int:
        return to_signed(to_unsigned(x * y, etype.bits), etype.bits)
    return op


def _mul_high(etype: ET):
    def op(x: int, y: int) -> int:
        return (x * y) >> etype.bits
    return op


def _avg(x: int, y: int) -> int:
    return (x + y + 1) >> 1


def pmaddwd(a: int, b: int) -> int:
    """Multiply signed 16-bit lanes, add adjacent 32-bit pairs (MMX pmaddwd)."""
    xs = unpack_lanes(a, ET.INT16)
    ys = unpack_lanes(b, ET.INT16)
    products = [x * y for x, y in zip(xs, ys)]
    sums = [products[0] + products[1], products[2] + products[3]]
    return pack_lanes([wrap(s, ET.INT32) for s in sums], ET.INT32)


def psadbw(a: int, b: int) -> int:
    """Sum of absolute byte differences, zero-extended into the low word."""
    xs = unpack_lanes(a, ET.UINT8)
    ys = unpack_lanes(b, ET.UINT8)
    total = sum(abs(x - y) for x, y in zip(xs, ys))
    return total & _U64


def _pack(a: int, b: int, src: ET, dst: ET) -> int:
    """Narrow two source registers into one, saturating into ``dst``."""
    lanes = unpack_lanes(a, src) + unpack_lanes(b, src)
    return pack_lanes([saturate(v, dst) for v in lanes], dst)


def _unpack_low(a: int, b: int, etype: ET) -> int:
    xs = unpack_lanes(a, etype)
    ys = unpack_lanes(b, etype)
    half = etype.lanes // 2
    out = []
    for i in range(half):
        out.append(xs[i])
        out.append(ys[i])
    return pack_lanes(out, etype)


def _unpack_high(a: int, b: int, etype: ET) -> int:
    xs = unpack_lanes(a, etype)
    ys = unpack_lanes(b, etype)
    half = etype.lanes // 2
    out = []
    for i in range(half, etype.lanes):
        out.append(xs[i])
        out.append(ys[i])
    return pack_lanes(out, etype)


def _shift(a: int, amount: int, etype: ET, direction: str) -> int:
    def op(x: int) -> int:
        if direction == "left":
            return x << amount
        if direction == "logical":
            return to_unsigned(x, etype.bits) >> amount
        return x >> amount  # arithmetic: Python >> preserves sign
    return lanewise_unary(op, a, etype, saturating=False)


_BINARY_SEMANTICS = {
    # mnemonic suffix -> (etype, lane op, saturating)
    "paddb": (ET.INT8, lambda x, y: x + y, False),
    "paddw": (ET.INT16, lambda x, y: x + y, False),
    "paddd": (ET.INT32, lambda x, y: x + y, False),
    "paddsb": (ET.INT8, lambda x, y: x + y, True),
    "paddsw": (ET.INT16, lambda x, y: x + y, True),
    "paddusb": (ET.UINT8, lambda x, y: x + y, True),
    "paddusw": (ET.UINT16, lambda x, y: x + y, True),
    "psubb": (ET.INT8, lambda x, y: x - y, False),
    "psubw": (ET.INT16, lambda x, y: x - y, False),
    "psubd": (ET.INT32, lambda x, y: x - y, False),
    "psubsb": (ET.INT8, lambda x, y: x - y, True),
    "psubsw": (ET.INT16, lambda x, y: x - y, True),
    "psubusb": (ET.UINT8, lambda x, y: x - y, True),
    "psubusw": (ET.UINT16, lambda x, y: x - y, True),
    "pmullw": (ET.INT16, _mul_low(ET.INT16), False),
    "pmulhw": (ET.INT16, _mul_high(ET.INT16), False),
    "pmulhuw": (ET.UINT16, _mul_high(ET.UINT16), False),
    "pcmpeqb": (ET.INT8, lambda x, y: -1 if x == y else 0, False),
    "pcmpeqw": (ET.INT16, lambda x, y: -1 if x == y else 0, False),
    "pcmpeqd": (ET.INT32, lambda x, y: -1 if x == y else 0, False),
    "pcmpgtb": (ET.INT8, lambda x, y: -1 if x > y else 0, False),
    "pcmpgtw": (ET.INT16, lambda x, y: -1 if x > y else 0, False),
    "pcmpgtd": (ET.INT32, lambda x, y: -1 if x > y else 0, False),
    "pavgb": (ET.UINT8, _avg, False),
    "pavgw": (ET.UINT16, _avg, False),
    "pminub": (ET.UINT8, min, False),
    "pminsw": (ET.INT16, min, False),
    "pmaxub": (ET.UINT8, max, False),
    "pmaxsw": (ET.INT16, max, False),
}

_UNARY_SEMANTICS = {
    # Bases of the MOM vabs*/vneg* stream operations (no MMX architectural
    # counterpart; MMX code synthesizes them from compare/sub sequences).
    "pabsb": (ET.INT8, abs),
    "pabsw": (ET.INT16, abs),
    "pabsd": (ET.INT32, abs),
    "pnegb": (ET.INT8, lambda x: -x),
    "pnegw": (ET.INT16, lambda x: -x),
    "pnegd": (ET.INT32, lambda x: -x),
}

#: Public view of the table-driven handler sets, consumed by
#: :mod:`repro.verify.isacheck` when cross-validating the ISA tables.
BINARY_MNEMONICS = frozenset(_BINARY_SEMANTICS)
UNARY_MNEMONICS = frozenset(_UNARY_SEMANTICS)


def execute_mmx(mnemonic: str, a: int, b: int = 0, imm: int = 0) -> int:
    """Execute one MMX-like packed operation on 64-bit register images.

    Supports the arithmetic/logic/format subset used by the media kernels;
    raises ``KeyError`` for mnemonics without modeled semantics (e.g.
    memory operations, which the kernels perform through plain array
    access).
    """
    if mnemonic in _BINARY_SEMANTICS:
        etype, op, saturating = _BINARY_SEMANTICS[mnemonic]
        return lanewise(op, a, b, etype, saturating=saturating)
    if mnemonic in _UNARY_SEMANTICS:
        etype, op = _UNARY_SEMANTICS[mnemonic]
        return lanewise_unary(op, a, etype, saturating=False)
    if mnemonic == "pinsrw":
        return pinsrw(a, b, imm)
    if mnemonic == "pmaddwd":
        return pmaddwd(a, b)
    if mnemonic == "psadbw":
        return psadbw(a, b)
    if mnemonic == "pand":
        return a & b
    if mnemonic == "pandn":
        return (~a & b) & _U64
    if mnemonic == "por":
        return a | b
    if mnemonic == "pxor":
        return a ^ b
    if mnemonic == "packsswb":
        return _pack(a, b, ET.INT16, ET.INT8)
    if mnemonic == "packssdw":
        return _pack(a, b, ET.INT32, ET.INT16)
    if mnemonic == "packuswb":
        return _pack(a, b, ET.INT16, ET.UINT8)
    if mnemonic == "punpcklbw":
        return _unpack_low(a, b, ET.INT8)
    if mnemonic == "punpcklwd":
        return _unpack_low(a, b, ET.INT16)
    if mnemonic == "punpckldq":
        return _unpack_low(a, b, ET.INT32)
    if mnemonic == "punpckhbw":
        return _unpack_high(a, b, ET.INT8)
    if mnemonic == "punpckhwd":
        return _unpack_high(a, b, ET.INT16)
    if mnemonic == "punpckhdq":
        return _unpack_high(a, b, ET.INT32)
    if mnemonic == "psllw":
        return _shift(a, imm, ET.UINT16, "left")
    if mnemonic == "pslld":
        return _shift(a, imm, ET.UINT32, "left")
    if mnemonic == "psllq":
        return (a << imm) & _U64
    if mnemonic == "psrlw":
        return _shift(a, imm, ET.UINT16, "logical")
    if mnemonic == "psrld":
        return _shift(a, imm, ET.UINT32, "logical")
    if mnemonic == "psrlq":
        return a >> imm
    if mnemonic == "psraw":
        return _shift(a, imm, ET.INT16, "arith")
    if mnemonic == "psrad":
        return _shift(a, imm, ET.INT32, "arith")
    if mnemonic == "psumb":
        return sum(unpack_lanes(a, ET.INT8)) & _U64
    if mnemonic == "psumw":
        return sum(unpack_lanes(a, ET.INT16)) & _U64
    if mnemonic == "psumd":
        return sum(unpack_lanes(a, ET.INT32)) & _U64
    if mnemonic == "pshufw":
        lanes = unpack_lanes(a, ET.INT16)
        order = [(imm >> (2 * i)) & 3 for i in range(4)]
        return pack_lanes([lanes[order[i]] for i in range(4)], ET.INT16)
    if mnemonic == "pmovmskb":
        lanes = unpack_lanes(a, ET.INT8)
        mask = 0
        for i, lane in enumerate(lanes):
            if lane < 0:
                mask |= 1 << i
        return mask
    if mnemonic == "pextrw":
        return unpack_lanes(a, ET.UINT16)[imm & 3]
    if mnemonic == "pselect":
        raise KeyError("pselect needs three operands; use execute_mmx3")
    raise KeyError(f"no modeled semantics for mnemonic {mnemonic!r}")


def pinsrw(a: int, value: int, index: int) -> int:
    """Insert a 16-bit value into lane ``index`` of a register image."""
    lanes = unpack_lanes(a, ET.UINT16)
    lanes[index & 3] = to_unsigned(value, 16)
    return pack_lanes(lanes, ET.UINT16)


def execute_mmx3(mnemonic: str, a: int, b: int, c: int) -> int:
    """Execute the paper's 3-source MMX extensions."""
    if mnemonic == "pselect":
        return (a & b) | (~a & c) & _U64
    if mnemonic == "pmadd3wd":
        return lanewise(
            lambda x, y: x + y, pmaddwd(a, b), c, ET.INT32, saturating=False
        )
    raise KeyError(f"no modeled 3-source semantics for {mnemonic!r}")


def execute_mom(mnemonic: str, a, b=None, imm: int = 0) -> list[int]:
    """Execute a MOM stream operation element-wise over word lists.

    ``a`` (and ``b`` when present) are lists of 64-bit register images of
    equal length (the effective stream length).  The corresponding
    MMX-like semantic is applied per element — the architectural
    definition of a MOM stream instruction.
    """
    if not mnemonic.startswith("v"):
        raise KeyError(f"{mnemonic!r} is not a MOM stream mnemonic")
    base = "p" + mnemonic[1:]
    if b is None:
        return [execute_mmx(base, word, 0, imm) for word in a]
    if len(a) != len(b):
        raise ValueError("stream operands must have equal length")
    return [execute_mmx(base, x, y, imm) for x, y in zip(a, b)]


class PackedAccumulator:
    """A MOM 192-bit packed accumulator.

    Holds four 48-bit signed lanes; word-oriented accumulation ops add
    products or sums of 16-bit lanes pair-wise into the wider lanes, which
    is what lets MOM reduce a whole stream without the pack/unpack logic
    overhead MMX reductions need.
    """

    LANES = 4
    LANE_BITS = 48

    def __init__(self):
        self.lanes = [0] * self.LANES

    def clear(self) -> None:
        self.lanes = [0] * self.LANES

    def _fold(self, word: int, sign: int, etype: ET = ET.INT16) -> None:
        # Narrower elements fold pair-wise into the 4 wide lanes (8 bytes
        # land 2-per-lane); wider elements occupy the low lanes only.
        values = unpack_lanes(word, etype)
        for i, value in enumerate(values):
            lane = i % self.LANES
            acc = self.lanes[lane] + sign * value
            self.lanes[lane] = to_signed(acc, self.LANE_BITS)

    def add_stream(self, words, sign: int = 1, etype: ET = ET.INT16) -> None:
        """vadda*/vsuba*: accumulate the lanes of every stream element."""
        for word in words:
            self._fold(word, sign, etype)

    def madd_stream(self, words_a, words_b, sign: int = 1) -> None:
        """vmaddawd/vmsubawd: accumulate lane-wise products of two streams."""
        for wa, wb in zip(words_a, words_b):
            xs = unpack_lanes(wa, ET.INT16)
            ys = unpack_lanes(wb, ET.INT16)
            for i in range(self.LANES):
                acc = self.lanes[i] + sign * xs[i] * ys[i]
                self.lanes[i] = to_signed(acc, self.LANE_BITS)

    def sad_stream(self, words_a, words_b) -> None:
        """vsadab: accumulate byte SADs of two streams into lane 0."""
        for wa, wb in zip(words_a, words_b):
            self.lanes[0] = to_signed(
                self.lanes[0] + psadbw(wa, wb), self.LANE_BITS
            )

    def read(self, etype: ET = ET.INT32) -> int:
        """vrdacc*: saturate lanes into a 64-bit register image."""
        if etype.lanes < self.LANES:
            values = [saturate(v, etype) for v in self.lanes[: etype.lanes]]
        else:
            values = [saturate(v, etype) for v in self.lanes]
            values += [0] * (etype.lanes - self.LANES)
        return pack_lanes(values, etype)

    def total(self) -> int:
        """Scalar sum of all lanes (convenience for kernel code)."""
        return sum(self.lanes)
