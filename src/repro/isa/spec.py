"""Mnemonic-level opcode specification shared by the MMX and MOM tables."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.datatypes import ElementType
from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class MnemonicSpec:
    """One architectural opcode of a µ-SIMD extension.

    ``sim_class`` maps the mnemonic onto the dynamic opcode class the
    simulator executes; ``etype`` is the sub-word interpretation (``None``
    for type-agnostic operations such as full-register logic ops);
    ``sources`` is the number of register sources (the paper extends SSE
    with multiple-source-register operations).
    """

    mnemonic: str
    sim_class: Opcode
    etype: ElementType | None = None
    sources: int = 2
    description: str = ""

    def __post_init__(self):
        if not self.mnemonic:
            raise ValueError("mnemonic must be non-empty")
        if self.sources < 0 or self.sources > 3:
            raise ValueError("sources must be between 0 and 3")


def build_table(specs: list[MnemonicSpec]) -> dict[str, MnemonicSpec]:
    """Index a spec list by mnemonic, rejecting duplicates."""
    table: dict[str, MnemonicSpec] = {}
    for spec in specs:
        if spec.mnemonic in table:
            raise ValueError(f"duplicate mnemonic {spec.mnemonic!r}")
        table[spec.mnemonic] = spec
    return table
