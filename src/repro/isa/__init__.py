"""Instruction-set substrate for the DLP+TLP reproduction.

This package defines the three instruction sets the paper evaluates:

* the scalar Alpha-like base ISA (integer, floating point, memory, branch),
* the MMX-like packed µ-SIMD extension (67 opcodes, 32 logical 64-bit
  registers — the paper's approximation of SSE integer opcodes), and
* the MOM streaming vector µ-SIMD extension (121 opcodes, 16 logical stream
  registers of 16 64-bit words, two 192-bit packed accumulators, a
  stream-length register and a stride field).

It also provides executable semantics for packed sub-word arithmetic so the
media kernels can be validated against reference implementations.
"""

from repro.isa.datatypes import (
    ElementType,
    LANE_COUNTS,
    pack_lanes,
    unpack_lanes,
    saturate,
)
from repro.isa.opcodes import (
    FuClass,
    Opcode,
    OPCODE_INFO,
    latency_of,
    fu_class_of,
)
from repro.isa.instruction import Instruction
from repro.isa.registers import RegisterClass, LogicalRegisters
from repro.isa.mmx import MMX_OPCODES, MMX_LOGICAL_REGISTERS
from repro.isa.mom import (
    MOM_OPCODES,
    MOM_STREAM_REGISTERS,
    MOM_MAX_STREAM_LENGTH,
    MOM_ACCUMULATORS,
)

__all__ = [
    "ElementType",
    "LANE_COUNTS",
    "pack_lanes",
    "unpack_lanes",
    "saturate",
    "FuClass",
    "Opcode",
    "OPCODE_INFO",
    "latency_of",
    "fu_class_of",
    "Instruction",
    "RegisterClass",
    "LogicalRegisters",
    "MMX_OPCODES",
    "MMX_LOGICAL_REGISTERS",
    "MOM_OPCODES",
    "MOM_STREAM_REGISTERS",
    "MOM_MAX_STREAM_LENGTH",
    "MOM_ACCUMULATORS",
]
