"""A small assembler for the scalar + MMX + MOM instruction set.

Syntax (one instruction per line; ``#`` starts a comment)::

    li      r1, 4096          # load immediate
    setslri 8                 # stream length = 8
    vldq    v0, r1, 0, 8      # stream load, base r1+0, stride 8
    vmaddawd a0, v0, v1       # accumulate products
    vrdaccsd mm0, a0          # read accumulator, saturate to 32 bits
    loop    r5, top           # decrement r5; branch to label if non-zero
    top:                      # labels end with ':'

Register operands: ``rN`` (scalar), ``mmN`` (packed), ``vN`` (stream),
``aN`` (accumulator).  Bare integers (decimal or 0x hex) are immediates.
``Program.run`` executes on a :class:`~repro.isa.machine.MediaMachine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.machine import MediaMachine


@dataclass(frozen=True)
class AsmInstruction:
    """One assembled instruction."""

    mnemonic: str
    operands: tuple = ()
    label_target: str | None = None     # for control flow (loop/jmp)

    def __str__(self) -> str:
        parts = ", ".join(str(op) for op in self.operands)
        return f"{self.mnemonic} {parts}".strip()


@dataclass
class Program:
    """An assembled program: instructions plus the label table."""

    instructions: list[AsmInstruction]
    labels: dict[str, int] = field(default_factory=dict)

    def run(self, machine: MediaMachine | None = None,
            max_steps: int = 1_000_000) -> MediaMachine:
        """Execute to completion; returns the final machine state."""
        machine = machine or MediaMachine()
        pc = 0
        steps = 0
        while pc < len(self.instructions):
            steps += 1
            if steps > max_steps:
                raise RuntimeError("program exceeded max_steps — runaway loop?")
            inst = self.instructions[pc]
            if inst.mnemonic == "loop":
                reg = inst.operands[0]
                machine.r[reg] = (machine.r[reg] - 1) & ((1 << 64) - 1)
                machine.executed += 1
                if machine.r[reg] != 0:
                    pc = self.labels[inst.label_target]
                    continue
            elif inst.mnemonic == "jmp":
                machine.executed += 1
                pc = self.labels[inst.label_target]
                continue
            else:
                machine.execute(inst.mnemonic, list(inst.operands))
            pc += 1
        return machine


class AssemblerError(ValueError):
    """Raised for malformed assembly source."""


def _parse_operand(token: str):
    token = token.strip()
    if not token:
        raise AssemblerError("empty operand")
    prefix_order = ("mm", "r", "v", "a")
    for prefix in prefix_order:
        if token.startswith(prefix) and token[len(prefix):].isdigit():
            return int(token[len(prefix):])
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"cannot parse operand {token!r}") from None


def assemble(source: str) -> Program:
    """Assemble source text into a :class:`Program`."""
    instructions: list[AsmInstruction] = []
    labels: dict[str, int] = {}
    pending_fixups: list[tuple[int, str]] = []

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label.isidentifier():
                raise AssemblerError(f"line {line_no}: bad label {label!r}")
            if label in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = len(instructions)
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        tokens = [t for t in (s.strip() for s in operand_text.split(",")) if t]
        if mnemonic in ("loop", "jmp"):
            if mnemonic == "loop":
                if len(tokens) != 2:
                    raise AssemblerError(
                        f"line {line_no}: loop needs 'reg, label'"
                    )
                reg = _parse_operand(tokens[0])
                target = tokens[1]
            else:
                if len(tokens) != 1:
                    raise AssemblerError(f"line {line_no}: jmp needs 'label'")
                reg = None
                target = tokens[0]
            operands = (reg,) if reg is not None else ()
            instructions.append(
                AsmInstruction(mnemonic, operands, label_target=target)
            )
            pending_fixups.append((len(instructions) - 1, target))
            continue
        operands = tuple(_parse_operand(t) for t in tokens)
        instructions.append(AsmInstruction(mnemonic, operands))

    for index, target in pending_fixups:
        if target not in labels:
            raise AssemblerError(f"undefined label {target!r}")
    return Program(instructions, labels)


def disassemble(program: Program) -> str:
    """Render a program back to (label-annotated) source text."""
    by_index: dict[int, list[str]] = {}
    for label, index in program.labels.items():
        by_index.setdefault(index, []).append(label)
    lines = []
    for index, inst in enumerate(program.instructions):
        for label in by_index.get(index, ()):
            lines.append(f"{label}:")
        if inst.label_target is not None:
            operands = ", ".join(
                [str(op) for op in inst.operands] + [inst.label_target]
            )
            lines.append(f"    {inst.mnemonic} {operands}")
        else:
            lines.append(f"    {inst}")
    for label, index in program.labels.items():
        if index == len(program.instructions):
            lines.append(f"{label}:")
    return "\n".join(lines)
