"""Packed sub-word data types and saturation arithmetic.

µ-SIMD ISAs operate on 64-bit registers interpreted as vectors of small
sub-word elements (bytes, half-words or words).  This module provides the
executable ground truth for those interpretations: packing and unpacking
lane values, two's-complement reinterpretation and the saturating
arithmetic that distinguishes media ISAs from plain integer ALUs.

All functions are pure and operate on Python integers so they can serve as
a reference model in tests (including hypothesis property tests).
"""

from __future__ import annotations

import enum

REGISTER_BITS = 64
ACCUMULATOR_BITS = 192


class ElementType(enum.Enum):
    """Sub-word element interpretations of a 64-bit µ-SIMD register."""

    INT8 = ("int8", 8, True)
    UINT8 = ("uint8", 8, False)
    INT16 = ("int16", 16, True)
    UINT16 = ("uint16", 16, False)
    INT32 = ("int32", 32, True)
    UINT32 = ("uint32", 32, False)

    def __init__(self, label: str, bits: int, signed: bool):
        self.label = label
        self.bits = bits
        self.signed = signed

    @property
    def lanes(self) -> int:
        """Number of elements packed in one 64-bit register."""
        return REGISTER_BITS // self.bits

    @property
    def min_value(self) -> int:
        if self.signed:
            return -(1 << (self.bits - 1))
        return 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1


LANE_COUNTS = {etype: etype.lanes for etype in ElementType}

_U64_MASK = (1 << REGISTER_BITS) - 1


def to_unsigned(value: int, bits: int) -> int:
    """Reinterpret a (possibly negative) integer as an unsigned field."""
    return value & ((1 << bits) - 1)


def to_signed(value: int, bits: int) -> int:
    """Reinterpret the low ``bits`` of ``value`` as two's complement."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def saturate(value: int, etype: ElementType) -> int:
    """Clamp ``value`` into the representable range of ``etype``."""
    if value < etype.min_value:
        return etype.min_value
    if value > etype.max_value:
        return etype.max_value
    return value


def wrap(value: int, etype: ElementType) -> int:
    """Wrap ``value`` modulo the element width (non-saturating ALU result)."""
    raw = value & ((1 << etype.bits) - 1)
    if etype.signed:
        return to_signed(raw, etype.bits)
    return raw


def pack_lanes(values, etype: ElementType) -> int:
    """Pack an iterable of lane values into a 64-bit register image.

    Lane 0 occupies the least-significant bits, matching the little-endian
    layout used by MMX/SSE.  Values must already be representable in
    ``etype`` (use :func:`saturate` or :func:`wrap` first).
    """
    values = list(values)
    if len(values) != etype.lanes:
        raise ValueError(
            f"expected {etype.lanes} lanes for {etype.label}, got {len(values)}"
        )
    word = 0
    for lane, value in enumerate(values):
        if not etype.min_value <= value <= etype.max_value:
            raise ValueError(
                f"lane {lane} value {value} out of range for {etype.label}"
            )
        word |= to_unsigned(value, etype.bits) << (lane * etype.bits)
    return word & _U64_MASK


def unpack_lanes(word: int, etype: ElementType) -> list[int]:
    """Split a 64-bit register image into its lane values."""
    if not 0 <= word <= _U64_MASK:
        raise ValueError(f"register image {word:#x} is not a u64")
    lanes = []
    for lane in range(etype.lanes):
        raw = (word >> (lane * etype.bits)) & ((1 << etype.bits) - 1)
        lanes.append(to_signed(raw, etype.bits) if etype.signed else raw)
    return lanes


def lanewise(op, a: int, b: int, etype: ElementType, *, saturating: bool) -> int:
    """Apply a binary lane operation to two register images.

    ``op`` receives two lane values and returns an (unbounded) integer; the
    result is saturated or wrapped per ``saturating`` and repacked.
    """
    fix = saturate if saturating else wrap
    out = [
        fix(op(x, y), etype)
        for x, y in zip(unpack_lanes(a, etype), unpack_lanes(b, etype))
    ]
    return pack_lanes(out, etype)


def lanewise_unary(op, a: int, etype: ElementType, *, saturating: bool) -> int:
    """Apply a unary lane operation to a register image."""
    fix = saturate if saturating else wrap
    out = [fix(op(x), etype) for x in unpack_lanes(a, etype)]
    return pack_lanes(out, etype)
