"""The MOM streaming vector µ-SIMD extension (Corbal et al., MICRO 1999).

MOM fuses up to 16 MMX-like operations into a single *stream* instruction:
a matrix-oriented ISA exploiting two dimensions of parallelism (sub-word
SIMD within a 64-bit word, and a vector of up to 16 such words).  The
paper's configuration:

* 121 opcodes (asserted by the test suite),
* 16 logical stream registers, each 16 x 64-bit words,
* 2 packed accumulators of 192 bits for high-efficiency reductions
  (MDMX heritage),
* one stream-length register (renamed through the integer pool) giving the
  effective length of each stream (1..16), and
* a stride field on stream memory operations giving the byte distance
  between consecutive 64-bit elements — the key feature for walking small
  sparse matrices in image/video processing.
"""

from __future__ import annotations

from repro.isa.datatypes import ElementType as ET
from repro.isa.opcodes import Opcode
from repro.isa.spec import MnemonicSpec, build_table

#: Logical stream registers.
MOM_STREAM_REGISTERS = 16

#: 64-bit words per stream register (= max stream length).
MOM_MAX_STREAM_LENGTH = 16

#: Packed 192-bit accumulators.
MOM_ACCUMULATORS = 2

_S = MnemonicSpec

_SPECS: list[MnemonicSpec] = [
    # --- Stream addition (wrap-around and saturating). -----------------
    _S("vaddb", Opcode.MOM_ALU, ET.INT8, description="stream add bytes"),
    _S("vaddw", Opcode.MOM_ALU, ET.INT16, description="stream add words"),
    _S("vaddd", Opcode.MOM_ALU, ET.INT32, description="stream add dwords"),
    _S("vaddsb", Opcode.MOM_ALU, ET.INT8, description="stream add signed-sat bytes"),
    _S("vaddsw", Opcode.MOM_ALU, ET.INT16, description="stream add signed-sat words"),
    _S("vaddusb", Opcode.MOM_ALU, ET.UINT8, description="stream add unsigned-sat bytes"),
    _S("vaddusw", Opcode.MOM_ALU, ET.UINT16, description="stream add unsigned-sat words"),
    # --- Stream subtraction. --------------------------------------------
    _S("vsubb", Opcode.MOM_ALU, ET.INT8, description="stream subtract bytes"),
    _S("vsubw", Opcode.MOM_ALU, ET.INT16, description="stream subtract words"),
    _S("vsubd", Opcode.MOM_ALU, ET.INT32, description="stream subtract dwords"),
    _S("vsubsb", Opcode.MOM_ALU, ET.INT8, description="stream sub signed-sat bytes"),
    _S("vsubsw", Opcode.MOM_ALU, ET.INT16, description="stream sub signed-sat words"),
    _S("vsubusb", Opcode.MOM_ALU, ET.UINT8, description="stream sub unsigned-sat bytes"),
    _S("vsubusw", Opcode.MOM_ALU, ET.UINT16, description="stream sub unsigned-sat words"),
    # --- Stream multiplication. -------------------------------------------
    _S("vmullw", Opcode.MOM_MUL, ET.INT16, description="stream multiply, low halves"),
    _S("vmulhw", Opcode.MOM_MUL, ET.INT16, description="stream multiply, high halves"),
    _S("vmulhuw", Opcode.MOM_MUL, ET.UINT16, description="stream unsigned multiply high"),
    _S("vmaddwd", Opcode.MOM_MUL, ET.INT16, description="stream multiply-add word pairs"),
    # --- Stream comparison. -------------------------------------------------
    _S("vcmpeqb", Opcode.MOM_ALU, ET.INT8, description="stream compare equal bytes"),
    _S("vcmpeqw", Opcode.MOM_ALU, ET.INT16, description="stream compare equal words"),
    _S("vcmpeqd", Opcode.MOM_ALU, ET.INT32, description="stream compare equal dwords"),
    _S("vcmpgtb", Opcode.MOM_ALU, ET.INT8, description="stream compare greater bytes"),
    _S("vcmpgtw", Opcode.MOM_ALU, ET.INT16, description="stream compare greater words"),
    _S("vcmpgtd", Opcode.MOM_ALU, ET.INT32, description="stream compare greater dwords"),
    # --- Stream logic. -------------------------------------------------------
    _S("vand", Opcode.MOM_ALU, None, description="stream bitwise and"),
    _S("vandn", Opcode.MOM_ALU, None, description="stream bitwise and-not"),
    _S("vor", Opcode.MOM_ALU, None, description="stream bitwise or"),
    _S("vxor", Opcode.MOM_ALU, None, description="stream bitwise xor"),
    # --- Stream shifts. -------------------------------------------------------
    _S("vsllw", Opcode.MOM_ALU, ET.UINT16, sources=1, description="stream shift left words"),
    _S("vslld", Opcode.MOM_ALU, ET.UINT32, sources=1, description="stream shift left dwords"),
    _S("vsllq", Opcode.MOM_ALU, None, sources=1, description="stream shift left qwords"),
    _S("vsrlw", Opcode.MOM_ALU, ET.UINT16, sources=1, description="stream shift right logical words"),
    _S("vsrld", Opcode.MOM_ALU, ET.UINT32, sources=1, description="stream shift right logical dwords"),
    _S("vsrlq", Opcode.MOM_ALU, None, sources=1, description="stream shift right logical qwords"),
    _S("vsraw", Opcode.MOM_ALU, ET.INT16, sources=1, description="stream shift right arith words"),
    _S("vsrad", Opcode.MOM_ALU, ET.INT32, sources=1, description="stream shift right arith dwords"),
    # --- Pack / unpack. ---------------------------------------------------------
    _S("vpacksswb", Opcode.MOM_ALU, ET.INT16, description="stream pack words to signed-sat bytes"),
    _S("vpackssdw", Opcode.MOM_ALU, ET.INT32, description="stream pack dwords to signed-sat words"),
    _S("vpackuswb", Opcode.MOM_ALU, ET.INT16, description="stream pack words to unsigned-sat bytes"),
    _S("vpunpcklbw", Opcode.MOM_ALU, ET.INT8, description="stream interleave low bytes"),
    _S("vpunpcklwd", Opcode.MOM_ALU, ET.INT16, description="stream interleave low words"),
    _S("vpunpckldq", Opcode.MOM_ALU, ET.INT32, description="stream interleave low dwords"),
    _S("vpunpckhbw", Opcode.MOM_ALU, ET.INT8, description="stream interleave high bytes"),
    _S("vpunpckhwd", Opcode.MOM_ALU, ET.INT16, description="stream interleave high words"),
    _S("vpunpckhdq", Opcode.MOM_ALU, ET.INT32, description="stream interleave high dwords"),
    # --- Average, min/max, SAD. ---------------------------------------------------
    _S("vavgb", Opcode.MOM_ALU, ET.UINT8, description="stream rounded average bytes"),
    _S("vavgw", Opcode.MOM_ALU, ET.UINT16, description="stream rounded average words"),
    _S("vminub", Opcode.MOM_ALU, ET.UINT8, description="stream minimum unsigned bytes"),
    _S("vminsw", Opcode.MOM_ALU, ET.INT16, description="stream minimum signed words"),
    _S("vmaxub", Opcode.MOM_ALU, ET.UINT8, description="stream maximum unsigned bytes"),
    _S("vmaxsw", Opcode.MOM_ALU, ET.INT16, description="stream maximum signed words"),
    _S("vsadbw", Opcode.MOM_MUL, ET.UINT8, description="stream sum of absolute differences"),
    # --- Absolute value / negate. ---------------------------------------------------
    _S("vabsb", Opcode.MOM_ALU, ET.INT8, sources=1, description="stream absolute value bytes"),
    _S("vabsw", Opcode.MOM_ALU, ET.INT16, sources=1, description="stream absolute value words"),
    _S("vabsd", Opcode.MOM_ALU, ET.INT32, sources=1, description="stream absolute value dwords"),
    _S("vnegb", Opcode.MOM_ALU, ET.INT8, sources=1, description="stream negate bytes"),
    _S("vnegw", Opcode.MOM_ALU, ET.INT16, sources=1, description="stream negate words"),
    _S("vnegd", Opcode.MOM_ALU, ET.INT32, sources=1, description="stream negate dwords"),
    # --- Packed-accumulator operations (MDMX heritage). ----------------------------
    _S("vaddab", Opcode.MOM_REDUCE, ET.INT8, description="accumulate stream add bytes"),
    _S("vaddaw", Opcode.MOM_REDUCE, ET.INT16, description="accumulate stream add words"),
    _S("vaddad", Opcode.MOM_REDUCE, ET.INT32, description="accumulate stream add dwords"),
    _S("vsubab", Opcode.MOM_REDUCE, ET.INT8, description="accumulate stream subtract bytes"),
    _S("vsubaw", Opcode.MOM_REDUCE, ET.INT16, description="accumulate stream subtract words"),
    _S("vsubad", Opcode.MOM_REDUCE, ET.INT32, description="accumulate stream subtract dwords"),
    _S("vmulaw", Opcode.MOM_REDUCE, ET.INT16, description="accumulate stream multiply words"),
    _S("vmaddawd", Opcode.MOM_REDUCE, ET.INT16, description="accumulate stream multiply-add"),
    _S("vmsubawd", Opcode.MOM_REDUCE, ET.INT16, description="accumulate stream multiply-sub"),
    _S("vsadab", Opcode.MOM_REDUCE, ET.UINT8, description="accumulate stream SAD bytes"),
    # --- Accumulator readout (saturating narrowing). --------------------------------
    _S("vrdaccsb", Opcode.MOM_REDUCE, ET.INT8, sources=1, description="read acc, signed-sat bytes"),
    _S("vrdaccsw", Opcode.MOM_REDUCE, ET.INT16, sources=1, description="read acc, signed-sat words"),
    _S("vrdaccsd", Opcode.MOM_REDUCE, ET.INT32, sources=1, description="read acc, signed-sat dwords"),
    _S("vrdaccub", Opcode.MOM_REDUCE, ET.UINT8, sources=1, description="read acc, unsigned-sat bytes"),
    _S("vrdaccuw", Opcode.MOM_REDUCE, ET.UINT16, sources=1, description="read acc, unsigned-sat words"),
    _S("vrdaccud", Opcode.MOM_REDUCE, ET.UINT32, sources=1, description="read acc, unsigned-sat dwords"),
    _S("vclracc", Opcode.MOM_REDUCE, None, sources=0, description="clear packed accumulator"),
    # --- Whole-stream reductions. ------------------------------------------------------
    _S("vsumb", Opcode.MOM_REDUCE, ET.INT8, sources=1, description="reduce: sum of stream bytes"),
    _S("vsumw", Opcode.MOM_REDUCE, ET.INT16, sources=1, description="reduce: sum of stream words"),
    _S("vsumd", Opcode.MOM_REDUCE, ET.INT32, sources=1, description="reduce: sum of stream dwords"),
    _S("vminredb", Opcode.MOM_REDUCE, ET.INT8, sources=1, description="reduce: stream minimum bytes"),
    _S("vminredw", Opcode.MOM_REDUCE, ET.INT16, sources=1, description="reduce: stream minimum words"),
    _S("vminredd", Opcode.MOM_REDUCE, ET.INT32, sources=1, description="reduce: stream minimum dwords"),
    _S("vmaxredb", Opcode.MOM_REDUCE, ET.INT8, sources=1, description="reduce: stream maximum bytes"),
    _S("vmaxredw", Opcode.MOM_REDUCE, ET.INT16, sources=1, description="reduce: stream maximum words"),
    _S("vmaxredd", Opcode.MOM_REDUCE, ET.INT32, sources=1, description="reduce: stream maximum dwords"),
    # --- Stream memory (strided; element width variants). --------------------------------
    _S("vldb", Opcode.MOM_LOAD, ET.INT8, sources=1, description="strided stream load bytes"),
    _S("vldw", Opcode.MOM_LOAD, ET.INT16, sources=1, description="strided stream load words"),
    _S("vldd", Opcode.MOM_LOAD, ET.INT32, sources=1, description="strided stream load dwords"),
    _S("vldq", Opcode.MOM_LOAD, None, sources=1, description="strided stream load qwords"),
    _S("vldub", Opcode.MOM_LOAD, ET.UINT8, sources=1, description="stream load bytes, zero-extend"),
    _S("vlduw", Opcode.MOM_LOAD, ET.UINT16, sources=1, description="stream load words, zero-extend"),
    _S("vstb", Opcode.MOM_STORE, ET.INT8, sources=2, description="strided stream store bytes"),
    _S("vstw", Opcode.MOM_STORE, ET.INT16, sources=2, description="strided stream store words"),
    _S("vstd", Opcode.MOM_STORE, ET.INT32, sources=2, description="strided stream store dwords"),
    _S("vstq", Opcode.MOM_STORE, None, sources=2, description="strided stream store qwords"),
    _S("vprefetch", Opcode.MOM_LOAD, None, sources=1, description="stream prefetch hint"),
    # --- Merge / splat / move. --------------------------------------------------------------
    _S("vmergelb", Opcode.MOM_ALU, ET.INT8, description="merge low byte elements"),
    _S("vmergelw", Opcode.MOM_ALU, ET.INT16, description="merge low word elements"),
    _S("vmergeld", Opcode.MOM_ALU, ET.INT32, description="merge low dword elements"),
    _S("vmergehb", Opcode.MOM_ALU, ET.INT8, description="merge high byte elements"),
    _S("vmergehw", Opcode.MOM_ALU, ET.INT16, description="merge high word elements"),
    _S("vmergehd", Opcode.MOM_ALU, ET.INT32, description="merge high dword elements"),
    _S("vsplatb", Opcode.MOM_ALU, ET.INT8, sources=1, description="broadcast byte across stream"),
    _S("vsplatw", Opcode.MOM_ALU, ET.INT16, sources=1, description="broadcast word across stream"),
    _S("vsplatd", Opcode.MOM_ALU, ET.INT32, sources=1, description="broadcast dword across stream"),
    _S("vsplatq", Opcode.MOM_ALU, None, sources=1, description="broadcast qword across stream"),
    _S("vselect", Opcode.MOM_ALU, None, sources=3, description="stream bitwise select"),
    _S("vmaskmov", Opcode.MOM_ALU, None, sources=3, description="stream masked move"),
    _S("vmov", Opcode.MOM_ALU, None, sources=1, description="stream register move"),
    _S("vzero", Opcode.MOM_ALU, None, sources=0, description="zero a stream register"),
    # --- Dot products. --------------------------------------------------------------------------
    _S("vdotbw", Opcode.MOM_MUL, ET.INT8, description="stream dot product bytes->words"),
    _S("vdotwd", Opcode.MOM_MUL, ET.INT16, description="stream dot product words->dwords"),
    # --- Shuffle / element access. ----------------------------------------------------------------
    _S("vshufw", Opcode.MOM_ALU, ET.INT16, sources=1, description="shuffle words within elements"),
    _S("vextrw", Opcode.MOM_ALU, ET.INT16, sources=1, description="extract word to int register"),
    _S("vinsrw", Opcode.MOM_ALU, ET.INT16, description="insert word from int register"),
    # --- Stream-length register (renamed via the integer pool). -------------------------------------
    _S("mtslr", Opcode.MOM_SETSLR, None, sources=1, description="move int register to SLR"),
    _S("mfslr", Opcode.MOM_SETSLR, None, sources=0, description="move SLR to int register"),
    _S("setslri", Opcode.MOM_SETSLR, None, sources=0, description="set SLR to immediate"),
    # --- Scaling / clipping / rounding (video arithmetic helpers). ----------------------------------
    _S("vscalew", Opcode.MOM_MUL, ET.INT16, description="stream fixed-point scale words"),
    _S("vclipw", Opcode.MOM_ALU, ET.INT16, description="stream clip words to range"),
    _S("vrndw", Opcode.MOM_ALU, ET.INT16, sources=1, description="stream round words"),
    _S("vshradd", Opcode.MOM_ALU, ET.INT16, description="stream shift-right-and-add (halving add)"),
]

#: Mnemonic -> spec for the full MOM extension.
MOM_OPCODES: dict[str, MnemonicSpec] = build_table(_SPECS)

#: The paper's opcode count, asserted by the test suite.
EXPECTED_MOM_OPCODE_COUNT = 121
