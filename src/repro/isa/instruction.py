"""The decoded instruction record — the unit of every trace.

Traces produced by :mod:`repro.tracegen` are sequences of immutable
``Instruction`` objects.  The simulator never mutates them; all dynamic
state (rename mappings, issue/retire timestamps) lives in per-in-flight
records inside :mod:`repro.core`.  ``__slots__`` keeps the millions of
records created during an experiment cheap.
"""

from __future__ import annotations

from repro.isa.opcodes import Opcode, OPCODE_INFO
from repro.isa.registers import NO_REG


class Instruction:
    """One decoded dynamic instruction.

    Parameters
    ----------
    op:
        Opcode class (determines queue, functional unit and latency).
    pc:
        Virtual address of the instruction (drives the I-cache model).
    dst:
        Destination logical register identifier, or ``NO_REG``.
    srcs:
        Tuple of source logical register identifiers.
    mem_addr, mem_size:
        Effective address and access size for memory operations.  For MOM
        stream memory operations this is the *base* address of the stream.
    stream_length:
        Number of packed sub-instructions a MOM stream instruction expands
        to (1..16); always 1 for non-stream instructions.
    stride:
        Byte distance between consecutive stream elements in memory
        (stream memory operations only).
    taken, target:
        Branch outcome and destination for control instructions.
    equiv_mmx:
        Number of dynamic instructions the *MMX version* of the same
        program needs for this unit of work.  Used to compute the paper's
        EIPC metric; equals 1 for ordinary instructions.
    """

    __slots__ = (
        "op",
        "pc",
        "dst",
        "srcs",
        "mem_addr",
        "mem_size",
        "stream_length",
        "stride",
        "taken",
        "target",
        "equiv_mmx",
    )

    def __init__(
        self,
        op: Opcode,
        pc: int = 0,
        dst: int = NO_REG,
        srcs: tuple[int, ...] = (),
        mem_addr: int = 0,
        mem_size: int = 8,
        stream_length: int = 1,
        stride: int = 0,
        taken: bool = False,
        target: int = 0,
        equiv_mmx: float = 1.0,
    ):
        info = OPCODE_INFO[op]
        if stream_length < 1:
            raise ValueError("stream_length must be >= 1")
        if stream_length > 1 and not info.is_stream:
            raise ValueError(f"{op.name} cannot carry a stream length")
        self.op = op
        self.pc = pc
        self.dst = dst
        self.srcs = srcs
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.stream_length = stream_length
        self.stride = stride
        self.taken = taken
        self.target = target
        self.equiv_mmx = equiv_mmx

    @property
    def is_mem(self) -> bool:
        return OPCODE_INFO[self.op].is_mem

    @property
    def is_store(self) -> bool:
        return OPCODE_INFO[self.op].is_store

    @property
    def is_branch(self) -> bool:
        return OPCODE_INFO[self.op].is_branch

    @property
    def is_simd(self) -> bool:
        return OPCODE_INFO[self.op].is_simd

    @property
    def is_stream(self) -> bool:
        return OPCODE_INFO[self.op].is_stream

    @property
    def count_weight(self) -> int:
        """How many instructions this record counts as in breakdowns.

        The paper counts each MOM instruction multiplied by its stream
        length so MMX and MOM instruction counts are comparable.
        """
        return self.stream_length

    def stream_addresses(self) -> list[int]:
        """Effective addresses touched by a stream memory operation."""
        if not self.is_mem:
            raise ValueError(f"{self.op.name} is not a memory operation")
        return [
            self.mem_addr + i * self.stride for i in range(self.stream_length)
        ]

    def __repr__(self) -> str:
        extra = ""
        if self.is_mem:
            extra = f" addr={self.mem_addr:#x}"
        if self.stream_length > 1:
            extra += f" sl={self.stream_length} stride={self.stride}"
        if self.is_branch:
            extra += f" taken={self.taken}"
        return f"<Instruction {self.op.name} pc={self.pc:#x}{extra}>"
