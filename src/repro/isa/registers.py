"""Logical register name spaces for the scalar, MMX and MOM ISAs.

Rename in the SMT core operates on *logical register identifiers* that
encode both the register class and the architectural index, so that a
single integer can name "integer r7" or "stream register v3" unambiguously
throughout a trace.
"""

from __future__ import annotations

import enum


class RegisterClass(enum.IntEnum):
    """Architectural register classes, each renamed from its own pool."""

    INT = 0       # 32 scalar integer registers (Alpha-like)
    FP = 1        # 32 scalar floating-point registers
    MMX = 2       # 32 packed µ-SIMD registers (paper extends SSE's 8 to 32)
    STREAM = 3    # 16 MOM stream registers (16 x 64-bit words each)
    ACC = 4       # 2 MOM packed accumulators (192-bit)


#: Architectural registers per class (paper section 3).
LOGICAL_COUNTS: dict[RegisterClass, int] = {
    RegisterClass.INT: 32,
    RegisterClass.FP: 32,
    RegisterClass.MMX: 32,
    RegisterClass.STREAM: 16,
    RegisterClass.ACC: 2,
}

_CLASS_SHIFT = 8
_INDEX_MASK = (1 << _CLASS_SHIFT) - 1

#: Sentinel for "no register" operands.
NO_REG = -1


def make_reg(rclass: RegisterClass, index: int) -> int:
    """Encode a (class, index) pair into a logical register identifier."""
    if not 0 <= index < LOGICAL_COUNTS[rclass]:
        raise ValueError(f"register index {index} out of range for {rclass.name}")
    return (int(rclass) << _CLASS_SHIFT) | index


def reg_class(reg: int) -> RegisterClass:
    """Register class of a logical register identifier."""
    return RegisterClass(reg >> _CLASS_SHIFT)


def reg_index(reg: int) -> int:
    """Architectural index of a logical register identifier."""
    return reg & _INDEX_MASK


class LogicalRegisters:
    """Convenience factory for the register name space of one thread.

    Provides short helpers used pervasively by the trace builder::

        regs = LogicalRegisters()
        add = Instruction(op=Opcode.INT_ALU, dst=regs.r(3), srcs=(regs.r(1),))
    """

    def r(self, index: int) -> int:
        """Scalar integer register ``$index``."""
        return make_reg(RegisterClass.INT, index)

    def f(self, index: int) -> int:
        """Scalar floating-point register ``$f index``."""
        return make_reg(RegisterClass.FP, index)

    def m(self, index: int) -> int:
        """MMX packed register ``%mm index``."""
        return make_reg(RegisterClass.MMX, index)

    def v(self, index: int) -> int:
        """MOM stream register ``%v index``."""
        return make_reg(RegisterClass.STREAM, index)

    def acc(self, index: int) -> int:
        """MOM packed accumulator ``%acc index``."""
        return make_reg(RegisterClass.ACC, index)
