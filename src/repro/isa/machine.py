"""An architectural-state machine for the scalar + µ-SIMD ISAs.

While :mod:`repro.core` models *timing*, this module models *function*:
a register file, a byte-addressed memory, and an executor for assembly
programs written with the real MMX/MOM mnemonics.  It exists so the ISA
tables are not just documentation — kernels can be written in MOM
assembly, executed, and checked against the Python reference kernels
(see ``tests/test_isa_machine.py`` and ``examples/mom_assembly.py``).

Supported instruction forms (see :mod:`repro.isa.assembler` for syntax):

* scalar: ``li``, ``add``, ``sub``, ``mul``, ``ld``, ``st``, loops via
  ``loop`` (decrement-and-branch);
* MMX: any mnemonic with modeled semantics in
  :mod:`repro.isa.semantics`, plus ``movq_ld``/``movq_st``;
* MOM: stream arithmetic (element-wise over stream registers), strided
  stream loads/stores (``vldq``/``vstq``), accumulator reductions
  (``vmaddawd``, ``vsadab``, ``vaddaw``), accumulator readout and
  ``setslri``/``mtslr``.
"""

from __future__ import annotations

from repro.isa.datatypes import ElementType as ET, REGISTER_BITS
from repro.isa.mmx import MMX_LOGICAL_REGISTERS, MMX_OPCODES
from repro.isa.mom import (
    MOM_ACCUMULATORS,
    MOM_MAX_STREAM_LENGTH,
    MOM_OPCODES,
    MOM_STREAM_REGISTERS,
)
from repro.isa.opcodes import Opcode
from repro.isa.semantics import (
    PackedAccumulator,
    execute_mmx,
    execute_mmx3,
    psadbw,
    unpack_lanes,
)

_U64 = (1 << REGISTER_BITS) - 1

#: Scalar base-ISA mnemonics the machine executes directly.
SCALAR_MNEMONICS = frozenset({"li", "add", "addi", "sub", "mul", "ld", "st"})

#: Control-flow pseudo-mnemonics handled by :class:`~repro.isa.assembler.Program`.
CONTROL_MNEMONICS = frozenset({"loop", "jmp"})

#: MMX memory and hint forms dispatched outside the semantics tables.
MMX_SPECIAL_FORMS = frozenset(
    {"movq_ld", "movq_st", "movd_ld", "movd_st", "movntq", "prefetcht0"}
)

#: MOM mnemonics with dedicated handlers in :meth:`MediaMachine.exec_mom`
#: (everything else goes through the generic element-wise path).
MOM_SPECIAL_FORMS = frozenset(
    {
        # stream-length register
        "setslri", "mtslr", "mfslr",
        # stream memory + prefetch hint
        "vldq", "vldw", "vldd", "vldb", "vldub", "vlduw", "vprefetch",
        "vstq", "vstw", "vstd", "vstb",
        # packed-accumulator operations
        "vclracc", "vaddab", "vaddaw", "vaddad", "vsubab", "vsubaw",
        "vsubad", "vmulaw", "vmaddawd", "vmsubawd", "vsadab",
        # accumulator readout
        "vrdaccsb", "vrdaccsw", "vrdaccsd",
        "vrdaccub", "vrdaccuw", "vrdaccud",
        # whole-stream reductions into a scalar register
        "vsumb", "vsumw", "vsumd",
        "vminredb", "vminredw", "vminredd",
        "vmaxredb", "vmaxredw", "vmaxredd",
        "vsadbw",
        # moves
        "vsplatq", "vmov", "vzero",
    }
)

#: Architecturally defined opcodes whose *function* the machine does not
#: model.  They still classify for timing (queue, FU, latency) and appear
#: in generated traces, but executing one raises ``NotImplementedError``
#: instead of silently computing garbage.  ``repro.verify.isacheck``
#: asserts this set is exactly the opcodes with no executable path, so a
#: mnemonic can neither rot here after gaining semantics nor fall through
#: the generic path into a meaningless result.
TIMING_ONLY_MNEMONICS = frozenset(
    {
        "vmergelb", "vmergelw", "vmergeld",
        "vmergehb", "vmergehw", "vmergehd",
        "vsplatb", "vsplatw", "vsplatd",
        "vmaskmov",
        "vdotbw", "vdotwd",
        "vscalew", "vclipw", "vrndw", "vshradd",
    }
)


class ByteMemory:
    """Sparse little-endian byte-addressed memory."""

    def __init__(self):
        self._bytes: dict[int, int] = {}

    def read(self, addr: int, size: int) -> int:
        value = 0
        for i in range(size):
            value |= self._bytes.get(addr + i, 0) << (8 * i)
        return value

    def write(self, addr: int, value: int, size: int) -> None:
        if value < 0:
            value &= (1 << (8 * size)) - 1
        for i in range(size):
            self._bytes[addr + i] = (value >> (8 * i)) & 0xFF

    def write_words(self, addr: int, words, stride: int = 8) -> None:
        for i, word in enumerate(words):
            self.write(addr + i * stride, word, 8)

    def read_words(self, addr: int, count: int, stride: int = 8) -> list[int]:
        return [self.read(addr + i * stride, 8) for i in range(count)]


class MediaMachine:
    """Architectural state: scalar, MMX, MOM registers and memory."""

    def __init__(self):
        self.r = [0] * 32                                # scalar integer
        self.mm = [0] * MMX_LOGICAL_REGISTERS            # packed 64-bit
        self.v = [
            [0] * MOM_MAX_STREAM_LENGTH for __ in range(MOM_STREAM_REGISTERS)
        ]
        self.acc = [PackedAccumulator() for __ in range(MOM_ACCUMULATORS)]
        self.slr = MOM_MAX_STREAM_LENGTH                 # stream length
        self.memory = ByteMemory()
        self.executed = 0

    # ----- helpers ----------------------------------------------------------

    def _check_slr(self) -> int:
        if not 1 <= self.slr <= MOM_MAX_STREAM_LENGTH:
            raise ValueError(f"stream length register out of range: {self.slr}")
        return self.slr

    # ----- scalar ----------------------------------------------------------

    def exec_scalar(self, op: str, operands: list) -> None:
        if op == "li":
            self.r[operands[0]] = operands[1] & _U64
        elif op == "add":
            self.r[operands[0]] = (
                self.r[operands[1]] + self.r[operands[2]]
            ) & _U64
        elif op == "addi":
            self.r[operands[0]] = (self.r[operands[1]] + operands[2]) & _U64
        elif op == "sub":
            self.r[operands[0]] = (
                self.r[operands[1]] - self.r[operands[2]]
            ) & _U64
        elif op == "mul":
            self.r[operands[0]] = (
                self.r[operands[1]] * self.r[operands[2]]
            ) & _U64
        elif op == "ld":
            self.r[operands[0]] = self.memory.read(
                self.r[operands[1]] + operands[2], 8
            )
        elif op == "st":
            self.memory.write(
                self.r[operands[1]] + operands[2], self.r[operands[0]], 8
            )
        else:
            raise KeyError(f"unknown scalar mnemonic {op!r}")

    # ----- MMX ----------------------------------------------------------------

    def exec_mmx(self, op: str, operands: list) -> None:
        if op not in MMX_OPCODES:
            raise KeyError(f"unknown MMX mnemonic {op!r}")
        spec = MMX_OPCODES[op]
        if op == "movq_ld":
            self.mm[operands[0]] = self.memory.read(
                self.r[operands[1]] + operands[2], 8
            )
            return
        if op == "movd_ld":
            self.mm[operands[0]] = self.memory.read(
                self.r[operands[1]] + operands[2], 4
            )
            return
        if op in ("movq_st", "movntq"):
            self.memory.write(
                self.r[operands[1]] + operands[2], self.mm[operands[0]], 8
            )
            return
        if op == "movd_st":
            self.memory.write(
                self.r[operands[1]] + operands[2],
                self.mm[operands[0]] & 0xFFFFFFFF,
                4,
            )
            return
        if op == "prefetcht0":
            return                      # hint: no architectural effect
        if spec.sources == 3:
            self.mm[operands[0]] = execute_mmx3(
                op,
                self.mm[operands[1]],
                self.mm[operands[2]],
                self.mm[operands[3]],
            )
            return
        if spec.sources == 1:
            imm = operands[2] if len(operands) > 2 else 0
            self.mm[operands[0]] = execute_mmx(
                op, self.mm[operands[1]], imm=imm
            )
            return
        imm = operands[3] if len(operands) > 3 else 0
        self.mm[operands[0]] = execute_mmx(
            op, self.mm[operands[1]], self.mm[operands[2]], imm=imm
        )

    # ----- MOM -----------------------------------------------------------------

    #: Accumulator fold variants: mnemonic -> (element type, sign).
    _ACC_FOLD = {
        "vaddab": (ET.INT8, 1),
        "vaddaw": (ET.INT16, 1),
        "vaddad": (ET.INT32, 1),
        "vsubab": (ET.INT8, -1),
        "vsubaw": (ET.INT16, -1),
        "vsubad": (ET.INT32, -1),
    }

    #: Whole-stream reductions into a scalar register: mnemonic ->
    #: (element type, combining function over all lane values).
    _SCALAR_REDUCE = {
        "vsumb": (ET.INT8, sum),
        "vsumw": (ET.INT16, sum),
        "vsumd": (ET.INT32, sum),
        "vminredb": (ET.INT8, min),
        "vminredw": (ET.INT16, min),
        "vminredd": (ET.INT32, min),
        "vmaxredb": (ET.INT8, max),
        "vmaxredw": (ET.INT16, max),
        "vmaxredd": (ET.INT32, max),
    }

    def exec_mom(self, op: str, operands: list) -> None:
        if op not in MOM_OPCODES:
            raise KeyError(f"unknown MOM mnemonic {op!r}")
        if op in TIMING_ONLY_MNEMONICS:
            raise NotImplementedError(
                f"MOM mnemonic {op!r} is timing-only: it has a simulator "
                "opcode class but no modeled architectural semantics"
            )
        length = self._check_slr()
        if op == "setslri":
            self.slr = operands[0]
            self._check_slr()
            return
        if op == "mtslr":
            self.slr = self.r[operands[0]]
            self._check_slr()
            return
        if op == "mfslr":
            self.r[operands[0]] = self.slr
            return
        if op == "vprefetch":
            return                      # hint: no architectural effect
        if op in ("vldq", "vldw", "vldd", "vldb", "vldub", "vlduw"):
            base = self.r[operands[1]] + operands[2]
            stride = operands[3] if len(operands) > 3 else 8
            self.v[operands[0]][:length] = self.memory.read_words(
                base, length, stride
            )
            return
        if op in ("vstq", "vstw", "vstd", "vstb"):
            base = self.r[operands[1]] + operands[2]
            stride = operands[3] if len(operands) > 3 else 8
            self.memory.write_words(
                base, self.v[operands[0]][:length], stride
            )
            return
        if op == "vclracc":
            self.acc[operands[0]].clear()
            return
        if op in self._ACC_FOLD:
            etype, sign = self._ACC_FOLD[op]
            self.acc[operands[0]].add_stream(
                self.v[operands[1]][:length], sign=sign, etype=etype
            )
            return
        if op in ("vmulaw", "vmaddawd", "vmsubawd"):
            sign = -1 if op == "vmsubawd" else 1
            self.acc[operands[0]].madd_stream(
                self.v[operands[1]][:length],
                self.v[operands[2]][:length],
                sign=sign,
            )
            return
        if op == "vsadab":
            self.acc[operands[0]].sad_stream(
                self.v[operands[1]][:length], self.v[operands[2]][:length]
            )
            return
        if op.startswith("vrdacc"):
            etype = {
                "vrdaccsb": ET.INT8,
                "vrdaccsw": ET.INT16,
                "vrdaccsd": ET.INT32,
                "vrdaccub": ET.UINT8,
                "vrdaccuw": ET.UINT16,
                "vrdaccud": ET.UINT32,
            }[op]
            self.mm[operands[0]] = self.acc[operands[1]].read(etype)
            return
        if op in self._SCALAR_REDUCE:
            # Reduce every signed lane of every stream element to a scalar.
            etype, combine = self._SCALAR_REDUCE[op]
            lanes: list[int] = []
            for word in self.v[operands[1]][:length]:
                lanes.extend(unpack_lanes(word, etype))
            self.r[operands[0]] = combine(lanes) & _U64
            return
        if op == "vsadbw":
            total = 0
            for wa, wb in zip(
                self.v[operands[1]][:length], self.v[operands[2]][:length]
            ):
                total += psadbw(wa, wb)
            self.r[operands[0]] = total & _U64
            return
        if op == "vsplatq":
            self.v[operands[0]][:length] = [self.mm[operands[1]]] * length
            return
        if op == "vmov":
            self.v[operands[0]][:length] = list(self.v[operands[1]][:length])
            return
        if op == "vzero":
            self.v[operands[0]][:length] = [0] * length
            return
        # Generic element-wise stream arithmetic: apply the MMX semantic
        # "p" + suffix per element — the architectural definition of MOM.
        spec = MOM_OPCODES[op]
        if spec.sim_class not in (Opcode.MOM_ALU, Opcode.MOM_MUL):
            raise NotImplementedError(
                f"MOM mnemonic {op!r} has no dedicated handler and is not "
                "element-wise stream arithmetic"
            )
        # Most MOM mnemonics are "v" + suffix of an MMX "p"-mnemonic
        # (vaddb -> paddb); pack/unpack forms already carry the "p"
        # (vpacksswb -> packsswb).
        base_mnemonic = op[1:] if op[1:].startswith("p") else "p" + op[1:]
        dst, src_a = operands[0], operands[1]
        if spec.sources == 3:
            src_b, src_c = operands[2], operands[3]
            self.v[dst][:length] = [
                execute_mmx3(base_mnemonic, a, b, c)
                for a, b, c in zip(
                    self.v[src_a][:length],
                    self.v[src_b][:length],
                    self.v[src_c][:length],
                )
            ]
        elif spec.sources == 2:
            src_b = operands[2]
            imm = operands[3] if len(operands) > 3 else 0
            self.v[dst][:length] = [
                execute_mmx(base_mnemonic, a, b, imm=imm)
                for a, b in zip(
                    self.v[src_a][:length], self.v[src_b][:length]
                )
            ]
        else:
            imm = operands[2] if len(operands) > 2 else 0
            self.v[dst][:length] = [
                execute_mmx(base_mnemonic, a, imm=imm)
                for a in self.v[src_a][:length]
            ]

    # ----- dispatch ---------------------------------------------------------------

    def execute(self, op: str, operands: list) -> None:
        """Execute one decoded instruction (mnemonic + operand list)."""
        self.executed += 1
        if op in MOM_OPCODES:
            self.exec_mom(op, operands)
        elif op in MMX_OPCODES:
            self.exec_mmx(op, operands)
        else:
            self.exec_scalar(op, operands)
