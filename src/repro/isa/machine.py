"""An architectural-state machine for the scalar + µ-SIMD ISAs.

While :mod:`repro.core` models *timing*, this module models *function*:
a register file, a byte-addressed memory, and an executor for assembly
programs written with the real MMX/MOM mnemonics.  It exists so the ISA
tables are not just documentation — kernels can be written in MOM
assembly, executed, and checked against the Python reference kernels
(see ``tests/test_isa_machine.py`` and ``examples/mom_assembly.py``).

Supported instruction forms (see :mod:`repro.isa.assembler` for syntax):

* scalar: ``li``, ``add``, ``sub``, ``mul``, ``ld``, ``st``, loops via
  ``loop`` (decrement-and-branch);
* MMX: any mnemonic with modeled semantics in
  :mod:`repro.isa.semantics`, plus ``movq_ld``/``movq_st``;
* MOM: stream arithmetic (element-wise over stream registers), strided
  stream loads/stores (``vldq``/``vstq``), accumulator reductions
  (``vmaddawd``, ``vsadab``, ``vaddaw``), accumulator readout and
  ``setslri``/``mtslr``.
"""

from __future__ import annotations

from repro.isa.datatypes import ElementType as ET, REGISTER_BITS
from repro.isa.mmx import MMX_LOGICAL_REGISTERS, MMX_OPCODES
from repro.isa.mom import (
    MOM_ACCUMULATORS,
    MOM_MAX_STREAM_LENGTH,
    MOM_OPCODES,
    MOM_STREAM_REGISTERS,
)
from repro.isa.semantics import (
    PackedAccumulator,
    execute_mmx,
    execute_mmx3,
    psadbw,
)

_U64 = (1 << REGISTER_BITS) - 1


class ByteMemory:
    """Sparse little-endian byte-addressed memory."""

    def __init__(self):
        self._bytes: dict[int, int] = {}

    def read(self, addr: int, size: int) -> int:
        value = 0
        for i in range(size):
            value |= self._bytes.get(addr + i, 0) << (8 * i)
        return value

    def write(self, addr: int, value: int, size: int) -> None:
        if value < 0:
            value &= (1 << (8 * size)) - 1
        for i in range(size):
            self._bytes[addr + i] = (value >> (8 * i)) & 0xFF

    def write_words(self, addr: int, words, stride: int = 8) -> None:
        for i, word in enumerate(words):
            self.write(addr + i * stride, word, 8)

    def read_words(self, addr: int, count: int, stride: int = 8) -> list[int]:
        return [self.read(addr + i * stride, 8) for i in range(count)]


class MediaMachine:
    """Architectural state: scalar, MMX, MOM registers and memory."""

    def __init__(self):
        self.r = [0] * 32                                # scalar integer
        self.mm = [0] * MMX_LOGICAL_REGISTERS            # packed 64-bit
        self.v = [
            [0] * MOM_MAX_STREAM_LENGTH for __ in range(MOM_STREAM_REGISTERS)
        ]
        self.acc = [PackedAccumulator() for __ in range(MOM_ACCUMULATORS)]
        self.slr = MOM_MAX_STREAM_LENGTH                 # stream length
        self.memory = ByteMemory()
        self.executed = 0

    # ----- helpers ----------------------------------------------------------

    def _check_slr(self) -> int:
        if not 1 <= self.slr <= MOM_MAX_STREAM_LENGTH:
            raise ValueError(f"stream length register out of range: {self.slr}")
        return self.slr

    # ----- scalar ----------------------------------------------------------

    def exec_scalar(self, op: str, operands: list) -> None:
        if op == "li":
            self.r[operands[0]] = operands[1] & _U64
        elif op == "add":
            self.r[operands[0]] = (
                self.r[operands[1]] + self.r[operands[2]]
            ) & _U64
        elif op == "addi":
            self.r[operands[0]] = (self.r[operands[1]] + operands[2]) & _U64
        elif op == "sub":
            self.r[operands[0]] = (
                self.r[operands[1]] - self.r[operands[2]]
            ) & _U64
        elif op == "mul":
            self.r[operands[0]] = (
                self.r[operands[1]] * self.r[operands[2]]
            ) & _U64
        elif op == "ld":
            self.r[operands[0]] = self.memory.read(
                self.r[operands[1]] + operands[2], 8
            )
        elif op == "st":
            self.memory.write(
                self.r[operands[1]] + operands[2], self.r[operands[0]], 8
            )
        else:
            raise KeyError(f"unknown scalar mnemonic {op!r}")

    # ----- MMX ----------------------------------------------------------------

    def exec_mmx(self, op: str, operands: list) -> None:
        if op not in MMX_OPCODES:
            raise KeyError(f"unknown MMX mnemonic {op!r}")
        spec = MMX_OPCODES[op]
        if op == "movq_ld":
            self.mm[operands[0]] = self.memory.read(
                self.r[operands[1]] + operands[2], 8
            )
            return
        if op == "movq_st":
            self.memory.write(
                self.r[operands[1]] + operands[2], self.mm[operands[0]], 8
            )
            return
        if spec.sources == 3:
            self.mm[operands[0]] = execute_mmx3(
                op,
                self.mm[operands[1]],
                self.mm[operands[2]],
                self.mm[operands[3]],
            )
            return
        if spec.sources == 1:
            imm = operands[2] if len(operands) > 2 else 0
            self.mm[operands[0]] = execute_mmx(
                op, self.mm[operands[1]], imm=imm
            )
            return
        self.mm[operands[0]] = execute_mmx(
            op, self.mm[operands[1]], self.mm[operands[2]]
        )

    # ----- MOM -----------------------------------------------------------------

    def exec_mom(self, op: str, operands: list) -> None:
        if op not in MOM_OPCODES:
            raise KeyError(f"unknown MOM mnemonic {op!r}")
        length = self._check_slr()
        if op == "setslri":
            self.slr = operands[0]
            self._check_slr()
            return
        if op == "mtslr":
            self.slr = self.r[operands[0]]
            self._check_slr()
            return
        if op == "mfslr":
            self.r[operands[0]] = self.slr
            return
        if op in ("vldq", "vldw", "vldd", "vldb", "vldub", "vlduw"):
            base = self.r[operands[1]] + operands[2]
            stride = operands[3] if len(operands) > 3 else 8
            self.v[operands[0]][:length] = self.memory.read_words(
                base, length, stride
            )
            return
        if op in ("vstq", "vstw", "vstd", "vstb"):
            base = self.r[operands[1]] + operands[2]
            stride = operands[3] if len(operands) > 3 else 8
            self.memory.write_words(
                base, self.v[operands[0]][:length], stride
            )
            return
        if op == "vclracc":
            self.acc[operands[0]].clear()
            return
        if op == "vaddaw":
            self.acc[operands[0]].add_stream(self.v[operands[1]][:length])
            return
        if op == "vsubaw":
            self.acc[operands[0]].add_stream(
                self.v[operands[1]][:length], sign=-1
            )
            return
        if op == "vmaddawd":
            self.acc[operands[0]].madd_stream(
                self.v[operands[1]][:length], self.v[operands[2]][:length]
            )
            return
        if op == "vsadab":
            self.acc[operands[0]].sad_stream(
                self.v[operands[1]][:length], self.v[operands[2]][:length]
            )
            return
        if op.startswith("vrdacc"):
            etype = {
                "vrdaccsb": ET.INT8,
                "vrdaccsw": ET.INT16,
                "vrdaccsd": ET.INT32,
                "vrdaccub": ET.UINT8,
                "vrdaccuw": ET.UINT16,
                "vrdaccud": ET.UINT32,
            }[op]
            self.mm[operands[0]] = self.acc[operands[1]].read(etype)
            return
        if op == "vsumd":
            # Reduce: scalar sum of 32-bit lanes over the stream.
            total = 0
            for word in self.v[operands[1]][:length]:
                lanes = [(word >> 32 * i) & 0xFFFFFFFF for i in range(2)]
                total += sum(lanes)
            self.r[operands[0]] = total & _U64
            return
        if op == "vsadbw":
            total = 0
            for wa, wb in zip(
                self.v[operands[1]][:length], self.v[operands[2]][:length]
            ):
                total += psadbw(wa, wb)
            self.r[operands[0]] = total & _U64
            return
        if op == "vsplatq":
            self.v[operands[0]][:length] = [self.mm[operands[1]]] * length
            return
        if op == "vmov":
            self.v[operands[0]][:length] = list(self.v[operands[1]][:length])
            return
        if op == "vzero":
            self.v[operands[0]][:length] = [0] * length
            return
        # Generic element-wise stream arithmetic: apply the MMX semantic
        # "p" + suffix per element — the architectural definition of MOM.
        spec = MOM_OPCODES[op]
        base_mnemonic = "p" + op[1:]
        dst, src_a = operands[0], operands[1]
        if spec.sources >= 2:
            src_b = operands[2]
            self.v[dst][:length] = [
                execute_mmx(base_mnemonic, a, b)
                for a, b in zip(
                    self.v[src_a][:length], self.v[src_b][:length]
                )
            ]
        else:
            imm = operands[2] if len(operands) > 2 else 0
            self.v[dst][:length] = [
                execute_mmx(base_mnemonic, a, imm=imm)
                for a in self.v[src_a][:length]
            ]

    # ----- dispatch ---------------------------------------------------------------

    def execute(self, op: str, operands: list) -> None:
        """Execute one decoded instruction (mnemonic + operand list)."""
        self.executed += 1
        if op in MOM_OPCODES:
            self.exec_mom(op, operands)
        elif op in MMX_OPCODES:
            self.exec_mmx(op, operands)
        else:
            self.exec_scalar(op, operands)
