"""Kernel code generation: emit real MOM/MMX assembly for common loops.

The reverse of :mod:`repro.tracegen`: instead of modeling instruction
streams statistically, these generators produce *actual runnable
assembly* (for :mod:`repro.isa.machine`) for the multiply-accumulate,
SAD and element-wise map loops that dominate media kernels — under both
ISAs, so the instruction-count claims of the paper can be checked on
executable code (see ``tests/test_isa_codegen.py``).

All generators operate on int16 data laid out contiguously in memory and
assume lengths that are multiples of the vectorization width.
"""

from __future__ import annotations

from repro.isa.assembler import Program, assemble
from repro.isa.mom import MOM_MAX_STREAM_LENGTH

#: int16 elements per 64-bit register.
LANES = 4


def _check_length(n_elements: int, multiple: int) -> None:
    if n_elements <= 0 or n_elements % multiple:
        raise ValueError(
            f"element count must be a positive multiple of {multiple}"
        )


# --------------------------------------------------------------------- MOM

def mom_dot_product(a_base: int, b_base: int, n_elements: int) -> Program:
    """MOM assembly computing a dot product of two int16 arrays.

    One ``vmaddawd`` per 64 elements; the result accumulates in ``a0``.
    """
    per_stream = LANES * MOM_MAX_STREAM_LENGTH
    _check_length(n_elements, per_stream)
    chunks = n_elements // per_stream
    lines = [
        f"    li r1, {a_base}",
        f"    li r2, {b_base}",
        f"    setslri {MOM_MAX_STREAM_LENGTH}",
        "    vclracc a0",
    ]
    for chunk in range(chunks):
        offset = chunk * per_stream * 2
        lines += [
            f"    vldq v0, r1, {offset}, 8",
            f"    vldq v1, r2, {offset}, 8",
            "    vmaddawd a0, v0, v1",
        ]
    return assemble("\n".join(lines))


def mom_sad(a_base: int, b_base: int, n_bytes: int) -> Program:
    """MOM assembly for a byte SAD; result in accumulator ``a1`` lane 0."""
    per_stream = 8 * MOM_MAX_STREAM_LENGTH
    _check_length(n_bytes, per_stream)
    chunks = n_bytes // per_stream
    lines = [
        f"    li r1, {a_base}",
        f"    li r2, {b_base}",
        f"    setslri {MOM_MAX_STREAM_LENGTH}",
        "    vclracc a1",
    ]
    for chunk in range(chunks):
        offset = chunk * per_stream
        lines += [
            f"    vldq v0, r1, {offset}, 8",
            f"    vldq v1, r2, {offset}, 8",
            "    vsadab a1, v0, v1",
        ]
    return assemble("\n".join(lines))


def mom_saturating_add(a_base: int, b_base: int, out_base: int,
                       n_elements: int) -> Program:
    """MOM assembly for ``out[i] = sat16(a[i] + b[i])``."""
    per_stream = LANES * MOM_MAX_STREAM_LENGTH
    _check_length(n_elements, per_stream)
    chunks = n_elements // per_stream
    lines = [
        f"    li r1, {a_base}",
        f"    li r2, {b_base}",
        f"    li r3, {out_base}",
        f"    setslri {MOM_MAX_STREAM_LENGTH}",
    ]
    for chunk in range(chunks):
        offset = chunk * per_stream * 2
        lines += [
            f"    vldq v0, r1, {offset}, 8",
            f"    vldq v1, r2, {offset}, 8",
            "    vaddsw v2, v0, v1",
            f"    vstq v2, r3, {offset}, 8",
        ]
    return assemble("\n".join(lines))


# --------------------------------------------------------------------- MMX

def mmx_dot_product(a_base: int, b_base: int, n_elements: int) -> Program:
    """MMX assembly for the same dot product, fully unrolled.

    Per 4 elements: two loads, one ``pmaddwd``, one ``paddd`` into the
    running packed sum (register ``mm0``); the caller folds the final two
    32-bit lanes (the reduction overhead MOM's accumulator hides).
    """
    _check_length(n_elements, LANES)
    words = n_elements // LANES
    lines = [
        f"    li r1, {a_base}",
        f"    li r2, {b_base}",
        "    pxor mm0, mm0, mm0",
    ]
    for word in range(words):
        offset = word * 8
        lines += [
            f"    movq_ld mm1, r1, {offset}",
            f"    movq_ld mm2, r2, {offset}",
            "    pmaddwd mm3, mm1, mm2",
            "    paddd mm0, mm0, mm3",
        ]
    return assemble("\n".join(lines))


def mmx_saturating_add(a_base: int, b_base: int, out_base: int,
                       n_elements: int) -> Program:
    """MMX assembly for the element-wise saturating add."""
    _check_length(n_elements, LANES)
    words = n_elements // LANES
    lines = [
        f"    li r1, {a_base}",
        f"    li r2, {b_base}",
        f"    li r3, {out_base}",
    ]
    for word in range(words):
        offset = word * 8
        lines += [
            f"    movq_ld mm1, r1, {offset}",
            f"    movq_ld mm2, r2, {offset}",
            "    paddsw mm3, mm1, mm2",
            f"    movq_st mm3, r3, {offset}",
        ]
    return assemble("\n".join(lines))


def instruction_counts(n_elements: int) -> dict[str, int]:
    """Static instruction counts of the two dot-product generators.

    The ratio is the paper's fetch/issue-bandwidth argument in one
    number: MOM needs ~3 instructions per 64 elements, MMX ~4 per 4.
    """
    mom = len(mom_dot_product(0x1000, 0x2000, _round(n_elements)).instructions)
    mmx = len(mmx_dot_product(0x1000, 0x2000, _round(n_elements)).instructions)
    return {"mom": mom, "mmx": mmx}


def _round(n_elements: int) -> int:
    per_stream = LANES * MOM_MAX_STREAM_LENGTH
    return max(per_stream, (n_elements // per_stream) * per_stream)
