"""Opcode classes, functional-unit classes and latencies.

The simulator does not interpret full mnemonic semantics cycle by cycle;
like most trace-driven microarchitecture models it classifies every dynamic
instruction into an *opcode class* that determines which issue queue it
dispatches to, which functional unit executes it and with what latency.
The full mnemonic-level ISA tables (67 MMX opcodes, 121 MOM opcodes) live
in :mod:`repro.isa.mmx` and :mod:`repro.isa.mom` and map down onto these
classes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FuClass(enum.IntEnum):
    """Functional-unit classes present in the modeled core."""

    INT_ALU = 0
    INT_MUL = 1
    FP_ADD = 2
    FP_MUL = 3
    FP_DIV = 4
    MEM_PORT = 5          # scalar load/store ports (also MMX loads/stores)
    VEC_MEM_PORT = 6      # stream memory ports (decoupled hierarchy)
    MMX_FU = 7            # packed µ-SIMD units (2 in the SMT+MMX config)
    MOM_PIPE = 8          # the 2-lane MOM vector unit
    NONE = 9


class Queue(enum.IntEnum):
    """Issue queues of the modeled core (paper figure 2)."""

    INT = 0
    FP = 1
    MEM = 2
    SIMD = 3


class Opcode(enum.IntEnum):
    """Dynamic-instruction classes consumed by the simulator."""

    # Scalar base ISA (Alpha-like).
    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    BRANCH = 3
    JUMP = 4
    LOAD = 5
    STORE = 6
    FP_ADD = 7
    FP_MUL = 8
    FP_DIV = 9
    NOP = 10
    # MMX-like packed µ-SIMD extension.
    MMX_ALU = 11
    MMX_MUL = 12
    MMX_LOAD = 13
    MMX_STORE = 14
    # MOM streaming vector µ-SIMD extension.
    MOM_ALU = 15
    MOM_MUL = 16
    MOM_LOAD = 17
    MOM_STORE = 18
    MOM_REDUCE = 19       # packed-accumulator reductions
    MOM_SETSLR = 20       # write the stream-length register (integer queue)


@dataclass(frozen=True)
class OpcodeInfo:
    """Static execution properties of an opcode class."""

    queue: Queue
    fu: FuClass
    latency: int
    is_mem: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_simd: bool = False
    is_stream: bool = False


# Latencies follow the paper's R10000-like core: single-cycle integer ALU,
# pipelined multiplier, 4-cycle FP adder/multiplier, long dividers.  Memory
# opcode latency here is the *address-generation* cost; cache access time is
# modeled by the memory hierarchy.
OPCODE_INFO: dict[Opcode, OpcodeInfo] = {
    Opcode.INT_ALU: OpcodeInfo(Queue.INT, FuClass.INT_ALU, 1),
    Opcode.INT_MUL: OpcodeInfo(Queue.INT, FuClass.INT_MUL, 8),
    Opcode.INT_DIV: OpcodeInfo(Queue.INT, FuClass.INT_MUL, 16),
    Opcode.BRANCH: OpcodeInfo(Queue.INT, FuClass.INT_ALU, 1, is_branch=True),
    Opcode.JUMP: OpcodeInfo(Queue.INT, FuClass.INT_ALU, 1, is_branch=True),
    Opcode.LOAD: OpcodeInfo(Queue.MEM, FuClass.MEM_PORT, 1, is_mem=True),
    Opcode.STORE: OpcodeInfo(
        Queue.MEM, FuClass.MEM_PORT, 1, is_mem=True, is_store=True
    ),
    Opcode.FP_ADD: OpcodeInfo(Queue.FP, FuClass.FP_ADD, 4),
    Opcode.FP_MUL: OpcodeInfo(Queue.FP, FuClass.FP_MUL, 4),
    Opcode.FP_DIV: OpcodeInfo(Queue.FP, FuClass.FP_DIV, 16),
    Opcode.NOP: OpcodeInfo(Queue.INT, FuClass.NONE, 1),
    Opcode.MMX_ALU: OpcodeInfo(Queue.SIMD, FuClass.MMX_FU, 1, is_simd=True),
    Opcode.MMX_MUL: OpcodeInfo(Queue.SIMD, FuClass.MMX_FU, 3, is_simd=True),
    Opcode.MMX_LOAD: OpcodeInfo(
        Queue.MEM, FuClass.MEM_PORT, 1, is_mem=True, is_simd=True
    ),
    Opcode.MMX_STORE: OpcodeInfo(
        Queue.MEM, FuClass.MEM_PORT, 1, is_mem=True, is_store=True, is_simd=True
    ),
    Opcode.MOM_ALU: OpcodeInfo(
        Queue.SIMD, FuClass.MOM_PIPE, 1, is_simd=True, is_stream=True
    ),
    Opcode.MOM_MUL: OpcodeInfo(
        Queue.SIMD, FuClass.MOM_PIPE, 3, is_simd=True, is_stream=True
    ),
    Opcode.MOM_LOAD: OpcodeInfo(
        Queue.MEM,
        FuClass.VEC_MEM_PORT,
        1,
        is_mem=True,
        is_simd=True,
        is_stream=True,
    ),
    Opcode.MOM_STORE: OpcodeInfo(
        Queue.MEM,
        FuClass.VEC_MEM_PORT,
        1,
        is_mem=True,
        is_store=True,
        is_simd=True,
        is_stream=True,
    ),
    Opcode.MOM_REDUCE: OpcodeInfo(
        Queue.SIMD, FuClass.MOM_PIPE, 2, is_simd=True, is_stream=True
    ),
    Opcode.MOM_SETSLR: OpcodeInfo(Queue.INT, FuClass.INT_ALU, 1),
}


def latency_of(op: Opcode) -> int:
    """Execution latency (cycles) of an opcode class."""
    return OPCODE_INFO[op].latency


def fu_class_of(op: Opcode) -> FuClass:
    """Functional-unit class that executes an opcode class."""
    return OPCODE_INFO[op].fu


def queue_of(op: Opcode) -> Queue:
    """Issue queue an opcode class dispatches to."""
    return OPCODE_INFO[op].queue


#: Opcode classes counted as "integer" in the paper's Table 3 breakdown.
INTEGER_CLASSES = frozenset(
    {
        Opcode.INT_ALU,
        Opcode.INT_MUL,
        Opcode.INT_DIV,
        Opcode.BRANCH,
        Opcode.JUMP,
        Opcode.MOM_SETSLR,
        Opcode.NOP,
    }
)

#: Opcode classes counted as "FP" in Table 3.
FP_CLASSES = frozenset({Opcode.FP_ADD, Opcode.FP_MUL, Opcode.FP_DIV})

#: Opcode classes counted as "SIMD arithmetic" in Table 3.
SIMD_ARITH_CLASSES = frozenset(
    {
        Opcode.MMX_ALU,
        Opcode.MMX_MUL,
        Opcode.MOM_ALU,
        Opcode.MOM_MUL,
        Opcode.MOM_REDUCE,
    }
)

#: Opcode classes counted as "memory" (scalar and vector) in Table 3.
MEMORY_CLASSES = frozenset(
    {
        Opcode.LOAD,
        Opcode.STORE,
        Opcode.MMX_LOAD,
        Opcode.MMX_STORE,
        Opcode.MOM_LOAD,
        Opcode.MOM_STORE,
    }
)
