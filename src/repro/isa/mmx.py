"""The MMX-like packed µ-SIMD extension evaluated by the paper.

The paper implements "an approximation of SSE integer opcodes with 67
instructions and 32 logical registers (as opposed to 8)", extended with
"new reduction operations and multiple source registers, not present in
the original SSE".  This module defines those 67 opcodes as structured
specs; the count is asserted by the test suite.

All operations work on 64-bit registers holding packed bytes, half-words
or words (see :mod:`repro.isa.datatypes`).
"""

from __future__ import annotations

from repro.isa.datatypes import ElementType as ET
from repro.isa.opcodes import Opcode
from repro.isa.spec import MnemonicSpec, build_table

#: Logical register count of the extension (SSE's 8 widened to 32).
MMX_LOGICAL_REGISTERS = 32

_S = MnemonicSpec

_SPECS: list[MnemonicSpec] = [
    # --- Packed addition (wrap-around and saturating). -----------------
    _S("paddb", Opcode.MMX_ALU, ET.INT8, description="packed add bytes"),
    _S("paddw", Opcode.MMX_ALU, ET.INT16, description="packed add words"),
    _S("paddd", Opcode.MMX_ALU, ET.INT32, description="packed add dwords"),
    _S("paddsb", Opcode.MMX_ALU, ET.INT8, description="add signed-saturate bytes"),
    _S("paddsw", Opcode.MMX_ALU, ET.INT16, description="add signed-saturate words"),
    _S("paddusb", Opcode.MMX_ALU, ET.UINT8, description="add unsigned-saturate bytes"),
    _S("paddusw", Opcode.MMX_ALU, ET.UINT16, description="add unsigned-saturate words"),
    # --- Packed subtraction. -------------------------------------------
    _S("psubb", Opcode.MMX_ALU, ET.INT8, description="packed subtract bytes"),
    _S("psubw", Opcode.MMX_ALU, ET.INT16, description="packed subtract words"),
    _S("psubd", Opcode.MMX_ALU, ET.INT32, description="packed subtract dwords"),
    _S("psubsb", Opcode.MMX_ALU, ET.INT8, description="sub signed-saturate bytes"),
    _S("psubsw", Opcode.MMX_ALU, ET.INT16, description="sub signed-saturate words"),
    _S("psubusb", Opcode.MMX_ALU, ET.UINT8, description="sub unsigned-saturate bytes"),
    _S("psubusw", Opcode.MMX_ALU, ET.UINT16, description="sub unsigned-saturate words"),
    # --- Packed multiplication. -----------------------------------------
    _S("pmullw", Opcode.MMX_MUL, ET.INT16, description="multiply, keep low halves"),
    _S("pmulhw", Opcode.MMX_MUL, ET.INT16, description="multiply, keep high halves"),
    _S("pmulhuw", Opcode.MMX_MUL, ET.UINT16, description="unsigned multiply high"),
    _S("pmaddwd", Opcode.MMX_MUL, ET.INT16, description="multiply-add word pairs"),
    # --- Packed comparison. ----------------------------------------------
    _S("pcmpeqb", Opcode.MMX_ALU, ET.INT8, description="compare equal bytes"),
    _S("pcmpeqw", Opcode.MMX_ALU, ET.INT16, description="compare equal words"),
    _S("pcmpeqd", Opcode.MMX_ALU, ET.INT32, description="compare equal dwords"),
    _S("pcmpgtb", Opcode.MMX_ALU, ET.INT8, description="compare greater bytes"),
    _S("pcmpgtw", Opcode.MMX_ALU, ET.INT16, description="compare greater words"),
    _S("pcmpgtd", Opcode.MMX_ALU, ET.INT32, description="compare greater dwords"),
    # --- Full-register logic. --------------------------------------------
    _S("pand", Opcode.MMX_ALU, None, description="bitwise and"),
    _S("pandn", Opcode.MMX_ALU, None, description="bitwise and-not"),
    _S("por", Opcode.MMX_ALU, None, description="bitwise or"),
    _S("pxor", Opcode.MMX_ALU, None, description="bitwise xor"),
    # --- Shifts. -----------------------------------------------------------
    _S("psllw", Opcode.MMX_ALU, ET.UINT16, sources=1, description="shift left words"),
    _S("pslld", Opcode.MMX_ALU, ET.UINT32, sources=1, description="shift left dwords"),
    _S("psllq", Opcode.MMX_ALU, None, sources=1, description="shift left qword"),
    _S("psrlw", Opcode.MMX_ALU, ET.UINT16, sources=1, description="shift right logical words"),
    _S("psrld", Opcode.MMX_ALU, ET.UINT32, sources=1, description="shift right logical dwords"),
    _S("psrlq", Opcode.MMX_ALU, None, sources=1, description="shift right logical qword"),
    _S("psraw", Opcode.MMX_ALU, ET.INT16, sources=1, description="shift right arithmetic words"),
    _S("psrad", Opcode.MMX_ALU, ET.INT32, sources=1, description="shift right arithmetic dwords"),
    # --- Pack / unpack (format conversion). -------------------------------
    _S("packsswb", Opcode.MMX_ALU, ET.INT16, description="pack words to signed-sat bytes"),
    _S("packssdw", Opcode.MMX_ALU, ET.INT32, description="pack dwords to signed-sat words"),
    _S("packuswb", Opcode.MMX_ALU, ET.INT16, description="pack words to unsigned-sat bytes"),
    _S("punpcklbw", Opcode.MMX_ALU, ET.INT8, description="interleave low bytes"),
    _S("punpcklwd", Opcode.MMX_ALU, ET.INT16, description="interleave low words"),
    _S("punpckldq", Opcode.MMX_ALU, ET.INT32, description="interleave low dwords"),
    _S("punpckhbw", Opcode.MMX_ALU, ET.INT8, description="interleave high bytes"),
    _S("punpckhwd", Opcode.MMX_ALU, ET.INT16, description="interleave high words"),
    _S("punpckhdq", Opcode.MMX_ALU, ET.INT32, description="interleave high dwords"),
    # --- SSE integer additions (average, min/max, SAD, shuffle). ---------
    _S("pavgb", Opcode.MMX_ALU, ET.UINT8, description="rounded average bytes"),
    _S("pavgw", Opcode.MMX_ALU, ET.UINT16, description="rounded average words"),
    _S("pminub", Opcode.MMX_ALU, ET.UINT8, description="minimum unsigned bytes"),
    _S("pminsw", Opcode.MMX_ALU, ET.INT16, description="minimum signed words"),
    _S("pmaxub", Opcode.MMX_ALU, ET.UINT8, description="maximum unsigned bytes"),
    _S("pmaxsw", Opcode.MMX_ALU, ET.INT16, description="maximum signed words"),
    _S("psadbw", Opcode.MMX_MUL, ET.UINT8, description="sum of absolute differences"),
    _S("pshufw", Opcode.MMX_ALU, ET.INT16, sources=1, description="shuffle words by immediate"),
    _S("pmovmskb", Opcode.MMX_ALU, ET.INT8, sources=1, description="move byte sign mask to int"),
    _S("pextrw", Opcode.MMX_ALU, ET.INT16, sources=1, description="extract word to int reg"),
    _S("pinsrw", Opcode.MMX_ALU, ET.INT16, description="insert word from int reg"),
    # --- Memory. -----------------------------------------------------------
    _S("movq_ld", Opcode.MMX_LOAD, None, sources=1, description="load 64-bit register"),
    _S("movq_st", Opcode.MMX_STORE, None, sources=2, description="store 64-bit register"),
    _S("movd_ld", Opcode.MMX_LOAD, ET.INT32, sources=1, description="load 32 bits, zero-extend"),
    _S("movd_st", Opcode.MMX_STORE, ET.INT32, sources=2, description="store low 32 bits"),
    _S("movntq", Opcode.MMX_STORE, None, sources=2, description="non-temporal 64-bit store"),
    _S("prefetcht0", Opcode.MMX_LOAD, None, sources=1, description="software prefetch hint"),
    # --- Paper's extra features: reductions and 3-source operations. ------
    _S("psumb", Opcode.MMX_ALU, ET.INT8, sources=1, description="reduce: sum of bytes"),
    _S("psumw", Opcode.MMX_ALU, ET.INT16, sources=1, description="reduce: sum of words"),
    _S("psumd", Opcode.MMX_ALU, ET.INT32, sources=1, description="reduce: sum of dwords"),
    _S("pmadd3wd", Opcode.MMX_MUL, ET.INT16, sources=3, description="3-source multiply-accumulate"),
    _S("pselect", Opcode.MMX_ALU, None, sources=3, description="3-source bitwise select"),
]

#: Mnemonic -> spec for the full MMX-like extension.
MMX_OPCODES: dict[str, MnemonicSpec] = build_table(_SPECS)

#: The paper's opcode count, asserted by the test suite.
EXPECTED_MMX_OPCODE_COUNT = 67
