"""Synchronous sweep-service client with reconnect/resubmit recovery.

:class:`SweepClient` speaks :mod:`repro.service.protocol` over a unix
or TCP socket.  Its one non-obvious behaviour is deliberate: a sweep
survives *any* connection loss — an injected chaos drop, a server
SIGKILL + restart, a network blip — by reconnecting and resubmitting
only the still-outstanding fingerprints.  Everything already finished
is a warm hit on the shared store (or a join on the in-flight job), so
resubmission is idempotent and converges; a sweep only fails when the
server stays unreachable or stops making progress.

The client computes every fingerprint locally and cross-checks the
server's ``accepted`` echo: a mismatch means the two sides run
different simulation code (their caches would silently split), which
is surfaced as a loud :class:`~repro.service.protocol.ProtocolError`.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass, field

from repro.analysis.runner import RunRequest, read_checked_json
from repro.service import protocol
from repro.service.server import ENDPOINT_FILENAME


class ServiceUnavailable(ConnectionError):
    """The service cannot be reached, or a sweep stopped progressing."""


@dataclass
class SweepOutcome:
    """What one sweep produced, keyed by fingerprint."""

    #: Fingerprint → ``result`` frame (``result`` payload dict inside).
    results: dict[str, dict] = field(default_factory=dict)
    #: Fingerprint → ``point-failed`` frame.
    failed: dict[str, dict] = field(default_factory=dict)
    #: Delivery provenance: ``{"cache": n, "executed": n, "memo": n}``.
    sources: dict[str, int] = field(default_factory=dict)
    #: Times the client had to reconnect mid-sweep.
    reconnects: int = 0
    #: Every requested fingerprint, in submission order.
    fingerprints: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed and len(self.results) == len(
            set(self.fingerprints)
        )


def resolve_endpoint(cache_dir: str) -> str | tuple[str, int]:
    """Endpoint advertised by the server sharing ``cache_dir``."""
    payload, status = read_checked_json(
        os.path.join(cache_dir, ENDPOINT_FILENAME)
    )
    if status != "ok":
        raise ServiceUnavailable(
            f"no readable service endpoint in {cache_dir} ({status})"
        )
    endpoint = payload["endpoint"]
    if endpoint["kind"] == "unix":
        return endpoint["path"]
    return (endpoint["host"], int(endpoint["port"]))


class SweepClient:
    """One client connection (reconnecting; not thread-safe)."""

    def __init__(
        self,
        endpoint: str | tuple[str, int],
        name: str = "client",
        connect_timeout: float = 30.0,
        read_timeout: float = 120.0,
        retry_delay: float = 0.2,
        progress_window: float = 300.0,
    ):
        #: A unix socket path (str) or a ``(host, port)`` pair.
        self.endpoint = endpoint
        self.name = name
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self.retry_delay = retry_delay
        #: A sweep with no delivery for this long is declared stalled.
        self.progress_window = progress_window
        self._sock: socket.socket | None = None
        self._rfile = None

    # ----- plumbing ---------------------------------------------------------

    def _close(self) -> None:
        for closer in (self._rfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._rfile = None
        self._sock = None

    def _connect(self) -> None:
        """Connect, retrying until ``connect_timeout`` is spent.

        Retrying *here* (not just on I/O errors) is what lets a client
        ride out a full server restart: the socket file or port is
        briefly gone and comes back.
        """
        deadline = time.monotonic() + self.connect_timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            sock = None
            try:
                if isinstance(self.endpoint, str):
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(5.0)
                    sock.connect(self.endpoint)
                else:
                    sock = socket.create_connection(
                        tuple(self.endpoint), timeout=5.0
                    )
                # Keep the short connect timeout through the welcome
                # handshake: a listener that accepts but never serves
                # (e.g. a draining server's half-closed socket) must
                # fail fast and retry, not sit out ``read_timeout``.
                self._sock = sock
                self._rfile = sock.makefile("rb")
                welcome = self._read()
                if welcome.get("op") != "welcome":
                    raise protocol.ProtocolError(
                        f"expected welcome, got {welcome.get('op')!r}"
                    )
                if welcome.get("proto") != protocol.PROTOCOL_VERSION:
                    raise protocol.ProtocolError(
                        f"protocol version mismatch: server speaks "
                        f"{welcome.get('proto')!r}, client "
                        f"{protocol.PROTOCOL_VERSION!r}"
                    )
                self._send({"op": "hello", "name": self.name})
                sock.settimeout(self.read_timeout)
                return
            except protocol.ProtocolError:
                self._close()
                raise
            except (OSError, ConnectionError) as exc:
                last = exc
                if sock is not None and self._sock is None:
                    try:
                        sock.close()
                    except OSError:
                        pass
                self._close()
                time.sleep(self.retry_delay)
        raise ServiceUnavailable(
            f"could not connect to {self.endpoint!r} within "
            f"{self.connect_timeout:g}s: {last}"
        )

    def _send(self, message: dict) -> None:
        if self._sock is None:
            raise ConnectionError("not connected")
        self._sock.sendall(protocol.encode_frame(message))

    def _read(self) -> dict:
        line = self._rfile.readline(protocol.MAX_FRAME_BYTES)
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode_frame(line)

    # ----- operations -------------------------------------------------------

    def sweep(
        self,
        requests: list[RunRequest],
        sweep_id: str | None = None,
        deadline: float = 1800.0,
    ) -> SweepOutcome:
        """Submit a sweep and collect every point's verdict.

        Reconnects and resubmits outstanding points on any connection
        loss.  Raises :class:`ServiceUnavailable` when the overall
        ``deadline`` or the per-delivery ``progress_window`` expires,
        and :class:`~repro.service.protocol.ProtocolError` on a
        fingerprint/code-version mismatch.
        """
        fingerprints = [request.fingerprint() for request in requests]
        remaining: dict[str, RunRequest] = {}
        for request, fingerprint in zip(requests, fingerprints):
            remaining.setdefault(fingerprint, request)
        outcome = SweepOutcome(fingerprints=list(fingerprints))
        submission = 0
        hard_deadline = time.monotonic() + deadline
        last_progress = time.monotonic()
        while remaining:
            now = time.monotonic()
            if now > hard_deadline:
                raise ServiceUnavailable(
                    f"sweep deadline ({deadline:g}s) expired with "
                    f"{len(remaining)} points outstanding"
                )
            if now - last_progress > self.progress_window:
                raise ServiceUnavailable(
                    f"no progress for {self.progress_window:g}s with "
                    f"{len(remaining)} points outstanding"
                )
            try:
                if self._sock is None:
                    self._connect()
                submission += 1
                batch = list(remaining.items())
                self._send({
                    "op": "submit",
                    "sweep": (
                        f"{sweep_id or self.name}#{submission}"
                    ),
                    "requests": [
                        protocol.request_to_wire(request)
                        for _, request in batch
                    ],
                })
                self._collect(
                    batch, remaining, outcome,
                    hard_deadline=hard_deadline,
                )
                last_progress = time.monotonic()
            except (ConnectionError, OSError) as exc:
                if isinstance(exc, ServiceUnavailable):
                    raise
                self._close()
                outcome.reconnects += 1
                if outcome.results or outcome.failed:
                    last_progress = time.monotonic()
                time.sleep(self.retry_delay)
        return outcome

    def _collect(
        self,
        batch: list[tuple[str, RunRequest]],
        remaining: dict[str, RunRequest],
        outcome: SweepOutcome,
        hard_deadline: float,
    ) -> None:
        """Read frames for one submission until its sweep-done."""
        while True:
            if time.monotonic() > hard_deadline:
                raise ServiceUnavailable(
                    "sweep deadline expired while streaming results"
                )
            message = self._read()
            op = message["op"]
            if op == "accepted":
                ours = [fingerprint for fingerprint, _ in batch]
                theirs = message.get("fingerprints")
                if theirs != ours:
                    raise protocol.ProtocolError(
                        "fingerprint mismatch: client and server disagree "
                        "on the simulation code version; refusing to "
                        "split the cache"
                    )
            elif op == "result":
                fingerprint = message.get("fingerprint")
                if fingerprint in remaining:
                    del remaining[fingerprint]
                    outcome.results[fingerprint] = message
                    source = str(message.get("source", "?"))
                    outcome.sources[source] = (
                        outcome.sources.get(source, 0) + 1
                    )
            elif op == "point-failed":
                fingerprint = message.get("fingerprint")
                if fingerprint in remaining:
                    del remaining[fingerprint]
                    outcome.failed[fingerprint] = message
            elif op == "sweep-done":
                return
            elif op == "error":
                if message.get("error") == "draining":
                    raise ServiceUnavailable(
                        "server is draining; submission rejected"
                    )
                raise protocol.ProtocolError(
                    f"server error: {message.get('message')}"
                )
            elif op == "draining":
                raise ConnectionError("server announced drain mid-sweep")
            # welcome/status/heartbeat/ok frames are informational.

    def status(self) -> dict:
        """One status snapshot from the server."""
        if self._sock is None:
            self._connect()
        self._send({"op": "status"})
        while True:
            message = self._read()
            if message["op"] == "status":
                return message

    def drain(self) -> None:
        """Ask the server to drain (best-effort; server may vanish)."""
        try:
            if self._sock is None:
                self._connect()
            self._send({"op": "drain"})
            self._read()  # the ok/ack — or a closed connection
        except (ConnectionError, OSError):
            pass
        finally:
            self._close()

    def close(self) -> None:
        """Graceful goodbye (outstanding work is deliberately orphaned)."""
        try:
            if self._sock is not None:
                self._send({"op": "bye"})
        except (ConnectionError, OSError):
            pass
        finally:
            self._close()

    def __enter__(self) -> "SweepClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
