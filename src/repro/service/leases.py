"""Lease tracking: time-bounded ownership of in-flight work.

The sweep server grants each launched attempt a lease with a TTL equal
to the resilience timeout.  A worker that finishes releases its lease;
one that crashes or hangs lets the lease expire, and the server's
sweeper kills the worker pool and resubmits the job with the same
seeded backoff an in-process sweep would use.

The table is pure bookkeeping: no clocks of its own (every call takes
``now`` explicitly, so tests are deterministic and the server can use
its event loop's monotonic clock), no threads, no I/O.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Lease:
    """One granted lease.  ``ttl=None`` never expires."""

    key: str
    holder: str
    ttl: float | None
    acquired_at: float
    renewed_at: float = field(default=0.0)

    def __post_init__(self):
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {self.ttl!r}")
        if not self.renewed_at:
            self.renewed_at = self.acquired_at

    @property
    def deadline(self) -> float:
        if self.ttl is None:
            return math.inf
        return self.renewed_at + self.ttl

    def expired(self, now: float) -> bool:
        return now >= self.deadline


class LeaseTable:
    """All outstanding leases, keyed by job key (fingerprint)."""

    def __init__(self):
        self._leases: dict[str, Lease] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, key: str) -> bool:
        return key in self._leases

    def get(self, key: str) -> Lease | None:
        return self._leases.get(key)

    def acquire(
        self, key: str, ttl: float | None, now: float, holder: str = ""
    ) -> Lease:
        """Grant (or replace — re-grants are deliberate) a lease."""
        lease = Lease(key=key, holder=holder, ttl=ttl, acquired_at=now)
        self._leases[key] = lease
        return lease

    def renew(self, key: str, now: float) -> bool:
        """Heartbeat: push the deadline out.  False if no such lease."""
        lease = self._leases.get(key)
        if lease is None:
            return False
        lease.renewed_at = now
        return True

    def release(self, key: str) -> Lease | None:
        """Drop a lease (worker finished, or cleanup)."""
        return self._leases.pop(key, None)

    def expired(self, now: float) -> list[Lease]:
        """Expired leases, in deterministic (key) order."""
        return sorted(
            (lease for lease in self._leases.values() if lease.expired(now)),
            key=lambda lease: lease.key,
        )
