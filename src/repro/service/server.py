"""The sweep service: a multi-tenant scheduler over the resilient runner.

``SweepService`` is an asyncio daemon that accepts sweep submissions
from many concurrent clients (``repro.service.client``, or anything
speaking :mod:`repro.service.protocol`), shards fingerprinted
:class:`~repro.analysis.runner.RunRequest`\\ s across a local worker
pool, and streams results into the shared content-addressed
:class:`~repro.analysis.runner.ResultStore` — the same runcache the
in-process :class:`~repro.analysis.runner.Runner` reads and writes, so
a sweep served here is a warm cache for ``run_experiments.py`` and
vice versa.

Every failure mode has an explicit mechanism:

* **Single-flight dedup** — one :class:`Job` per fingerprint, no matter
  how many clients ask; later submitters subscribe to the in-flight
  job and receive the one result.  The durable execution log
  (``service-executions.jsonl``) records each completed simulation, so
  exactly-once execution is *provable* from disk, across restarts.
* **Leases** — every launched attempt holds a lease (TTL = the
  resilience timeout).  A crashed or hung worker lets its lease
  expire; the sweeper kills the pool and the job retries with the same
  deterministic seeded backoff an in-process sweep would use.
* **Retries and pool breaks** — worker death surfaces as
  ``BrokenProcessPool``; the pool is rebuilt, collateral jobs requeue
  uncharged, the victim is charged one attempt.  Too many consecutive
  breaks degrade execution to a single in-process worker
  (PR-4 semantics: no lease preemption there).
* **Client disconnects** — submissions whose client vanished are
  orphaned, not cancelled: they run to completion and land in the
  store, so a reconnecting client gets a warm hit.
* **Graceful drain** — SIGTERM (or a ``drain`` frame) stops accepting
  work, finishes what's in flight, flushes stats, exits 0.
* **Crash restart** — all durable state *is* the store; a restarted
  server re-serves every finished point from cache without
  recomputation.

Chaos coverage: ``FaultPlan.drops_connection`` lets the server abort a
result delivery mid-wire (deterministically, first delivery only), and
``scripts/service_smoke.py`` drives the whole matrix — worker crashes,
hangs, injected disconnects, and a mid-sweep server SIGKILL — to a
bit-identical report.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import time
from collections import deque
from dataclasses import asdict, dataclass, field

from repro.analysis import runner as runner_module
from repro.analysis.resilience import (
    FailureRecord,
    ResilienceConfig,
    backoff_delay,
    describe_request,
    is_transient,
)
from repro.analysis.runner import (
    ResultStore,
    RunRequest,
    read_checked_json,
    write_checked_json,
)
from repro.service import protocol
from repro.service.leases import LeaseTable
from repro.verify import faultinject

#: Durable state the service keeps beside the cache entries.
STATS_FILENAME = "service-stats.json"
EXECUTIONS_FILENAME = "service-executions.jsonl"
ENDPOINT_FILENAME = "service-endpoint.json"

#: Cache-dir entries that are bookkeeping, not simulation points, and
#: therefore must not count as recovered work after a restart.
_NON_POINT_PREFIXES = ("service-", "artifact-", "sweep-checkpoint")


def _worker_init() -> None:
    """Detach pool workers from the server's signal plumbing.

    The pool uses the ``spawn`` start method (see :meth:`_executor`),
    so workers normally start clean.  This initializer is defence in
    depth for any start method that forks: a forked worker inherits the
    event loop's C-level signal handler *and* its wakeup fd, so a
    SIGTERM aimed at a worker — which ``concurrent.futures`` sends to
    the survivors every time a crashed sibling breaks the pool — would
    be written into the shared wakeup pipe and replayed by the parent's
    loop as a *server* SIGTERM, draining the whole service on the first
    worker crash.  Reset both so a worker signal stays a worker signal.
    """
    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)


@dataclass(frozen=True)
class ServiceConfig:
    """How to run one sweep server."""

    #: The shared result store directory (created if missing).
    cache_dir: str
    #: Unix-domain socket path; ``None`` listens on TCP instead.
    socket_path: str | None = None
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in the endpoint file
    #: Worker processes for cache-missing simulations.
    jobs: int = 2
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Scheduler tick: lease sweep + retry-queue poll period, seconds.
    lease_poll: float = 0.25
    #: Longest a drain waits for in-flight work before abandoning it
    #: (completed points are already cached either way).
    drain_grace: float = 600.0
    name: str = "sweep-service"

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs!r}")
        if self.lease_poll <= 0:
            raise ValueError("lease_poll must be positive")


@dataclass
class ServiceStats:
    """What the service did on behalf of its clients."""

    clients: int = 0             # connections accepted
    sweeps: int = 0              # submit frames handled
    submissions: int = 0         # request dicts received (pre-dedup)
    warm_hits: int = 0           # points served from the on-disk store
    memo_hits: int = 0           # points served from a finished job
    joined_inflight: int = 0     # submissions attached to an in-flight job
    scheduled: int = 0           # jobs actually queued for execution
    executed: int = 0            # simulations completed by this process
    retries: int = 0             # attempts re-scheduled after a failure
    lease_expiries: int = 0      # leases expired (hung/killed workers)
    pool_breaks: int = 0         # spontaneous worker-pool deaths
    degraded: int = 0            # fell back to in-process execution
    failed_points: int = 0       # jobs that failed permanently
    corrupt_quarantined: int = 0  # store entries quarantined on read
    cache_write_errors: int = 0  # results that could not be persisted
    injected_disconnects: int = 0  # FaultPlan-aborted result deliveries
    client_disconnects: int = 0  # connections lost without a bye
    orphaned_jobs: int = 0       # jobs whose last subscriber vanished
    recovered_points: int = 0    # finished points found on startup

    def snapshot(self) -> dict:
        return asdict(self)


class Job:
    """One fingerprint's execution state — the single-flight unit."""

    __slots__ = (
        "request", "fingerprint", "state", "attempt", "failures",
        "not_before", "overdue", "subscribers", "payload",
    )

    def __init__(self, request: RunRequest, fingerprint: str):
        self.request = request
        self.fingerprint = fingerprint
        #: "queued" | "waiting" (backoff) | "running" | "done" | "failed"
        self.state = "queued"
        self.attempt = 0
        self.failures: list[FailureRecord] = []
        self.not_before = 0.0
        #: Set when this job's lease expired (its worker was killed
        #: deliberately); the resulting pool break charges *this* job a
        #: timeout-style failure instead of a collateral requeue.
        self.overdue = False
        #: ``(connection, sweep_id)`` pairs awaiting the verdict.
        self.subscribers: list[tuple] = []
        #: The worker payload (``{"elapsed", "result", "attempt"}``)
        #: once done — kept so late subscribers are memo hits.
        self.payload: dict | None = None


class SweepState:
    """One client's submitted sweep: which fingerprints are still due."""

    __slots__ = ("sweep_id", "pending", "failed", "done_sent")

    def __init__(self, sweep_id: str):
        self.sweep_id = sweep_id
        self.pending: set[str] = set()
        self.failed: list[str] = []
        self.done_sent = False


class Connection:
    """One client connection (write side + per-connection state)."""

    __slots__ = ("writer", "name", "alive", "closed", "sweeps")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.name = ""
        self.alive = True
        self.closed = False
        self.sweeps: dict[str, SweepState] = {}

    def send(self, message: dict) -> None:
        """Queue one frame (never raises; a dead peer marks us dead)."""
        if not self.alive:
            return
        try:
            self.writer.write(protocol.encode_frame(message))
        except (protocol.ProtocolError, OSError, RuntimeError):
            self.alive = False

    def abort(self) -> None:
        """Hard-drop the connection (fault injection, drain timeout)."""
        self.alive = False
        with contextlib.suppress(Exception):
            self.writer.transport.abort()

    async def drain_writes(self) -> None:
        if not self.alive:
            return
        try:
            await self.writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            self.alive = False


class SweepService:
    """See the module docstring.  Drive with :func:`serve`, or embed:

    >>> service = SweepService(config)
    >>> await service.start()        # binds, recovers, schedules
    >>> await service.drain("test")  # finish in-flight, flush stats
    >>> await service.shutdown()     # tear down pools and listeners
    """

    def __init__(self, config: ServiceConfig, worker=None):
        self.config = config
        self.store = ResultStore(config.cache_dir)
        self.stats = ServiceStats()
        self.leases = LeaseTable()
        #: Fingerprint → times executed *by this process*; the durable
        #: union across restarts lives in the execution log.
        self.execution_counts: dict[str, int] = {}
        self.endpoint: dict | None = None
        self._worker = worker  # None = late-bound runner.pool_execute
        self._jobs: dict[str, Job] = {}
        self._runnable: deque[Job] = deque()
        self._waiting: list[Job] = []
        self._running: dict[str, Job] = {}
        self._connections: set[Connection] = set()
        self._delivery_counts: dict[str, int] = {}
        self._pool = None
        self._pool_generation = 0
        self._lease_kills: set[int] = set()
        self._consecutive_breaks = 0
        self._degraded = False
        self._draining = False
        self._drain_reason = ""
        self._sweep_counter = 0
        self._server: asyncio.AbstractServer | None = None
        self._scheduler_task: asyncio.Task | None = None
        self._attempt_tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None

    # ----- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind, recover state from the store, start scheduling."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        scan = self.store.scan()
        self.stats.recovered_points = self._count_recovered_points()
        self._log(
            f"store {self.config.cache_dir}: "
            f"{self.stats.recovered_points} finished points recovered, "
            f"{len(scan['corrupt'])} corrupt (quarantined on access), "
            f"{len(scan['quarantined'])} already quarantined"
        )
        if self.config.socket_path:
            path = self.config.socket_path
            # A SIGKILLed predecessor leaves a stale socket file behind;
            # unlinking it is the unix idiom for "the name is the
            # service, the inode is the instance".
            with contextlib.suppress(FileNotFoundError):
                os.unlink(path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=path,
                limit=protocol.MAX_FRAME_BYTES,
            )
            self.endpoint = {"kind": "unix", "path": path}
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.config.host,
                port=self.config.port, limit=protocol.MAX_FRAME_BYTES,
            )
            bound = self._server.sockets[0].getsockname()
            self.endpoint = {
                "kind": "tcp", "host": bound[0], "port": bound[1],
            }
        try:
            write_checked_json(
                os.path.join(self.config.cache_dir, ENDPOINT_FILENAME),
                {
                    "endpoint": self.endpoint,
                    "pid": os.getpid(),
                    "proto": protocol.PROTOCOL_VERSION,
                },
            )
        except OSError:
            pass  # advisory only; clients can be pointed at the socket
        self._scheduler_task = asyncio.create_task(self._scheduler())
        self._log(f"listening on {self.endpoint} (pid {os.getpid()})")

    async def drain(self, reason: str = "drain") -> None:
        """Stop accepting, finish in-flight work, flush, signal done."""
        if self._draining:
            return
        self._draining = True
        self._drain_reason = reason
        outstanding = len(self._runnable) + len(self._waiting) + len(self._running)
        self._log(
            f"draining ({reason}): {outstanding} jobs in flight, "
            "no new submissions"
        )
        if self._server is not None:
            self._server.close()
        deadline = self._loop.time() + self.config.drain_grace
        while (
            (self._runnable or self._waiting or self._running)
            and self._loop.time() < deadline
        ):
            self._wake.set()
            await asyncio.sleep(min(self.config.lease_poll, 0.25))
        abandoned = len(self._runnable) + len(self._waiting) + len(self._running)
        if abandoned:
            self._log(
                f"drain grace expired; abandoning {abandoned} unfinished "
                "jobs (completed points are already cached)"
            )
        self.flush_stats(drained=True)
        for conn in list(self._connections):
            conn.send({"op": "draining", "reason": reason})
            with contextlib.suppress(ConnectionError, OSError, RuntimeError):
                await conn.drain_writes()
        self._log(f"drained; stats: {self.stats.snapshot()}")
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Tear everything down (idempotent; safe after drain)."""
        self._stopped.set()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._scheduler_task
            self._scheduler_task = None
        for task in list(self._attempt_tasks):
            task.cancel()
        if self._attempt_tasks:
            await asyncio.gather(*self._attempt_tasks, return_exceptions=True)
        self._retire_pool(self._pool_generation)
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None
        if self.config.socket_path:
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)
        for conn in list(self._connections):
            conn.abort()
        self._connections.clear()
        # Let handler tasks observe the aborted transports and exit on
        # their own.  If the event loop's teardown cancelled them
        # instead, 3.11's asyncio.streams would call task.exception()
        # on the cancelled tasks and log spurious tracebacks.
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)

    def _count_recovered_points(self) -> int:
        """Readable finished *points* in the store (restart recovery)."""
        recovered = 0
        try:
            names = sorted(os.listdir(self.config.cache_dir))
        except OSError:
            return 0
        for name in names:
            if not name.endswith(".json") or name.startswith(
                _NON_POINT_PREFIXES
            ):
                continue
            path = os.path.join(self.config.cache_dir, name)
            if read_checked_json(path)[1] == "ok":
                recovered += 1
        return recovered

    def flush_stats(self, drained: bool = False) -> None:
        """Persist a checksummed stats + execution-count snapshot."""
        payload = {
            "stats": self.stats.snapshot(),
            "executions": dict(self.execution_counts),
            "drained": drained,
            "reason": self._drain_reason,
            "endpoint": self.endpoint,
            "pid": os.getpid(),
            "saved_at": time.time(),
        }
        try:
            write_checked_json(
                os.path.join(self.config.cache_dir, STATS_FILENAME), payload
            )
        except OSError:
            pass  # stats are provenance, not correctness

    def _log(self, message: str) -> None:
        print(f"[{self.config.name}] {message}", flush=True)

    # ----- connection handling ----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        conn = Connection(writer)
        self._connections.add(conn)
        self.stats.clients += 1
        conn.send({
            "op": "welcome",
            "proto": protocol.PROTOCOL_VERSION,
            "server": {
                "name": self.config.name,
                "pid": os.getpid(),
                "draining": self._draining,
            },
        })
        graceful = False
        try:
            while conn.alive:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = protocol.decode_frame(line)
                except protocol.ProtocolError as exc:
                    conn.send({
                        "op": "error", "error": "protocol",
                        "message": str(exc),
                    })
                    await conn.drain_writes()
                    continue
                if self._dispatch(conn, message):
                    graceful = True
                    break
                await conn.drain_writes()
        except (ConnectionError, OSError, asyncio.LimitOverrunError):
            pass
        finally:
            self._detach(conn, graceful)
            with contextlib.suppress(Exception):
                writer.close()

    def _dispatch(self, conn: Connection, message: dict) -> bool:
        """Handle one frame; True means a graceful goodbye."""
        op = message["op"]
        if op == "hello":
            conn.name = str(message.get("name", ""))[:80]
            self._log(f"client {conn.name or '(anonymous)'} connected")
        elif op == "submit":
            try:
                self._handle_submit(conn, message)
            except protocol.ProtocolError as exc:
                conn.send({
                    "op": "error", "error": "bad-submit",
                    "message": str(exc),
                })
        elif op == "status":
            self._send_status(conn)
        elif op == "heartbeat":
            conn.send({"op": "heartbeat", "t": message.get("t")})
        elif op == "drain":
            conn.send({"op": "ok", "acked": "drain"})
            asyncio.ensure_future(self.drain("client request"))
        elif op == "bye":
            return True
        else:
            conn.send({
                "op": "error", "error": "unknown-op",
                "message": f"unknown op {op!r}",
            })
        return False

    def _handle_submit(self, conn: Connection, message: dict) -> None:
        if self._draining:
            conn.send({
                "op": "error", "error": "draining",
                "message": "server is draining; not accepting submissions",
            })
            return
        raw = message.get("requests")
        if not isinstance(raw, list) or not raw:
            raise protocol.ProtocolError(
                "submit needs a non-empty 'requests' list"
            )
        requests = [protocol.request_from_wire(entry) for entry in raw]
        self._sweep_counter += 1
        sweep_id = str(message.get("sweep") or f"sweep-{self._sweep_counter}")
        sweep = SweepState(sweep_id)
        conn.sweeps[sweep_id] = sweep
        self.stats.sweeps += 1
        self.stats.submissions += len(requests)
        fingerprints = []
        deliver_now: list[tuple[str, dict]] = []
        cached = joined = scheduled = 0
        seen: set[str] = set()
        for request in requests:
            fingerprint = self.store.fingerprint_of(request)
            fingerprints.append(fingerprint)
            if fingerprint in seen:
                continue  # duplicate inside one sweep: one verdict
            seen.add(fingerprint)
            job = self._jobs.get(fingerprint)
            if job is not None and job.state == "done":
                # Finished since its store write — a memo hit.
                cached += 1
                self.stats.memo_hits += 1
                deliver_now.append((fingerprint, {
                    "source": "memo",
                    "attempts": job.attempt + 1,
                    "sim_seconds": job.payload["elapsed"],
                    "result": job.payload["result"],
                }))
                continue
            if job is not None and job.state != "failed":
                # Single flight: attach to the in-flight job.
                joined += 1
                self.stats.joined_inflight += 1
                job.subscribers.append((conn, sweep_id))
                sweep.pending.add(fingerprint)
                continue
            payload, status = self.store.load(fingerprint)
            if status == "corrupt":
                self.stats.corrupt_quarantined += 1
            if status == "ok":
                cached += 1
                self.stats.warm_hits += 1
                deliver_now.append((fingerprint, {
                    "source": "cache",
                    "attempts": 0,
                    "sim_seconds": float(payload.get("sim_seconds", 0.0)),
                    "result": payload["result"],
                }))
                continue
            # Fresh work — or a retry of a permanently-failed job, which
            # deliberately gets a fresh attempt budget.
            job = Job(request, fingerprint)
            job.subscribers.append((conn, sweep_id))
            self._jobs[fingerprint] = job
            self._runnable.append(job)
            sweep.pending.add(fingerprint)
            scheduled += 1
            self.stats.scheduled += 1
        conn.send({
            "op": "accepted",
            "sweep": sweep_id,
            "points": len(requests),
            "fingerprints": fingerprints,
            "cached": cached,
            "joined": joined,
            "scheduled": scheduled,
        })
        for fingerprint, body in deliver_now:
            self._send_result(conn, sweep_id, fingerprint, body)
        self._maybe_finish_sweep(conn, sweep)
        self._wake.set()

    def _send_status(self, conn: Connection) -> None:
        states: dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        conn.send({
            "op": "status",
            "stats": self.stats.snapshot(),
            "jobs": states,
            "leases": len(self.leases),
            "executions": dict(self.execution_counts),
            "degraded": self._degraded,
            "draining": self._draining,
        })

    def _send_result(
        self, conn: Connection, sweep_id: str, fingerprint: str, body: dict
    ) -> None:
        """Deliver one result frame — unless chaos drops the wire."""
        delivery = self._delivery_counts.get(fingerprint, 0)
        self._delivery_counts[fingerprint] = delivery + 1
        plan = faultinject.active_plan()
        if plan is not None and plan.drops_connection(fingerprint, delivery):
            self.stats.injected_disconnects += 1
            self._log(
                f"chaos: dropping connection on delivery of "
                f"{fingerprint[:12]}"
            )
            conn.abort()
            return
        frame = {"op": "result", "sweep": sweep_id, "fingerprint": fingerprint}
        frame.update(body)
        conn.send(frame)

    def _detach(self, conn: Connection, graceful: bool) -> None:
        if conn.closed:
            return
        conn.closed = True
        conn.alive = False
        if not graceful and not self._draining:
            self.stats.client_disconnects += 1
            self._log(
                f"client {conn.name or '(anonymous)'} vanished; "
                "its submissions keep running"
            )
        # Orphan (never cancel) the jobs this client was waiting on:
        # they finish and land in the store, so a reconnect is warm.
        for job in self._jobs.values():
            if not job.subscribers:
                continue
            before = len(job.subscribers)
            job.subscribers = [
                (c, s) for (c, s) in job.subscribers if c is not conn
            ]
            if before and not job.subscribers and job.state not in (
                "done", "failed"
            ):
                self.stats.orphaned_jobs += 1
        conn.sweeps.clear()
        self._connections.discard(conn)

    def _maybe_finish_sweep(self, conn: Connection, sweep: SweepState) -> None:
        if sweep.pending or sweep.done_sent:
            return
        sweep.done_sent = True
        conn.send({
            "op": "sweep-done",
            "sweep": sweep.sweep_id,
            "failed": sorted(sweep.failed),
        })

    # ----- scheduling -------------------------------------------------------

    async def _scheduler(self) -> None:
        while not self._stopped.is_set():
            now = self._loop.time()
            if self._waiting:
                due = [job for job in self._waiting if job.not_before <= now]
                for job in sorted(due, key=lambda j: j.fingerprint):
                    self._waiting.remove(job)
                    job.state = "queued"
                    self._runnable.append(job)
            while self._runnable and len(self._running) < self.config.jobs:
                self._launch(self._runnable.popleft())
            self._enforce_leases()
            timeout = self.config.lease_poll
            if self._waiting:
                next_due = min(job.not_before for job in self._waiting)
                timeout = min(timeout, max(0.01, next_due - self._loop.time()))
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._wake.wait(), timeout=timeout)
            self._wake.clear()

    def _launch(self, job: Job) -> None:
        job.state = "running"
        job.overdue = False
        self._running[job.fingerprint] = job
        ttl = None if self._degraded else self.config.resilience.timeout
        self.leases.acquire(
            job.fingerprint, ttl=ttl, now=self._loop.time(),
            holder=f"attempt-{job.attempt}",
        )
        task = asyncio.create_task(self._attempt(job))
        self._attempt_tasks.add(task)
        task.add_done_callback(self._attempt_tasks.discard)

    def _executor(self):
        if self._degraded:
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                # In-process fallback: hangs can no longer be preempted
                # (PR-4 degraded semantics), but injected crashes become
                # catchable SimulatedWorkerCrash exceptions.
                self._pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="svc-serial"
                )
            return self._pool
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            # ``spawn``, not ``fork``: a forked worker would inherit the
            # server's whole fd table — the listening socket and every
            # accepted connection.  Those copies keep sockets alive in
            # the kernel behind the event loop's back: a "closed"
            # listener stays connectable after drain, an abort()ed
            # connection never resets, and a client's EOF is not seen
            # until the worker holding the duplicate fd exits.
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.jobs,
                initializer=_worker_init,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return self._pool

    def _retire_pool(self, generation: int) -> None:
        """Discard the current pool exactly once per generation."""
        if generation != self._pool_generation:
            return  # a sibling attempt already retired it
        self._pool_generation += 1
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list(
            (getattr(pool, "_processes", None) or {}).values()
        ):
            with contextlib.suppress(OSError, AttributeError):
                process.kill()
        pool.shutdown(wait=False, cancel_futures=True)

    def _enforce_leases(self) -> None:
        ttl = self.config.resilience.timeout
        if ttl is None or self._degraded:
            return
        now = self._loop.time()
        expired = self.leases.expired(now)
        if not expired:
            return
        overdue = []
        for lease in expired:
            job = self._running.get(lease.key)
            if job is None:
                self.leases.release(lease.key)  # stale entry; worker done
                continue
            overdue.append(job)
        if not overdue:
            return
        for job in overdue:
            if job.overdue:
                continue
            job.overdue = True
            self.stats.lease_expiries += 1
            self._log(
                f"lease expired for {describe_request(job.request)} "
                f"({job.fingerprint[:12]}, attempt {job.attempt}); "
                "killing its worker"
            )
        # Killing the worker kills the whole pool (the lease's worker is
        # anonymous inside the executor); collateral attempts requeue
        # uncharged below.
        self._lease_kills.add(self._pool_generation)
        self._retire_pool(self._pool_generation)

    # ----- execution --------------------------------------------------------

    async def _attempt(self, job: Job) -> None:
        loop = self._loop
        args = (
            job.request, self.store.trace_dir, job.attempt, job.fingerprint,
        )
        # The worker callable is late-bound so a test double installed
        # over runner.pool_execute applies here too.
        worker = self._worker or runner_module.pool_execute
        generation = self._pool_generation
        started = loop.time()
        try:
            payload = await loop.run_in_executor(
                self._executor(), worker, args
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # BrokenProcessPool, worker errors, ...
            self._attempt_failed(job, exc, generation, loop.time() - started)
        else:
            self._consecutive_breaks = 0
            self._job_succeeded(job, payload)
        finally:
            self.leases.release(job.fingerprint)
            self._running.pop(job.fingerprint, None)
            self._wake.set()

    def _attempt_failed(
        self, job: Job, exc: BaseException, generation: int, elapsed: float
    ) -> None:
        from concurrent.futures.process import BrokenProcessPool

        if isinstance(exc, BrokenProcessPool):
            deliberate = generation in self._lease_kills
            first_report = generation == self._pool_generation
            self._retire_pool(generation)
            if first_report and not deliberate:
                # A spontaneous worker death; count the break once per
                # generation, not once per collateral attempt.
                self.stats.pool_breaks += 1
                self._consecutive_breaks += 1
                if (
                    self._consecutive_breaks
                    >= self.config.resilience.pool_break_limit
                    and not self._degraded
                ):
                    self._degraded = True
                    self.stats.degraded += 1
                    self._log(
                        f"{self._consecutive_breaks} consecutive pool "
                        "breaks; degrading to in-process execution"
                    )
            if job.overdue:
                ttl = self.config.resilience.timeout
                self._charge(
                    job, kind="timeout", error="LeaseExpired",
                    message=(
                        f"worker lease expired after {ttl:g}s; "
                        "worker killed"
                    ),
                    elapsed=elapsed,
                )
            elif deliberate:
                # Collateral damage of a lease kill: requeue, uncharged.
                job.state = "queued"
                job.overdue = False
                self._runnable.append(job)
            else:
                self._charge(
                    job, kind="pool", error="BrokenProcessPool",
                    message="a worker process died; pool restarted",
                    elapsed=elapsed,
                )
            return
        kind = (
            "crash"
            if isinstance(exc, faultinject.SimulatedWorkerCrash)
            else "error"
        )
        self._charge(
            job, kind=kind, error=type(exc).__name__, message=str(exc),
            elapsed=elapsed, retriable=is_transient(exc),
        )

    def _charge(
        self,
        job: Job,
        *,
        kind: str,
        error: str,
        message: str,
        elapsed: float,
        retriable: bool = True,
    ) -> None:
        """Record one failed attempt; retry with seeded backoff or fail."""
        job.failures.append(FailureRecord(
            kind=kind, error=error, message=message,
            attempt=job.attempt, elapsed=round(elapsed, 3),
        ))
        job.attempt += 1
        job.overdue = False
        policy = self.config.resilience
        if retriable and job.attempt < policy.max_attempts:
            self.stats.retries += 1
            delay = backoff_delay(policy, job.fingerprint, job.attempt)
            job.not_before = self._loop.time() + delay
            job.state = "waiting"
            self._waiting.append(job)
            return
        job.state = "failed"
        self.stats.failed_points += 1
        self._log(
            f"point {describe_request(job.request)} failed permanently "
            f"after {job.attempt} attempt(s): {error}: {message}"
        )
        self._resolve(job)

    def _job_succeeded(self, job: Job, payload: dict) -> None:
        fingerprint = job.fingerprint
        self.stats.executed += 1
        stored = self.store.store(
            fingerprint,
            asdict(job.request),
            payload["result"],
            payload["elapsed"],
            payload.get("attempt", 0),
        )
        if not stored:
            self.stats.cache_write_errors += 1
        # Log *after* the store write: across a SIGKILL+restart each
        # fingerprint is logged at most once (killed mid-execution →
        # never logged → re-executed once; stored → warm hit forever).
        self.execution_counts[fingerprint] = (
            self.execution_counts.get(fingerprint, 0) + 1
        )
        self._log_execution(fingerprint, payload)
        job.payload = payload
        job.state = "done"
        self._resolve(job)

    def _log_execution(self, fingerprint: str, payload: dict) -> None:
        record = {
            "fingerprint": fingerprint,
            "attempt": payload.get("attempt", 0),
            "elapsed": payload.get("elapsed"),
            "pid": os.getpid(),
        }
        path = os.path.join(self.config.cache_dir, EXECUTIONS_FILENAME)
        try:
            with open(path, "a") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            self.stats.cache_write_errors += 1

    def _resolve(self, job: Job) -> None:
        """Fan the verdict out to every subscriber."""
        subscribers, job.subscribers = job.subscribers, []
        for conn, sweep_id in subscribers:
            sweep = conn.sweeps.get(sweep_id)
            if sweep is None or not conn.alive:
                continue
            if job.state == "done":
                self._send_result(conn, sweep_id, job.fingerprint, {
                    "source": "executed",
                    "attempts": job.attempt + 1,
                    "sim_seconds": job.payload["elapsed"],
                    "result": job.payload["result"],
                })
            else:
                conn.send({
                    "op": "point-failed",
                    "sweep": sweep_id,
                    "fingerprint": job.fingerprint,
                    "attempts": job.attempt,
                    "failures": [f.to_dict() for f in job.failures],
                })
                sweep.failed.append(job.fingerprint)
            sweep.pending.discard(job.fingerprint)
            self._maybe_finish_sweep(conn, sweep)


async def serve(config: ServiceConfig) -> int:
    """Run a service until drained (SIGTERM/SIGINT/drain frame); 0 = ok."""
    service = SweepService(config)
    await service.start()
    loop = asyncio.get_running_loop()

    def _request_drain(signame: str) -> None:
        asyncio.ensure_future(service.drain(signame))

    for signame in ("SIGTERM", "SIGINT"):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(
                getattr(signal, signame), _request_drain, signame
            )
    try:
        await service.wait_stopped()
    finally:
        for signame in ("SIGTERM", "SIGINT"):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.remove_signal_handler(getattr(signal, signame))
        await service.shutdown()
    return 0
