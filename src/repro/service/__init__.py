"""The sweep service: many clients, one scheduler, one result store.

``repro.service`` promotes the experiment runner to a client/server
architecture — the "heavy traffic from many users" story.  A
:class:`~repro.service.server.SweepService` daemon accepts sweep
submissions over a newline-delimited-JSON socket protocol, shards
fingerprinted run requests across a resilient local worker pool with
single-flight dedup and lease tracking, and streams results into the
shared content-addressed runcache.  ``scripts/sweep_service.py`` is
the CLI; ``scripts/service_smoke.py`` is the chaos acceptance harness;
``docs/RESILIENCE.md`` documents the protocol, lease semantics and
failure matrix.
"""

from repro.service.client import (
    ServiceUnavailable,
    SweepClient,
    SweepOutcome,
    resolve_endpoint,
)
from repro.service.leases import Lease, LeaseTable
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    request_from_wire,
    request_to_wire,
)
from repro.service.server import (
    ServiceConfig,
    ServiceStats,
    SweepService,
    serve,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "Lease",
    "LeaseTable",
    "ProtocolError",
    "ServiceConfig",
    "ServiceStats",
    "ServiceUnavailable",
    "SweepClient",
    "SweepOutcome",
    "SweepService",
    "decode_frame",
    "encode_frame",
    "request_from_wire",
    "request_to_wire",
    "resolve_endpoint",
    "serve",
]
