"""Wire protocol of the sweep service: newline-delimited JSON frames.

One JSON object per line ("NDJSON"), UTF-8, ``\\n``-terminated.  Every
frame is a dict with an ``"op"`` key; unknown *ops* are answered with an
``error`` frame (a server must keep talking to old clients), while
unknown *request fields* are rejected loudly (a submission the server
silently misreads would be cached under the wrong fingerprint).

Client → server ops:

* ``hello {name}`` — optional introduction, shown in server logs.
* ``submit {sweep, requests: [<request dict>, ...]}`` — submit a sweep
  of run requests.  Answered with ``accepted``, then one ``result`` or
  ``point-failed`` per distinct fingerprint, then ``sweep-done``.
* ``status {}`` — server stats, job table sizes and the
  execution-count provenance (fingerprint → times simulated).
* ``heartbeat {t}`` — liveness probe, echoed back.
* ``drain {}`` — ask the server to drain (same path as SIGTERM).
* ``bye {}`` — graceful goodbye; anything still pending is orphaned
  deliberately (it keeps running and lands in the shared store).

Server → client ops: ``welcome``, ``accepted``, ``result``,
``point-failed``, ``sweep-done``, ``status``, ``heartbeat``, ``ok``,
``draining``, ``error``.

Requests travel as their ``dataclasses.asdict`` form and are rebuilt
with :func:`request_from_wire`; both sides compute fingerprints from
their own source tree, and the client cross-checks the server's
``accepted.fingerprints`` against its own so a code-version skew is a
loud protocol error instead of a silently split cache.
"""

from __future__ import annotations

import dataclasses
import json

from repro.analysis.runner import RunRequest

#: Bumped on incompatible frame-shape changes; exchanged in ``welcome``.
PROTOCOL_VERSION = 1

#: Upper bound on one frame.  A full 88-point sweep submission is ~20 kB
#: and a result frame a few kB; the bound exists to fail fast on a
#: corrupt stream, not to be approached.  Servers pass it as the asyncio
#: stream ``limit`` (the default 64 kB readline limit is too small for
#: batch submissions).
MAX_FRAME_BYTES = 32 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed frame, or a frame that violates the protocol."""


def encode_frame(message: dict) -> bytes:
    """One frame: compact JSON, newline-terminated."""
    blob = json.dumps(message, sort_keys=True, separators=(",", ":"))
    frame = blob.encode() + b"\n"
    if len(frame) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(frame)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return frame


def decode_frame(line: bytes | str) -> dict:
    """Parse one frame; every violation is a :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not UTF-8: {exc}") from exc
    line = line.strip()
    if not line:
        raise ProtocolError("empty frame")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    if not isinstance(message.get("op"), str):
        raise ProtocolError("frame has no 'op' string")
    return message


_REQUEST_FIELDS = frozenset(
    f.name for f in dataclasses.fields(RunRequest)
)


def request_to_wire(request: RunRequest) -> dict:
    """A request's wire form (plain JSON-able dict)."""
    return dataclasses.asdict(request)


def request_from_wire(payload) -> RunRequest:
    """Rebuild a :class:`RunRequest` from its wire form.

    Unknown fields are rejected: a field this side doesn't know would
    change the fingerprint on a newer peer, and caching a result under
    a fingerprint that ignores part of the request is corruption.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _REQUEST_FIELDS)
    if unknown:
        raise ProtocolError(f"unknown request field(s): {', '.join(unknown)}")
    try:
        return RunRequest(**payload)
    except TypeError as exc:
        raise ProtocolError(f"incomplete request: {exc}") from exc
    except ValueError as exc:
        raise ProtocolError(f"invalid request: {exc}") from exc
