"""Admission control: mapping arriving streams onto hardware slots.

A serving machine exposes ``n_cores × contexts_per_core`` hardware slots.
The admission controller decides, per arriving stream, whether to start
it immediately (and where), hold it in a bounded FIFO queue, or reject
it — the three outcomes the conservation property test asserts are
exhaustive.  Three policies are modelled (the SIMD-pipeline scheduling
comparison in PAPERS.md motivates treating the policy as a first-class
variable):

``rr``
    Round-robin: scan slots from a rotating cursor, take the first free
    one.  Spreads work without inspecting load.
``least``
    Least-loaded: place on the core with the fewest busy contexts
    (lowest core index breaks ties), lowest free context within it.
    Balances L1 pressure across cores.
``affinity``
    Program affinity: prefer a free slot that last ran the *same*
    program — ``physical_address`` salts addresses per context, so only
    the exact slot re-uses a warm L1 working set — falling back to
    least-loaded placement.

All tie-breaks are index-ordered, never iteration-order over sets, so
every policy is deterministic (codelint DET contract).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.workloads.streams import StreamDescriptor

#: Supported admission policies, in report order.
ADMISSION_POLICIES = ("rr", "least", "affinity")


@dataclass(frozen=True)
class Slot:
    """One hardware context: ``core``'s SMT context ``context``."""

    core: int
    context: int


class AdmissionController:
    """Tracks slot occupancy and admits/queues/rejects arriving streams."""

    def __init__(
        self,
        n_cores: int,
        contexts_per_core: int,
        policy: str = "rr",
        queue_limit: int = 8,
    ):
        if n_cores < 1 or contexts_per_core < 1:
            raise ValueError("need at least one core and one context")
        if policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.n_cores = n_cores
        self.contexts_per_core = contexts_per_core
        self.policy = policy
        self.queue_limit = queue_limit
        # Core-major slot order: slot index = core * contexts + context.
        self.slots = [
            Slot(core, context)
            for core in range(n_cores)
            for context in range(contexts_per_core)
        ]
        self._free = [True] * len(self.slots)
        self._busy_per_core = [0] * n_cores
        self._last_program: list[str | None] = [None] * len(self.slots)
        self._cursor = 0
        self.queue: deque[StreamDescriptor] = deque()
        self.offered = 0
        self.admitted = 0
        self.queued = 0
        self.rejected = 0

    # ----- occupancy -------------------------------------------------------

    @property
    def n_slots(self) -> int:
        return len(self.slots)

    @property
    def busy(self) -> int:
        return self.n_slots - sum(self._free)

    def _index(self, slot: Slot) -> int:
        return slot.core * self.contexts_per_core + slot.context

    # ----- placement policies ---------------------------------------------

    def _place_rr(self) -> int | None:
        for offset in range(self.n_slots):
            index = (self._cursor + offset) % self.n_slots
            if self._free[index]:
                self._cursor = (index + 1) % self.n_slots
                return index
        return None

    def _place_least(self) -> int | None:
        best_core = -1
        best_busy = self.contexts_per_core + 1
        for core in range(self.n_cores):
            busy = self._busy_per_core[core]
            if busy < self.contexts_per_core and busy < best_busy:
                best_core = core
                best_busy = busy
        if best_core < 0:
            return None
        base = best_core * self.contexts_per_core
        for context in range(self.contexts_per_core):
            if self._free[base + context]:
                return base + context
        return None

    def _place_affinity(self, program: str) -> int | None:
        for index in range(self.n_slots):
            if self._free[index] and self._last_program[index] == program:
                return index
        return self._place_least()

    def _place(self, stream: StreamDescriptor) -> int | None:
        if self.policy == "rr":
            return self._place_rr()
        if self.policy == "least":
            return self._place_least()
        return self._place_affinity(stream.program)

    # ----- the three outcomes ---------------------------------------------

    def _claim(self, index: int, stream: StreamDescriptor) -> Slot:
        self._free[index] = False
        slot = self.slots[index]
        self._busy_per_core[slot.core] += 1
        self._last_program[index] = stream.program
        self.admitted += 1
        return slot

    def offer(self, stream: StreamDescriptor) -> tuple[str, Slot | None]:
        """Present an arriving stream; returns (outcome, slot-or-None).

        Outcome is exactly one of ``"admitted"`` (slot returned),
        ``"queued"`` or ``"rejected"`` (queue full).
        """
        self.offered += 1
        index = self._place(stream)
        if index is not None:
            return "admitted", self._claim(index, stream)
        if len(self.queue) < self.queue_limit:
            self.queue.append(stream)
            self.queued += 1
            return "queued", None
        self.rejected += 1
        return "rejected", None

    def release(self, slot: Slot) -> tuple[StreamDescriptor, Slot] | None:
        """Free a slot; if a stream is queued, admit it immediately.

        Returns ``(stream, slot)`` for the promoted queue head, or None
        when the queue is empty.  The freed slot goes back through the
        policy (the queue head need not land on it — affinity may prefer
        a different free slot).
        """
        index = self._index(slot)
        if self._free[index]:
            raise ValueError(f"slot {slot} is not busy")
        self._free[index] = True
        self._busy_per_core[slot.core] -= 1
        if not self.queue:
            return None
        stream = self.queue.popleft()
        placed = self._place(stream)
        # A slot was just freed, so placement cannot fail.
        return stream, self._claim(placed, stream)
