"""Reduce per-stream serving records to the headline serving metrics.

Everything returned is plain JSON types (the analysis layer stores it in
the checksummed runcache and pins canonical hashes of it), and every
aggregate is computed in deterministic order — per-stream records are
already in completion order, per-program tables are emitted in sorted
program-name order.
"""

from __future__ import annotations

from repro.core.stats import percentile


def _rate(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def _cache_rates(stats) -> dict:
    """Hit rates from a MemoryStats container (JSON-safe floats)."""
    return {
        "l1_hit_rate": _rate(stats.l1.hits, stats.l1.accesses),
        "icache_hit_rate": _rate(stats.icache.hits, stats.icache.accesses),
        "l2_hit_rate": _rate(stats.l2.hits, stats.l2.accesses),
    }


def meter_result(raw: dict, machine, admission) -> dict:
    """Meter one finished serving run into the reported result dict.

    ``raw`` is :meth:`ServingSimulator.run`'s output; ``machine`` and
    ``admission`` are the finished instances the metrics are harvested
    from.  Deadline misses count streams that *completed late*; the
    ``unserved_rate`` additionally folds in outright rejections — the
    user-visible failure probability of the design point.
    """
    streams = raw["streams"]
    rejected = raw["rejected"]
    cycles = raw["cycles"]
    latencies = [float(record["latency"]) for record in streams]
    waits = [record["queue_wait"] for record in streams]
    missed = sum(1 for record in streams if record["missed"])
    offered = len(streams) + len(rejected)
    committed = sum(core.committed for core in machine.cores)
    equivalent = sum(core.committed_equiv for core in machine.cores)
    summary = {
        "offered": offered,
        "completed": len(streams),
        "rejected": len(rejected),
        "missed": missed,
        "miss_rate": _rate(missed, len(streams)),
        "unserved_rate": _rate(missed + len(rejected), offered),
        "queued": admission.queued,
        "latency_p50": percentile(latencies, 0.50) if latencies else 0.0,
        "latency_p95": percentile(latencies, 0.95) if latencies else 0.0,
        "latency_p99": percentile(latencies, 0.99) if latencies else 0.0,
        "latency_mean": _rate(sum(latencies), len(latencies)),
        "queue_wait_mean": _rate(sum(waits), len(waits)),
        "queue_wait_max": max(waits) if waits else 0,
        "streams_per_mcycle": _rate(len(streams), cycles / 1e6),
        "cycles": cycles,
        "committed_instructions": committed,
        "eipc": _rate(equivalent, cycles),
    }
    per_program: dict[str, dict] = {}
    for record in streams:
        entry = per_program.setdefault(
            record["program"],
            {"completed": 0, "missed": 0, "latency_sum": 0, "committed": 0},
        )
        entry["completed"] += 1
        entry["missed"] += int(record["missed"])
        entry["latency_sum"] += record["latency"]
        entry["committed"] += record["committed"]
    for rejection in rejected:
        entry = per_program.setdefault(
            rejection["program"],
            {"completed": 0, "missed": 0, "latency_sum": 0, "committed": 0},
        )
        entry["rejected"] = entry.get("rejected", 0) + 1
    programs = {}
    for name in sorted(per_program):
        entry = per_program[name]
        programs[name] = {
            "completed": entry["completed"],
            "missed": entry["missed"],
            "rejected": entry.get("rejected", 0),
            "latency_mean": _rate(entry["latency_sum"], entry["completed"]),
            "committed": entry["committed"],
        }
    stall_totals: dict[str, int] = {}
    for record in streams:
        for cause, count in record["stalls"].items():
            stall_totals[cause] = stall_totals.get(cause, 0) + count
    merged = machine.cores[0].memory.stats
    if len(machine.cores) > 1:
        # CMP: per-core private stats plus the shared L2 (CmpSystem
        # merges them the same way for its RunResult).
        merged = machine._merged_memory_stats()
    return {
        "summary": summary,
        "per_program": programs,
        "stall_totals": {
            cause: stall_totals[cause] for cause in sorted(stall_totals)
        },
        "memory": _cache_rates(merged),
        "admission": {
            "policy": admission.policy,
            "offered": admission.offered,
            "admitted": admission.admitted,
            "queued": admission.queued,
            "rejected": admission.rejected,
        },
        "streams": streams,
        "rejected_streams": raw["rejected"],
    }
