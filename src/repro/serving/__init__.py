"""Open-loop media-serving scenario over CMP cores × SMT contexts.

The paper's motivating workload is a server decoding and encoding many
concurrent media streams.  This package turns the closed-loop EIPC
machinery into that served system: ``repro.workloads.streams`` generates
deterministic open-loop arrivals, :mod:`repro.serving.admission` maps
streams onto (core, context) slots under a scheduling policy,
:mod:`repro.serving.simulator` drives the machine cycle-by-cycle
interleaving arrivals and departures, and :mod:`repro.serving.metering`
reduces the per-stream records to latency tails, deadline-miss rates and
sustained throughput.  Everything is a pure function of the request —
see docs/SERVING.md for the determinism contract.
"""

from repro.serving.admission import ADMISSION_POLICIES, AdmissionController, Slot
from repro.serving.metering import meter_result
from repro.serving.simulator import (
    ServingSimulator,
    build_serving_machine,
    derive_interarrival,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionController",
    "Slot",
    "ServingSimulator",
    "build_serving_machine",
    "derive_interarrival",
    "meter_result",
]
