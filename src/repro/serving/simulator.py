"""The serving event loop: arrivals and departures over a lockstep machine.

Both machine shapes — the paper's wide SMT and the CMP×SMT grid — are
driven through one protocol (``now``, ``step_cycle``,
``idle_skip_target``, ``cores``): each simulated cycle the driver admits
streams whose arrival time has come, steps every core one lockstep
cycle, and harvests completed streams; when the whole machine is idle it
jumps straight to the next arrival.  Streams are started by assigning a
trace to a specific hardware context — exactly the replacement path the
closed-loop scheduler uses inside ``SMTProcessor.step`` (predictor
reset + observer notification included) — so serving runs exercise the
same pipeline model as every other experiment.
"""

from __future__ import annotations

from collections import deque

from repro.core.cmp import CmpSystem
from repro.core.fetch import FetchPolicy
from repro.core.params import SMTConfig
from repro.core.smt import SMTProcessor
from repro.memory.decoupled import DecoupledHierarchy
from repro.memory.hierarchy import ConventionalHierarchy
from repro.serving.admission import AdmissionController, Slot
from repro.tracegen.program import Trace
from repro.workloads.streams import SERVING_MIXES, StreamDescriptor

#: Memory kinds a serving machine supports (the "perfect" analysis
#: memory is excluded: a served system without a memory system is not a
#: design point).
SERVING_MEMORY_KINDS = ("conventional", "decoupled")


class _StreamScheduler:
    """Scheduler duck-type that starts idle and never self-assigns.

    The serving driver owns all assignment decisions; the processor's
    completion path still calls :meth:`on_completion`, which counts the
    departure and frees the context (``None`` return).
    """

    def __init__(self, traces: list[Trace]):
        self.traces = traces
        self.done = False
        self._completions = 0

    def next_assignments(self, count: int) -> list:
        return []

    def on_completion(self):
        self._completions += 1
        return None

    @property
    def completions(self) -> int:
        return self._completions


class _SmtMachine:
    """Adapter giving a single ``SMTProcessor`` the lockstep protocol."""

    def __init__(self, processor: SMTProcessor):
        self.cores = [processor]

    @property
    def now(self) -> int:
        return self.cores[0].now

    @now.setter
    def now(self, value: int) -> None:
        self.cores[0].now = value

    def step_cycle(self) -> bool:
        return self.cores[0].step()

    def idle_skip_target(self) -> int | None:
        core = self.cores[0]
        if not any(ctx.trace is not None for ctx in core.threads):
            return None
        return core._skip_target()

    def finalize(self) -> None:
        self.cores[0]._finalize_sanitizer()

    def observability(self) -> dict | None:
        observer = self.cores[0].observer
        if observer is None:
            return None
        return {"cores": [observer.snapshot()]}


def build_serving_machine(
    arch: str,
    isa: str,
    cores: int,
    contexts: int,
    memory: str,
    traces: list[Trace],
    max_cycles: int = 50_000_000,
    observe="metrics",
):
    """Build a lockstep machine plus its stream scheduler.

    ``arch`` is ``"smt"`` (one paper-width SMT, ``cores`` must be 1) or
    ``"cmp"`` (``cores`` scaled-down cores × ``contexts`` SMT contexts
    over a shared L2).  Returns ``(machine, scheduler)``.
    """
    if arch not in ("smt", "cmp"):
        raise ValueError(f"unknown serving arch {arch!r}")
    if memory not in SERVING_MEMORY_KINDS:
        raise ValueError(
            f"unknown serving memory kind {memory!r}; "
            f"expected one of {SERVING_MEMORY_KINDS}"
        )
    scheduler = _StreamScheduler(traces)
    if arch == "smt":
        if cores != 1:
            raise ValueError("arch='smt' is a single (wide) processor")
        if memory == "decoupled":
            hierarchy = DecoupledHierarchy()
        else:
            hierarchy = ConventionalHierarchy()
        processor = SMTProcessor(
            SMTConfig(isa=isa, n_threads=contexts, observe=observe),
            hierarchy,
            traces,
            fetch_policy=FetchPolicy.RR,
            max_cycles=max_cycles,
            warmup_fraction=0.0,
            scheduler=scheduler,
        )
        return _SmtMachine(processor), scheduler
    system = CmpSystem(
        isa,
        cores,
        traces,
        max_cycles=max_cycles,
        warmup_fraction=0.0,
        contexts_per_core=contexts,
        memory=memory,
        observe=observe,
        scheduler=scheduler,
    )
    return system, scheduler


def derive_interarrival(
    palette: dict[str, Trace], mix: str, load: float, n_slots: int
) -> int:
    """Mean inter-arrival time hitting a target offered ``load``.

    The service estimate for one stream is its trace's stream-expanded
    instruction count (the cycles an ideal EIPC-1 context would need);
    dividing the mix-weighted mean estimate by ``load × n_slots``
    yields the arrival spacing at which the machine is offered ``load``
    of its aggregate capacity.  A pure function of traces and request
    fields, so cached results never depend on anything unfingerprinted.
    """
    if not 0.0 < load:
        raise ValueError("load must be positive")
    weighted = SERVING_MIXES[mix]
    total_weight = sum(weight for __, weight in weighted)
    mean_length = (
        sum(
            weight * palette[name].expanded_length
            for name, weight in weighted
        )
        / total_weight
    )
    return max(1, int(mean_length / (load * n_slots)))


def _stall_counts(core, context: int) -> dict:
    """Context's per-cause stall counters (insertion order is the fixed
    STALL_CAUSES order, so downstream JSON is deterministic)."""
    observer = core.observer
    if observer is None:
        return {}
    counts = {}
    for cause, data in observer.stall_breakdown().items():
        per_thread = data["per_thread"]
        counts[cause] = per_thread[context] if context < len(per_thread) else 0
    return counts


class ServingSimulator:
    """Runs one open-loop schedule to completion over a machine."""

    def __init__(
        self,
        machine,
        scheduler: _StreamScheduler,
        admission: AdmissionController,
        schedule: list[StreamDescriptor],
        traces_by_stream: dict[int, Trace],
        max_cycles: int = 50_000_000,
    ):
        for stream in schedule:
            if stream.stream_id not in traces_by_stream:
                raise ValueError(
                    f"stream {stream.stream_id} ({stream.program!r}) has "
                    "no trace assigned"
                )
        self.machine = machine
        self.scheduler = scheduler
        self.admission = admission
        self.schedule = schedule
        self.traces_by_stream = traces_by_stream
        self.max_cycles = max_cycles
        self._watch_block = -1
        self._watch_mark = None
        #: (core, context) -> active stream record (dict, mutated in place)
        self.active: dict[tuple[int, int], dict] = {}
        self.records: list[dict] = []
        self.rejected: list[dict] = []

    # ----- stream lifecycle -------------------------------------------------

    def _start(self, stream: StreamDescriptor, slot: Slot, cycle: int) -> None:
        core = self.machine.cores[slot.core]
        ctx = core.threads[slot.context]
        if ctx.trace is not None:
            raise RuntimeError(
                f"admission placed stream {stream.stream_id} on busy "
                f"slot ({slot.core}, {slot.context})"
            )
        trace = self.traces_by_stream[stream.stream_id]
        ctx.assign(trace)
        core.predictor.reset_thread(slot.context)
        if core.observer is not None:
            core.observer.on_thread_assign(slot.context)
        self.active[(slot.core, slot.context)] = {
            "stream": stream.stream_id,
            "program": stream.program,
            "core": slot.core,
            "context": slot.context,
            "arrival": stream.arrival,
            "admitted": cycle,
            "deadline": stream.deadline(trace.expanded_length),
            "committed_before": core.committed_by_thread[slot.context],
            "stalls_before": _stall_counts(core, slot.context),
        }

    def _finish(self, key: tuple[int, int], cycle: int) -> None:
        record = self.active.pop(key)
        core = self.machine.cores[key[0]]
        record["completed"] = cycle
        record["latency"] = cycle - record["arrival"]
        record["service"] = cycle - record["admitted"]
        record["queue_wait"] = record["admitted"] - record["arrival"]
        record["missed"] = cycle > record["deadline"]
        record["committed"] = (
            core.committed_by_thread[key[1]] - record.pop("committed_before")
        )
        before = record.pop("stalls_before")
        after = _stall_counts(core, key[1])
        record["stalls"] = {
            cause: after[cause] - before.get(cause, 0)
            for cause in after
            if after[cause] - before.get(cause, 0)
        }
        self.records.append(record)

    def _offer(self, stream: StreamDescriptor, cycle: int) -> None:
        outcome, slot = self.admission.offer(stream)
        if outcome == "admitted":
            self._start(stream, slot, cycle)
        elif outcome == "rejected":
            self.rejected.append(
                {
                    "stream": stream.stream_id,
                    "program": stream.program,
                    "arrival": stream.arrival,
                }
            )

    # ----- the event loop ---------------------------------------------------

    def _check_progress(self, now: int) -> None:
        """Fail fast if a whole ~1M-cycle block passed with zero progress.

        No model latency spans a million cycles, so identical fetch and
        commit counters across two block boundaries with streams active
        can only be a livelock (e.g. pathological I-cache set conflict);
        raising here beats grinding on to ``max_cycles``.
        """
        block = now >> 20
        if block == self._watch_block:
            return
        self._watch_block = block
        fetched = committed = 0
        for core in self.machine.cores:
            committed += sum(core.committed_by_thread)
            for ctx in core.threads:
                if ctx.trace is not None:
                    fetched += ctx.fetch_idx
        mark = (self.scheduler.completions, fetched, committed)
        if self.active and mark == self._watch_mark:
            raise RuntimeError(
                f"no stream made progress between cycles "
                f"{(block - 1) << 20} and {now}: "
                f"{len(self.active)} streams livelocked"
            )
        self._watch_mark = mark

    def run(self) -> dict:
        machine = self.machine
        admission = self.admission
        pending = deque(self.schedule)
        while pending or self.active:
            now = machine.now
            while pending and pending[0].arrival <= now:
                self._offer(pending.popleft(), now)
            if not self.active:
                if not pending:
                    break
                # Whole machine idle: jump straight to the next arrival.
                machine.now = max(machine.now, pending[0].arrival)
                continue
            if machine.now >= self.max_cycles:
                raise RuntimeError(
                    f"serving simulation exceeded {self.max_cycles} cycles "
                    f"with {len(self.active)} streams active"
                )
            self._check_progress(now)
            completions_before = self.scheduler.completions
            worked = machine.step_cycle()
            now = machine.now  # completion cycle: step already advanced
            departed = self.scheduler.completions != completions_before
            if departed:
                for key in sorted(self.active):
                    core = machine.cores[key[0]]
                    if core.threads[key[1]].trace is None:
                        self._finish(key, now)
                        promoted = admission.release(Slot(*key))
                        if promoted is not None:
                            stream, slot = promoted
                            self._start(stream, slot, now)
            elif not worked:
                target = machine.idle_skip_target()
                if target is not None and pending:
                    target = min(target, pending[0].arrival)
                elif target is None:
                    target = pending[0].arrival if pending else now
                machine.now = max(now, target)
        if admission.queue:
            raise RuntimeError(
                f"{len(admission.queue)} streams stranded in the admission "
                "queue after all slots drained"
            )
        machine.finalize()
        return {
            "streams": self.records,
            "rejected": self.rejected,
            "cycles": machine.now,
        }
