"""Cached serving-scenario driver: the "how many users" experiment.

`run_serving_scenario` sweeps the serving grid — ISA × architecture
(wide SMT vs CMP×SMT) × memory hierarchy × admission policy — through
the same fingerprint/runcache/resilience machinery the paper figures
use: serving results are pure functions of a :class:`ServingRequest`,
cold/warm and serial/parallel sweeps are bit-identical (the same JSON
round-trip discipline as ``Runner.run_batch``), and cache entries share
the runner's :class:`~repro.analysis.runner.ResultStore` (fingerprints
are ``serving-`` prefixed so the two families never collide).

The fingerprint covers the simulation code version *plus* a hash of the
``repro.serving`` package source (which is not part of
``code_version()``'s simulation packages): editing the admission or
metering logic invalidates serving entries without touching the much
larger figure cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass

from repro.analysis.reporting import format_table
from repro.analysis.resilience import ResilientExecutor, SweepFailure
from repro.analysis.runner import RESULT_FORMAT, Runner, code_version, workload_traces
from repro.serving.admission import ADMISSION_POLICIES, AdmissionController
from repro.serving.metering import meter_result
from repro.serving.simulator import (
    SERVING_MEMORY_KINDS,
    ServingSimulator,
    build_serving_machine,
    derive_interarrival,
)
from repro.tracegen.program import DEFAULT_SCALE
from repro.tracegen.serialize import TraceCache
from repro.verify import faultinject
from repro.workloads.mediabench import (
    WORKLOAD_ORDER,
    build_stream_trace_variants,
)
from repro.workloads.streams import (
    CODE_BASE_STRIDE,
    SERVING_MIXES,
    generate_stream_schedule,
    rebase_trace,
)

#: Bumped when the serving result dict changes shape incompatibly.
SERVING_FORMAT = 1

#: The architecture design points of the serving grid:
#: ``(arch, cores, contexts)`` — the paper's wide 8-context SMT against
#: a 4-core × 2-context CMP×SMT with the same total context count.
SERVING_ARCH_POINTS = (("smt", 1, 8), ("cmp", 4, 2))

_serving_version_cache: str | None = None


def serving_code_version() -> str:
    """Hash of the serving package source, combined with code_version().

    ``repro.serving`` is not one of the runner's simulation packages
    (editing it must not invalidate the paper-figure cache), but serving
    results *are* functions of it — so serving fingerprints carry this
    separate hash.
    """
    global _serving_version_cache
    if _serving_version_cache is None:
        import repro.serving

        digest = hashlib.sha256(code_version().encode())
        package_dir = os.path.dirname(repro.serving.__file__)
        for name in sorted(os.listdir(package_dir)):
            if not name.endswith(".py"):
                continue
            digest.update(name.encode())
            with open(os.path.join(package_dir, name), "rb") as handle:
                digest.update(handle.read())
        _serving_version_cache = digest.hexdigest()[:40]
    return _serving_version_cache


@dataclass(frozen=True)
class ServingRequest:
    """Everything that determines one serving run (and its fingerprint)."""

    isa: str
    arch: str = "smt"
    cores: int = 1
    contexts: int = 8
    memory: str = "conventional"
    policy: str = "rr"
    mix: str = "mixed"
    n_streams: int = 16
    load: float = 0.85
    slack: float = 1.0
    queue_limit: int = 8
    scale: float = DEFAULT_SCALE
    seed: int = 0

    def __post_init__(self):
        if self.arch not in ("smt", "cmp"):
            raise ValueError(f"unknown serving arch {self.arch!r}")
        if self.arch == "smt" and self.cores != 1:
            raise ValueError("arch='smt' is a single wide processor")
        if self.cores < 1 or self.contexts < 1:
            raise ValueError("need at least one core and one context")
        if self.memory not in SERVING_MEMORY_KINDS:
            raise ValueError(f"unknown memory kind {self.memory!r}")
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(f"unknown admission policy {self.policy!r}")
        if self.mix not in SERVING_MIXES:
            raise ValueError(f"unknown serving mix {self.mix!r}")
        if self.n_streams < 1:
            raise ValueError("need at least one stream")
        if not self.load > 0:
            raise ValueError("load must be positive")
        if not self.slack > 0:
            raise ValueError("slack must be positive")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")

    # `describe_request` (resilience failure reports) reads these names.
    @property
    def n_threads(self) -> int:
        return self.cores * self.contexts

    @property
    def fetch_policy(self) -> str:
        return f"serve-{self.policy}"

    def fingerprint(
        self, version: str | None = None, serving_version: str | None = None
    ) -> str:
        """Content address of this run's result in the shared store."""
        payload = asdict(self)
        # Floats go through repr, like RunRequest.scale, so equal-value
        # but differently-typed inputs cannot alias.
        payload["scale"] = repr(self.scale)
        payload["load"] = repr(self.load)
        payload["slack"] = repr(self.slack)
        payload["code_version"] = version or code_version()
        payload["serving_version"] = serving_version or serving_code_version()
        payload["serving_format"] = SERVING_FORMAT
        payload["result_format"] = RESULT_FORMAT
        blob = json.dumps(payload, sort_keys=True).encode()
        return "serving-" + hashlib.sha256(blob).hexdigest()[:40]


#: In-process memo for stream trace variants (bounded like the runner's
#: workload memo; the disk-level TraceCache handles cross-process reuse).
_VARIANT_MEMO: dict[tuple, dict] = {}
_VARIANT_MEMO_LIMIT = 6


def _stream_traces(
    request: ServingRequest, schedule, trace_dir: str | None
) -> dict[int, object]:
    """Assign each stream its own trace variant.

    Occurrence ``i`` of a program in arrival order gets the variant
    seeded ``seed + 7*i``, then the variant is rebased to the stream's
    own code base (``stream_id * CODE_BASE_STRIDE``).  Both halves break
    I-cache phase-lock: distinct variants mean concurrent same-program
    streams carry different content, and distinct code bases mean hot
    loops of *different* programs stop competing for the few cache sets
    a shared base address funnels them into.
    """
    seen: dict[str, int] = {}
    variant_of: dict[int, tuple[str, int]] = {}
    for stream in schedule:
        variant = seen.get(stream.program, 0)
        seen[stream.program] = variant + 1
        variant_of[stream.stream_id] = (stream.program, variant)
    key = (
        request.isa,
        repr(request.scale),
        request.seed,
        tuple((stream.stream_id, stream.program) for stream in schedule),
    )
    by_stream = _VARIANT_MEMO.get(key)
    if by_stream is None:
        cache = TraceCache(trace_dir) if trace_dir is not None else None
        variants = build_stream_trace_variants(
            request.isa,
            seen,
            scale=request.scale,
            seed=request.seed,
            cache=cache,
        )
        by_stream = {
            stream.stream_id: rebase_trace(
                variants[variant_of[stream.stream_id][0]][
                    variant_of[stream.stream_id][1]
                ],
                stream.stream_id * CODE_BASE_STRIDE,
            )
            for stream in schedule
        }
        if len(_VARIANT_MEMO) >= _VARIANT_MEMO_LIMIT:
            _VARIANT_MEMO.clear()
        _VARIANT_MEMO[key] = by_stream
    return by_stream


def execute_serving_request(
    request: ServingRequest, trace_dir: str | None = None
) -> dict:
    """Run one serving point to completion; returns the metered dict.

    Deterministic: traces come from the seeded generator (shared trace
    cache), the schedule from the seeded arrival generator, and the
    machine from the same pipeline model as every other experiment.
    """
    traces = workload_traces(request.isa, request.scale, request.seed, trace_dir)
    palette = {}
    for name, trace in zip(WORKLOAD_ORDER, traces):
        if name not in palette:
            palette[name] = trace
    n_slots = request.cores * request.contexts
    interarrival = derive_interarrival(
        palette, request.mix, request.load, n_slots
    )
    schedule = generate_stream_schedule(
        request.n_streams,
        interarrival,
        seed=request.seed,
        mix=request.mix,
        slack_scale=request.slack,
    )
    traces_by_stream = _stream_traces(request, schedule, trace_dir)
    machine_traces = []
    seen_ids: set[int] = set()
    for stream in schedule:
        trace = traces_by_stream[stream.stream_id]
        if id(trace) not in seen_ids:
            seen_ids.add(id(trace))
            machine_traces.append(trace)
    machine, scheduler = build_serving_machine(
        request.arch,
        request.isa,
        request.cores,
        request.contexts,
        request.memory,
        machine_traces,
    )
    admission = AdmissionController(
        request.cores,
        request.contexts,
        policy=request.policy,
        queue_limit=request.queue_limit,
    )
    simulator = ServingSimulator(
        machine, scheduler, admission, schedule, traces_by_stream
    )
    result = meter_result(simulator.run(), machine, admission)
    result["provenance"] = {
        "serving_format": SERVING_FORMAT,
        "mean_interarrival": interarrival,
        "n_slots": n_slots,
    }
    return result


def serving_pool_execute(args: tuple) -> dict:
    """Worker entry point (module-level, so pool workers can import it)."""
    request, trace_dir, attempt, fingerprint = args
    faultinject.fire_execution_fault(fingerprint, attempt)
    started = time.perf_counter()
    result = execute_serving_request(request, trace_dir)
    return {
        "elapsed": time.perf_counter() - started,
        "result": result,
        "attempt": attempt,
    }


def run_serving_batch(
    requests: list[ServingRequest], runner: Runner
) -> dict[ServingRequest, dict]:
    """Execute a serving batch with the runner's cache and resilience.

    The exact ``run_batch`` discipline: dedup, memo, disk hits, then
    cache-missing points through the resilient executor with every
    result JSON-round-tripped before use — cold/warm and serial/parallel
    sweeps are bit-identical by construction.  Raises
    :class:`~repro.analysis.resilience.SweepFailure` after salvaging
    every completable point, like ``run_batch``.
    """
    runner.stats.requested += len(requests)
    unique: list[ServingRequest] = []
    seen: set[ServingRequest] = set()
    for request in requests:
        if request not in seen:
            seen.add(request)
            unique.append(request)
    runner.stats.deduplicated += len(requests) - len(unique)
    memo: dict[ServingRequest, dict] = runner.__dict__.setdefault(
        "serving_memo", {}
    )
    version = runner.version
    serving_version = serving_code_version()

    todo: list[ServingRequest] = []
    for request in unique:
        if request in memo:
            runner.stats.memo_hits += 1
            continue
        if runner.store is not None:
            payload, status = runner.store.load(
                request.fingerprint(version, serving_version)
            )
            if status == "corrupt":
                runner.stats.corrupt_quarantined += 1
            if payload is not None:
                memo[request] = payload["result"]
                runner.stats.disk_hits += 1
                runner.stats.cached_sim_seconds += float(
                    payload.get("sim_seconds", 0.0)
                )
                continue
        todo.append(request)

    if todo:
        started = time.perf_counter()

        def on_success(request: ServingRequest, payload: dict) -> None:
            result = json.loads(json.dumps(payload["result"]))
            runner.stats.simulated += 1
            runner.stats.sim_cycles += result["summary"]["cycles"]
            runner.stats.sim_instructions += result["summary"][
                "committed_instructions"
            ]
            memo[request] = result
            if runner.store is not None:
                stored = runner.store.store(
                    request.fingerprint(version, serving_version),
                    asdict(request),
                    result,
                    payload["elapsed"],
                    payload.get("attempt", 0),
                )
                if not stored:
                    runner.stats.cache_write_errors += 1

        executor = ResilientExecutor(
            runner.resilience,
            runner.jobs,
            serving_pool_execute,
            fingerprint_of=lambda request: request.fingerprint(
                version, serving_version
            ),
        )
        outcomes = executor.execute(todo, runner.trace_dir, on_success)
        runner.stats.sim_seconds += time.perf_counter() - started
        runner.stats.retries += executor.retries
        runner.stats.timeouts += executor.timeouts
        runner.stats.pool_breaks += executor.pool_breaks
        runner.stats.degraded += executor.degraded
        runner.stats.failed_points += executor.failed
        if executor.failed or executor.aborted:
            raise SweepFailure(outcomes, total=len(todo))

    return {request: memo[request] for request in unique}


def _arch_label(arch: str, cores: int, contexts: int) -> str:
    if arch == "smt":
        return f"smt-{contexts}T"
    return f"cmp-{cores}x{contexts}T"


def run_serving_scenario(
    scale: float = DEFAULT_SCALE,
    runner: Runner | None = None,
    n_streams: int = 16,
    load: float = 0.85,
    mix: str = "mixed",
    seed: int = 0,
):
    """The media-server experiment: sustainable streams per design point.

    Sweeps ISA × architecture × memory under round-robin admission, then
    the three admission policies on the CMP×SMT/conventional machine —
    the point where placement genuinely matters (private L1s, shared
    L2).  Returns an :class:`~repro.analysis.experiments.ExperimentResult`
    whose ``measured`` dict keys are ``isa/arch/memory/policy``.
    """
    from repro.analysis.experiments import ISAS, ExperimentResult

    runner = runner or Runner()
    requests: list[ServingRequest] = []
    for isa in ISAS:
        for arch, cores, contexts in SERVING_ARCH_POINTS:
            for memory in SERVING_MEMORY_KINDS:
                for policy in ADMISSION_POLICIES:
                    requests.append(
                        ServingRequest(
                            isa=isa,
                            arch=arch,
                            cores=cores,
                            contexts=contexts,
                            memory=memory,
                            policy=policy,
                            mix=mix,
                            n_streams=n_streams,
                            load=load,
                            scale=scale,
                            seed=seed,
                        )
                    )
    results = run_serving_batch(requests, runner)

    measured = {}
    for request, result in results.items():
        label = _arch_label(request.arch, request.cores, request.contexts)
        summary = result["summary"]
        measured[f"{request.isa}/{label}/{request.memory}/{request.policy}"] = {
            "streams_per_mcycle": summary["streams_per_mcycle"],
            "latency_p50": summary["latency_p50"],
            "latency_p95": summary["latency_p95"],
            "latency_p99": summary["latency_p99"],
            "miss_rate": summary["miss_rate"],
            "unserved_rate": summary["unserved_rate"],
            "rejected": summary["rejected"],
            "eipc": summary["eipc"],
        }

    arch_rows = []
    for isa in ISAS:
        for arch, cores, contexts in SERVING_ARCH_POINTS:
            label = _arch_label(arch, cores, contexts)
            for memory in SERVING_MEMORY_KINDS:
                point = measured[f"{isa}/{label}/{memory}/rr"]
                arch_rows.append(
                    [
                        isa,
                        label,
                        memory,
                        point["streams_per_mcycle"],
                        point["latency_p50"],
                        point["latency_p95"],
                        point["miss_rate"],
                        point["unserved_rate"],
                        point["eipc"],
                    ]
                )
    report = format_table(
        [
            "isa", "arch", "memory", "str/Mcyc",
            "p50", "p95", "miss", "unserved", "eipc",
        ],
        arch_rows,
        title=(
            f"Serving capacity (open-loop, mix={mix}, "
            f"{n_streams} streams, load={load:g}, policy=rr)"
        ),
        float_fmt="{:.3f}",
    )
    policy_rows = []
    for isa in ISAS:
        for policy in ADMISSION_POLICIES:
            point = measured[f"{isa}/cmp-4x2T/conventional/{policy}"]
            policy_rows.append(
                [
                    isa,
                    policy,
                    point["streams_per_mcycle"],
                    point["latency_p95"],
                    point["latency_p99"],
                    point["miss_rate"],
                ]
            )
    report += "\n\n" + format_table(
        ["isa", "policy", "str/Mcyc", "p95", "p99", "miss"],
        policy_rows,
        title="Admission policy comparison (cmp-4x2T, conventional)",
        float_fmt="{:.3f}",
    )
    lines = []
    for isa in ISAS:
        ranked = sorted(
            ADMISSION_POLICIES,
            key=lambda policy: -measured[
                f"{isa}/cmp-4x2T/conventional/{policy}"
            ]["streams_per_mcycle"],
        )
        lines.append(
            f"{isa}: best admission policy by sustained throughput: "
            + " > ".join(ranked)
        )
    report += "\n" + "\n".join(lines)
    return ExperimentResult(
        name="serving",
        measured=measured,
        paper_values={},
        report=report,
        runs=results,
    )
