"""Experiment drivers: regenerate every table and figure of the paper.

Each ``run_*`` function reproduces one experiment of section 5 and
returns an :class:`ExperimentResult` holding the measured series, the
paper's series and a formatted report.  The benchmark harness under
``benchmarks/`` calls these; the examples reuse them interactively.

All drivers accept an optional :class:`repro.analysis.runner.Runner`.
When several figures share one runner (as ``scripts/run_experiments.py``
does), overlapping simulation points — figure 5, figure 6's round-robin
rows and table 4 all need the same conventional-hierarchy sweeps — are
simulated once, results are cached on disk between invocations, and
cache-missing runs can fan out over worker processes.  Without a runner
each driver creates a private serial one, which still deduplicates
within the driver and memoizes the workload traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import paper
from repro.analysis.reporting import format_table, paper_vs_measured
from repro.analysis.runner import RunRequest, Runner, execute_request
from repro.core.fetch import FetchPolicy
from repro.core.metrics import RunResult
from repro.tracegen.mixes import PAPER_MOM_MINSTS, WORKLOAD_MIXES
from repro.tracegen.program import DEFAULT_SCALE, build_program_trace
from repro.tracegen.serialize import TraceCache

THREAD_SWEEP = (1, 2, 4, 8)
ISAS = ("mmx", "mom")

#: Default SMARTS-style sampling parameters ``(ff_len, window_len,
#: warmup_len)`` for ``sampling=True``: ~6 % of the instruction stream
#: in detail, ~32 measurement windows at scale 1e-3 (double that for
#: the figure 9 two-round workloads).
DEFAULT_SAMPLING = (40000, 2000, 500)


def resolve_sampling(sampling) -> tuple | None:
    """Normalize a driver ``sampling`` argument.

    ``None``/``False`` mean full detail, ``True`` selects
    :data:`DEFAULT_SAMPLING`, and an explicit ``(ff, window, warmup)``
    tuple passes through.
    """
    if sampling is None or sampling is False:
        return None
    if sampling is True:
        return DEFAULT_SAMPLING
    return tuple(int(v) for v in sampling)


def eipc_cell(result: RunResult):
    """EIPC table cell: a plain float, or ``value ±ci`` when sampled."""
    if result.samples:
        return f"{result.eipc:.3f} ±{result.eipc_ci95:.3f}"
    return result.eipc


def eipc_cis(runs: dict) -> dict:
    """Per-run 95 % confidence half-widths (empty for full detail)."""
    return {
        key: run.eipc_ci95 for key, run in runs.items() if run.samples
    }


@dataclass
class ExperimentResult:
    """Measured data for one table/figure, with the paper's targets."""

    name: str
    measured: dict
    paper_values: dict
    report: str = ""
    runs: dict = field(default_factory=dict, repr=False)

    def __str__(self) -> str:
        return self.report


def simulate(
    isa: str,
    n_threads: int,
    memory: str = "conventional",
    fetch_policy: FetchPolicy = FetchPolicy.RR,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    completions_target: int = 8,
    sampling=None,
) -> RunResult:
    """Run the full multiprogrammed workload on one machine configuration.

    Convenience wrapper for interactive use; sweeps should build
    :class:`RunRequest` batches and use a :class:`Runner` instead.
    """
    return execute_request(
        RunRequest(
            isa=isa,
            n_threads=n_threads,
            memory=memory,
            fetch_policy=fetch_policy,
            scale=scale,
            seed=seed,
            completions_target=completions_target,
            sampling=resolve_sampling(sampling),
        )
    )


# --------------------------------------------------------------------- Table 3

def run_breakdown_table3(
    scale: float = DEFAULT_SCALE, runner: Runner | None = None
) -> ExperimentResult:
    """Instruction breakdown and counts per program (paper Table 3).

    The breakdown is a pure function of the trace generator and the
    scale, so it is served through the runner's derived-artifact cache:
    with a cache directory configured, re-invocations (and every later
    sweep at the same scale) format the table without regenerating or
    re-walking any trace.
    """
    runner = runner or Runner()

    def compute() -> dict:
        trace_dir = runner.trace_dir
        trace_cache = TraceCache(trace_dir) if trace_dir else None
        measured = {}
        for name in WORKLOAD_MIXES:
            per_isa = {}
            for isa in ISAS:
                if trace_cache is not None:
                    trace = trace_cache.get(name, isa, scale, 0)
                else:
                    trace = build_program_trace(name, isa, scale=scale)
                fractions = trace.class_fractions()
                per_isa[isa] = {
                    "minsts": trace.expanded_length / (1e6 * scale),
                    **fractions,
                }
            measured[name] = per_isa
        return measured

    measured = runner.artifact(
        "table3", {"scale": repr(float(scale)), "seed": 0}, compute
    )
    rows = []
    for name, per_isa in measured.items():
        rows.append(
            [
                name,
                f"{per_isa['mmx']['int']:.0%}",
                f"{per_isa['mmx']['fp']:.0%}",
                f"{per_isa['mmx']['simd']:.0%}",
                f"{per_isa['mmx']['mem']:.0%}",
                per_isa["mmx"]["minsts"],
                WORKLOAD_MIXES[name].mmx_minsts,
                per_isa["mom"]["minsts"],
                PAPER_MOM_MINSTS[name],
            ]
        )
    totals_mmx = sum(m["mmx"]["minsts"] for m in measured.values())
    totals_mom = sum(m["mom"]["minsts"] for m in measured.values())
    # mpeg2dec appears twice in the workload totals.
    totals_mmx += measured["mpeg2dec"]["mmx"]["minsts"]
    totals_mom += measured["mpeg2dec"]["mom"]["minsts"]
    report = format_table(
        ["program", "int", "fp", "simd", "mem",
         "Minst(mmx)", "paper", "Minst(mom)", "paper"],
        rows,
        title="Table 3 — instruction breakdown (MMX mix %) and counts",
        float_fmt="{:.1f}",
    )
    report += "\n" + paper_vs_measured(
        "workload total (MMX, M)", paper.TABLE3_TOTALS["mmx"], totals_mmx
    )
    report += "\n" + paper_vs_measured(
        "workload total (MOM, M)", paper.TABLE3_TOTALS["mom"], totals_mom
    )
    return ExperimentResult(
        "table3", measured, {"totals": paper.TABLE3_TOTALS}, report
    )


# --------------------------------------------------------------------- Figure 4

def run_fig4_ideal(
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    runner: Runner | None = None,
    sampling=None,
) -> ExperimentResult:
    """Performance with perfect cache (paper figure 4)."""
    runner = runner or Runner()
    sampling = resolve_sampling(sampling)
    requests = {
        (isa, n): RunRequest(
            isa, n, memory="perfect", scale=scale, sampling=sampling
        )
        for isa in ISAS
        for n in threads
    }
    results = runner.run_batch(list(requests.values()))
    runs = {key: results[req] for key, req in requests.items()}
    measured = {
        isa: {n: runs[(isa, n)].eipc for n in threads} for isa in ISAS
    }
    rows = [
        [f"{isa.upper()} T={n}", eipc_cell(runs[(isa, n)]),
         paper.FIG4_IDEAL[isa].get(n, float("nan"))]
        for isa in ISAS
        for n in threads
    ]
    report = format_table(
        ["config", "EIPC" + (" ±95% CI" if sampling else ""), "paper"],
        rows,
        title="Figure 4 — performance with perfect cache",
    )
    if 1 in threads and 8 in threads:
        report += "\n" + paper_vs_measured(
            "MMX speedup 8T/1T", 2.02, measured["mmx"][8] / measured["mmx"][1]
        )
        report += "\n" + paper_vs_measured(
            "MOM speedup 8T/1T", 2.08, measured["mom"][8] / measured["mom"][1]
        )
        report += "\n" + paper_vs_measured(
            "MOM@8T over MMX@1T",
            paper.FIG4_MOM8_OVER_MMX1,
            measured["mom"][8] / measured["mmx"][1],
        )
    return ExperimentResult("fig4", measured, paper.FIG4_IDEAL, report, runs)


# --------------------------------------------------------------------- Figure 5

def run_fig5_real(
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    ideal: ExperimentResult | None = None,
    runner: Runner | None = None,
    sampling=None,
) -> ExperimentResult:
    """Performance under the real memory system (paper figure 5)."""
    runner = runner or Runner()
    sampling = resolve_sampling(sampling)
    ideal = ideal or run_fig4_ideal(
        scale=scale, threads=threads, runner=runner, sampling=sampling
    )
    requests = {
        (isa, n): RunRequest(
            isa, n, memory="conventional", scale=scale, sampling=sampling
        )
        for isa in ISAS
        for n in threads
    }
    results = runner.run_batch(list(requests.values()))
    runs = {key: results[req] for key, req in requests.items()}
    measured = {
        isa: {n: runs[(isa, n)].eipc for n in threads} for isa in ISAS
    }
    rows = []
    degradation = {}
    for isa in ISAS:
        degs = [
            1 - measured[isa][n] / ideal.measured[isa][n] for n in threads
        ]
        degradation[isa] = sum(degs) / len(degs)
        for n in threads:
            rows.append(
                [
                    f"{isa.upper()} T={n}",
                    eipc_cell(runs[(isa, n)]),
                    ideal.measured[isa][n],
                    f"{1 - measured[isa][n] / ideal.measured[isa][n]:.0%}",
                ]
            )
    report = format_table(
        ["config", "EIPC (real)" + (" ±95% CI" if sampling else ""),
         "EIPC (ideal)", "degradation"],
        rows,
        title="Figure 5 — performance under the real memory system",
    )
    for isa in ISAS:
        report += "\n" + paper_vs_measured(
            f"{isa.upper()} mean degradation",
            paper.FIG5_DEGRADATION[isa],
            degradation[isa],
        )
    return ExperimentResult(
        "fig5",
        {"eipc": measured, "degradation": degradation},
        paper.FIG5_DEGRADATION,
        report,
        runs,
    )


# --------------------------------------------------------------------- Table 4

def run_table4_cache(
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    fig5: ExperimentResult | None = None,
    runner: Runner | None = None,
    sampling=None,
) -> ExperimentResult:
    """Cache behaviour vs. thread count (paper table 4).

    The simulation points are exactly figure 5's conventional-hierarchy
    sweep; with a shared runner (or an explicit ``fig5``) they are never
    re-simulated.  In sampled mode the cache statistics cover the
    measurement windows only (the fast-forward warms tags but counts
    nothing).
    """
    if fig5 is not None:
        runs = fig5.runs
    else:
        runner = runner or Runner()
        requests = {
            (isa, n): RunRequest(
                isa, n, memory="conventional", scale=scale,
                sampling=resolve_sampling(sampling),
            )
            for isa in ISAS
            for n in threads
        }
        results = runner.run_batch(list(requests.values()))
        runs = {key: results[req] for key, req in requests.items()}
    measured = {"icache_hit": {}, "l1_hit": {}, "l1_latency": {}}
    for isa in ISAS:
        for metric in measured:
            measured[metric][isa] = {}
        for n in threads:
            mem = runs[(isa, n)].memory
            measured["icache_hit"][isa][n] = mem.icache.hit_rate
            measured["l1_hit"][isa][n] = mem.l1.hit_rate
            measured["l1_latency"][isa][n] = mem.l1.mean_latency
    rows = []
    for metric, fmt in (
        ("icache_hit", "{:.1%}"),
        ("l1_hit", "{:.1%}"),
        ("l1_latency", "{:.2f}"),
    ):
        for isa in ISAS:
            row = [f"{metric} {isa.upper()}"]
            for n in threads:
                row.append(fmt.format(measured[metric][isa][n]))
                row.append(fmt.format(paper.TABLE4[metric][isa].get(n, float("nan"))))
            rows.append(row)
    headers = ["metric"]
    for n in threads:
        headers += [f"T={n}", "paper"]
    report = format_table(
        headers, rows, title="Table 4 — cache behaviour vs. threads"
    )
    return ExperimentResult("table4", measured, paper.TABLE4, report)


# --------------------------------------------------------------------- Figure 6

def run_fig6_fetch(
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    memory: str = "conventional",
    runner: Runner | None = None,
    sampling=None,
) -> ExperimentResult:
    """Fetch-policy impact on the conventional hierarchy (figure 6).

    In sampled mode the report states, per ISA, whether the best-policy
    vs. round-robin ranking at the top thread count is resolved: the
    EIPC gap must exceed the sum of the two 95 % confidence half-widths
    for the ordering to be trusted at this fidelity.
    """
    runner = runner or Runner()
    sampling = resolve_sampling(sampling)
    policies = {
        "mmx": (FetchPolicy.RR, FetchPolicy.ICOUNT, FetchPolicy.BALANCE),
        "mom": (
            FetchPolicy.RR,
            FetchPolicy.ICOUNT,
            FetchPolicy.OCOUNT,
            FetchPolicy.BALANCE,
        ),
    }
    requests = {
        (isa, policy.value, n): RunRequest(
            isa, n, memory=memory, fetch_policy=policy.value, scale=scale,
            sampling=sampling,
        )
        for isa in ISAS
        for policy in policies[isa]
        for n in threads
    }
    results = runner.run_batch(list(requests.values()))
    runs = {key: results[req] for key, req in requests.items()}
    measured = {
        isa: {
            policy.value: {n: runs[(isa, policy.value, n)].eipc for n in threads}
            for policy in policies[isa]
        }
        for isa in ISAS
    }
    rows = []
    for isa in ISAS:
        for policy in measured[isa]:
            rows.append(
                [f"{isa.upper()} {policy.upper()}"]
                + [eipc_cell(runs[(isa, policy, n)]) for n in threads]
            )
    report = format_table(
        ["config"] + [f"T={n}" for n in threads],
        rows,
        title=f"Figure {'6' if memory == 'conventional' else '8'} — "
        f"fetch policies ({memory} hierarchy), EIPC"
        + (" ±95% CI" if sampling else ""),
    )
    best_gain = {}
    resolved = {}
    for isa in ISAS:
        top = max(threads)
        rr = measured[isa]["rr"][top]
        best_policy = max(measured[isa], key=lambda p: measured[isa][p][top])
        best = measured[isa][best_policy][top]
        best_gain[isa] = best / rr - 1
        line = (
            f"\n{isa.upper()} best-policy gain over RR @T={top}: "
            f"{best_gain[isa]:+.1%}"
        )
        if sampling:
            gap = abs(best - rr)
            margin = (
                runs[(isa, best_policy, top)].eipc_ci95
                + runs[(isa, "rr", top)].eipc_ci95
            )
            resolved[isa] = gap > margin
            line += (
                f" — ranking {best_policy.upper()} > RR "
                f"{'resolves' if resolved[isa] else 'does NOT resolve'}"
                f" at 95% confidence"
                f" (gap {gap:.3f} vs CI margin {margin:.3f})"
            )
        report += line
    measured_out = {"eipc": measured, "gain": best_gain}
    if sampling:
        measured_out["ranking_resolved"] = resolved
    return ExperimentResult(
        "fig6" if memory == "conventional" else "fig8",
        measured_out,
        {"max_gain": paper.FIG6_MAX_POLICY_GAIN},
        report,
        runs,
    )


# --------------------------------------------------------------------- Figure 8

def run_fig8_decoupled(
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    runner: Runner | None = None,
    sampling=None,
) -> ExperimentResult:
    """Fetch-policy impact under the decoupled hierarchy (figure 8)."""
    result = run_fig6_fetch(
        scale=scale, threads=threads, memory="decoupled", runner=runner,
        sampling=sampling,
    )
    result.name = "fig8"
    return result


# ----------------------------------------------------- stall-cause breakdown

def run_stall_breakdown(
    scale: float = DEFAULT_SCALE,
    n_threads: int = 8,
    runner: Runner | None = None,
) -> ExperimentResult:
    """Per-thread stall-cause attribution at the headline 8-thread point.

    Re-runs the figure 5 round-robin configuration once per ISA with the
    metrics-only observer (:mod:`repro.obs`) attached and breaks fetch
    and dispatch stalls down by cause and hardware context — the "where
    did the slots go" companion to the EIPC tables.  Observability never
    perturbs timing (``tests/test_obs_bitident.py`` proves bit-identity)
    but observed results deliberately bypass the run cache, so the
    companion runs are served through the runner's derived-artifact
    cache instead: one execution per code version, and cached
    re-invocations format byte-identical tables (the chaos harness
    compares reports across fault-injected reruns).

    Always runs full detail regardless of sweep sampling: SMARTS
    fast-forward emits no observer events, so a sampled breakdown would
    cover the measurement windows only while claiming whole-run totals.
    """
    runner = runner or Runner()

    def compute() -> dict:
        from repro.core.params import SMTConfig
        from repro.core.smt import SMTProcessor
        from repro.obs import PipelineObserver

        from repro.analysis.runner import memory_factory

        breakdown = {}
        for isa in ISAS:
            observer = PipelineObserver(events=False)
            processor = SMTProcessor(
                SMTConfig(isa=isa, n_threads=n_threads, observe=observer),
                memory_factory("conventional")(),
                runner.workload(isa, scale, 0),
                fetch_policy=FetchPolicy.RR,
            )
            result = processor.run()
            breakdown[isa] = {
                "cycles": result.cycles,
                "eipc": result.eipc,
                "stalls": observer.stall_breakdown(),
            }
        return breakdown

    measured = runner.artifact(
        "stall_breakdown",
        {
            "scale": repr(float(scale)),
            "n_threads": int(n_threads),
            "seed": 0,
            "config": "conventional/rr",
        },
        compute,
    )
    report_blocks = []
    for isa in ISAS:
        stalls = measured[isa]["stalls"]
        grand_total = sum(row["total"] for row in stalls.values()) or 1
        rows = []
        for cause, row in sorted(
            stalls.items(), key=lambda item: -item[1]["total"]
        ):
            # Per-thread counters grow lazily to the highest context
            # that stalled; pad so every cause spans all columns.
            per_thread = list(row["per_thread"])
            per_thread += [0] * (n_threads - len(per_thread))
            rows.append(
                [
                    cause,
                    row["total"],
                    f"{row['total'] / grand_total:.1%}",
                    *per_thread,
                ]
            )
        report_blocks.append(
            format_table(
                ["cause", "total", "share"]
                + [f"t{t}" for t in range(n_threads)],
                rows,
                title=(
                    f"{isa.upper()} stall causes @{n_threads}T "
                    f"(conventional, RR; EIPC "
                    f"{measured[isa]['eipc']:.3f})"
                ),
                float_fmt="{:.0f}",
            )
        )
    return ExperimentResult(
        "stalls",
        measured,
        {},
        "Stall-cause breakdown — fetch/dispatch slot loss by cause "
        "and thread\n" + "\n\n".join(report_blocks),
    )


# --------------------------------------------------------------------- Figure 9

def run_fig9_summary(
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    runner: Runner | None = None,
    sampling=None,
) -> ExperimentResult:
    """Ideal vs. conventional vs. decoupled memory organizations (fig 9).

    The paper plots its best fetch policies (ICOUNT for MMX, OCOUNT for
    MOM); in our model the 8-thread policy deltas sit inside run noise
    (see figure 6), so this summary uses the neutral round-robin policy
    with a doubled completion target for a steadier measurement window.
    """
    runner = runner or Runner()
    sampling = resolve_sampling(sampling)
    memories = ("perfect", "conventional", "decoupled")
    requests = {
        (isa, memory, n): RunRequest(
            isa, n, memory=memory, scale=scale, completions_target=16,
            sampling=sampling,
        )
        for isa in ISAS
        for memory in memories
        for n in threads
    }
    results = runner.run_batch(list(requests.values()))
    runs = {key: results[req] for key, req in requests.items()}
    measured = {
        isa: {
            memory: {n: runs[(isa, memory, n)].eipc for n in threads}
            for memory in memories
        }
        for isa in ISAS
    }
    rows = []
    for isa in ISAS:
        for memory in measured[isa]:
            rows.append(
                [f"{isa.upper()} {memory}"]
                + [eipc_cell(runs[(isa, memory, n)]) for n in threads]
            )
    report = format_table(
        ["config"] + [f"T={n}" for n in threads],
        rows,
        title="Figure 9 — ideal vs. conventional vs. decoupled, EIPC"
        + (" ±95% CI" if sampling else ""),
    )
    top = max(threads)
    baseline = measured["mmx"]["conventional"][min(threads)]
    summary = {}
    for isa in ISAS:
        degradation = 1 - measured[isa]["decoupled"][top] / measured[isa]["perfect"][top]
        speedup = measured[isa]["decoupled"][top] / baseline
        summary[isa] = {"degradation": degradation, "speedup": speedup}
        report += "\n" + paper_vs_measured(
            f"{isa.upper()} degradation vs ideal @8T",
            paper.FIG9_DEGRADATION[isa],
            degradation,
        )
        report += "\n" + paper_vs_measured(
            f"{isa.upper()} speedup over 1T MMX",
            paper.SUMMARY_SPEEDUP[isa],
            speedup,
        )
    return ExperimentResult(
        "fig9",
        {"eipc": measured, "summary": summary},
        {
            "degradation": paper.FIG9_DEGRADATION,
            "speedup": paper.SUMMARY_SPEEDUP,
        },
        runs=runs,
        report=report,
    )


# ------------------------------------------------- sweep enumeration


def figure_requests(
    scale: float = DEFAULT_SCALE,
    sampling=None,
    threads=THREAD_SWEEP,
) -> dict[str, list[RunRequest]]:
    """Every figure's simulation points, as buildable requests.

    The exact batches the drivers above submit, keyed by figure —
    the sweep service's clients (``repro.service``) and harnesses use
    this to enumerate the whole working set without running a driver.
    ``table3`` and the stall breakdown are derived *artifacts* (they
    reuse these runs' trace caches, not runcache points), so they do
    not appear here; a report generated from a cache populated by
    these requests performs zero simulations.
    """
    sampling = resolve_sampling(sampling)
    policies = {
        "mmx": (FetchPolicy.RR, FetchPolicy.ICOUNT, FetchPolicy.BALANCE),
        "mom": (
            FetchPolicy.RR,
            FetchPolicy.ICOUNT,
            FetchPolicy.OCOUNT,
            FetchPolicy.BALANCE,
        ),
    }
    figures: dict[str, list[RunRequest]] = {}
    figures["fig4"] = [
        RunRequest(isa, n, memory="perfect", scale=scale, sampling=sampling)
        for isa in ISAS
        for n in threads
    ]
    figures["fig5"] = [
        RunRequest(
            isa, n, memory="conventional", scale=scale, sampling=sampling
        )
        for isa in ISAS
        for n in threads
    ]
    # Table 4 measures cache behaviour on figure 5's exact runs.
    figures["table4"] = list(figures["fig5"])
    for name, memory in (("fig6", "conventional"), ("fig8", "decoupled")):
        figures[name] = [
            RunRequest(
                isa, n, memory=memory, fetch_policy=policy.value,
                scale=scale, sampling=sampling,
            )
            for isa in ISAS
            for policy in policies[isa]
            for n in threads
        ]
    figures["fig9"] = [
        RunRequest(
            isa, n, memory=memory, scale=scale, completions_target=16,
            sampling=sampling,
        )
        for isa in ISAS
        for memory in ("perfect", "conventional", "decoupled")
        for n in threads
    ]
    return figures


def sweep_requests(
    scale: float = DEFAULT_SCALE,
    sampling=None,
    threads=THREAD_SWEEP,
    figures=None,
) -> list[RunRequest]:
    """Deduplicated union of the figures' points, in submission order.

    ``figures`` optionally restricts the sweep to a subset of figure
    names (unknown names raise ``KeyError``).
    """
    by_figure = figure_requests(scale, sampling, threads)
    if figures is None:
        selected = list(by_figure)
    else:
        selected = list(figures)
    seen: set[RunRequest] = set()
    ordered: list[RunRequest] = []
    for name in selected:
        for request in by_figure[name]:
            if request not in seen:
                seen.add(request)
                ordered.append(request)
    return ordered
