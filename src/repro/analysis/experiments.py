"""Experiment drivers: regenerate every table and figure of the paper.

Each ``run_*`` function reproduces one experiment of section 5 and
returns an :class:`ExperimentResult` holding the measured series, the
paper's series and a formatted report.  The benchmark harness under
``benchmarks/`` calls these; the examples reuse them interactively.

All drivers accept an optional :class:`repro.analysis.runner.Runner`.
When several figures share one runner (as ``scripts/run_experiments.py``
does), overlapping simulation points — figure 5, figure 6's round-robin
rows and table 4 all need the same conventional-hierarchy sweeps — are
simulated once, results are cached on disk between invocations, and
cache-missing runs can fan out over worker processes.  Without a runner
each driver creates a private serial one, which still deduplicates
within the driver and memoizes the workload traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import paper
from repro.analysis.reporting import format_table, paper_vs_measured
from repro.analysis.runner import RunRequest, Runner, execute_request
from repro.core.fetch import FetchPolicy
from repro.core.metrics import RunResult
from repro.tracegen.mixes import PAPER_MOM_MINSTS, WORKLOAD_MIXES
from repro.tracegen.program import DEFAULT_SCALE, build_program_trace
from repro.tracegen.serialize import TraceCache

THREAD_SWEEP = (1, 2, 4, 8)
ISAS = ("mmx", "mom")


@dataclass
class ExperimentResult:
    """Measured data for one table/figure, with the paper's targets."""

    name: str
    measured: dict
    paper_values: dict
    report: str = ""
    runs: dict = field(default_factory=dict, repr=False)

    def __str__(self) -> str:
        return self.report


def simulate(
    isa: str,
    n_threads: int,
    memory: str = "conventional",
    fetch_policy: FetchPolicy = FetchPolicy.RR,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    completions_target: int = 8,
) -> RunResult:
    """Run the full multiprogrammed workload on one machine configuration.

    Convenience wrapper for interactive use; sweeps should build
    :class:`RunRequest` batches and use a :class:`Runner` instead.
    """
    return execute_request(
        RunRequest(
            isa=isa,
            n_threads=n_threads,
            memory=memory,
            fetch_policy=fetch_policy,
            scale=scale,
            seed=seed,
            completions_target=completions_target,
        )
    )


# --------------------------------------------------------------------- Table 3

def run_breakdown_table3(
    scale: float = DEFAULT_SCALE, runner: Runner | None = None
) -> ExperimentResult:
    """Instruction breakdown and counts per program (paper Table 3)."""
    trace_dir = runner.trace_dir if runner is not None else None
    trace_cache = TraceCache(trace_dir) if trace_dir else None
    rows = []
    measured = {}
    for name, mix in WORKLOAD_MIXES.items():
        per_isa = {}
        for isa in ISAS:
            if trace_cache is not None:
                trace = trace_cache.get(name, isa, scale, 0)
            else:
                trace = build_program_trace(name, isa, scale=scale)
            fractions = trace.class_fractions()
            per_isa[isa] = {
                "minsts": trace.expanded_length / (1e6 * scale),
                **fractions,
            }
        measured[name] = per_isa
        paper_mmx = mix.mmx_minsts
        paper_mom = PAPER_MOM_MINSTS[name]
        rows.append(
            [
                name,
                f"{per_isa['mmx']['int']:.0%}",
                f"{per_isa['mmx']['fp']:.0%}",
                f"{per_isa['mmx']['simd']:.0%}",
                f"{per_isa['mmx']['mem']:.0%}",
                per_isa["mmx"]["minsts"],
                paper_mmx,
                per_isa["mom"]["minsts"],
                paper_mom,
            ]
        )
    totals_mmx = sum(m["mmx"]["minsts"] for m in measured.values())
    totals_mom = sum(m["mom"]["minsts"] for m in measured.values())
    # mpeg2dec appears twice in the workload totals.
    totals_mmx += measured["mpeg2dec"]["mmx"]["minsts"]
    totals_mom += measured["mpeg2dec"]["mom"]["minsts"]
    report = format_table(
        ["program", "int", "fp", "simd", "mem",
         "Minst(mmx)", "paper", "Minst(mom)", "paper"],
        rows,
        title="Table 3 — instruction breakdown (MMX mix %) and counts",
        float_fmt="{:.1f}",
    )
    report += "\n" + paper_vs_measured(
        "workload total (MMX, M)", paper.TABLE3_TOTALS["mmx"], totals_mmx
    )
    report += "\n" + paper_vs_measured(
        "workload total (MOM, M)", paper.TABLE3_TOTALS["mom"], totals_mom
    )
    return ExperimentResult(
        "table3", measured, {"totals": paper.TABLE3_TOTALS}, report
    )


# --------------------------------------------------------------------- Figure 4

def run_fig4_ideal(
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    runner: Runner | None = None,
) -> ExperimentResult:
    """Performance with perfect cache (paper figure 4)."""
    runner = runner or Runner()
    requests = {
        (isa, n): RunRequest(isa, n, memory="perfect", scale=scale)
        for isa in ISAS
        for n in threads
    }
    results = runner.run_batch(list(requests.values()))
    runs = {key: results[req] for key, req in requests.items()}
    measured = {
        isa: {n: runs[(isa, n)].eipc for n in threads} for isa in ISAS
    }
    rows = [
        [f"{isa.upper()} T={n}", measured[isa][n], paper.FIG4_IDEAL[isa].get(n, float("nan"))]
        for isa in ISAS
        for n in threads
    ]
    report = format_table(
        ["config", "EIPC", "paper"],
        rows,
        title="Figure 4 — performance with perfect cache",
    )
    if 1 in threads and 8 in threads:
        report += "\n" + paper_vs_measured(
            "MMX speedup 8T/1T", 2.02, measured["mmx"][8] / measured["mmx"][1]
        )
        report += "\n" + paper_vs_measured(
            "MOM speedup 8T/1T", 2.08, measured["mom"][8] / measured["mom"][1]
        )
        report += "\n" + paper_vs_measured(
            "MOM@8T over MMX@1T",
            paper.FIG4_MOM8_OVER_MMX1,
            measured["mom"][8] / measured["mmx"][1],
        )
    return ExperimentResult("fig4", measured, paper.FIG4_IDEAL, report, runs)


# --------------------------------------------------------------------- Figure 5

def run_fig5_real(
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    ideal: ExperimentResult | None = None,
    runner: Runner | None = None,
) -> ExperimentResult:
    """Performance under the real memory system (paper figure 5)."""
    runner = runner or Runner()
    ideal = ideal or run_fig4_ideal(scale=scale, threads=threads, runner=runner)
    requests = {
        (isa, n): RunRequest(isa, n, memory="conventional", scale=scale)
        for isa in ISAS
        for n in threads
    }
    results = runner.run_batch(list(requests.values()))
    runs = {key: results[req] for key, req in requests.items()}
    measured = {
        isa: {n: runs[(isa, n)].eipc for n in threads} for isa in ISAS
    }
    rows = []
    degradation = {}
    for isa in ISAS:
        degs = [
            1 - measured[isa][n] / ideal.measured[isa][n] for n in threads
        ]
        degradation[isa] = sum(degs) / len(degs)
        for n in threads:
            rows.append(
                [
                    f"{isa.upper()} T={n}",
                    measured[isa][n],
                    ideal.measured[isa][n],
                    f"{1 - measured[isa][n] / ideal.measured[isa][n]:.0%}",
                ]
            )
    report = format_table(
        ["config", "EIPC (real)", "EIPC (ideal)", "degradation"],
        rows,
        title="Figure 5 — performance under the real memory system",
    )
    for isa in ISAS:
        report += "\n" + paper_vs_measured(
            f"{isa.upper()} mean degradation",
            paper.FIG5_DEGRADATION[isa],
            degradation[isa],
        )
    return ExperimentResult(
        "fig5",
        {"eipc": measured, "degradation": degradation},
        paper.FIG5_DEGRADATION,
        report,
        runs,
    )


# --------------------------------------------------------------------- Table 4

def run_table4_cache(
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    fig5: ExperimentResult | None = None,
    runner: Runner | None = None,
) -> ExperimentResult:
    """Cache behaviour vs. thread count (paper table 4).

    The simulation points are exactly figure 5's conventional-hierarchy
    sweep; with a shared runner (or an explicit ``fig5``) they are never
    re-simulated.
    """
    if fig5 is not None:
        runs = fig5.runs
    else:
        runner = runner or Runner()
        requests = {
            (isa, n): RunRequest(isa, n, memory="conventional", scale=scale)
            for isa in ISAS
            for n in threads
        }
        results = runner.run_batch(list(requests.values()))
        runs = {key: results[req] for key, req in requests.items()}
    measured = {"icache_hit": {}, "l1_hit": {}, "l1_latency": {}}
    for isa in ISAS:
        for metric in measured:
            measured[metric][isa] = {}
        for n in threads:
            mem = runs[(isa, n)].memory
            measured["icache_hit"][isa][n] = mem.icache.hit_rate
            measured["l1_hit"][isa][n] = mem.l1.hit_rate
            measured["l1_latency"][isa][n] = mem.l1.mean_latency
    rows = []
    for metric, fmt in (
        ("icache_hit", "{:.1%}"),
        ("l1_hit", "{:.1%}"),
        ("l1_latency", "{:.2f}"),
    ):
        for isa in ISAS:
            row = [f"{metric} {isa.upper()}"]
            for n in threads:
                row.append(fmt.format(measured[metric][isa][n]))
                row.append(fmt.format(paper.TABLE4[metric][isa].get(n, float("nan"))))
            rows.append(row)
    headers = ["metric"]
    for n in threads:
        headers += [f"T={n}", "paper"]
    report = format_table(
        headers, rows, title="Table 4 — cache behaviour vs. threads"
    )
    return ExperimentResult("table4", measured, paper.TABLE4, report)


# --------------------------------------------------------------------- Figure 6

def run_fig6_fetch(
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    memory: str = "conventional",
    runner: Runner | None = None,
) -> ExperimentResult:
    """Fetch-policy impact on the conventional hierarchy (figure 6)."""
    runner = runner or Runner()
    policies = {
        "mmx": (FetchPolicy.RR, FetchPolicy.ICOUNT, FetchPolicy.BALANCE),
        "mom": (
            FetchPolicy.RR,
            FetchPolicy.ICOUNT,
            FetchPolicy.OCOUNT,
            FetchPolicy.BALANCE,
        ),
    }
    requests = {
        (isa, policy.value, n): RunRequest(
            isa, n, memory=memory, fetch_policy=policy.value, scale=scale
        )
        for isa in ISAS
        for policy in policies[isa]
        for n in threads
    }
    results = runner.run_batch(list(requests.values()))
    runs = {key: results[req] for key, req in requests.items()}
    measured = {
        isa: {
            policy.value: {n: runs[(isa, policy.value, n)].eipc for n in threads}
            for policy in policies[isa]
        }
        for isa in ISAS
    }
    rows = []
    for isa in ISAS:
        for policy, series in measured[isa].items():
            rows.append(
                [f"{isa.upper()} {policy.upper()}"] + [series[n] for n in threads]
            )
    report = format_table(
        ["config"] + [f"T={n}" for n in threads],
        rows,
        title=f"Figure {'6' if memory == 'conventional' else '8'} — "
        f"fetch policies ({memory} hierarchy), EIPC",
    )
    best_gain = {}
    for isa in ISAS:
        top = max(threads)
        rr = measured[isa]["rr"][top]
        best = max(series[top] for series in measured[isa].values())
        best_gain[isa] = best / rr - 1
        report += (
            f"\n{isa.upper()} best-policy gain over RR @T={top}: "
            f"{best_gain[isa]:+.1%}"
        )
    return ExperimentResult(
        "fig6" if memory == "conventional" else "fig8",
        {"eipc": measured, "gain": best_gain},
        {"max_gain": paper.FIG6_MAX_POLICY_GAIN},
        report,
        runs,
    )


# --------------------------------------------------------------------- Figure 8

def run_fig8_decoupled(
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    runner: Runner | None = None,
) -> ExperimentResult:
    """Fetch-policy impact under the decoupled hierarchy (figure 8)."""
    result = run_fig6_fetch(
        scale=scale, threads=threads, memory="decoupled", runner=runner
    )
    result.name = "fig8"
    return result


# --------------------------------------------------------------------- Figure 9

def run_fig9_summary(
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    runner: Runner | None = None,
) -> ExperimentResult:
    """Ideal vs. conventional vs. decoupled memory organizations (fig 9).

    The paper plots its best fetch policies (ICOUNT for MMX, OCOUNT for
    MOM); in our model the 8-thread policy deltas sit inside run noise
    (see figure 6), so this summary uses the neutral round-robin policy
    with a doubled completion target for a steadier measurement window.
    """
    runner = runner or Runner()
    memories = ("perfect", "conventional", "decoupled")
    requests = {
        (isa, memory, n): RunRequest(
            isa, n, memory=memory, scale=scale, completions_target=16
        )
        for isa in ISAS
        for memory in memories
        for n in threads
    }
    results = runner.run_batch(list(requests.values()))
    runs = {key: results[req] for key, req in requests.items()}
    measured = {
        isa: {
            memory: {n: runs[(isa, memory, n)].eipc for n in threads}
            for memory in memories
        }
        for isa in ISAS
    }
    rows = []
    for isa in ISAS:
        for memory, series in measured[isa].items():
            rows.append([f"{isa.upper()} {memory}"] + [series[n] for n in threads])
    report = format_table(
        ["config"] + [f"T={n}" for n in threads],
        rows,
        title="Figure 9 — ideal vs. conventional vs. decoupled, EIPC",
    )
    top = max(threads)
    baseline = measured["mmx"]["conventional"][min(threads)]
    summary = {}
    for isa in ISAS:
        degradation = 1 - measured[isa]["decoupled"][top] / measured[isa]["perfect"][top]
        speedup = measured[isa]["decoupled"][top] / baseline
        summary[isa] = {"degradation": degradation, "speedup": speedup}
        report += "\n" + paper_vs_measured(
            f"{isa.upper()} degradation vs ideal @8T",
            paper.FIG9_DEGRADATION[isa],
            degradation,
        )
        report += "\n" + paper_vs_measured(
            f"{isa.upper()} speedup over 1T MMX",
            paper.SUMMARY_SPEEDUP[isa],
            speedup,
        )
    return ExperimentResult(
        "fig9",
        {"eipc": measured, "summary": summary},
        {
            "degradation": paper.FIG9_DEGRADATION,
            "speedup": paper.SUMMARY_SPEEDUP,
        },
        runs=runs,
        report=report,
    )
