"""Golden-run regression harness: lock headline ratios at smoke scale.

Each golden file under ``tests/golden/`` freezes the headline metrics of
one experiment — Table 3's instruction-count totals, figure 4's
SMT/MOM speedups, figures 6 and 8's fetch-policy gains — as measured at
scale :data:`GOLDEN_SCALE` (2e-5, the smoke-test fidelity: the full
golden sweep simulates in seconds).  Every metric carries a tolerance
band; a run outside its band fails ``tests/test_golden_runs.py`` with a
side-by-side golden/measured/paper diff, so an unintended modelling
change is caught at the number it moved, not three figures downstream.

Regenerate deliberately with ``python scripts/update_goldens.py`` after
a modelling change that is *supposed* to move the headline numbers; the
same script's ``--check`` mode recomputes without writing.

The simulator is deterministic, so on unchanged code every measured
value reproduces the golden exactly.  The bands exist to absorb small,
legitimate drift from future modelling refinements without demanding a
regeneration per PR: relative bands for absolute metrics (EIPC,
instruction counts, shares), absolute bands for gain/ratio metrics that
live near zero.
"""

from __future__ import annotations

import json
import os

from repro.analysis import paper
from repro.analysis.experiments import (
    run_breakdown_table3,
    run_fig4_ideal,
    run_fig6_fetch,
)
from repro.analysis.reporting import format_table, paper_vs_measured
from repro.analysis.runner import Runner
from repro.analysis.serving import ServingRequest, run_serving_batch

#: Scale every golden is recorded at.  2e-5 keeps the whole golden sweep
#: (fig4 + fig6 + fig8 + the Table 3 trace walk) under ~30 s serial.
GOLDEN_SCALE = 2e-5

#: Thread counts the golden sweeps use: the 1T baseline and the 8T
#: headline point.  Intermediate counts add runtime, not coverage — the
#: locked ratios only involve the endpoints.
GOLDEN_THREADS = (1, 8)

EXPERIMENTS = ("table3", "fig4", "fig6", "fig8", "serving")

#: Default tolerance bands (see module docstring for the rationale).
REL_TOL = 0.02       # absolute metrics: EIPC, Minst totals, mix shares
GAIN_ABS_TOL = 0.02  # gain/degradation metrics near zero


def golden_path(experiment: str, directory: str) -> str:
    return os.path.join(directory, f"{experiment}.json")


def _metric(value, paper_value=None, rel_tol=None, abs_tol=None) -> dict:
    return {
        "value": float(value),
        "paper": None if paper_value is None else float(paper_value),
        "rel_tol": rel_tol,
        "abs_tol": abs_tol,
    }


def _table3_metrics(scale: float, runner: Runner) -> dict:
    measured = run_breakdown_table3(scale=scale, runner=runner).measured

    def weight(name: str) -> int:
        # mpeg2dec runs twice in the paper's workload totals.
        return 2 if name == "mpeg2dec" else 1

    def total(isa: str) -> float:
        return sum(
            measured[name][isa]["minsts"] * weight(name) for name in measured
        )

    def share(isa: str, cls: str) -> float:
        weighted = sum(
            measured[name][isa][cls] * measured[name][isa]["minsts"]
            * weight(name)
            for name in measured
        )
        return weighted / total(isa)

    return {
        "workload_minsts_mmx": _metric(
            total("mmx"), paper.TABLE3_TOTALS["mmx"], rel_tol=REL_TOL
        ),
        "workload_minsts_mom": _metric(
            total("mom"), paper.TABLE3_TOTALS["mom"], rel_tol=REL_TOL
        ),
        "mom_instruction_reduction": _metric(
            1 - total("mom") / total("mmx"),
            1 - paper.TABLE3_TOTALS["mom"] / paper.TABLE3_TOTALS["mmx"],
            abs_tol=GAIN_ABS_TOL,
        ),
        "mmx_int_share": _metric(
            share("mmx", "int"), paper.TABLE3_MMX_INT_SHARE, abs_tol=GAIN_ABS_TOL
        ),
        "mmx_simd_share": _metric(
            share("mmx", "simd"), paper.TABLE3_MMX_SIMD_SHARE,
            abs_tol=GAIN_ABS_TOL,
        ),
    }


def _fig4_metrics(scale: float, runner: Runner) -> dict:
    eipc = run_fig4_ideal(
        scale=scale, threads=GOLDEN_THREADS, runner=runner
    ).measured
    metrics = {}
    for isa in ("mmx", "mom"):
        for n in GOLDEN_THREADS:
            metrics[f"eipc_{isa}_{n}t"] = _metric(
                eipc[isa][n], paper.FIG4_IDEAL[isa].get(n), rel_tol=REL_TOL
            )
    metrics["mmx_speedup_8t_over_1t"] = _metric(
        eipc["mmx"][8] / eipc["mmx"][1], 2.02, rel_tol=REL_TOL
    )
    metrics["mom_speedup_8t_over_1t"] = _metric(
        eipc["mom"][8] / eipc["mom"][1], 2.08, rel_tol=REL_TOL
    )
    metrics["mom_8t_over_mmx_1t"] = _metric(
        eipc["mom"][8] / eipc["mmx"][1], paper.FIG4_MOM8_OVER_MMX1,
        rel_tol=REL_TOL,
    )
    return metrics


def _fetch_policy_metrics(memory: str, scale: float, runner: Runner) -> dict:
    result = run_fig6_fetch(
        scale=scale, threads=GOLDEN_THREADS, memory=memory, runner=runner
    )
    eipc = result.measured["eipc"]
    gain = result.measured["gain"]
    metrics = {}
    for isa in ("mmx", "mom"):
        for policy in eipc[isa]:
            for n in GOLDEN_THREADS:
                metrics[f"eipc_{isa}_{policy}_{n}t"] = _metric(
                    eipc[isa][policy][n], rel_tol=REL_TOL
                )
        if memory == "conventional":
            paper_gain = paper.FIG6_MAX_POLICY_GAIN
        else:
            # Figure 8's text quantifies the MOM gain only.
            paper_gain = paper.FIG8_MAX_POLICY_GAIN_MOM if isa == "mom" else None
        metrics[f"best_policy_gain_{isa}_8t"] = _metric(
            gain[isa], paper_gain, abs_tol=GAIN_ABS_TOL
        )
    return metrics


#: The serving design points a golden locks: the arch/memory face of the
#: grid under round-robin, plus the two placement policies on the
#: CMP×SMT machine (where placement genuinely matters).  Listed as
#: ``(label, arch, cores, contexts, memory, policy)``.
GOLDEN_SERVING_POINTS = (
    ("smt8_conv_rr", "smt", 1, 8, "conventional", "rr"),
    ("cmp4x2_conv_rr", "cmp", 4, 2, "conventional", "rr"),
    ("cmp4x2_dec_rr", "cmp", 4, 2, "decoupled", "rr"),
    ("cmp4x2_conv_least", "cmp", 4, 2, "conventional", "least"),
    ("cmp4x2_conv_affinity", "cmp", 4, 2, "conventional", "affinity"),
)


def _serving_metrics(scale: float, runner: Runner) -> dict:
    requests = {}
    for isa in ("mmx", "mom"):
        for label, arch, cores, contexts, memory, policy in (
            GOLDEN_SERVING_POINTS
        ):
            requests[f"{isa}_{label}"] = ServingRequest(
                isa=isa,
                arch=arch,
                cores=cores,
                contexts=contexts,
                memory=memory,
                policy=policy,
                scale=scale,
            )
    results = run_serving_batch(list(requests.values()), runner)
    metrics = {}
    for name, request in requests.items():
        summary = results[request]["summary"]
        metrics[f"spm_{name}"] = _metric(
            summary["streams_per_mcycle"], rel_tol=REL_TOL
        )
        metrics[f"p95_{name}"] = _metric(
            summary["latency_p95"], rel_tol=REL_TOL
        )
        metrics[f"miss_{name}"] = _metric(
            summary["miss_rate"], abs_tol=GAIN_ABS_TOL
        )
    return metrics


_COMPUTE = {
    "table3": _table3_metrics,
    "fig4": _fig4_metrics,
    "fig6": lambda scale, runner: _fetch_policy_metrics(
        "conventional", scale, runner
    ),
    "fig8": lambda scale, runner: _fetch_policy_metrics(
        "decoupled", scale, runner
    ),
    "serving": _serving_metrics,
}


def compute_golden_metrics(
    experiment: str, runner: Runner | None = None, scale: float = GOLDEN_SCALE
) -> dict:
    """Measure one experiment's headline metrics at golden fidelity."""
    if experiment not in _COMPUTE:
        raise ValueError(
            f"unknown golden experiment {experiment!r}; "
            f"expected one of {EXPERIMENTS}"
        )
    return _COMPUTE[experiment](scale, runner or Runner())


def build_golden_document(
    experiment: str, runner: Runner | None = None, scale: float = GOLDEN_SCALE
) -> dict:
    return {
        "experiment": experiment,
        "scale": scale,
        "threads": list(GOLDEN_THREADS),
        "regenerate_with": "python scripts/update_goldens.py",
        "metrics": compute_golden_metrics(experiment, runner, scale),
    }


def allowed_band(metric: dict) -> float:
    """Absolute deviation a golden metric tolerates."""
    if metric.get("abs_tol") is not None:
        return float(metric["abs_tol"])
    return float(metric.get("rel_tol") or 0.0) * abs(metric["value"])


def compare_metrics(golden: dict, measured: dict) -> tuple[list[str], str]:
    """Diff measured metrics against a golden set.

    Returns ``(failures, report)``: the names of out-of-band (or
    missing/extra) metrics, and a human-readable table of every metric —
    golden value, measured value, deviation, band, the paper's target
    where one exists, and a PASS/FAIL verdict — followed by
    paper-vs-measured lines for the paper-targeted metrics.  The report
    is the regression suite's failure message: it answers "which number
    moved, by how much, and where does the paper sit" in one read.
    """
    failures: list[str] = []
    rows = []
    for name in sorted(set(golden) | set(measured)):
        if name not in measured:
            failures.append(name)
            rows.append([name, golden[name]["value"], "MISSING", "-", "-",
                         "-", "FAIL"])
            continue
        if name not in golden:
            failures.append(name)
            rows.append([name, "MISSING", measured[name]["value"], "-", "-",
                         "-", "FAIL"])
            continue
        expected = golden[name]
        band = allowed_band(expected)
        delta = measured[name]["value"] - expected["value"]
        ok = abs(delta) <= band
        if not ok:
            failures.append(name)
        target = expected.get("paper")
        rows.append(
            [
                name,
                f"{expected['value']:.4f}",
                f"{measured[name]['value']:.4f}",
                f"{delta:+.4f}",
                f"±{band:.4f}",
                "-" if target is None else f"{target:.3f}",
                "PASS" if ok else "FAIL",
            ]
        )
    report = format_table(
        ["metric", "golden", "measured", "delta", "band", "paper", "verdict"],
        rows,
    )
    paper_lines = [
        paper_vs_measured(name, golden[name]["paper"], measured[name]["value"])
        for name in sorted(golden)
        if name in measured and golden[name].get("paper")
    ]
    if paper_lines:
        report += "\n\npaper vs measured:\n" + "\n".join(paper_lines)
    return failures, report


def check_experiment(
    experiment: str,
    directory: str,
    runner: Runner | None = None,
) -> tuple[list[str], str]:
    """Recompute one experiment and diff it against its golden file."""
    with open(golden_path(experiment, directory)) as handle:
        document = json.load(handle)
    measured = compute_golden_metrics(
        experiment, runner, float(document["scale"])
    )
    failures, table = compare_metrics(document["metrics"], measured)
    title = (
        f"golden run {experiment!r} @scale={document['scale']:g}: "
        f"{len(failures)} of {len(document['metrics'])} metrics out of band"
    )
    return failures, f"{title}\n{table}"
