"""Plain-text table formatting for experiment output.

Benchmarks print the same rows/series the paper's tables and figures
report, side by side with the published values, so a run's fidelity can
be judged at a glance.
"""

from __future__ import annotations


def format_table(
    headers: list[str],
    rows: list[list],
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospace table."""
    def render(cell) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rendered))
        if rendered
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured(
    label: str, paper: float, measured: float, unit: str = ""
) -> str:
    """One comparison line: paper value, measured value, relative error."""
    if paper:
        err = (measured - paper) / paper
        return f"{label:34s} paper={paper:8.3f}{unit}  measured={measured:8.3f}{unit}  ({err:+.1%})"
    return f"{label:34s} paper={paper:8.3f}{unit}  measured={measured:8.3f}{unit}"
