"""The experiment run engine: fingerprinted, deduplicated, parallel, cached.

Every figure/table driver describes the simulations it needs as
:class:`RunRequest` values and hands them to a shared :class:`Runner`.
The runner then

* **fingerprints** each request — ISA, thread count, memory system,
  fetch policy, trace scale, seed, completion target, plus a hash of the
  simulation-relevant source code — so a result is reusable exactly when
  rerunning the simulation would reproduce it bit for bit;
* **deduplicates** requests: figures 5/6 and table 4 (for example) share
  their conventional-hierarchy round-robin points, which are simulated
  once per process no matter how many figures ask;
* **fans out** cache-missing runs across a ``ProcessPoolExecutor`` when
  ``jobs > 1`` — runs are independent and deterministically seeded, so
  parallel and serial execution produce bit-identical results;
* **persists** results as JSON under a cache directory (the experiment
  script uses ``results/.runcache/``), keyed by the fingerprint, so
  re-running an unchanged sweep performs zero simulations and any code
  or configuration change transparently invalidates stale entries.

Trace generation is cached the same way: workload traces are memoized in
process and, when a cache directory is configured, persisted via
:class:`repro.tracegen.serialize.TraceCache` so every process of a sweep
parses each trace once instead of regenerating it per run.

All results returned by the runner — serial, parallel, cold or warm
cache — pass through the same JSON round-trip
(:func:`result_to_dict` / :func:`result_from_dict`), which is lossless
(Python's JSON float serialization round-trips exactly), making
bit-identical reports a structural property rather than an aspiration.

Execution is fault tolerant (:mod:`repro.analysis.resilience`): runs
carry wall-clock timeouts, transient failures retry with seeded
backoff, a broken process pool restarts (degrading to serial execution
if it keeps breaking), and every request ends in a structured
:class:`~repro.analysis.resilience.RunOutcome` rather than an aborted
sweep.  The on-disk cache is crash safe: entries are written atomically
(temp file + rename), carry a content checksum, and a corrupt entry is
quarantined with a :class:`CacheIntegrityWarning` — never silently
swallowed — then recomputed.  Results persist the moment each run
completes, so a sweep killed at any point resumes from every finished
simulation.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import warnings
from dataclasses import asdict, dataclass, field, fields, replace

import repro
from repro.analysis.resilience import (
    ResilienceConfig,
    ResilientExecutor,
    RunOutcome,
    SweepFailure,
)
from repro.verify import faultinject
from repro.core.fetch import FetchPolicy
from repro.core.metrics import RunResult
from repro.core.params import SMTConfig
from repro.core.smt import (
    SMTProcessor,
    merge_sampled_chunks,
    sampled_chunk_count,
)
from repro.memory.decoupled import DecoupledHierarchy
from repro.memory.hierarchy import ConventionalHierarchy
from repro.memory.interface import CacheStats, MemoryStats
from repro.memory.perfect import PerfectMemory
from repro.tracegen.program import DEFAULT_SCALE, Trace
from repro.tracegen.serialize import TraceCache
from repro.workloads.mediabench import build_workload_traces

#: Bumped when the result serialization format changes incompatibly.
#: 2: entries gained the checksum envelope of :func:`write_checked_json`.
RESULT_FORMAT = 2


class CacheIntegrityWarning(UserWarning):
    """A cache entry failed its integrity check and was quarantined.

    Corrupt entries (torn writes from a killed process, bit rot, disk
    faults) are renamed to ``<entry>.corrupt`` — kept for forensics,
    never loaded — and the result is recomputed.  The count lands in
    ``RunnerStats.corrupt_quarantined`` and the sweep provenance.
    """


def _canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload) -> str:
    """Content checksum over the canonical JSON form of ``payload``."""
    return hashlib.sha256(_canonical_json(payload).encode()).hexdigest()[:16]


def write_checked_json(path: str, payload) -> None:
    """Atomically persist ``{"checksum": ..., "payload": ...}``.

    Temp-file-plus-rename keeps readers (and a later resume) from ever
    observing a torn entry; the checksum lets them detect every other
    corruption mode.
    """
    record = {"checksum": _checksum(payload), "payload": payload}
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "w") as handle:
            json.dump(record, handle)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def read_checked_json(path: str):
    """Load a checksummed entry: ``(payload, status)``.

    ``status`` is ``"ok"``, ``"missing"``, ``"legacy"`` (readable JSON
    without our envelope — a pre-checksum cache format, stale but not
    corrupt) or ``"corrupt"`` (unparseable, or checksum mismatch);
    ``payload`` is ``None`` unless ``"ok"``.
    """
    try:
        with open(path) as handle:
            record = json.load(handle)
    except FileNotFoundError:
        return None, "missing"
    except (OSError, ValueError):
        return None, "corrupt"
    if (
        not isinstance(record, dict)
        or set(record) != {"checksum", "payload"}
    ):
        return None, "legacy"
    if _checksum(record["payload"]) != record["checksum"]:
        return None, "corrupt"
    return record["payload"], "ok"


def verify_cache(cache_dir: str) -> dict:
    """Integrity-scan every entry of a result-cache directory.

    Returns ``{"ok": count, "corrupt": [paths], "legacy": [paths],
    "quarantined": [paths]}`` — ``quarantined`` lists ``.corrupt``
    files left by earlier quarantines.  Used by tests and the
    chaos-smoke harness to assert a cache holds no torn entries.
    """
    ok, corrupt, legacy, quarantined = 0, [], [], []
    for name in sorted(os.listdir(cache_dir)):
        path = os.path.join(cache_dir, name)
        if name.endswith(".corrupt"):
            quarantined.append(path)
            continue
        if not name.endswith(".json"):
            continue
        __, status = read_checked_json(path)
        if status == "ok":
            ok += 1
        elif status == "corrupt":
            corrupt.append(path)
        elif status == "legacy":
            legacy.append(path)
    return {
        "ok": ok,
        "corrupt": corrupt,
        "legacy": legacy,
        "quarantined": quarantined,
    }


def quarantine_entry(path: str, what: str = "result-cache") -> str:
    """Move a corrupt cache entry aside, loudly.

    Returns the quarantine path (``<entry>.corrupt``), or
    ``"(could not be moved)"`` when the rename itself failed.  Callers
    own the bookkeeping (``RunnerStats.corrupt_quarantined`` for the
    runner, ``ServiceStats`` for the sweep service).
    """
    quarantined = f"{path}.corrupt"
    try:
        os.replace(path, quarantined)
    except OSError:
        quarantined = "(could not be moved)"
    warnings.warn(
        CacheIntegrityWarning(
            f"corrupt {what} entry {path}: parse/checksum failure; "
            f"quarantined to {quarantined}, recomputing"
        ),
        stacklevel=3,
    )
    return quarantined


class ResultStore:
    """The content-addressed, checksummed result store.

    One directory of ``<fingerprint>.json`` entries in the
    :func:`write_checked_json` envelope, shared by :class:`Runner`
    (in-process sweeps) and the sweep service (``repro.service`` —
    many clients, one store).  Both sides read and write the exact
    same payload shape, so a sweep that ran through the service is a
    warm cache for ``run_experiments.py`` and vice versa:

    ``{"result_format", "code_version", "request", "result",
    "sim_seconds", "saved_at"}``

    The store is crash-safe (atomic rename + checksum; a torn write is
    quarantined on next read, never served) and append-only from the
    callers' point of view — entries are only ever replaced by a
    recompute of the same fingerprint.
    """

    def __init__(self, cache_dir: str, version: str | None = None):
        self.cache_dir = cache_dir
        self.version = version
        os.makedirs(cache_dir, exist_ok=True)

    @property
    def trace_dir(self) -> str:
        """Trace-cache directory, nested so one rm clears both."""
        path = os.path.join(self.cache_dir, "traces")
        os.makedirs(path, exist_ok=True)
        return path

    def fingerprint_of(self, request) -> str:
        return request.fingerprint(self.version)

    def path_for(self, fingerprint: str) -> str:
        return os.path.join(self.cache_dir, f"{fingerprint}.json")

    def load(self, fingerprint: str) -> tuple[dict | None, str]:
        """Load an entry: ``(payload, status)``.

        ``status`` is ``"ok"``, ``"missing"``, ``"stale"`` (readable
        but a different result format — recompute) or ``"corrupt"``
        (quarantined before returning); ``payload`` is ``None`` unless
        ``"ok"``.
        """
        path = self.path_for(fingerprint)
        payload, status = read_checked_json(path)
        if status == "corrupt":
            quarantine_entry(path)
            return None, "corrupt"
        if payload is None:  # missing, or a stale pre-checksum format
            return None, "missing" if status == "missing" else "stale"
        if payload.get("result_format") != RESULT_FORMAT:
            return None, "stale"
        return payload, "ok"

    def store(
        self,
        fingerprint: str,
        request_payload: dict,
        result_payload: dict,
        elapsed: float,
        attempt: int = 0,
    ) -> bool:
        """Persist one finished point; ``False`` if the write failed.

        A failed write is loud (``CacheIntegrityWarning``) but not
        fatal: the caller already holds the result in memory, so losing
        persistence costs a recompute next session, not correctness.
        """
        path = self.path_for(fingerprint)
        payload = {
            "result_format": RESULT_FORMAT,
            "code_version": self.version or code_version(),
            "request": request_payload,
            "result": result_payload,
            "sim_seconds": elapsed,
            "saved_at": time.time(),
        }
        try:
            write_checked_json(path, payload)
        except OSError as exc:
            warnings.warn(
                CacheIntegrityWarning(
                    f"could not persist result-cache entry {path}: {exc}"
                ),
                stacklevel=3,
            )
            return False
        faultinject.corrupt_cache_entry(path, fingerprint, attempt)
        return True

    def scan(self) -> dict:
        """Integrity-scan the whole store (see :func:`verify_cache`)."""
        return verify_cache(self.cache_dir)


#: Subpackages whose source determines simulation results.  The analysis
#: layer (drivers, reporting) is deliberately excluded: rewording a
#: report must not invalidate cached simulations.
_SIMULATION_PACKAGES = ("core", "memory", "isa", "tracegen", "workloads")

_MEMORY_FACTORIES = {
    "perfect": PerfectMemory,
    "conventional": ConventionalHierarchy,
    "decoupled": DecoupledHierarchy,
}


def memory_factory(kind: str):
    """Memory-system class for a configuration name."""
    try:
        return _MEMORY_FACTORIES[kind]
    except KeyError:
        raise ValueError(f"unknown memory system {kind!r}") from None


_code_version_cache: str | None = None


def code_version() -> str:
    """Hash of the simulation-relevant source tree.

    Part of every run fingerprint: editing the core, the memory models,
    the ISA tables, the trace generator or the workloads invalidates all
    cached results, while analysis-layer edits do not.
    """
    global _code_version_cache
    if _code_version_cache is None:
        digest = hashlib.sha256()
        root = os.path.dirname(os.path.abspath(repro.__file__))
        for package in _SIMULATION_PACKAGES:
            package_dir = os.path.join(root, package)
            for dirpath, dirnames, filenames in sorted(os.walk(package_dir)):
                dirnames.sort()
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    path = os.path.join(dirpath, filename)
                    digest.update(os.path.relpath(path, root).encode())
                    with open(path, "rb") as handle:
                        digest.update(handle.read())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


#: SMTConfig fields that intentionally do NOT ride the request
#: fingerprint.  Audited by the FPR-* codelint rules
#: (:mod:`repro.verify.codelint.rules_fpr`): every ``SMTConfig`` field
#: must either be forwarded from a :class:`RunRequest` field inside
#: :func:`execute_request` (and thereby fingerprinted via
#: ``asdict(self)``) or appear here with its reason.  Three legitimate
#: categories:
#:
#: * **derived** — computed from fingerprinted fields in
#:   ``SMTConfig.__post_init__``; fingerprinting them would be
#:   double-counting;
#: * **observer-only** — proven result-neutral end to end
#:   (``tests/test_core_sanitizer.py`` and the obs bit-identity suite
#:   show sanitized/observed runs byte-identical to plain ones);
#: * **structural constant** — not settable through the runner at all;
#:   changing one means editing ``core/params.py``, which the
#:   fingerprint's code-version hash over ``src/repro/core`` already
#:   invalidates.
#:
#: Adding an SMTConfig field without either forwarding it or extending
#: this table fails CI (FPR-CONFIG-UNFINGERPRINTED); stale entries fail
#: too (FPR-EXEMPT-STALE), like isacheck's TIMING_ONLY_MNEMONICS.
FINGERPRINT_EXEMPT_CONFIG_FIELDS = {
    "resources": "derived: scaled_resources(n_threads) in __post_init__",
    "issue_simd": "derived: 2 for mmx / 1 for mom in __post_init__",
    "sanitize": "observer-only: sanitized runs are bit-identical",
    "observe": "observer-only: observability rides the result, not the key",
    "fetch_groups": "structural constant (paper §3); code-version covered",
    "fetch_group_size": "structural constant (paper §3); code-version covered",
    "dispatch_width": "structural constant (paper §3); code-version covered",
    "commit_width": "structural constant (paper §3); code-version covered",
    "issue_int": "structural constant (paper §3); code-version covered",
    "issue_mem": "structural constant (paper §3); code-version covered",
    "issue_fp": "structural constant (paper §3); code-version covered",
    "vector_lanes": "structural constant (paper §3); code-version covered",
    "decode_buffer": "structural constant (paper §3); code-version covered",
    "mispredict_redirect": (
        "structural constant (paper §3); code-version covered"
    ),
}

#: :class:`RunRequest` fields that intentionally do NOT ride the
#: fingerprint, mirroring ``FINGERPRINT_EXEMPT_CONFIG_FIELDS`` above.
#: ``fingerprint`` pops every key listed here from its payload;
#: ``tests/test_analysis_runner.py`` audits the table (each key must be
#: a real request field, and requests differing only in an exempt field
#: must fingerprint — and compare — equal).
FINGERPRINT_EXEMPT_REQUEST_FIELDS = {
    "window_jobs": (
        "measurement-invariant by construction: the sampled schedule is "
        "chunked identically for every window_jobs value (the chunk "
        "count is a pure function of config and workload, see "
        "repro.core.smt.sampled_chunk_count) and merged in fixed chunk "
        "order, so serial and sharded execution are bit-identical; "
        "fingerprinting it would fork the result cache on a pure "
        "execution-strategy knob"
    ),
    "backend": (
        "measurement-invariant by contract: the flat engine "
        "(repro.core.engine_flat) is bit-identical to the object engine "
        "— same canonical hash, same sampled chunk schedule — pinned by "
        "the cross-backend golden suite (tests/test_engine_flat.py), so "
        "both backends share one runcache slot; fingerprinting it would "
        "fork the result cache on a pure execution-strategy knob"
    ),
}


@dataclass(frozen=True)
class RunRequest:
    """One simulation point of an experiment sweep.

    Everything that determines the simulation's outcome is a field here
    (the code version is added by the fingerprint); two equal requests
    are guaranteed to produce bit-identical results.
    """

    isa: str
    n_threads: int
    memory: str = "conventional"
    fetch_policy: str = "rr"
    scale: float = DEFAULT_SCALE
    seed: int = 0
    completions_target: int = 8
    #: Statistical sampling parameters ``(ff_len, window_len,
    #: warmup_len)`` or ``None`` for full detail — forwarded to
    #: :class:`SMTConfig` and part of the fingerprint: a sampled result
    #: never masquerades as (or shadows) a full-detail one.
    sampling: tuple | None = None
    #: Worker processes for the sampled run's window chunks (``1`` =
    #: in-process serial schedule).  An execution-strategy knob, not a
    #: measurement parameter: excluded from equality/hash (two requests
    #: differing only here are the *same* simulation point — memo and
    #: cache must agree) and from the fingerprint (see
    #: ``FINGERPRINT_EXEMPT_REQUEST_FIELDS``).  Ignored for non-sampled
    #: runs and for workloads too small to chunk.
    window_jobs: int = field(default=1, compare=False)
    #: Pipeline engine (``SMTConfig.backend``): ``"object"``, ``"flat"``
    #: or ``"auto"``.  An execution-strategy knob like ``window_jobs``
    #: — the flat engine is bit-identical by contract — so it is
    #: excluded from equality/hash (both backends are the *same*
    #: simulation point; memo and cache must agree) and from the
    #: fingerprint (see ``FINGERPRINT_EXEMPT_REQUEST_FIELDS``).
    backend: str = field(default="auto", compare=False)

    def __post_init__(self):
        if self.backend not in ("object", "flat", "auto"):
            raise ValueError(
                "backend must be 'object', 'flat' or 'auto', "
                f"not {self.backend!r}"
            )
        # Normalize enum-typed policies so RunRequest("mmx", 1,
        # fetch_policy=FetchPolicy.RR) and the string form are the same
        # request (and hash identically).
        if isinstance(self.fetch_policy, FetchPolicy):
            object.__setattr__(self, "fetch_policy", self.fetch_policy.value)
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "window_jobs", max(1, int(self.window_jobs)))
        if self.sampling is not None:
            # Lists (e.g. from JSON round-trips) and tuples must be the
            # same request; tuples also keep the dataclass hashable.
            object.__setattr__(
                self, "sampling", tuple(int(v) for v in self.sampling)
            )

    def fingerprint(self, version: str | None = None) -> str:
        """Stable cache key: request fields + code version + format."""
        payload = asdict(self)
        for exempt in FINGERPRINT_EXEMPT_REQUEST_FIELDS:
            payload.pop(exempt, None)
        payload["scale"] = repr(self.scale)
        payload["code_version"] = version or code_version()
        payload["result_format"] = RESULT_FORMAT
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:40]


# ------------------------------------------------------------------ results


def result_to_dict(result: RunResult) -> dict:
    """Serialize a :class:`RunResult` to JSON-safe plain data.

    The ``observability`` snapshot is carried only when present: an
    unobserved run serializes without the key at all, keeping its JSON
    byte-identical to trees that predate the observability layer (the
    bit-identity suite pins this).
    """
    payload = asdict(result)
    if payload.get("observability") is None:
        payload.pop("observability", None)
    return payload


def result_from_dict(data: dict) -> RunResult:
    """Reconstruct a :class:`RunResult` from :func:`result_to_dict` data."""
    payload = dict(data)
    mem = payload.pop("memory")
    cache_fields = {"icache", "l1", "l2"}
    memory = MemoryStats(
        **{
            key: CacheStats(**value) if key in cache_fields else value
            for key, value in mem.items()
        }
    )
    return RunResult(memory=memory, **payload)


# ------------------------------------------------------------------ traces

#: In-process memo of whole-workload trace lists.  Traces are immutable
#: and generation is deterministic, so sharing them between runs (and
#: with the drivers) is safe; the memo is bounded because large-scale
#: trace lists are tens of megabytes each.
_WORKLOAD_MEMO: dict[tuple, list[Trace]] = {}
_WORKLOAD_MEMO_LIMIT = 6


def workload_traces(
    isa: str,
    scale: float,
    seed: int = 0,
    trace_dir: str | None = None,
) -> list[Trace]:
    """The §5.1 workload's traces, memoized in process and on disk.

    ``trace_dir`` is part of the memo key so that a cache-directory
    runner always persists its traces even when a cacheless run already
    memoized the same workload.
    """
    key = (isa, float(scale), int(seed), trace_dir)
    traces = _WORKLOAD_MEMO.get(key)
    if traces is None:
        cache = TraceCache(trace_dir) if trace_dir else None
        traces = build_workload_traces(isa, scale=scale, seed=seed, cache=cache)
        if len(_WORKLOAD_MEMO) >= _WORKLOAD_MEMO_LIMIT:
            _WORKLOAD_MEMO.pop(next(iter(_WORKLOAD_MEMO)))
        _WORKLOAD_MEMO[key] = traces
    return traces


# ------------------------------------------------------------------ execution


def execute_request(
    request: RunRequest, trace_dir: str | None = None
) -> RunResult:
    """Run one simulation point (no result caching at this layer).

    Sampled requests with ``window_jobs > 1`` fan their window chunks
    out over a process pool (:func:`_execute_request_sharded`) — unless
    this process is itself a pool worker, in which case nesting pools
    would oversubscribe the machine and the serial schedule (which is
    bit-identical anyway) runs instead.
    """
    if (
        request.window_jobs > 1
        and request.sampling is not None
        and multiprocessing.parent_process() is None
    ):
        sharded = _execute_request_sharded(request, trace_dir)
        if sharded is not None:
            return sharded
    traces = workload_traces(
        request.isa, request.scale, request.seed, trace_dir
    )
    processor = SMTProcessor(
        SMTConfig(
            isa=request.isa,
            n_threads=request.n_threads,
            sampling=request.sampling,
            backend=request.backend,
        ),
        memory_factory(request.memory)(),
        traces,
        fetch_policy=FetchPolicy(request.fetch_policy),
        completions_target=request.completions_target,
    )
    return processor.run()


def pool_execute(args: tuple) -> dict:
    """Worker-process entry point: simulate and return timed plain data.

    ``args`` is ``(request, trace_dir, attempt, fingerprint)`` — the
    attempt number and fingerprint feed the deterministic fault
    injection hook (a no-op unless a plan is installed).  The per-run
    wall time is persisted with the cached result so a later
    fully-cached sweep can still report the throughput of the
    simulations that produced its numbers.

    Shared by :meth:`Runner.run_batch` and the sweep service — both
    dispatch through the module attribute at call time, so a test
    double installed over either name applies to every consumer.
    """
    request, trace_dir, attempt, fingerprint = args
    faultinject.fire_execution_fault(fingerprint, attempt)
    started = time.perf_counter()
    result = execute_request(request, trace_dir)
    return {
        "elapsed": time.perf_counter() - started,
        "result": result_to_dict(result),
        "attempt": attempt,
    }


#: Legacy name of :func:`pool_execute`; ``run_batch`` dispatches through
#: this module global so existing test doubles keep working.
_pool_execute = pool_execute


# ------------------------------------------------------------- window shards

#: Resilience policy for intra-run window-shard execution.  Module-level
#: because pool workers need it importable; :class:`Runner` installs its
#: own policy here (last runner wins — acceptable for a process-wide
#: execution knob, and tests monkeypatch it directly).
_WINDOW_RESILIENCE = ResilienceConfig()

#: Shard provenance drained by :meth:`Runner.run_batch` into BENCH:
#: one ``{"fingerprint", "chunks", "window_jobs", "shard_seconds",
#: "wall_seconds"}`` record per sharded point.
_WINDOW_SHARD_LOG: list[dict] = []


@dataclass(frozen=True)
class _WindowShard:
    """One window chunk of a sampled request, as a pool task.

    Wraps the base request so the resilience layer can describe and
    fingerprint it; the properties expose the fields
    :func:`~repro.analysis.resilience.describe_request` reads.
    """

    base: RunRequest
    index: int
    n_chunks: int

    @property
    def isa(self) -> str:
        return self.base.isa

    @property
    def n_threads(self) -> int:
        return self.base.n_threads

    @property
    def memory(self) -> str:
        return self.base.memory

    @property
    def fetch_policy(self) -> str:
        return self.base.fetch_policy

    @property
    def scale(self) -> float:
        return self.base.scale


def _window_pool_execute(args: tuple) -> dict:
    """Pool entry point for one window shard (mirrors `_pool_execute`)."""
    shard, trace_dir, attempt, fingerprint = args
    faultinject.fire_execution_fault(fingerprint, attempt)
    request = shard.base
    started = time.perf_counter()
    traces = workload_traces(
        request.isa, request.scale, request.seed, trace_dir
    )
    processor = SMTProcessor(
        SMTConfig(
            isa=request.isa,
            n_threads=request.n_threads,
            sampling=request.sampling,
            backend=request.backend,
        ),
        memory_factory(request.memory)(),
        traces,
        fetch_policy=FetchPolicy(request.fetch_policy),
        completions_target=request.completions_target,
    )
    chunk = processor.run_sampled_chunk(shard.index, shard.n_chunks)
    return {
        "elapsed": time.perf_counter() - started,
        "chunk": chunk,
        "attempt": attempt,
    }


def _execute_request_sharded(
    request: RunRequest, trace_dir: str | None = None
) -> RunResult | None:
    """Fan a sampled request's window chunks out over a process pool.

    Returns ``None`` when the workload is too small to chunk (the
    caller falls through to the plain serial path).  Shards execute
    under the same resilience machinery as whole runs — per-shard
    timeouts, retries, pool restarts — and merge in fixed chunk order,
    so the result is bit-identical to the serial schedule no matter how
    shards are scheduled or which of them had to retry.
    """
    traces = workload_traces(
        request.isa, request.scale, request.seed, trace_dir
    )
    n_chunks = sampled_chunk_count(
        request.sampling, traces, request.completions_target
    )
    if n_chunks <= 1:
        return None
    base_fingerprint = request.fingerprint()
    shards = [
        _WindowShard(base=request, index=index, n_chunks=n_chunks)
        for index in range(n_chunks)
    ]
    chunks: dict[int, dict] = {}
    shard_seconds = 0.0

    def on_success(shard: _WindowShard, payload: dict) -> None:
        nonlocal shard_seconds
        # The same JSON round-trip the whole-run path applies: pooled
        # and in-process shards hand identical plain data to the merge.
        chunks[shard.index] = json.loads(json.dumps(payload["chunk"]))
        shard_seconds += payload["elapsed"]

    executor = ResilientExecutor(
        _WINDOW_RESILIENCE,
        min(request.window_jobs, n_chunks),
        _window_pool_execute,
        fingerprint_of=lambda shard: f"{base_fingerprint}/w{shard.index}",
    )
    started = time.perf_counter()
    outcomes = executor.execute(shards, trace_dir, on_success)
    if executor.failed or executor.aborted:
        raise SweepFailure(outcomes, total=len(shards))
    _WINDOW_SHARD_LOG.append(
        {
            "fingerprint": base_fingerprint,
            "chunks": n_chunks,
            "window_jobs": request.window_jobs,
            "shard_seconds": shard_seconds,
            "wall_seconds": time.perf_counter() - started,
        }
    )
    return merge_sampled_chunks(
        SMTConfig(
            isa=request.isa,
            n_threads=request.n_threads,
            sampling=request.sampling,
        ),
        FetchPolicy(request.fetch_policy),
        [chunks[index] for index in range(n_chunks)],
    )


def _instructions_of(result: RunResult) -> int:
    """Instructions a run actually retired, for throughput accounting.

    A sampled result's ``committed_instructions`` covers only the
    measurement windows (the quantity its EIPC is defined over); the
    work the run performed — and the basis of the sampling speedup —
    is the whole workload it advanced, which the per-program completion
    ledger records for fast-forwarded and detailed regimes alike.
    """
    if result.samples is not None:
        return int(sum(result.per_program_committed.values()))
    return result.committed_instructions


# ------------------------------------------------------------------ runner


@dataclass
class RunnerStats:
    """What a runner did on behalf of its callers."""

    requested: int = 0
    deduplicated: int = 0      # duplicate requests folded away
    memo_hits: int = 0         # served from the in-process memo
    disk_hits: int = 0         # served from the on-disk cache
    simulated: int = 0         # actually executed
    sim_seconds: float = 0.0   # wall time spent executing
    sim_instructions: int = 0  # committed instructions across executed runs
    sim_cycles: int = 0        # simulated cycles across executed runs
    # Provenance of disk-cache hits: the wall time and instruction count
    # of the runs that originally produced them, so a fully-cached sweep
    # can still report a meaningful simulation throughput.
    cached_sim_seconds: float = 0.0
    cached_instructions: int = 0
    artifact_hits: int = 0     # derived artifacts served from cache
    # Resilience provenance: what it took to get the results above.
    retries: int = 0               # attempts re-scheduled after a failure
    timeouts: int = 0              # runs killed for exceeding the deadline
    pool_breaks: int = 0           # process-pool restarts after worker death
    degraded: int = 0              # batches that fell back to serial execution
    failed_points: int = 0         # requests that failed permanently
    corrupt_quarantined: int = 0   # cache entries quarantined as corrupt
    cache_write_errors: int = 0    # results that could not be persisted
    window_shards: int = 0         # window chunks executed for sharded points

    def snapshot(self) -> dict:
        return asdict(self)

    def delta_since(self, before: dict) -> dict:
        return {
            field.name: getattr(self, field.name) - before[field.name]
            for field in fields(self)
        }


class Runner:
    """Executes batches of run requests with dedup, caching and fan-out.

    Parameters
    ----------
    jobs:
        Worker processes for cache-missing runs.  ``1`` executes in
        process; higher values fan out over a ``ProcessPoolExecutor``.
        Results are bit-identical either way.
    cache_dir:
        Directory for the on-disk result cache (and, under ``traces/``,
        the trace cache).  ``None`` disables persistence — the runner
        still deduplicates and memoizes within the process.
    version:
        Override for the code-version component of fingerprints (tests
        use this to exercise invalidation without editing source files).
    resilience:
        The :class:`~repro.analysis.resilience.ResilienceConfig`
        governing timeouts, retries and failure policy for cache-missing
        runs (default: no timeout, 4 attempts, salvage mode).
    window_jobs:
        Worker processes for each sampled run's window chunks
        (intra-run parallelism; see ``RunRequest.window_jobs``).  ``1``
        keeps the in-process serial schedule.  Complements ``jobs``:
        use ``jobs`` when a sweep has many points in flight, and
        ``window_jobs`` to cut the latency of a few large sampled
        points — inside pool workers sharding auto-disables, so the
        two never nest.
    backend:
        Pipeline engine override applied to every executed request
        (``"object"``, ``"flat"`` or ``"auto"``; see
        ``RunRequest.backend``).  ``None`` (default) leaves each
        request's own setting.  Like ``window_jobs``, a pure
        execution-strategy knob: results are bit-identical either way
        and share one cache slot.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | None = None,
        version: str | None = None,
        resilience: ResilienceConfig | None = None,
        window_jobs: int = 1,
        backend: str | None = None,
    ):
        self.jobs = max(1, int(jobs))
        self.cache_dir = cache_dir
        self.version = version
        self.resilience = resilience or ResilienceConfig()
        self.window_jobs = max(1, int(window_jobs))
        if backend not in (None, "object", "flat", "auto"):
            raise ValueError(
                "backend must be None, 'object', 'flat' or 'auto', "
                f"not {backend!r}"
            )
        self.backend = backend
        #: Shard provenance records drained from the module log after
        #: each batch (one per sharded point; rides BENCH).
        self.window_shard_events: list[dict] = []
        # Shards execute through module-level machinery so pool workers
        # can import it; install this runner's resilience policy there.
        global _WINDOW_RESILIENCE
        _WINDOW_RESILIENCE = self.resilience
        self.stats = RunnerStats()
        #: Per-request execution bookkeeping (status, attempts, failure
        #: records) for every request this runner had to execute.
        self.outcomes: dict[RunRequest, RunOutcome] = {}
        self._memo: dict[RunRequest, RunResult] = {}
        self._artifacts: dict[tuple, object] = {}
        #: The shared on-disk result store (``None`` without a cache
        #: dir).  The same class backs the sweep service, so either
        #: side's entries are warm hits for the other.
        self.store: ResultStore | None = (
            ResultStore(cache_dir, version) if cache_dir else None
        )

    # ----- cache plumbing ---------------------------------------------------

    @property
    def trace_dir(self) -> str | None:
        if self.store is None:
            return None
        return self.store.trace_dir

    def _cache_path(self, request: RunRequest) -> str | None:
        if self.store is None:
            return None
        return self.store.path_for(request.fingerprint(self.version))

    def _quarantine(self, path: str, what: str) -> None:
        """Move a corrupt cache entry aside, loudly, and count it."""
        quarantine_entry(path, what)
        self.stats.corrupt_quarantined += 1

    def _cache_load(
        self, request: RunRequest
    ) -> tuple[RunResult, float] | None:
        """Load a cached result and the wall time that produced it."""
        if self.store is None:
            return None
        payload, status = self.store.load(request.fingerprint(self.version))
        if status == "corrupt":
            self.stats.corrupt_quarantined += 1
            return None
        if payload is None:
            return None
        return (
            result_from_dict(payload["result"]),
            float(payload.get("sim_seconds", 0.0)),
        )

    def _cache_store(
        self,
        request: RunRequest,
        result: RunResult,
        elapsed: float,
        attempt: int = 0,
    ) -> None:
        if self.store is None:
            return
        stored = self.store.store(
            request.fingerprint(self.version),
            asdict(request),
            result_to_dict(result),
            elapsed,
            attempt,
        )
        if not stored:
            # The result is already memoized; losing persistence costs a
            # recompute next session, not this sweep's correctness.
            self.stats.cache_write_errors += 1

    # ----- execution --------------------------------------------------------

    def run(self, request: RunRequest) -> RunResult:
        """Execute (or recall) a single request."""
        return self.run_batch([request])[request]

    def run_batch(
        self, requests: list[RunRequest]
    ) -> dict[RunRequest, RunResult]:
        """Execute a batch, deduplicated, in parallel when configured.

        Returns a mapping from each distinct request to its result;
        duplicate requests in the batch map to the single shared result.

        Execution goes through the resilience layer: results are
        memoized and persisted the moment each run completes (a killed
        sweep resumes from every finished point), transient failures
        retry per ``self.resilience``, and if any request still fails
        permanently a :class:`~repro.analysis.resilience.SweepFailure`
        is raised *after* every completable run has been salvaged and
        cached.
        """
        self.stats.requested += len(requests)
        unique: list[RunRequest] = []
        seen: set[RunRequest] = set()
        for request in requests:
            if request not in seen:
                seen.add(request)
                unique.append(request)
        self.stats.deduplicated += len(requests) - len(unique)

        todo: list[RunRequest] = []
        for request in unique:
            if request in self._memo:
                self.stats.memo_hits += 1
                continue
            cached = self._cache_load(request)
            if cached is not None:
                result, elapsed = cached
                self.stats.disk_hits += 1
                self.stats.cached_sim_seconds += elapsed
                self.stats.cached_instructions += _instructions_of(result)
                self._memo[request] = result
                continue
            todo.append(request)

        if todo:
            if self.window_jobs > 1:
                # Equality/hash ignore window_jobs, so the rewritten
                # requests stay valid keys for the memo and the result
                # mapping returned to the caller.
                todo = [
                    replace(request, window_jobs=self.window_jobs)
                    for request in todo
                ]
            if self.backend is not None:
                # Same contract as window_jobs: backend is excluded from
                # equality/hash, so rewritten requests remain the keys
                # the caller and the memo agree on.
                todo = [
                    replace(request, backend=self.backend)
                    for request in todo
                ]
            started = time.perf_counter()
            trace_dir = self.trace_dir
            version = self.version
            # Stale shard events from direct execute_request callers
            # must not be attributed to this batch.
            del _WINDOW_SHARD_LOG[:]

            def on_success(request: RunRequest, payload: dict) -> None:
                # Every result passes through the same round-trip the
                # disk cache uses, so cold/warm and serial/parallel runs
                # are bit-identical by construction.  Called as soon as
                # the run completes: the cache entry lands before any
                # other run finishes, which is what makes a SIGKILLed
                # sweep resumable from every completed point.
                result = result_from_dict(
                    json.loads(json.dumps(payload["result"]))
                )
                self.stats.simulated += 1
                self.stats.sim_instructions += _instructions_of(result)
                self.stats.sim_cycles += result.cycles
                self._memo[request] = result
                self._cache_store(
                    request, result, payload["elapsed"],
                    payload.get("attempt", 0),
                )

            executor = ResilientExecutor(
                self.resilience,
                self.jobs,
                _pool_execute,
                fingerprint_of=lambda request: request.fingerprint(version),
            )
            outcomes = executor.execute(todo, trace_dir, on_success)
            if _WINDOW_SHARD_LOG:
                # Only the in-process path (jobs == 1) reaches the log:
                # pool workers shard nothing, and their module state
                # would not be visible here anyway.
                events = list(_WINDOW_SHARD_LOG)
                del _WINDOW_SHARD_LOG[:]
                self.window_shard_events.extend(events)
                self.stats.window_shards += sum(
                    event["chunks"] for event in events
                )
            self.stats.sim_seconds += time.perf_counter() - started
            self.stats.retries += executor.retries
            self.stats.timeouts += executor.timeouts
            self.stats.pool_breaks += executor.pool_breaks
            self.stats.degraded += executor.degraded
            self.stats.failed_points += executor.failed
            for outcome in outcomes:
                self.outcomes[outcome.request] = outcome
            if executor.failed or executor.aborted:
                raise SweepFailure(outcomes, total=len(todo))

        return {request: self._memo[request] for request in unique}

    # ----- derived artifacts ------------------------------------------------

    def artifact(self, name: str, payload: dict, compute):
        """Cache a JSON-safe derived value keyed by payload + code version.

        For analysis products that are expensive to derive but are pure
        functions of the simulation source and a parameter payload (the
        Table 3 instruction breakdown, for instance).  ``compute`` runs
        only on a cache miss; hits are counted in ``stats.artifact_hits``.
        Every value — fresh or cached — passes through the same JSON
        round-trip, so cached and recomputed reports are bit-identical.
        """
        blob = json.dumps(
            {
                "artifact": name,
                "payload": payload,
                "code_version": self.version or code_version(),
                "result_format": RESULT_FORMAT,
            },
            sort_keys=True,
        )
        key = hashlib.sha256(blob.encode()).hexdigest()[:40]
        memo_key = (name, key)
        if memo_key in self._artifacts:
            self.stats.artifact_hits += 1
            return self._artifacts[memo_key]
        path = (
            os.path.join(self.cache_dir, f"artifact-{key}.json")
            if self.cache_dir
            else None
        )
        if path is not None and os.path.exists(path):
            payload, status = read_checked_json(path)
            if status == "corrupt":
                self._quarantine(path, "artifact-cache")
            elif status == "ok" and "value" in payload:
                self.stats.artifact_hits += 1
                self._artifacts[memo_key] = payload["value"]
                return payload["value"]
            # "legacy" (pre-checksum format): recompute and re-persist.
        value = json.loads(json.dumps(compute()))
        self._artifacts[memo_key] = value
        if path is not None:
            try:
                write_checked_json(path, {"key": key, "value": value})
            except OSError as exc:
                self.stats.cache_write_errors += 1
                warnings.warn(
                    CacheIntegrityWarning(
                        f"could not persist artifact-cache entry {path}: {exc}"
                    ),
                    stacklevel=2,
                )
        return value

    # ----- trace access -----------------------------------------------------

    def workload(self, isa: str, scale: float, seed: int = 0) -> list[Trace]:
        """Workload traces through the runner's trace cache."""
        return workload_traces(isa, scale, seed, self.trace_dir)
