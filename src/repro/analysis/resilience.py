"""Fault-tolerant execution of simulation batches.

The run engine (:mod:`repro.analysis.runner`) fans independent
simulation points out over a ``ProcessPoolExecutor``.  At paper scale a
sweep covers dozens of points and ~1.4B instructions; over hours of
unattended execution workers get OOM-killed, machines stall, and disks
hiccup.  This module turns those events from sweep-enders into recorded,
retried incidents:

* **Timeouts** — each in-flight run carries a wall-clock deadline.  A
  run that exceeds it is killed (the only portable way to cancel a
  running process-pool task is to kill the pool's processes), charged a
  ``timeout`` failure, and retried; co-resident runs are resubmitted
  without an attempt charge.
* **Retries with seeded backoff** — transient failures (worker death,
  pool breakage, OS-level I/O errors) are retried up to
  ``max_attempts`` times with exponential backoff whose jitter is drawn
  from ``Random(f"{seed}:{fingerprint}:{attempt}")`` — a pure function,
  so chaos runs are bit-reproducible.  Deterministic model bugs
  (:class:`~repro.verify.sanitizer.InvariantViolation`, value errors)
  are *not* retried: rerunning a deterministic simulation cannot fix
  it.
* **Pool-break recovery and graceful degradation** — a dead worker
  breaks the whole pool; the executor restarts it and resubmits the
  in-flight cohort.  After ``pool_break_limit`` consecutive breaks with
  no completed run in between, it stops trusting process pools and
  degrades to serial in-process execution (no preemptive timeouts, but
  guaranteed progress and exact failure attribution).
* **Structured outcomes** — every request ends in a
  :class:`RunOutcome` carrying its status, attempt count and the full
  list of :class:`FailureRecord`\\ s (exception class, message, attempt,
  elapsed seconds), which the experiment script surfaces in its
  provenance output instead of a traceback.
* **Salvage vs abort** — by default a sweep keeps going past
  permanently-failed points, finishes (and caches) everything
  completable, and only then raises :class:`SweepFailure`; with
  ``fail_fast`` (or once ``max_failures`` points have failed) it stops
  scheduling immediately and marks the remainder ``aborted``.

Fault paths are exercised deterministically by
:mod:`repro.verify.faultinject`; see ``docs/RESILIENCE.md`` for the
full failure taxonomy.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field

from repro.verify.faultinject import SimulatedWorkerCrash
from repro.verify.sanitizer import InvariantViolation

#: Exception types worth retrying: external conditions that a later
#: attempt can plausibly avoid.  Everything else — and explicitly any
#: :class:`InvariantViolation` — is a deterministic property of the run
#: and fails permanently on first occurrence.
_TRANSIENT_TYPES = (
    SimulatedWorkerCrash,
    BrokenProcessPool,
    OSError,
    EOFError,
    ConnectionError,
)


def is_transient(exc: BaseException) -> bool:
    """Whether retrying could plausibly make this failure go away."""
    if isinstance(exc, InvariantViolation):
        return False
    return isinstance(exc, _TRANSIENT_TYPES)


@dataclass(frozen=True)
class ResilienceConfig:
    """Policy knobs for :class:`ResilientExecutor`.

    ``timeout`` is the per-run wall-clock budget in seconds (``None``
    disables deadline enforcement); it only preempts runs executing in
    worker processes — degraded serial execution cannot interrupt a
    compute-bound run.  ``max_attempts`` counts executions, so
    ``max_attempts=4`` means one initial try plus three retries.
    """

    timeout: float | None = None
    max_attempts: int = 4
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 8.0
    backoff_seed: int = 0
    #: Consecutive pool breaks (no success in between) before degrading
    #: to serial in-process execution.
    pool_break_limit: int = 3
    #: Abort the batch once this many points have failed permanently
    #: (``None`` = salvage mode: never abort, finish everything
    #: completable and raise at the end).
    max_failures: int | None = None
    fail_fast: bool = False


def backoff_delay(
    config: ResilienceConfig, fingerprint: str, attempt: int
) -> float:
    """Backoff before retry number ``attempt`` — deterministic.

    Exponential in the attempt number, capped at ``backoff_max``, with
    jitter drawn from a RNG seeded by (seed, fingerprint, attempt): the
    delay depends only on those three values, never on scheduling
    order, so a reproduced chaos run backs off identically.
    """
    base = min(
        config.backoff_max,
        config.backoff_base * config.backoff_factor ** max(0, attempt - 1),
    )
    rng = random.Random(f"{config.backoff_seed}:{fingerprint}:{attempt}")
    return base * (0.5 + rng.random())


@dataclass
class FailureRecord:
    """One failed attempt of one run."""

    kind: str        # "crash" | "pool" | "timeout" | "cache" | "error"
    error: str       # exception class name (or the kind for kills)
    message: str
    attempt: int     # 0-based attempt that failed
    elapsed: float   # seconds the attempt ran before failing

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class RunOutcome:
    """Bookkeeping attached to every request the executor handled.

    ``status`` is ``"ok"`` (result produced, possibly after retries),
    ``"failed"`` (attempts exhausted or non-transient error) or
    ``"aborted"`` (batch stopped before this point ran to a verdict).
    """

    request: object
    status: str = "pending"
    attempts: int = 0
    failures: list[FailureRecord] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "request": asdict(self.request),
            "status": self.status,
            "attempts": self.attempts,
            "failures": [f.to_dict() for f in self.failures],
        }


def describe_request(request) -> str:
    """Compact human-readable tag for failure reports."""
    return (
        f"{request.isa}/{request.n_threads}T/{request.memory}/"
        f"{request.fetch_policy}@{request.scale:g}"
    )


class SweepFailure(RuntimeError):
    """Raised when a batch ends with failed (or aborted) points.

    The successful points were already stored and cached before this
    is raised — rerunning the sweep only needs to redo the failures.
    """

    def __init__(self, outcomes: list[RunOutcome], total: int):
        self.failed = [o for o in outcomes if o.status == "failed"]
        self.aborted = [o for o in outcomes if o.status == "aborted"]
        self.total = total
        parts = [f"{len(self.failed)} of {total} simulation points failed permanently"]
        if self.aborted:
            parts.append(f"{len(self.aborted)} aborted before completion")
        super().__init__("; ".join(parts))

    def __reduce__(self):
        # The default BaseException reduction would rebuild this as
        # ``SweepFailure(formatted_message)`` — a TypeError, and the
        # outcome bookkeeping lost — if it ever crosses a process
        # boundary (nested orchestration, a future distributed sweep
        # service).  Rebuild from the real outcome lists instead.
        return (self.__class__, (self.failed + self.aborted, self.total))

    def summary(self) -> str:
        """Multi-line report: one line per failed point, with history."""
        lines = [str(self)]
        for outcome in self.failed:
            lines.append(
                f"  FAILED {describe_request(outcome.request)} "
                f"after {outcome.attempts} attempt(s):"
            )
            for record in outcome.failures:
                lines.append(
                    f"    attempt {record.attempt}: [{record.kind}] "
                    f"{record.error}: {record.message} "
                    f"({record.elapsed:.1f}s)"
                )
        for outcome in self.aborted:
            lines.append(f"  ABORTED {describe_request(outcome.request)}")
        return "\n".join(lines)


class _Task:
    """Mutable per-request scheduling state."""

    __slots__ = ("request", "fingerprint", "attempt", "failures", "not_before")

    def __init__(self, request, fingerprint: str):
        self.request = request
        self.fingerprint = fingerprint
        self.attempt = 0
        self.failures: list[FailureRecord] = []
        self.not_before = 0.0


class ResilientExecutor:
    """Drives a batch of tasks through pools, retries and timeouts.

    Parameters
    ----------
    config:
        The :class:`ResilienceConfig` policy.
    jobs:
        Worker processes; ``1`` executes in process (serially).
    worker:
        Picklable callable taking ``(request, trace_dir, attempt,
        fingerprint)`` and returning a payload dict.  Runs in worker
        processes (pooled) or in process (serial/degraded).
    fingerprint_of:
        Maps a request to its cache fingerprint (used for fault
        injection and deterministic backoff jitter).
    """

    def __init__(self, config: ResilienceConfig, jobs: int, worker, fingerprint_of):
        self.config = config
        self.jobs = max(1, int(jobs))
        self.worker = worker
        self.fingerprint_of = fingerprint_of
        # Counters the runner folds into its provenance stats.
        self.retries = 0
        self.timeouts = 0
        self.pool_breaks = 0
        self.degraded = 0
        self.failed = 0
        self.aborted = False

    # ----- public entry point ----------------------------------------------

    def execute(self, requests, trace_dir, on_success) -> list[RunOutcome]:
        """Run every (distinct) request; returns outcomes in order.

        ``on_success(request, payload)`` is invoked the moment each run
        completes — before other runs finish — so callers can persist
        results incrementally and a killed sweep resumes from every
        point that ever completed.
        """
        outcomes = {r: RunOutcome(request=r) for r in requests}
        tasks = [_Task(r, self.fingerprint_of(r)) for r in requests]
        if self.jobs > 1 and len(tasks) > 1:
            leftover = self._run_pooled(tasks, trace_dir, outcomes, on_success)
        else:
            leftover = tasks
        if leftover and not self.aborted:
            self._run_serial(leftover, trace_dir, outcomes, on_success)
        return [outcomes[r] for r in requests]

    # ----- shared bookkeeping ----------------------------------------------

    def _task_args(self, task: _Task, trace_dir):
        return (task.request, trace_dir, task.attempt, task.fingerprint)

    def _register_success(self, task, outcomes, payload, on_success) -> None:
        outcome = outcomes[task.request]
        outcome.status = "ok"
        outcome.attempts = task.attempt + 1
        outcome.failures = list(task.failures)
        on_success(task.request, payload)

    def _note_failure(
        self, task, outcomes, *, kind, error, message, elapsed, retriable
    ) -> bool:
        """Record one failed attempt; True if the task should retry."""
        task.failures.append(
            FailureRecord(
                kind=kind,
                error=error,
                message=message,
                attempt=task.attempt,
                elapsed=round(elapsed, 3),
            )
        )
        task.attempt += 1
        if retriable and task.attempt < self.config.max_attempts:
            self.retries += 1
            task.not_before = time.monotonic() + backoff_delay(
                self.config, task.fingerprint, task.attempt
            )
            return True
        outcome = outcomes[task.request]
        outcome.status = "failed"
        outcome.attempts = task.attempt
        outcome.failures = list(task.failures)
        self.failed += 1
        return False

    def _exception_failure(self, task, outcomes, exc, elapsed) -> bool:
        kind = "crash" if isinstance(exc, SimulatedWorkerCrash) else "error"
        return self._note_failure(
            task,
            outcomes,
            kind=kind,
            error=type(exc).__name__,
            message=str(exc),
            elapsed=elapsed,
            retriable=is_transient(exc),
        )

    def _should_abort(self) -> bool:
        if self.failed == 0:
            return False
        if self.config.fail_fast:
            return True
        return (
            self.config.max_failures is not None
            and self.failed >= self.config.max_failures
        )

    def _mark_aborted(self, tasks, outcomes) -> None:
        self.aborted = True
        for task in tasks:
            outcome = outcomes[task.request]
            if outcome.status == "pending":
                outcome.status = "aborted"
                outcome.attempts = task.attempt
                outcome.failures = list(task.failures)

    # ----- pooled execution -------------------------------------------------

    def _run_pooled(self, tasks, trace_dir, outcomes, on_success):
        """Fan out over a process pool; returns tasks left for serial.

        Returning a non-empty list means the executor degraded; an
        aborted batch returns ``[]`` with ``self.aborted`` set.
        """
        config = self.config
        pending: deque[_Task] = deque(tasks)
        waiting: list[_Task] = []   # backing off until task.not_before
        running: dict = {}          # future -> (task, started_at)
        max_workers = min(self.jobs, len(tasks))
        pool = None
        consecutive_breaks = 0

        def kill_pool():
            nonlocal pool
            if pool is None:
                return
            # Kill first: shutdown alone cannot stop a running task, and
            # a hung worker would otherwise stall the sweep forever.
            processes = getattr(pool, "_processes", None) or {}
            for proc in list(processes.values()):
                try:
                    proc.kill()
                except (OSError, AttributeError):
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None

        try:
            while pending or waiting or running:
                now = time.monotonic()
                if waiting:
                    still = []
                    for task in waiting:
                        (pending if task.not_before <= now else still).append(task)
                    waiting = still

                broke_on_submit = False
                while pending and len(running) < max_workers:
                    task = pending.popleft()
                    if pool is None:
                        pool = ProcessPoolExecutor(max_workers=max_workers)
                    try:
                        future = pool.submit(
                            self.worker, self._task_args(task, trace_dir)
                        )
                    except BrokenProcessPool:
                        pending.appendleft(task)
                        broke_on_submit = True
                        break
                    running[future] = (task, time.monotonic())

                if not running:
                    if broke_on_submit:
                        kill_pool()
                        self.pool_breaks += 1
                        consecutive_breaks += 1
                        if consecutive_breaks >= config.pool_break_limit:
                            self.degraded += 1
                            return list(pending) + waiting
                        continue
                    if waiting:
                        delay = min(t.not_before for t in waiting) - time.monotonic()
                        if delay > 0:
                            time.sleep(delay)
                    continue

                wait_for = 0.5
                if config.timeout is not None:
                    nearest = min(started for (_, started) in running.values())
                    wait_for = min(
                        wait_for,
                        max(0.0, nearest + config.timeout - time.monotonic()),
                    )
                if waiting:
                    wait_for = min(
                        wait_for,
                        max(0.0, min(t.not_before for t in waiting) - time.monotonic()),
                    )
                done, _ = wait(
                    list(running), timeout=wait_for, return_when=FIRST_COMPLETED
                )

                broken: list[tuple[_Task, float]] = []
                for future in done:
                    entry = running.pop(future, None)
                    if entry is None:
                        continue
                    task, started = entry
                    elapsed = time.monotonic() - started
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        broken.append((task, elapsed))
                    except Exception as exc:
                        if self._exception_failure(task, outcomes, exc, elapsed):
                            waiting.append(task)
                    else:
                        self._register_success(task, outcomes, payload, on_success)
                        consecutive_breaks = 0

                if broken or broke_on_submit:
                    # A dead worker poisons every in-flight future; the
                    # whole cohort restarts on a fresh pool.
                    now = time.monotonic()
                    for task, started in running.values():
                        broken.append((task, now - started))
                    running.clear()
                    kill_pool()
                    self.pool_breaks += 1
                    consecutive_breaks += 1
                    for task, elapsed in broken:
                        retry = self._note_failure(
                            task,
                            outcomes,
                            kind="pool",
                            error="BrokenProcessPool",
                            message="a worker process died; pool restarted",
                            elapsed=elapsed,
                            retriable=True,
                        )
                        if retry:
                            waiting.append(task)
                    if consecutive_breaks >= config.pool_break_limit:
                        self.degraded += 1
                        return list(pending) + waiting
                elif config.timeout is not None and running:
                    now = time.monotonic()
                    overdue = [
                        (task, now - started)
                        for (task, started) in running.values()
                        if now - started > config.timeout
                    ]
                    if overdue:
                        survivors = [
                            task
                            for (task, started) in running.values()
                            if now - started <= config.timeout
                        ]
                        running.clear()
                        kill_pool()
                        self.timeouts += len(overdue)
                        for task, elapsed in overdue:
                            retry = self._note_failure(
                                task,
                                outcomes,
                                kind="timeout",
                                error="Timeout",
                                message=(
                                    f"exceeded the {config.timeout:g}s "
                                    f"wall-clock budget; worker killed"
                                ),
                                elapsed=elapsed,
                                retriable=True,
                            )
                            if retry:
                                waiting.append(task)
                        # Collateral runs lost to the pool kill restart
                        # without an attempt charge: we killed them, they
                        # did not fail.
                        for task in survivors:
                            pending.appendleft(task)

                if self._should_abort():
                    remaining = (
                        list(pending)
                        + waiting
                        + [task for (task, _) in running.values()]
                    )
                    kill_pool()
                    self._mark_aborted(remaining, outcomes)
                    return []
            return []
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    # ----- serial (and degraded) execution ---------------------------------

    def _run_serial(self, tasks, trace_dir, outcomes, on_success) -> None:
        """In-process execution with the same retry/abort policy.

        No preemptive timeouts here: a hung in-process run cannot be
        interrupted.  Injected hangs are finite, so progress is still
        guaranteed under fault injection.
        """
        queue: deque[_Task] = deque(tasks)
        while queue:
            task = queue.popleft()
            delay = task.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            started = time.monotonic()
            try:
                payload = self.worker(self._task_args(task, trace_dir))
            except Exception as exc:
                elapsed = time.monotonic() - started
                if self._exception_failure(task, outcomes, exc, elapsed):
                    queue.append(task)
                elif self._should_abort():
                    self._mark_aborted(queue, outcomes)
                    return
            else:
                self._register_success(task, outcomes, payload, on_success)
