"""The paper's published numbers, used as reproduction targets.

Every value here is transcribed from the HPCA 2001 text (figures are read
off the prose where stated exactly, otherwise off the plotted curves and
recorded as approximate).
"""

#: Figure 4 — performance with perfect cache (EIPC over threads).
FIG4_IDEAL = {
    "mmx": {1: 2.47, 2: 3.70, 4: 4.60, 8: 5.00},   # 2/4-thread read off plot
    "mom": {1: 2.98, 2: 4.50, 4: 5.60, 8: 6.19},
}

#: Text: SMT+MOM @8T is 2.5x an 8-way superscalar with MMX.
FIG4_MOM8_OVER_MMX1 = 2.5

#: Figure 5 — average degradation under the real memory system.
FIG5_DEGRADATION = {"mmx": 0.30, "mom": 0.12}

#: Table 4 — cache behaviour vs. thread count (conventional hierarchy).
TABLE4 = {
    "icache_hit": {
        "mmx": {1: 0.990, 2: 0.978, 4: 0.969, 8: 0.937},
        "mom": {1: 0.987, 2: 0.982, 4: 0.966, 8: 0.939},
    },
    "l1_hit": {
        "mmx": {1: 0.987, 2: 0.976, 4: 0.942, 8: 0.868},
        "mom": {1: 0.984, 2: 0.981, 4: 0.969, 8: 0.937},
    },
    "l1_latency": {
        "mmx": {1: 1.39, 2: 1.59, 4: 2.38, 8: 6.81},
        "mom": {1: 1.74, 2: 1.86, 4: 2.43, 8: 4.51},
    },
}

#: Figure 6 — fetch-policy gains peak around 9 % at high thread counts;
#: ICOUNT is best for MMX, OCOUNT for MOM.
FIG6_MAX_POLICY_GAIN = 0.09
FIG6_BEST_POLICY = {"mmx": "icount", "mom": "ocount"}

#: Section 5.3 — fraction of issuing cycles doing only vector work @8T.
VECTOR_ONLY_CYCLES = {"mmx": 0.01, "mom": 0.04}

#: Figure 8 — under the decoupled hierarchy 8 threads beat 4 again; fetch
#: policies buy up to ~7 % for MOM and almost nothing for MMX.
FIG8_MAX_POLICY_GAIN_MOM = 0.07

#: Figure 9 / summary — degradation vs. ideal at 8 threads with the best
#: policy and the decoupled hierarchy, and the headline speedups over the
#: 1-thread MMX baseline.
FIG9_DEGRADATION = {"mmx": 0.30, "mom": 0.15}
SUMMARY_SPEEDUP = {"mmx": 2.1, "mom": 3.3}

#: Table 3 — instruction counts (millions).
TABLE3_TOTALS = {"mmx": 1429.0, "mom": 1087.0}
TABLE3_MMX_INT_SHARE = 0.62
TABLE3_MMX_SIMD_SHARE = 0.16
TABLE3_MOM_INT_CUT = 0.20
TABLE3_MOM_MEM_CUT = 0.07
TABLE3_MOM_SIMD_CUT = 0.62
