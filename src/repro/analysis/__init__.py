"""Experiment harness: one driver per table/figure of the paper."""

from repro.analysis.experiments import (
    DEFAULT_SAMPLING,
    ExperimentResult,
    figure_requests,
    resolve_sampling,
    run_breakdown_table3,
    run_fig4_ideal,
    run_fig5_real,
    run_fig6_fetch,
    run_fig8_decoupled,
    run_fig9_summary,
    run_stall_breakdown,
    run_table4_cache,
    simulate,
    sweep_requests,
)
from repro.analysis.goldens import (
    GOLDEN_SCALE,
    build_golden_document,
    check_experiment,
    compute_golden_metrics,
)
from repro.analysis.reporting import format_table
from repro.analysis.resilience import (
    FailureRecord,
    ResilienceConfig,
    RunOutcome,
    SweepFailure,
)
from repro.analysis.runner import (
    CacheIntegrityWarning,
    ResultStore,
    RunRequest,
    Runner,
    RunnerStats,
    verify_cache,
)
from repro.analysis.serving import (
    ServingRequest,
    run_serving_batch,
    run_serving_scenario,
)

__all__ = [
    "DEFAULT_SAMPLING",
    "CacheIntegrityWarning",
    "FailureRecord",
    "ResilienceConfig",
    "ResultStore",
    "RunOutcome",
    "RunRequest",
    "Runner",
    "RunnerStats",
    "SweepFailure",
    "verify_cache",
    "resolve_sampling",
    "figure_requests",
    "sweep_requests",
    "ExperimentResult",
    "run_breakdown_table3",
    "run_fig4_ideal",
    "run_fig5_real",
    "run_fig6_fetch",
    "run_fig8_decoupled",
    "run_fig9_summary",
    "run_serving_batch",
    "run_serving_scenario",
    "run_stall_breakdown",
    "run_table4_cache",
    "ServingRequest",
    "simulate",
    "format_table",
    "GOLDEN_SCALE",
    "build_golden_document",
    "check_experiment",
    "compute_golden_metrics",
]
