"""Parameter-sweep utilities for scaling and convergence studies.

The scaled-trace methodology (DESIGN.md §2) relies on the claim that the
metrics the paper compares — EIPC ratios, hit rates, speed-ups — are
*scale-free*: they stabilize long before full trace length.  This module
provides the machinery to check that claim (used by
``benchmarks/bench_scale_convergence.py``) and a small generic sweep
helper the ablation benches share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.experiments import simulate
from repro.core.metrics import RunResult


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep and its run result."""

    label: str
    params: dict
    result: RunResult


def sweep(
    runner: Callable[..., RunResult],
    axis_name: str,
    values,
    label: str = "",
    **fixed,
) -> list[SweepPoint]:
    """Run ``runner`` once per value of one axis, holding ``fixed``."""
    points = []
    for value in values:
        params = dict(fixed, **{axis_name: value})
        result = runner(**params)
        points.append(
            SweepPoint(
                label=f"{label or axis_name}={value}",
                params=params,
                result=result,
            )
        )
    return points


def scale_convergence(
    scales,
    isa_pair=("mmx", "mom"),
    n_threads: int = 4,
    memory: str = "conventional",
) -> dict[float, dict[str, float]]:
    """Key scale-free metrics at several trace scales.

    Returns, per scale: the MOM/MMX EIPC ratio, each ISA's L1 hit rate
    and the MMX machine's IPC — the quantities the reproduction's
    conclusions rest on.  A faithful scaled methodology shows these
    stabilizing as the scale grows.
    """
    out: dict[float, dict[str, float]] = {}
    for scale in scales:
        runs = {
            isa: simulate(isa, n_threads, memory=memory, scale=scale)
            for isa in isa_pair
        }
        out[scale] = {
            "eipc_ratio": runs["mom"].eipc / runs["mmx"].eipc,
            "mmx_ipc": runs["mmx"].ipc,
            "mmx_l1_hit": runs["mmx"].memory.l1.hit_rate,
            "mom_l1_hit": runs["mom"].memory.l1.hit_rate,
        }
    return out


def relative_spread(values) -> float:
    """max/min - 1 over a set of positive metric values."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return max(values) / min(values) - 1.0
