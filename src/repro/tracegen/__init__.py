"""Trace compiler: lowers media-program structure into instruction traces.

The simulator is trace-driven.  This package builds, for every workload
program and for each ISA variant (MMX-like or MOM), a deterministic
sequence of decoded :class:`~repro.isa.instruction.Instruction` records
whose *mix* (integer/FP/SIMD/memory fractions), *structure* (vectorizable
kernel bursts separated by scalar protocol-overhead stretches, loop
branches, dependency chains) and *address streams* (strided kernel
streams over large arrays vs. high-locality scalar references) model the
Mediabench programs of the paper's workload.

Calibration lives in :mod:`repro.tracegen.mixes`: per-program parameters
are solved in closed form so the generated traces reproduce the paper's
Table 3 — per-program MMX/MOM instruction-count ratios and the aggregate
facts (62 % integer under MMX; MOM saves ~20 % of integer, ~7 % of memory
and ~62 % of SIMD instructions).
"""

from repro.tracegen.mixes import ProgramMix, WORKLOAD_MIXES, predicted_counts
from repro.tracegen.program import Trace, build_program_trace
from repro.tracegen.builder import TraceBuilder

__all__ = [
    "ProgramMix",
    "WORKLOAD_MIXES",
    "predicted_counts",
    "Trace",
    "build_program_trace",
    "TraceBuilder",
]
