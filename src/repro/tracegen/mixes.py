"""Per-program instruction-mix calibration (the paper's Table 3).

Each workload program is described by a :class:`ProgramMix`: its dynamic
instruction count under the MMX ISA, the class fractions of that count,
and the *kernel template* — per-element costs of its vectorizable loops —
from which the MOM version of the trace follows mechanically:

* MOM fuses 16 loop iterations per stream instruction, eliminating almost
  all loop-control/addressing integer instructions of kernel regions
  (``int_per_word`` drops to 3 per 16-element chunk),
* MOM's packed accumulators eliminate the MMX pack/unpack/reduction
  overhead ops (``overhead_ops_per_word``), and
* strided stream loads eliminate the redundant re-loads MMX needs in
  sliding-window kernels (``redundant_loads_per_word``).

The numeric parameters below were solved so that the *generated* traces
reproduce the legible Table 3 data: per-program MMX/MOM totals
(642.7/364.9 M for mpeg2enc, ... 1429/1087 M overall) and the text's
aggregate statements (62 % integer and 16 % SIMD under MMX; ~20 % integer,
~7 % memory and ~62 % SIMD instruction savings under MOM).  The column→
program assignment of the partially-illegible table is our inference from
program characteristics; tests assert all aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Stream length MOM instructions are generated with (the ISA maximum).
STREAM_LENGTH = 16

#: Integer instructions (address update, loop branch, occasional SLR write)
#: a MOM kernel needs per 16-element chunk.
MOM_INT_PER_CHUNK = 3


@dataclass(frozen=True)
class ProgramMix:
    """Calibrated trace parameters for one workload program."""

    name: str
    description: str
    #: Dynamic instructions under MMX, in millions (paper Table 3).
    mmx_minsts: float
    #: Class fractions of the MMX instruction count.
    frac_int: float
    frac_fp: float
    frac_simd: float
    frac_mem: float
    #: Kernel template: per-element (64-bit word of work) costs under MMX.
    core_ops_per_word: float = 0.0
    overhead_ops_per_word: float = 0.0
    int_per_word: float = 0.0
    redundant_loads_per_word: float = 0.0
    loads_per_word: float = 0.0
    stores_per_word: float = 0.0
    #: Data working set of the kernel arrays, bytes (drives cache behavior).
    kernel_working_set: int = 1 << 18
    #: Hot scalar working set (stack + tables), bytes.
    scalar_working_set: int = 20 << 10
    #: Dominant stream stride in bytes (8 = unit stride).
    stream_stride: int = 8
    #: Algorithm-level locality: bytes of a kernel tile re-walked before
    #: the stream advances (search window, block row...), and how often.
    tile_bytes: int = 2048
    tile_passes: int = 8
    #: Effective MOM stream length the program's kernels sustain (16x16
    #: macroblock kernels fill all 16 words; 8x8-block and subframe
    #: kernels run half-length streams).
    stream_length: int = 16

    def __post_init__(self):
        total = self.frac_int + self.frac_fp + self.frac_simd + self.frac_mem
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: fractions sum to {total}, not 1")
        if self.redundant_loads_per_word > self.loads_per_word:
            raise ValueError(f"{self.name}: cannot eliminate more loads than exist")

    @property
    def simd_ops_per_word(self) -> float:
        return self.core_ops_per_word + self.overhead_ops_per_word

    def kernel_words(self, total: float) -> float:
        """Elements of vectorizable kernel work for a given total count."""
        if self.simd_ops_per_word == 0:
            return 0.0
        return total * self.frac_simd / self.simd_ops_per_word

    def mom_ratio(self) -> float:
        """Predicted MOM/MMX dynamic instruction-count ratio.

        Closed form of the structural transformation: per kernel element,
        MOM saves the loop-control integers (minus its own 3-per-chunk),
        the SIMD overhead ops and the redundant loads.
        """
        if self.simd_ops_per_word == 0:
            return 1.0
        saved_per_word = (
            (self.int_per_word - MOM_INT_PER_CHUNK / STREAM_LENGTH)
            + self.overhead_ops_per_word
            + self.redundant_loads_per_word
        )
        return 1.0 - self.frac_simd * saved_per_word / self.simd_ops_per_word


def predicted_counts(mix: ProgramMix, isa: str) -> dict[str, float]:
    """Class counts (in millions) the trace generator targets for ``mix``.

    For MOM, stream instructions are counted *expanded* by stream length,
    exactly as the paper counts them in Table 3.
    """
    total = mix.mmx_minsts
    counts = {
        "int": total * mix.frac_int,
        "fp": total * mix.frac_fp,
        "simd": total * mix.frac_simd,
        "mem": total * mix.frac_mem,
    }
    if isa == "mmx":
        counts["total"] = total
        return counts
    if isa != "mom":
        raise ValueError(f"unknown ISA {isa!r}")
    words = mix.kernel_words(total)
    counts["int"] -= words * (mix.int_per_word - MOM_INT_PER_CHUNK / STREAM_LENGTH)
    counts["simd"] -= words * mix.overhead_ops_per_word
    counts["mem"] -= words * mix.redundant_loads_per_word
    counts["total"] = sum(counts[k] for k in ("int", "fp", "simd", "mem"))
    return counts


# Calibrated workload (paper tables 2 and 3).  mpeg2dec appears twice in
# the 8-slot multiprogrammed workload; the registry handles instances.
WORKLOAD_MIXES: dict[str, ProgramMix] = {
    mix.name: mix
    for mix in [
        ProgramMix(
            name="mpeg2enc",
            description="MPEG-2 video encoder (motion estimation dominated)",
            mmx_minsts=642.7,
            frac_int=0.60,
            frac_fp=0.005,
            frac_simd=0.24,
            frac_mem=0.155,
            core_ops_per_word=2.0,
            overhead_ops_per_word=5.14,
            int_per_word=7.0,
            redundant_loads_per_word=0.9,
            loads_per_word=2.5,
            stores_per_word=0.3,
            kernel_working_set=352 << 10,   # two CIF-ish luma frames
            scalar_working_set=12 << 10,
            stream_stride=8,
            tile_bytes=1024,
            tile_passes=40,
            stream_length=16,
        ),
        ProgramMix(
            name="mpeg2dec",
            description="MPEG-2 video decoder (IDCT + motion compensation)",
            mmx_minsts=69.8,
            frac_int=0.60,
            frac_fp=0.005,
            frac_simd=0.16,
            frac_mem=0.235,
            core_ops_per_word=2.0,
            overhead_ops_per_word=2.0,
            int_per_word=1.77,
            redundant_loads_per_word=0.0,
            loads_per_word=1.8,
            stores_per_word=0.5,
            kernel_working_set=192 << 10,
            scalar_working_set=10 << 10,
            stream_stride=8,
            tile_bytes=2048,
            tile_passes=16,
            stream_length=8,
        ),
        ProgramMix(
            name="jpegenc",
            description="JPEG still-image encoder (DCT + quantization)",
            mmx_minsts=160.3,
            frac_int=0.60,
            frac_fp=0.01,
            frac_simd=0.16,
            frac_mem=0.23,
            core_ops_per_word=2.0,
            overhead_ops_per_word=2.44,
            int_per_word=1.99,
            redundant_loads_per_word=0.0,
            loads_per_word=1.5,
            stores_per_word=0.5,
            kernel_working_set=256 << 10,
            scalar_working_set=10 << 10,
            stream_stride=16,               # row walks of 2-D blocks
            tile_bytes=2048,
            tile_passes=16,
            stream_length=8,
        ),
        ProgramMix(
            name="jpegdec",
            description="JPEG still-image decoder (IDCT + upsampling)",
            mmx_minsts=109.4,
            frac_int=0.64,
            frac_fp=0.01,
            frac_simd=0.12,
            frac_mem=0.23,
            core_ops_per_word=2.0,
            overhead_ops_per_word=0.222,
            int_per_word=0.474,
            redundant_loads_per_word=0.0,
            loads_per_word=1.5,
            stores_per_word=0.5,
            kernel_working_set=224 << 10,
            scalar_working_set=10 << 10,
            stream_stride=16,
            tile_bytes=2048,
            tile_passes=16,
            stream_length=8,
        ),
        ProgramMix(
            name="gsmenc",
            description="GSM 06.10 speech encoder (LTP correlation search)",
            mmx_minsts=177.9,
            frac_int=0.66,
            frac_fp=0.0,
            frac_simd=0.12,
            frac_mem=0.22,
            core_ops_per_word=2.0,
            overhead_ops_per_word=2.44,
            int_per_word=1.2,
            redundant_loads_per_word=0.0,
            loads_per_word=1.3,
            stores_per_word=0.3,
            kernel_working_set=24 << 10,    # speech frames are small
            scalar_working_set=8 << 10,
            stream_stride=8,
            tile_bytes=1024,
            tile_passes=24,
            stream_length=8,
        ),
        ProgramMix(
            name="gsmdec",
            description="GSM 06.10 speech decoder (serial synthesis filter)",
            mmx_minsts=105.2,
            frac_int=0.72,
            frac_fp=0.0,
            frac_simd=0.05,
            frac_mem=0.23,
            core_ops_per_word=2.0,
            overhead_ops_per_word=0.222,
            int_per_word=0.052,
            redundant_loads_per_word=0.0,
            loads_per_word=1.3,
            stores_per_word=0.3,
            kernel_working_set=20 << 10,
            scalar_working_set=8 << 10,
            stream_stride=8,
            tile_bytes=1024,
            tile_passes=16,
            stream_length=8,
        ),
        ProgramMix(
            name="mesa",
            description="Mesa OpenGL software renderer (FP; not vectorized)",
            mmx_minsts=93.8,
            frac_int=0.55,
            frac_fp=0.25,
            frac_simd=0.0,
            frac_mem=0.20,
            kernel_working_set=384 << 10,   # frame + depth buffers
            scalar_working_set=12 << 10,
            tile_bytes=2048,
            tile_passes=12,
        ),
    ]
}

#: Paper Table 3 per-program MOM instruction counts (millions), used by
#: the calibration tests.
PAPER_MOM_MINSTS: dict[str, float] = {
    "mpeg2enc": 364.9,
    "mpeg2dec": 59.8,
    "jpegenc": 135.8,
    "jpegdec": 106.4,
    "gsmenc": 161.3,
    "gsmdec": 105.0,
    "mesa": 93.8,
}
