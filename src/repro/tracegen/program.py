"""Whole-program trace assembly.

``build_program_trace`` composes one workload program's dynamic trace by
alternating scalar protocol-overhead stretches with vectorizable kernel
bursts (plus FP loop bursts for mesa), honouring the calibrated budgets of
its :class:`~repro.tracegen.mixes.ProgramMix`.  The alternation itself is
a property the paper highlights: media programs run "regions of code with
a high percentage of vector instructions and few scalar instructions and
other regions with no SIMD instructions at all", which is what makes
resource balancing (and the BALANCE fetch policy) interesting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    FP_CLASSES,
    INTEGER_CLASSES,
    MEMORY_CLASSES,
    SIMD_ARITH_CLASSES,
)
from repro.tracegen.builder import TraceBuilder
from repro.tracegen.mixes import WORKLOAD_MIXES, ProgramMix, predicted_counts
from repro.tracegen.synthetic import ScalarRegion
from repro.tracegen.vectorizer import FpKernelRegion, KernelRegion

#: Default trace scale: dynamic instructions per million paper instructions.
DEFAULT_SCALE = 5e-5

#: Kernel words emitted per burst (about four stream chunks).
BURST_WORDS = 64

#: Share of mesa's FP budget spent in tight FP loops (the rest is
#: scattered through scalar code).
FP_LOOP_SHARE = 0.80


@dataclass
class Trace:
    """A complete per-program dynamic instruction trace.

    ``mmx_equivalent`` is the dynamic instruction count of the *MMX*
    version of the same work, used for the paper's EIPC metric.
    """

    name: str
    isa: str
    instructions: list[Instruction]
    mmx_equivalent: int
    mix: ProgramMix = field(repr=False)
    _expanded_length: int | None = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def expanded_length(self) -> int:
        """Instruction count with MOM streams expanded (Table 3 counting).

        Cached: experiment sweeps re-assign the same (immutable) trace to
        hardware contexts thousands of times, and summing per assignment
        showed up in profiles.
        """
        if self._expanded_length is None:
            self._expanded_length = sum(
                inst.stream_length for inst in self.instructions
            )
        return self._expanded_length

    def class_counts(self, expanded: bool = True) -> dict[str, int]:
        """Instruction counts by Table 3 class."""
        counts = {"int": 0, "fp": 0, "simd": 0, "mem": 0}
        for inst in self.instructions:
            weight = inst.stream_length if expanded else 1
            if inst.op in INTEGER_CLASSES:
                counts["int"] += weight
            elif inst.op in FP_CLASSES:
                counts["fp"] += weight
            elif inst.op in SIMD_ARITH_CLASSES:
                counts["simd"] += weight
            elif inst.op in MEMORY_CLASSES:
                counts["mem"] += weight
        return counts

    def class_fractions(self) -> dict[str, float]:
        """Expanded class fractions (the Table 3 percentages)."""
        counts = self.class_counts()
        total = sum(counts.values())
        return {key: value / total for key, value in counts.items()}


def build_program_trace(
    name: str,
    isa: str,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
) -> Trace:
    """Build the dynamic trace of one workload program under one ISA.

    ``scale`` converts the paper's instruction counts (hundreds of
    millions) into tractable trace lengths while preserving all ratios;
    the default yields roughly 5k-32k instructions per program.
    """
    if name not in WORKLOAD_MIXES:
        raise KeyError(f"unknown workload program {name!r}")
    mix = WORKLOAD_MIXES[name]
    total = mix.mmx_minsts * 1e6 * scale
    if total < 500:
        raise ValueError(f"scale {scale} gives a uselessly short trace")

    # Scale the *resident* structures with the trace so reuse survives
    # scaling: the real program re-reads a full search window dozens of
    # times; the scaled trace must re-read a proportionally smaller tile
    # the same number of times, or locality evaporates into cold misses.
    kernel_words_est = mix.kernel_words(total)
    kernel_bytes = kernel_words_est * mix.stream_stride
    if mix.frac_fp >= 0.05:
        # FP loop bursts (mesa) stream over the kernel arrays too.
        fp_accesses = (
            mix.frac_fp * total * FP_LOOP_SHARE / FpKernelRegion.FP_PER_ITER
        ) * (FpKernelRegion.LOADS_PER_ITER + FpKernelRegion.STORES_PER_ITER)
        kernel_bytes += fp_accesses * 8
    kernel_bytes = max(256.0, kernel_bytes)
    tile_bytes = int(
        min(mix.tile_bytes, max(256, kernel_bytes / (2 * mix.tile_passes)))
    )
    scalar_mem_est = mix.frac_mem * total - kernel_words_est * (
        mix.loads_per_word + mix.stores_per_word
    )
    scalar_ws = int(
        min(mix.scalar_working_set, max(3072, scalar_mem_est * 2))
    )
    builder = TraceBuilder(
        isa,
        seed=seed * 1009 + sum(map(ord, name)),
        scalar_working_set=scalar_ws,
        kernel_working_set=mix.kernel_working_set,
        tile_bytes=tile_bytes,
        tile_passes=mix.tile_passes,
    )
    # Static code footprint scales with the ISA's own dynamic length:
    # MOM programs fetch fewer instructions and also have less static
    # code (each stream instruction replaces an unrolled MMX loop body).
    own_length = predicted_counts(mix, isa)["total"] * 1e6 * scale
    n_blocks = int(min(320, max(24, own_length // 100)))
    scalar = ScalarRegion(builder, n_blocks=n_blocks)
    kernel = KernelRegion(builder, mix) if mix.frac_simd > 0 else None
    fp_kernel = FpKernelRegion(builder) if mix.frac_fp >= 0.05 else None

    # --- budgets ------------------------------------------------------------
    budget_int = mix.frac_int * total
    budget_fp = mix.frac_fp * total
    budget_mem = mix.frac_mem * total
    kernel_words = int(round(mix.kernel_words(total)))

    fp_loop_iters = 0
    if fp_kernel is not None:
        fp_loop_iters = int(
            budget_fp * FP_LOOP_SHARE / FpKernelRegion.FP_PER_ITER
        )
        budget_fp -= fp_loop_iters * FpKernelRegion.FP_PER_ITER
        budget_int -= fp_loop_iters * (FpKernelRegion.INT_PER_ITER + 1)
        budget_mem -= fp_loop_iters * (
            FpKernelRegion.LOADS_PER_ITER + FpKernelRegion.STORES_PER_ITER
        )
    if kernel is not None:
        budget_int -= kernel_words * mix.int_per_word
        budget_mem -= kernel_words * (mix.loads_per_word + mix.stores_per_word)
    budget_int = max(budget_int, 0.0)
    budget_fp = max(budget_fp, 0.0)
    budget_mem = max(budget_mem, 0.0)

    # --- phase interleaving -----------------------------------------------------
    n_bursts = max(1, kernel_words // BURST_WORDS) if kernel else 0
    fp_burst = 48
    n_fp_bursts = max(1, fp_loop_iters // fp_burst) if fp_kernel else 0
    n_phases = max(n_bursts, n_fp_bursts, 8)

    words_left = kernel_words
    fp_iters_left = fp_loop_iters
    for phase in range(n_phases):
        share = 1.0 / (n_phases - phase)
        scalar.emit(
            n_int=int(round(budget_int * share)),
            n_fp=int(round(budget_fp * share)),
            n_mem=int(round(budget_mem * share)),
        )
        budget_int -= int(round(budget_int * share))
        budget_fp -= int(round(budget_fp * share))
        budget_mem -= int(round(budget_mem * share))
        if kernel is not None and words_left > 0:
            burst = min(BURST_WORDS, words_left) if phase < n_phases - 1 else words_left
            kernel.emit_burst(burst)
            words_left -= burst
        if fp_kernel is not None and fp_iters_left > 0:
            burst = min(fp_burst, fp_iters_left) if phase < n_phases - 1 else fp_iters_left
            fp_kernel.emit_burst(burst)
            fp_iters_left -= burst

    mmx_equivalent = int(round(total))
    return Trace(
        name=name,
        isa=isa,
        instructions=builder.instructions,
        mmx_equivalent=mmx_equivalent,
        mix=mix,
    )


def predicted_trace_length(name: str, isa: str, scale: float = DEFAULT_SCALE) -> float:
    """Expanded instruction count the generator targets (closed form)."""
    mix = WORKLOAD_MIXES[name]
    return predicted_counts(mix, isa)["total"] * 1e6 * scale
