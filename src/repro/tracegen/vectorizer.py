"""Kernel-region lowering: the same loop nest under MMX or MOM.

A vectorizable media loop (SAD search, DCT row pass, FIR correlation...)
is described by the per-element costs in its program's
:class:`~repro.tracegen.mixes.ProgramMix`.  This module lowers a burst of
kernel work to either ISA:

* **MMX** — a software-pipelined loop processing one 64-bit word per
  iteration: packed loads (including the redundant re-loads sliding-window
  code needs), core packed arithmetic, format-conversion/reduction
  overhead ops, packed stores, and the loop-control/addressing integer
  instructions with a backward branch.
* **MOM** — one stream instruction per 16 words: strided stream loads,
  stream arithmetic (a share of it accumulator reductions), stream stores,
  and only 3 integer instructions (address update, stream-length bookkeeping,
  loop branch) per chunk.

The loop body PCs are static and replayed every iteration.
"""

from __future__ import annotations

import math

from repro.tracegen.builder import (
    FractionAccumulator,
    INSTRUCTION_BYTES,
    TraceBuilder,
)
from repro.tracegen.mixes import MOM_INT_PER_CHUNK, STREAM_LENGTH, ProgramMix

#: Share of core packed ops that are multiplies (pmaddwd-style MACs).
CORE_MUL_FRAC = 0.40

#: Under MOM, share of core stream ops that use packed accumulators.
MOM_REDUCE_FRAC = 0.5

#: Chunks between stream-length register rewrites (loop prologues).
SETSLR_PERIOD = 8

#: Share of fresh kernel loads that stream cold frame data (sequential,
#: unreused) rather than re-walking the hot tile.  This is the traffic
#: that pressures L2 capacity and DRDRAM bandwidth as threads are added.
COLD_STREAM_FRAC = 0.06


class KernelRegion:
    """Lowers bursts of one program's kernel loop onto the target ISA."""

    def __init__(self, builder: TraceBuilder, mix: ProgramMix,
                 input_arrays: tuple[int, int] = (0, 1), output_array: int = 2):
        if mix.simd_ops_per_word <= 0:
            raise ValueError(f"{mix.name} has no vectorizable kernel")
        self.builder = builder
        self.mix = mix
        self.input_arrays = input_arrays
        self.output_array = output_array
        # Static loop body: enough PCs for the densest iteration.
        body_estimate = (
            mix.loads_per_word
            + mix.stores_per_word
            + mix.simd_ops_per_word
            + max(mix.int_per_word, MOM_INT_PER_CHUNK)
            + 4
        )
        self._body_len = int(math.ceil(body_estimate)) + 2
        self._body_base = builder.alloc_code(self._body_len)
        self._branch_pc = (
            self._body_base + (self._body_len - 1) * INSTRUCTION_BYTES
        )
        # Fractional emission state persists across bursts so long-run
        # rates match the mix exactly.
        if builder.isa == "mmx":
            # Fresh loads advance the stream walk; the redundant loads of
            # sliding-window code re-read bytes just loaded (they hit the
            # cache, and MOM's strided streams simply elide them) — so
            # both ISAs touch identical fresh bytes per word of work.
            fresh = mix.loads_per_word - mix.redundant_loads_per_word
            self._acc_loads = FractionAccumulator(fresh * (1 - COLD_STREAM_FRAC))
            self._acc_cold = FractionAccumulator(fresh * COLD_STREAM_FRAC)
            self._acc_redundant = FractionAccumulator(
                mix.redundant_loads_per_word
            )
            self._last_load_addr = {
                array: builder.space.stream_addr(array, 0)
                for array in input_arrays
            }
            self._acc_stores = FractionAccumulator(mix.stores_per_word)
            self._acc_core = FractionAccumulator(mix.core_ops_per_word)
            self._acc_overhead = FractionAccumulator(mix.overhead_ops_per_word)
            # The loop branch is part of the integer budget; unrolled
            # loops (int_per_word < 1) branch less than once per word.
            branch_rate = min(mix.int_per_word, 1.0)
            self._acc_branch = FractionAccumulator(max(branch_rate, 1.0 / 32))
            self._acc_int = FractionAccumulator(
                max(mix.int_per_word - branch_rate, 0.0)
            )
        else:
            kept_loads = mix.loads_per_word - mix.redundant_loads_per_word
            self._acc_loads = FractionAccumulator(
                kept_loads * (1 - COLD_STREAM_FRAC)
            )
            self._acc_cold = FractionAccumulator(kept_loads * COLD_STREAM_FRAC)
            self._acc_stores = FractionAccumulator(mix.stores_per_word)
            self._acc_core = FractionAccumulator(mix.core_ops_per_word)
        self._chunk_counter = 0
        self._pc_cursor = 0

    def _pc(self) -> int:
        """Next static body PC (wraps before the branch slot)."""
        pc = self._body_base + self._pc_cursor * INSTRUCTION_BYTES
        self._pc_cursor = (self._pc_cursor + 1) % (self._body_len - 1)
        return pc

    # ----- MMX lowering ---------------------------------------------------

    def _emit_word_mmx(self, last: bool) -> None:
        builder = self.builder
        mix = self.mix
        for i in range(self._acc_loads.take()):
            array = self.input_arrays[i % len(self.input_arrays)]
            addr = builder.space.stream_addr(array, mix.stream_stride)
            self._last_load_addr[array] = addr
            builder.mmx_load(addr, pc=self._pc())
        for i in range(self._acc_redundant.take()):
            array = self.input_arrays[i % len(self.input_arrays)]
            builder.mmx_load(self._last_load_addr[array], pc=self._pc())
        for __ in range(self._acc_cold.take()):
            builder.mmx_load(builder.space.cold_addr(8), pc=self._pc())
        for i in range(self._acc_core.take()):
            builder.mmx_op(mul=builder.rng.random() < CORE_MUL_FRAC, pc=self._pc())
        for __ in range(self._acc_overhead.take()):
            builder.mmx_op(mul=False, pc=self._pc())
        for __ in range(self._acc_stores.take()):
            addr = builder.space.stream_addr(self.output_array, mix.stream_stride)
            builder.mmx_store(addr, pc=self._pc())
        for __ in range(self._acc_int.take()):
            builder.int_op(pc=self._pc())
        for __ in range(self._acc_branch.take()):
            builder.branch(
                taken=not last, target=self._body_base, pc=self._branch_pc
            )

    # ----- MOM lowering ----------------------------------------------------

    def _emit_chunk_mom(self, last: bool) -> None:
        """One unrolled chunk of 16 words of kernel work.

        The program's kernels sustain streams of ``mix.stream_length``
        words; shorter streams need proportionally more instructions to
        cover the chunk (an 8-word-stream kernel is unrolled twice per
        chunk), while the loop-control integer cost stays per-chunk.
        """
        builder = self.builder
        mix = self.mix
        span = mix.stream_stride
        length = mix.stream_length
        reps = max(1, STREAM_LENGTH // length)
        self._chunk_counter += 1
        if self._chunk_counter % SETSLR_PERIOD == 1:
            builder.setslr(pc=self._pc())
        else:
            builder.int_op(pc=self._pc())
        # Rates are per word; one rep-set of stream instructions covers the
        # whole 16-word chunk — so each accumulator fires once per chunk.
        for i in range(self._acc_loads.take()):
            array = self.input_arrays[i % len(self.input_arrays)]
            for __ in range(reps):
                addr = builder.space.stream_addr(array, span * length)
                builder.mom_load(addr, length, span, pc=self._pc())
        for __ in range(self._acc_cold.take()):
            for __ in range(reps):
                addr = builder.space.cold_addr(8 * length)
                builder.mom_load(addr, length, 8, pc=self._pc())
        for __ in range(self._acc_core.take()):
            reduce = builder.rng.random() < MOM_REDUCE_FRAC
            mul = not reduce and builder.rng.random() < CORE_MUL_FRAC
            for __ in range(reps):
                builder.mom_op(length, mul=mul, reduce=reduce, pc=self._pc())
        for __ in range(self._acc_stores.take()):
            for __ in range(reps):
                addr = builder.space.stream_addr(self.output_array, span * length)
                builder.mom_store(addr, length, span, pc=self._pc())
        builder.int_op(pc=self._pc())
        builder.branch(taken=not last, target=self._body_base, pc=self._branch_pc)

    # ----- public API ---------------------------------------------------------

    def emit_burst(self, words: int) -> None:
        """Emit ``words`` elements of kernel work on the builder's ISA.

        Under MMX this is ``words`` loop iterations; under MOM it is
        ``ceil(words / 16)`` stream chunks.
        """
        if words <= 0:
            return
        if self.builder.isa == "mmx":
            for i in range(words):
                self._emit_word_mmx(last=(i == words - 1))
        else:
            chunks = max(1, round(words / STREAM_LENGTH))
            for i in range(chunks):
                self._emit_chunk_mom(last=(i == chunks - 1))


class FpKernelRegion:
    """Floating-point loop bursts (mesa's geometry/raster inner loops).

    Not vectorized under either ISA (the paper's emulation library had no
    FP µ-SIMD), so the same code is emitted for MMX and MOM traces.
    """

    #: Per-iteration composition of the FP loop body.
    FP_PER_ITER = 4
    INT_PER_ITER = 2          # plus the loop branch
    LOADS_PER_ITER = 2
    STORES_PER_ITER = 1

    def __init__(self, builder: TraceBuilder, input_array: int = 0,
                 output_array: int = 3, stride: int = 8):
        self.builder = builder
        self.input_array = input_array
        self.output_array = output_array
        self.stride = stride
        body = (
            self.FP_PER_ITER
            + self.INT_PER_ITER
            + self.LOADS_PER_ITER
            + self.STORES_PER_ITER
            + 1
        )
        self._body_base = builder.alloc_code(body)
        self._branch_pc = self._body_base + (body - 1) * INSTRUCTION_BYTES

    def emit_burst(self, iterations: int) -> dict[str, int]:
        """Emit FP loop iterations; returns emitted class counts."""
        builder = self.builder
        emitted = {"int": 0, "fp": 0, "mem": 0}
        pc = self._body_base
        for i in range(iterations):
            pc = self._body_base
            for __ in range(self.LOADS_PER_ITER):
                addr = builder.space.stream_addr(self.input_array, self.stride)
                builder.load(addr, pc=pc)
                pc += INSTRUCTION_BYTES
                emitted["mem"] += 1
            for j in range(self.FP_PER_ITER):
                builder.fp_op(mul=(j % 2 == 0), pc=pc)
                pc += INSTRUCTION_BYTES
                emitted["fp"] += 1
            for __ in range(self.STORES_PER_ITER):
                addr = builder.space.stream_addr(self.output_array, self.stride)
                builder.store(addr, pc=pc)
                pc += INSTRUCTION_BYTES
                emitted["mem"] += 1
            for __ in range(self.INT_PER_ITER):
                builder.int_op(pc=pc)
                pc += INSTRUCTION_BYTES
                emitted["int"] += 1
            builder.branch(
                taken=(i != iterations - 1),
                target=self._body_base,
                pc=self._branch_pc,
            )
            emitted["int"] += 1
        return emitted
