"""Trace serialization: save and reload generated traces.

Trace generation is deterministic but not free; experiment sweeps that
reuse the same (program, ISA, scale, seed) traces many times can cache
them on disk.  The format is a compact line-oriented text file — one
instruction per line, integers in fixed field order — chosen for
greppability and zero dependencies over peak density:

    #repro-trace v1
    #name mpeg2enc
    #isa mom
    #mmx_equivalent 64270
    op pc dst nsrcs srcs... mem_addr mem_size sl stride taken target
    ...

``save_trace``/``load_trace`` round-trip every field the simulator
consumes; a cached loader (`TraceCache`) keys files by the generation
parameters.
"""

from __future__ import annotations

import os
import warnings

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.tracegen.mixes import WORKLOAD_MIXES
from repro.tracegen.program import Trace, build_program_trace

FORMAT_MAGIC = "#repro-trace v1"


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace to ``path`` in the v1 line format.

    The write is atomic (temp file + ``os.replace``) so concurrent
    experiment workers generating the same trace never observe a
    partially-written file.
    """
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        _write_trace(trace, tmp_path)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def _write_trace(trace: Trace, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(FORMAT_MAGIC + "\n")
        handle.write(f"#name {trace.name}\n")
        handle.write(f"#isa {trace.isa}\n")
        handle.write(f"#mmx_equivalent {trace.mmx_equivalent}\n")
        for inst in trace.instructions:
            fields = [
                int(inst.op),
                inst.pc,
                inst.dst,
                len(inst.srcs),
                *inst.srcs,
                inst.mem_addr,
                inst.mem_size,
                inst.stream_length,
                inst.stride,
                1 if inst.taken else 0,
                inst.target,
            ]
            handle.write(" ".join(str(f) for f in fields) + "\n")


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with open(path) as handle:
        header = handle.readline().rstrip("\n")
        if header != FORMAT_MAGIC:
            raise ValueError(f"{path}: not a repro trace file")
        meta: dict[str, str] = {}
        position = handle.tell()
        line = handle.readline()
        while line.startswith("#"):
            key, __, value = line[1:].rstrip("\n").partition(" ")
            meta[key] = value
            position = handle.tell()
            line = handle.readline()
        handle.seek(position)
        instructions = []
        for line in handle:
            parts = [int(p) for p in line.split()]
            op = Opcode(parts[0])
            pc, dst, nsrcs = parts[1], parts[2], parts[3]
            srcs = tuple(parts[4 : 4 + nsrcs])
            rest = parts[4 + nsrcs :]
            mem_addr, mem_size, sl, stride, taken, target = rest
            instructions.append(
                Instruction(
                    op,
                    pc=pc,
                    dst=dst,
                    srcs=srcs,
                    mem_addr=mem_addr,
                    mem_size=mem_size,
                    stream_length=sl,
                    stride=stride,
                    taken=bool(taken),
                    target=target,
                )
            )
    name = meta.get("name", "unknown")
    mix = WORKLOAD_MIXES.get(name, WORKLOAD_MIXES["gsmdec"])
    return Trace(
        name=name,
        isa=meta.get("isa", "mmx"),
        instructions=instructions,
        mmx_equivalent=int(meta.get("mmx_equivalent", len(instructions))),
        mix=mix,
    )


class TraceCache:
    """Directory-backed cache of generated traces.

    Traces are immutable once built, so the cache also memoizes loaded
    ``Trace`` objects in memory (bounded LRU): an experiment sweep that
    simulates the same workload under dozens of machine configurations
    generates (or parses) each trace once per process instead of once
    per run.
    """

    def __init__(self, directory: str, memo_limit: int = 64):
        self.directory = directory
        self.memo_limit = memo_limit
        self._memo: dict[tuple, Trace] = {}
        os.makedirs(directory, exist_ok=True)

    def _path(self, name: str, isa: str, scale: float, seed: int) -> str:
        return os.path.join(
            self.directory, f"{name}-{isa}-{scale:g}-{seed}.trace"
        )

    def get(self, name: str, isa: str, scale: float, seed: int = 0) -> Trace:
        """Return the trace, generating and caching it on first use."""
        key = (name, isa, float(scale), int(seed))
        trace = self._memo.get(key)
        if trace is not None:
            return trace
        path = self._path(name, isa, scale, seed)
        trace = None
        if os.path.exists(path):
            try:
                trace = load_trace(path)
            except (OSError, ValueError, IndexError) as exc:
                # A corrupt cached trace (bit rot, external truncation —
                # writes themselves are atomic) must not kill the sweep:
                # generation is deterministic, so self-heal by
                # regenerating and rewriting, loudly.
                warnings.warn(
                    f"corrupt cached trace {path} ({exc}); regenerating",
                    stacklevel=2,
                )
        if trace is None:
            trace = build_program_trace(name, isa, scale=scale, seed=seed)
            save_trace(trace, path)
        if len(self._memo) >= self.memo_limit:
            self._memo.pop(next(iter(self._memo)))
        self._memo[key] = trace
        return trace
