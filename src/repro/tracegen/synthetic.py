"""Scalar "protocol overhead" region generation.

Complete media programs are not kernels: between the vectorizable loops
sits SPECint-like code — header parsing, table look-ups, variable-length
coding, buffer management.  This module models those stretches as a walk
over a *static control-flow graph* of basic blocks whose PCs repeat
(exercising the I-cache and letting the branch predictor learn), with
per-branch biases drawn once per static branch (most branches are highly
predictable; a fraction are data-dependent coin flips).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.tracegen.builder import INSTRUCTION_BYTES, TraceBuilder


@dataclass
class StaticBranch:
    """One static conditional branch with a fixed behaviour model.

    Real branches are predictable because their outcomes correlate with
    recent history; i.i.d. coin flips would be adversarial to any
    history-based predictor.  Each static branch therefore gets one of
    four behaviours: almost-always taken, almost-never taken, a periodic
    pattern (loop trip counts, alternating guards), or — for a small
    minority — a genuinely data-dependent coin flip.
    """

    pc: int
    target: int
    kind: str                    # "taken" | "nottaken" | "periodic" | "random"
    taken_prob: float
    pattern: tuple[bool, ...] = ()
    _phase: int = 0

    def next_outcome(self, rng: random.Random) -> bool:
        if self.kind == "periodic":
            outcome = self.pattern[self._phase]
            self._phase = (self._phase + 1) % len(self.pattern)
            return outcome
        return rng.random() < self.taken_prob


@dataclass
class StaticBlock:
    """A static basic block: a PC range ending in a biased branch."""

    base_pc: int
    body_len: int           # instructions before the terminating branch
    branch: StaticBranch


def _draw_branch(rng: random.Random, pc: int, hot: bool) -> StaticBranch:
    """Draw a static branch behaviour; hot blocks avoid pure coin flips."""
    roll = rng.random()
    if roll < 0.45:
        return StaticBranch(pc, 0, "taken", 0.97)
    if roll < 0.70:
        return StaticBranch(pc, 0, "nottaken", 0.03)
    if roll < (0.96 if hot else 0.88):
        period = rng.randint(2, 6)
        pattern = tuple(
            i != period - 1 for i in range(period)
        )  # e.g. T T T N: an inner loop of fixed trip count
        return StaticBranch(pc, 0, "periodic", 0.5, pattern)
    return StaticBranch(pc, 0, "random", 0.3 + 0.4 * rng.random())


class ScalarRegion:
    """Emits protocol-overhead instructions against fixed class budgets.

    Created once per program; every call to :meth:`emit` walks the static
    CFG dynamically, so repeated scalar stretches revisit the same code.
    """

    def __init__(
        self,
        builder: TraceBuilder,
        n_blocks: int = 320,
        min_block: int = 3,
        max_block: int = 10,
        int_mul_frac: float = 0.04,
        load_share: float = 0.68,
        n_cold_blocks: int = 192,
        cold_excursion_prob: float = 0.02,
    ):
        if n_blocks < 2:
            raise ValueError("need at least two static blocks")
        self.builder = builder
        self.rng = builder.rng
        self.int_mul_frac = int_mul_frac
        self.load_share = load_share
        self.cold_excursion_prob = cold_excursion_prob
        self.blocks: list[StaticBlock] = []
        for index in range(n_blocks):
            body_len = self.rng.randint(min_block, max_block)
            base = builder.alloc_code(body_len + 1)
            branch_pc = base + body_len * INSTRUCTION_BYTES
            hot = index < max(2, n_blocks // 4)
            # Branch targets another (earlier or later) region of code;
            # resolved after all blocks exist.
            self.blocks.append(
                StaticBlock(
                    base_pc=base,
                    body_len=body_len,
                    branch=_draw_branch(self.rng, branch_pc, hot),
                )
            )
        for block in self.blocks:
            index = int(n_blocks * self.rng.random() ** 3.2)
            target_block = self.blocks[min(index, n_blocks - 1)]
            block.branch.target = target_block.base_pc
        # Cold code paths: error handling, rare protocol branches — code
        # that is executed occasionally, stressing I-cache capacity when
        # several contexts' footprints must coexist.
        self.cold_blocks: list[StaticBlock] = []
        for __ in range(n_cold_blocks):
            body_len = self.rng.randint(8, 16)
            base = builder.alloc_code(body_len + 1)
            branch_pc = base + body_len * INSTRUCTION_BYTES
            self.cold_blocks.append(
                StaticBlock(
                    base_pc=base,
                    body_len=body_len,
                    branch=StaticBranch(branch_pc, 0, kind="nottaken", taken_prob=0.03),
                )
            )
        for block in self.cold_blocks:
            block.branch.target = self.blocks[0].base_pc
        self._by_pc = {block.base_pc: block for block in self.blocks}
        self._index_by_pc = {
            block.base_pc: i for i, block in enumerate(self.blocks)
        }

    def emit(self, n_int: int, n_fp: int, n_mem: int) -> dict[str, int]:
        """Emit a scalar stretch consuming the given class budgets.

        Branches count toward the integer budget (as in the paper's
        breakdown).  Returns the counts actually emitted.
        """
        builder = self.builder
        rng = self.rng
        emitted = {"int": 0, "fp": 0, "mem": 0}
        remaining = {"int": n_int, "fp": n_fp, "mem": n_mem}
        block = self._pick_block()
        while any(v > 0 for v in remaining.values()):
            pc = block.base_pc
            for __ in range(block.body_len):
                # Pick the class proportionally to what remains due.
                total = sum(max(v, 0) for v in remaining.values())
                if total <= 0:
                    break
                roll = rng.random() * total
                if roll < max(remaining["int"], 0):
                    builder.int_op(mul=rng.random() < self.int_mul_frac, pc=pc)
                    remaining["int"] -= 1
                    emitted["int"] += 1
                elif roll < max(remaining["int"], 0) + max(remaining["fp"], 0):
                    builder.fp_op(mul=rng.random() < 0.45, pc=pc)
                    remaining["fp"] -= 1
                    emitted["fp"] += 1
                else:
                    addr = builder.space.scalar_addr()
                    if rng.random() < self.load_share:
                        builder.load(addr, pc=pc)
                    else:
                        builder.store(addr, pc=pc)
                    remaining["mem"] -= 1
                    emitted["mem"] += 1
                pc += INSTRUCTION_BYTES
            if remaining["int"] > 0:
                taken = block.branch.next_outcome(rng)
                builder.branch(
                    taken, target=block.branch.target, pc=block.branch.pc
                )
                remaining["int"] -= 1
                emitted["int"] += 1
                if (
                    self.cold_blocks
                    and rng.random() < self.cold_excursion_prob
                ):
                    # Rare excursion into cold code (a short linear run),
                    # then control returns to the interrupted path so the
                    # hot walk stays history-deterministic.
                    start = int(
                        len(self.cold_blocks) * rng.random() ** 2.5
                    )
                    run = rng.randint(4, 8)
                    self._emit_cold_run(start, run, remaining, emitted)
                if taken:
                    # Follow the branch to its static target block.
                    block = self._block_at(block.branch.target)
                else:
                    # Deterministic fall-through to the next static block.
                    block = self.blocks[
                        (self._index_of(block) + 1) % len(self.blocks)
                    ]
                continue
            block = self._pick_block()
        return emitted

    def _emit_cold_run(self, start: int, run: int, remaining, emitted) -> int:
        """Execute a few consecutive cold blocks (fall-through chain)."""
        builder = self.builder
        rng = self.rng
        count = 0
        for offset in range(run):
            block = self.cold_blocks[(start + offset) % len(self.cold_blocks)]
            pc = block.base_pc
            for __ in range(block.body_len):
                if remaining["int"] <= 0:
                    return count
                builder.int_op(mul=False, pc=pc)
                remaining["int"] -= 1
                emitted["int"] += 1
                count += 1
                pc += INSTRUCTION_BYTES
            if remaining["int"] > 0:
                taken = block.branch.next_outcome(rng)
                builder.branch(
                    taken, target=block.branch.target, pc=block.branch.pc
                )
                remaining["int"] -= 1
                emitted["int"] += 1
                count += 1
                if taken:
                    return count
        return count

    def _index_of(self, block: StaticBlock) -> int:
        return self._index_by_pc[block.base_pc]

    def _pick_block(self) -> StaticBlock:
        """Skewed static-block choice: hot functions dominate execution."""
        index = int(len(self.blocks) * self.rng.random() ** 3.2)
        return self.blocks[min(index, len(self.blocks) - 1)]

    def _block_at(self, base_pc: int) -> StaticBlock:
        try:
            return self._by_pc[base_pc]
        except KeyError:
            raise ValueError(f"no static block at pc {base_pc:#x}") from None
