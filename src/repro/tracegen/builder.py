"""Low-level trace emission: instructions, registers, addresses.

``TraceBuilder`` is the assembler of the trace compiler.  It hands out
program counters, rotates destination registers while keeping realistic
dependency chains (sources are drawn from recently-written registers),
and lays out each program's address space:

* ``code``   — instruction addresses (drives the I-cache),
* ``stack``  — small, hot scalar data,
* ``table``  — lookup tables with skewed reuse (entropy coding),
* ``heap``   — occasional cold scalar references,
* numbered kernel arrays — large buffers walked with streaming strides.

All randomness is drawn from a seeded ``random.Random`` so traces are
fully deterministic for a given (program, ISA, scale, seed).
"""

from __future__ import annotations

import random
from collections import deque

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import LOGICAL_COUNTS, RegisterClass, make_reg

#: Bytes per instruction (Alpha-style fixed 32-bit encoding).
INSTRUCTION_BYTES = 4

#: How many recently-written registers sources are drawn from.
RECENT_WINDOW = 12

#: Probability that a source is the most recent writer (dependency chain
#: tightness); the remainder picks uniformly over the recent window.
CHAIN_PROB = 0.40


class AddressSpace:
    """The data address-space layout of one workload program."""

    STACK_BASE = 0x0100_0000
    TABLE_BASE = 0x0200_0000
    HEAP_BASE = 0x0300_0000
    ARRAY_BASE = 0x1000_0000
    ARRAY_SPACING = 0x0100_0000
    HEAP_SIZE = 1 << 20

    def __init__(self, rng: random.Random, scalar_working_set: int,
                 kernel_working_set: int, arrays: int = 4,
                 tile_bytes: int = 2048, tile_passes: int = 8):
        self.rng = rng
        self.stack_size = max(512, scalar_working_set // 12)
        self.table_size = max(1 << 10, (scalar_working_set - self.stack_size) // 2)
        self.array_size = max(8 << 10, kernel_working_set // arrays)
        self.array_count = arrays
        # The cold region models whole-frame streaming: sequential, never
        # reused — the traffic that fills L2 and loads the Rambus channel.
        self.cold_size = max(64 << 10, kernel_working_set)
        self._cold_cursor = 0
        if tile_bytes < 256 or tile_passes < 1:
            raise ValueError("tile must be >= 256 bytes and passes >= 1")
        self.tile_bytes = min(tile_bytes, self.array_size)
        self.tile_passes = tile_passes
        self._tile_start = [0] * arrays
        self._tile_cursor = [0] * arrays
        self._tile_pass = [0] * arrays
        # Real objects sit at arbitrary offsets; staggering each region's
        # base keeps same-colour pages from overlapping set-for-set in a
        # direct-mapped cache.  The offsets are deterministic (not drawn
        # per program) so successive programs scheduled onto the same
        # hardware context reuse the same physical pages — the warm-cache
        # behaviour long-running media streams actually exhibit; only the
        # cold frame stream is genuinely first-touch.
        self._stack_offset = 64 * 17
        self._table_offset = 64 * 41
        self._array_offsets = [
            64 * ((11 + 23 * index) % 64) for index in range(arrays)
        ]

    def cold_addr(self, span: int) -> int:
        """Next address of the sequential cold frame stream."""
        base = self.ARRAY_BASE + self.array_count * self.ARRAY_SPACING
        addr = base + self._cold_cursor
        self._cold_cursor = (self._cold_cursor + span) % self.cold_size
        return addr

    def scalar_addr(self) -> int:
        """A high-locality scalar data address (stack/table/heap mix).

        Within each region the draw is power-law skewed toward the base:
        real scalar traffic clusters on the top of the stack and the hot
        head of lookup tables, not uniformly over the working set.
        """
        roll = self.rng.random()
        if roll < 0.62:
            # Stack traffic: heavily concentrated near the stack top.
            span = self.stack_size // 8
            offset = int(span * self.rng.random() ** 2)
            return self.STACK_BASE + self._stack_offset + 8 * offset
        if roll < 0.997:
            # Table lookups: strongly skewed toward the table head.
            span = self.table_size // 8
            offset = int(span * self.rng.random() ** 4)
            return self.TABLE_BASE + self._table_offset + 8 * offset
        # Cold heap reference.
        return self.HEAP_BASE + 8 * self.rng.randrange(self.HEAP_SIZE // 8)

    def stream_addr(self, array: int, span: int) -> int:
        """Next base address of a kernel stream walk over ``array``.

        Kernels are stream-like but the *algorithm* has locality: a tile
        of the array (a macroblock search window, a block row...) is
        re-walked ``tile_passes`` times before the walk advances to the
        next tile.  ``span`` is how many bytes this access consumes
        (element stride, or stride x stream length for a MOM stream).
        """
        base = (
            self.ARRAY_BASE
            + array * self.ARRAY_SPACING
            + self._array_offsets[array]
        )
        addr = base + self._tile_start[array] + self._tile_cursor[array]
        self._tile_cursor[array] += span
        if self._tile_cursor[array] >= self.tile_bytes:
            self._tile_cursor[array] = 0
            self._tile_pass[array] += 1
            if self._tile_pass[array] >= self.tile_passes:
                self._tile_pass[array] = 0
                self._tile_start[array] = (
                    self._tile_start[array] + self.tile_bytes
                ) % self.array_size
        return addr


class FractionAccumulator:
    """Emit-count helper for fractional per-element op budgets.

    ``take()`` returns the integer number of ops due this element so that
    long-run emission rates equal the fractional parameter exactly.
    """

    def __init__(self, rate: float):
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self.rate = rate
        self._acc = 0.0

    def take(self) -> int:
        self._acc += self.rate
        due = int(self._acc)
        self._acc -= due
        return due


class TraceBuilder:
    """Emits decoded instructions with realistic registers and addresses."""

    CODE_BASE = 0x0001_0000

    def __init__(self, isa: str, seed: int, scalar_working_set: int = 20 << 10,
                 kernel_working_set: int = 256 << 10,
                 tile_bytes: int = 2048, tile_passes: int = 8):
        if isa not in ("mmx", "mom"):
            raise ValueError(f"unknown ISA {isa!r}")
        self.isa = isa
        self.rng = random.Random(seed)
        self.space = AddressSpace(
            self.rng, scalar_working_set, kernel_working_set,
            tile_bytes=tile_bytes, tile_passes=tile_passes,
        )
        self.instructions: list[Instruction] = []
        self._pc = self.CODE_BASE
        self._next_reg = {rclass: 4 for rclass in RegisterClass}
        self._recent: dict[RegisterClass, deque] = {
            rclass: deque(maxlen=RECENT_WINDOW) for rclass in RegisterClass
        }
        # Seed the recent windows so early instructions have sources.
        for rclass in RegisterClass:
            for index in range(min(4, LOGICAL_COUNTS[rclass])):
                self._recent[rclass].append(make_reg(rclass, index))

    # ----- register selection -------------------------------------------------

    def _alloc(self, rclass: RegisterClass) -> int:
        """Rotate destination registers within the class's upper range.

        Large classes keep their first four registers as stable "live"
        values (loop-invariant bases the recent-window seeds provide);
        small classes (the two MOM accumulators) rotate over everything.
        """
        count = LOGICAL_COUNTS[rclass]
        low = 4 if count > 8 else 0
        index = self._next_reg[rclass]
        if index < low or index >= count:
            index = low
        self._next_reg[rclass] = low + (index + 1 - low) % (count - low)
        reg = make_reg(rclass, index)
        self._recent[rclass].append(reg)
        return reg

    def _pick_src(self, rclass: RegisterClass) -> int:
        recent = self._recent[rclass]
        if self.rng.random() < CHAIN_PROB:
            return recent[-1]
        return recent[self.rng.randrange(len(recent))]

    def _srcs(self, rclass: RegisterClass, count: int) -> tuple[int, ...]:
        return tuple(self._pick_src(rclass) for _ in range(count))

    # ----- emission primitives --------------------------------------------------

    def _emit(self, instruction: Instruction) -> Instruction:
        self.instructions.append(instruction)
        return instruction

    def _next_pc(self, pc: int | None = None) -> int:
        """Use an explicit static PC when given, else auto-increment.

        Region emitters allocate static code blocks with
        :meth:`alloc_code` and replay their PCs across loop iterations so
        the I-cache and branch predictor see realistic re-execution.
        """
        if pc is not None:
            return pc
        pc = self._pc
        self._pc += INSTRUCTION_BYTES
        return pc

    def alloc_code(self, n_instructions: int) -> int:
        """Reserve a static code block; returns its base PC."""
        base = self._pc
        self._pc += n_instructions * INSTRUCTION_BYTES
        return base

    def int_op(self, mul: bool = False, n_srcs: int = 2, pc: int | None = None) -> Instruction:
        op = Opcode.INT_MUL if mul else Opcode.INT_ALU
        return self._emit(
            Instruction(
                op,
                pc=self._next_pc(pc),
                dst=self._alloc(RegisterClass.INT),
                srcs=self._srcs(RegisterClass.INT, n_srcs),
            )
        )

    def fp_op(self, mul: bool = False, div: bool = False, pc: int | None = None) -> Instruction:
        if div:
            op = Opcode.FP_DIV
        else:
            op = Opcode.FP_MUL if mul else Opcode.FP_ADD
        return self._emit(
            Instruction(
                op,
                pc=self._next_pc(pc),
                dst=self._alloc(RegisterClass.FP),
                srcs=self._srcs(RegisterClass.FP, 2),
            )
        )

    def branch(self, taken: bool, target: int | None = None, pc: int | None = None) -> Instruction:
        pc = self._next_pc(pc)
        if target is None:
            # Backward loop branch by default.
            target = max(self.CODE_BASE, pc - 32 * INSTRUCTION_BYTES)
        return self._emit(
            Instruction(
                Opcode.BRANCH,
                pc=pc,
                srcs=self._srcs(RegisterClass.INT, 1),
                taken=taken,
                target=target,
            )
        )

    def load(self, addr: int, size: int = 8, pc: int | None = None) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.LOAD,
                pc=self._next_pc(pc),
                dst=self._alloc(RegisterClass.INT),
                srcs=self._srcs(RegisterClass.INT, 1),
                mem_addr=addr,
                mem_size=size,
            )
        )

    def store(self, addr: int, size: int = 8, pc: int | None = None) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.STORE,
                pc=self._next_pc(pc),
                srcs=self._srcs(RegisterClass.INT, 2),
                mem_addr=addr,
                mem_size=size,
            )
        )

    def mmx_op(self, mul: bool = False, pc: int | None = None) -> Instruction:
        op = Opcode.MMX_MUL if mul else Opcode.MMX_ALU
        return self._emit(
            Instruction(
                op,
                pc=self._next_pc(pc),
                dst=self._alloc(RegisterClass.MMX),
                srcs=self._srcs(RegisterClass.MMX, 2),
            )
        )

    def mmx_load(self, addr: int, pc: int | None = None) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.MMX_LOAD,
                pc=self._next_pc(pc),
                dst=self._alloc(RegisterClass.MMX),
                srcs=self._srcs(RegisterClass.INT, 1),
                mem_addr=addr,
            )
        )

    def mmx_store(self, addr: int, pc: int | None = None) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.MMX_STORE,
                pc=self._next_pc(pc),
                srcs=(
                    self._pick_src(RegisterClass.MMX),
                    self._pick_src(RegisterClass.INT),
                ),
                mem_addr=addr,
            )
        )

    def mom_op(
        self, stream_length: int, mul: bool = False, reduce: bool = False,
        pc: int | None = None,
    ) -> Instruction:
        if reduce:
            # Accumulation is read-modify-write: the accumulator is both
            # destination and source, so back-to-back reductions into the
            # same accumulator serialize (RAW dependence).
            op = Opcode.MOM_REDUCE
            dst = self._alloc(RegisterClass.ACC)
            srcs = self._srcs(RegisterClass.STREAM, 1) + (dst,)
        else:
            op = Opcode.MOM_MUL if mul else Opcode.MOM_ALU
            dst = self._alloc(RegisterClass.STREAM)
            srcs = self._srcs(RegisterClass.STREAM, 2)
        return self._emit(
            Instruction(
                op,
                pc=self._next_pc(pc),
                dst=dst,
                srcs=srcs,
                stream_length=stream_length,
            )
        )

    def mom_load(self, addr: int, stream_length: int, stride: int,
                 pc: int | None = None) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.MOM_LOAD,
                pc=self._next_pc(pc),
                dst=self._alloc(RegisterClass.STREAM),
                srcs=self._srcs(RegisterClass.INT, 1),
                mem_addr=addr,
                stream_length=stream_length,
                stride=stride,
            )
        )

    def mom_store(self, addr: int, stream_length: int, stride: int,
                  pc: int | None = None) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.MOM_STORE,
                pc=self._next_pc(pc),
                srcs=(
                    self._pick_src(RegisterClass.STREAM),
                    self._pick_src(RegisterClass.INT),
                ),
                mem_addr=addr,
                stream_length=stream_length,
                stride=stride,
            )
        )

    def setslr(self, pc: int | None = None) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.MOM_SETSLR,
                pc=self._next_pc(pc),
                dst=self._alloc(RegisterClass.INT),
                srcs=self._srcs(RegisterClass.INT, 1),
            )
        )
