"""The graduation window: shared capacity, per-thread in-order retire.

The paper's SMT extension keeps one graduation window whose entries
retire in per-thread program order ("some additional logic is required in
the graduation window in order to allow per-thread retirements, as well
as a mechanism to perform per-thread instruction flush").  We model it as
a shared occupancy budget with one FIFO per hardware context.
"""

from __future__ import annotations

from collections import deque


class GraduationWindow:
    """Shared-capacity reorder window with per-thread FIFOs.

    The SMT core's commit/dispatch stages inline insert/retire (with the
    sanitizer hooks preserved) for speed; these methods remain the
    reference implementation used by other drivers and the tests.
    """

    __slots__ = ("capacity", "occupancy", "_fifos", "sanitizer", "observer")

    def __init__(self, capacity: int, n_threads: int):
        if capacity < 1:
            raise ValueError("window capacity must be positive")
        self.capacity = capacity
        self.occupancy = 0
        self._fifos: list[deque] = [deque() for __ in range(n_threads)]
        #: Optional :class:`repro.verify.sanitizer.RuntimeSanitizer`.
        self.sanitizer = None
        #: Optional :class:`repro.obs.events.PipelineObserver`.
        self.observer = None

    @property
    def has_space(self) -> bool:
        return self.occupancy < self.capacity

    def insert(self, thread: int, entry) -> None:
        if not self.has_space:
            raise RuntimeError("graduation window overflow")
        self._fifos[thread].append(entry)
        self.occupancy += 1
        if self.sanitizer is not None:
            self.sanitizer.on_window_insert(self, thread, entry)

    def head(self, thread: int):
        fifo = self._fifos[thread]
        return fifo[0] if fifo else None

    def retire_head(self, thread: int):
        """Pop and return the thread's oldest entry (must exist)."""
        entry = self._fifos[thread].popleft()
        self.occupancy -= 1
        if self.sanitizer is not None:
            self.sanitizer.on_window_retire(self, thread, entry)
        return entry

    def thread_occupancy(self, thread: int) -> int:
        return len(self._fifos[thread])

    def flush_thread(self, thread: int, now: int = 0) -> int:
        """Per-thread flush; returns how many entries were squashed."""
        fifo = self._fifos[thread]
        squashed = len(fifo)
        for entry in fifo:
            entry.squashed = True
        if self.sanitizer is not None:
            self.sanitizer.on_window_flush(thread, fifo)
        if self.observer is not None:
            self.observer.on_squash(thread, list(fifo), now)
        fifo.clear()
        self.occupancy -= squashed
        return squashed

    def is_empty(self, thread: int) -> bool:
        return not self._fifos[thread]
