"""The SMT processor model: fetch, rename, issue, execute, graduate.

Trace-driven and cycle-level.  Each cycle runs the stages back to front
(completion, commit, issue, dispatch, fetch) so results computed in a
cycle are visible one cycle later:

* **completion** — instructions finishing this cycle wake dependents;
  resolved mispredicted branches unblock their thread's fetch.
* **commit** — up to 8 instructions retire per cycle, in-order per
  thread; finished programs hand their context to the next program of
  the multiprogrammed list (section 5.1 methodology).
* **issue** — per-queue out-of-order issue: 4 int, 4 mem, 4 FP, and
  2 MMX or 1 MOM per cycle; memory operations query the memory system,
  MOM arithmetic occupies the 2-lane vector unit.
* **dispatch** — round-robin over threads, renaming onto the shared
  physical pools (Table 1 sizing) and inserting into queues + the shared
  graduation window.
* **fetch** — up to 2 threads x 4 instructions through the I-cache,
  thread order set by the fetch policy; branch mispredictions block the
  thread until resolution (trace-driven squash model).

The stage bodies are written for speed: opcode metadata is read from
flat tuples indexed by the integer opcode, queue/window bookkeeping is
inlined (with the sanitizer hooks preserved as single ``is not None``
tests), and per-cycle structures are preallocated.  Semantics are
bit-identical to the straightforward formulation — the experiment
runner's cache fingerprints rely on that.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import asdict

from repro.core.branch import GsharePredictor
from repro.core.execute import VectorUnit
from repro.core.fetch import FetchPolicy, order_threads
from repro.core.metrics import RunResult
from repro.core.params import SMTConfig
from repro.core.queues import IssueQueue
from repro.core.rob import GraduationWindow
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPCODE_INFO, Opcode, Queue
from repro.isa.registers import NO_REG, RegisterClass
from repro.memory.interface import AccessType, MemoryStats, MemorySystem
from repro.tracegen.program import Trace
from repro.workloads.multiprog import MultiprogramScheduler

_STATE_WAITING = 0
_STATE_DONE = 2

_CLASS_SHIFT = 8          # matches repro.isa.registers._CLASS_SHIFT

# The rename map is a flat list indexed by the packed register id
# ``(class << _CLASS_SHIFT) | index``.  NO_REG is -1, which Python
# aliases onto the last slot — (ACC, index 255) — but no architected
# register can occupy it (every logical count is far below 256), and
# writes are guarded by ``dst != NO_REG``, so that slot stays None.
_RENAME_SLOTS = len(RegisterClass) << _CLASS_SHIFT

# MMX packed loads/stores are single 64-bit references with no stream
# semantics; they travel the scalar ports (and L1) even in the decoupled
# organization.  Only MOM stream memory uses the vector ports.
_MEM_KIND = {
    Opcode.LOAD: AccessType.SCALAR_LOAD,
    Opcode.STORE: AccessType.SCALAR_STORE,
    Opcode.MMX_LOAD: AccessType.SCALAR_LOAD,
    Opcode.MMX_STORE: AccessType.SCALAR_STORE,
    Opcode.MOM_LOAD: AccessType.VECTOR_LOAD,
    Opcode.MOM_STORE: AccessType.VECTOR_STORE,
}

# Flat per-opcode tables: tuple indexing on the IntEnum opcode is much
# cheaper than OPCODE_INFO dict lookups plus attribute chains in the
# per-instruction hot loops below.
_INFO = tuple(OPCODE_INFO[op] for op in Opcode)
_QUEUE_OF = tuple(info.queue for info in _INFO)
_LATENCY = tuple(info.latency for info in _INFO)
_IS_MEM = tuple(info.is_mem for info in _INFO)
_IS_STREAM = tuple(info.is_stream for info in _INFO)
_IS_BRANCH = tuple(info.is_branch for info in _INFO)
_IS_SIMD = tuple(info.is_simd for info in _INFO)
_MEM_KIND_OF = tuple(_MEM_KIND.get(op) for op in Opcode)

# --------------------------------------------------------------- fast-forward
#
# The sampled mode's fast-forward only has to *warm* long-lived state
# (gshare tables, cache tags), so the only instructions that matter are
# branches, memory references and I-cache line changes — typically well
# under half the trace.  Each trace gets a memoized "plan": the sparse,
# ordered list of those eventful instructions plus a prefix sum of
# expanded weights, so whole runs of pure-ALU instructions retire as one
# subtraction instead of a per-instruction interpreter loop.

_FF_FETCH = 0    # (idx, tag, pc,       0,      0,      None)
_FF_BRANCH = 1   # (idx, tag, pc,       taken,  0,      None)
_FF_MEM = 2      # (idx, tag, mem_addr, 0,      0,      kind)
_FF_STREAM = 3   # (idx, tag, mem_addr, stride, length, kind)

#: plan cache: id(trace) -> (trace, event_indices, events, weight_prefix).
#: Entries hold the trace itself, so a live plan's id() can never be
#: reused by a different trace; FIFO-bounded so huge traces from many
#: scales do not accumulate.
_FF_PLANS: dict[int, tuple] = {}
_FF_PLAN_LIMIT = 64


def _ff_plan(trace: Trace) -> tuple:
    key = id(trace)
    plan = _FF_PLANS.get(key)
    if plan is not None and plan[0] is trace:
        return plan
    events: list[tuple] = []
    append = events.append
    prefix = [0] * (len(trace.instructions) + 1)
    total = 0
    last_line = -1
    last_mem_key = None
    for idx, inst in enumerate(trace.instructions):
        pc = inst.pc
        line = pc >> 5
        if line != last_line:
            append((idx, _FF_FETCH, pc, 0, 0, None))
            last_line = line
        op = inst.op
        if _IS_BRANCH[op]:
            append((idx, _FF_BRANCH, pc, inst.taken, 0, None))
        weight = inst.stream_length
        if _IS_MEM[op]:
            kind = _MEM_KIND_OF[op]
            if weight > 1:
                append(
                    (idx, _FF_STREAM, inst.mem_addr, inst.stride, weight,
                     kind)
                )
                last_mem_key = None
            else:
                # Consecutive references to one line with one kind
                # coalesce: right after the first call the line is
                # already most-recently-used (or, for stores, already
                # touched), so the repeat cannot change replacement
                # state on either hierarchy.
                mem_key = (inst.mem_addr >> 5, kind)
                if mem_key != last_mem_key:
                    append((idx, _FF_MEM, inst.mem_addr, 0, 0, kind))
                    last_mem_key = mem_key
        total += weight
        prefix[idx + 1] = total
    if len(_FF_PLANS) >= _FF_PLAN_LIMIT:
        _FF_PLANS.pop(next(iter(_FF_PLANS)))
    plan = (trace, tuple(e[0] for e in events), events, prefix)
    _FF_PLANS[key] = plan
    return plan


# ------------------------------------------------------------- window chunks
#
# The sampled schedule is *chunked*: the run's expected committed span is
# cut into up to _MAX_WINDOW_CHUNKS equal slices, and each slice executes
# the ff/warmup/window/drain loop independently after reconstructing its
# architectural start state (functional skim + a warmed final stretch).
# Chunks are pure functions of (config, workload, chunk index), so they
# can run serially in one process or fan out over a process pool; either
# way the merged result is bit-identical because it is the *same* chunk
# tasks combined by the same deterministic merge.

#: Upper bound on window chunks per sampled run (diminishing returns —
#: reconstruction overhead is paid once per chunk).
_MAX_WINDOW_CHUNKS = 16

#: Minimum sampling periods a chunk must contain: slicing finer than
#: this would spend more time reconstructing start state than measuring.
_PERIODS_PER_CHUNK = 3

#: Fewer chunks than this and the run keeps the plain single-chunk
#: schedule: chunking exists to expose parallelism, and a 2-3-way split
#: adds a reconstruction per chunk for very little of it.
_MIN_WINDOW_CHUNKS = 4

#: Warm horizon of a chunk's start-state reconstruction, in sampling
#: periods.  The stretch immediately before the chunk's first window is
#: replayed through the warming fast-forward (gshare + cache tags); the
#: prefix before that is skimmed functionally without warming.  Four
#: periods re-touches far more state than one window can observe while
#: keeping reconstruction cost independent of the chunk's position.
_WARM_SPAN_PERIODS = 4


def _sampled_geometry(
    sampling: tuple, traces: list, completions_target: int
) -> tuple[int, int, int, int]:
    """Effective ``(ff_len, window_len, warmup_len, expected_committed)``.

    Applies the same fast-forward clamp as the sampled run loop: at
    least four sampling periods must fit in the workload's expected
    committed span, so degenerate parameter/workload pairs still
    measure something.
    """
    ff_len, window_len, warmup_len = sampling
    expected = sum(
        traces[i % len(traces)].expanded_length
        for i in range(completions_target)
    )
    ff_cap = expected // 4 - warmup_len - window_len
    if ff_len > ff_cap:
        ff_len = max(0, ff_cap)
    return ff_len, window_len, warmup_len, expected


def sampled_chunk_count(
    sampling: tuple, traces: list, completions_target: int
) -> int:
    """Window chunks a sampled run splits into (1 = the plain schedule).

    A pure function of the configuration and workload — deliberately
    independent of ``window_jobs`` — so the schedule (and therefore the
    result) never depends on how many workers execute it.
    """
    ff_len, window_len, warmup_len, expected = _sampled_geometry(
        sampling, traces, completions_target
    )
    span = ff_len + window_len + warmup_len
    if span <= 0:
        return 1
    periods = expected // span
    n_chunks = min(_MAX_WINDOW_CHUNKS, periods // _PERIODS_PER_CHUNK)
    return n_chunks if n_chunks >= _MIN_WINDOW_CHUNKS else 1


def merge_sampled_chunks(
    config: SMTConfig,
    fetch_policy: FetchPolicy,
    chunks: list[dict],
    observability: dict | None = None,
) -> RunResult:
    """Combine :meth:`SMTProcessor.run_sampled_chunk` payloads.

    Samples concatenate and counters sum in ascending chunk order, so
    the merge is deterministic regardless of completion order (float
    addition is order-sensitive; fixing the order makes serial and
    pooled execution bit-identical).  ``program_completions`` comes from
    the last chunk: its scheduler ran the workload tail to completion,
    so its count covers the whole run.
    """
    chunks = sorted(chunks, key=lambda chunk: chunk["index"])
    samples: list[list] = []
    cycles = 0
    committed = 0
    equivalent = 0.0
    lookups = 0
    mispredicts = 0
    vector_only_cycles = 0
    active_cycles = 0
    issue_counts: dict[str, int] = {}
    per_program: dict[str, int] = {}
    memory = MemoryStats()
    caches = {"icache": memory.icache, "l1": memory.l1, "l2": memory.l2}
    for chunk in chunks:
        samples.extend(chunk["samples"])
        cycles += chunk["cycles"]
        committed += chunk["committed"]
        equivalent += chunk["equivalent"]
        lookups += chunk["predictor_lookups"]
        mispredicts += chunk["predictor_mispredicts"]
        vector_only_cycles += chunk["vector_only_cycles"]
        active_cycles += chunk["active_cycles"]
        for name, count in chunk["issue_counts"].items():
            issue_counts[name] = issue_counts.get(name, 0) + count
        for name, count in chunk["per_program_committed"].items():
            per_program[name] = per_program.get(name, 0) + count
        stats = chunk["memory"]
        for name, target in caches.items():
            source = stats[name]
            target.accesses += source["accesses"]
            target.hits += source["hits"]
            target.latency_sum += source["latency_sum"]
        memory.dram_accesses += stats["dram_accesses"]
        memory.bank_conflict_cycles += stats["bank_conflict_cycles"]
        memory.write_buffer_stalls += stats["write_buffer_stalls"]
        memory.coherence_invalidations += stats["coherence_invalidations"]
    return RunResult(
        isa=config.isa,
        n_threads=config.n_threads,
        fetch_policy=fetch_policy.value,
        cycles=cycles,
        committed_instructions=committed,
        committed_equivalent=equivalent,
        program_completions=chunks[-1]["completions"],
        memory=memory,
        mispredict_rate=mispredicts / lookups if lookups else 0.0,
        issue_counts=issue_counts,
        vector_only_cycles=vector_only_cycles,
        active_cycles=active_cycles,
        per_program_committed=per_program,
        sampling=list(config.sampling),
        samples=samples,
        observability=observability,
    )


class InFlight:
    """Dynamic state of one dispatched instruction."""

    __slots__ = (
        "inst",
        "thread",
        "state",
        "deps",
        "dependents",
        "mispredicted",
        "squashed",
        "queue",
    )

    def __init__(self, inst: Instruction, thread: int, mispredicted: bool):
        self.inst = inst
        self.thread = thread
        self.state = _STATE_WAITING
        self.deps = 0
        #: Lazily allocated: most instructions complete with no waiters,
        #: so the list is only created when a dependent first registers.
        self.dependents: list[InFlight] | None = None
        self.mispredicted = mispredicted
        self.squashed = False
        #: The IssueQueue this entry dispatched into (set at dispatch);
        #: lets the completion stage wake dependents without re-deriving
        #: the queue from the opcode.
        self.queue: IssueQueue | None = None


class ThreadContext:
    """Per-hardware-context front-end and rename state."""

    __slots__ = (
        "index",
        "trace",
        "trace_len",
        "fetch_idx",
        "decode",
        "rename",
        "fetch_blocked",
        "fetch_stall_until",
        "fetched_vector_last",
        "inflight_insts",
        "inflight_ops",
        "equiv_per_inst",
        "trace_expanded",
    )

    def __init__(self, index: int):
        self.index = index
        self.trace: Trace | None = None
        self.trace_len = 0
        self.fetch_idx = 0
        self.decode: deque = deque()
        self.rename: list[InFlight | None] = [None] * _RENAME_SLOTS
        self.fetch_blocked = False
        self.fetch_stall_until = 0
        self.fetched_vector_last = False
        self.inflight_insts = 0
        self.inflight_ops = 0
        self.equiv_per_inst = 1.0
        self.trace_expanded = 1

    def assign(self, trace: Trace) -> None:
        self.trace = trace
        self.trace_len = len(trace.instructions)
        self.fetch_idx = 0
        self.decode.clear()
        self.rename = [None] * _RENAME_SLOTS
        self.fetch_blocked = False
        self.fetched_vector_last = False
        self.trace_expanded = trace.expanded_length
        self.equiv_per_inst = trace.mmx_equivalent / self.trace_expanded

    @property
    def fetch_done(self) -> bool:
        return self.trace is None or self.fetch_idx >= self.trace_len


class SMTProcessor:
    """Runs a multiprogrammed workload on the configured SMT machine."""

    def __new__(cls, config=None, *args, **kwargs):
        # Backend dispatch (SMTConfig.backend): constructing the base
        # class may return the flat-buffer engine instead.  Sanitize and
        # observe runs always stay on the object engine — the hooks only
        # exist here (docs/MODEL.md "Compiled backend").  Subclasses
        # (including FlatSMTProcessor itself) construct literally.
        if (
            cls is SMTProcessor
            and config is not None
            and config.backend != "object"
            and not config.sanitize
            and (config.observe is None or config.observe is False)
        ):
            from repro.core.engine_flat import resolve_flat_engine

            engine = resolve_flat_engine(config.backend)
            if engine is not None:
                return object.__new__(engine)
        return object.__new__(cls)

    def __init__(
        self,
        config: SMTConfig,
        memory: MemorySystem,
        traces: list[Trace],
        fetch_policy: FetchPolicy = FetchPolicy.RR,
        completions_target: int = 8,
        max_cycles: int = 50_000_000,
        warmup_fraction: float = 0.3,
        scheduler: MultiprogramScheduler | None = None,
    ):
        for trace in traces:
            if trace.isa != config.isa:
                raise ValueError(
                    f"trace {trace.name} is {trace.isa}, machine is {config.isa}"
                )
        self.config = config
        self.memory = memory
        self.fetch_policy = fetch_policy
        self.max_cycles = max_cycles
        self.scheduler = scheduler or MultiprogramScheduler(
            traces, config.n_threads, completions_target=completions_target
        )
        self.predictor = GsharePredictor()
        self.vector_unit = VectorUnit(config.vector_lanes)
        sizes = config.resources.queue_sizes
        self.queues = {
            Queue.INT: IssueQueue("int", sizes["int"]),
            Queue.FP: IssueQueue("fp", sizes["fp"]),
            Queue.MEM: IssueQueue("mem", sizes["mem"]),
            Queue.SIMD: IssueQueue("simd", sizes["simd"]),
        }
        self._issue_width = {
            Queue.INT: config.issue_int,
            Queue.FP: config.issue_fp,
            Queue.MEM: config.issue_mem,
            Queue.SIMD: config.issue_simd,
        }
        # Flat issue plan in queue declaration order, and a queue table
        # indexed by the Queue enum value for dispatch/wakeup.
        self._issue_plan = tuple(
            (queue, self._issue_width[queue_id], queue_id is Queue.SIMD)
            for queue_id, queue in self.queues.items()
        )
        self._queue_table = tuple(
            self.queues[Queue(i)] for i in range(len(Queue))
        )
        # Opcode -> IssueQueue object directly, folding the _QUEUE_OF hop
        # into construction so dispatch does a single tuple index.
        self._queue_of_op = tuple(self._queue_table[q] for q in _QUEUE_OF)
        self.window = GraduationWindow(
            config.resources.graduation_window, config.n_threads
        )
        self.sanitizer = None
        if config.sanitize:
            # Imported lazily so the core has no dependency on the
            # verify layer unless invariant checking is requested.
            from repro.verify.sanitizer import RuntimeSanitizer

            self.sanitizer = RuntimeSanitizer()
            self.window.sanitizer = self.sanitizer
            for queue in self.queues.values():
                queue.sanitizer = self.sanitizer
            memory.attach_sanitizer(self.sanitizer)
        self.observer = None
        if config.observe is not None and config.observe is not False:
            # Imported lazily, like the sanitizer: the core only depends
            # on the observability layer when observation is requested.
            from repro.obs.events import resolve_observer

            self.observer = resolve_observer(config.observe)
            self.window.observer = self.observer
            memory.attach_observer(self.observer)
        self.pools = dict(config.resources.rename_regs)
        self.threads = [ThreadContext(i) for i in range(config.n_threads)]
        for slot, assignment in zip(
            self.threads,
            self.scheduler.next_assignments(config.n_threads),
        ):
            slot.assign(assignment.trace)
        self._wake: dict[int, list[InFlight]] = {}
        self._rotation = 0
        # Preallocated round-robin thread orders, one per rotation phase.
        n = config.n_threads
        self._orders = tuple(
            tuple((i + r) % n for i in range(n)) for r in range(n)
        )
        self._decode_room = config.decode_buffer - config.fetch_group_size
        # Warmup: caches/predictor train on the first fraction of the
        # committed work; statistics cover only the measurement window
        # (standard trace-driven methodology — the scaled traces would
        # otherwise be dominated by cold misses the paper's
        # billion-instruction runs amortize away).
        expected_total = sum(t.expanded_length for t in traces)
        self._warmup_commits = int(warmup_fraction * expected_total)
        self._warm = self._warmup_commits == 0
        if config.sampling is not None:
            # Sampled mode: the per-window warmup replaces the global
            # warmup fraction (a 30 % detailed warmup would defeat the
            # fast-forward), and measurement is delta-based per window,
            # so the boundary reset machinery must stay inert.
            self._warmup_commits = 0
            self._warm = True
        self._base_cycles = 0
        self._base_committed = 0
        self._base_equiv = 0.0
        # Statistics.
        self.now = 0
        self.committed = 0
        self.committed_by_thread = [0] * config.n_threads
        self.committed_equiv = 0.0
        self.per_program_committed: dict[str, int] = {}
        self.vector_only_cycles = 0
        self.active_cycles = 0

    # ------------------------------------------------------------------ stages

    def _fetch_order(self) -> tuple[int, ...] | list[int]:
        """Thread priority order for this cycle under the fetch policy."""
        n = self.config.n_threads
        base = self._orders[self._rotation % n]
        policy = self.fetch_policy
        if policy is FetchPolicy.RR:
            return base
        threads = self.threads
        if policy is FetchPolicy.ICOUNT:
            return sorted(base, key=lambda t: threads[t].inflight_insts)
        if policy is FetchPolicy.OCOUNT:
            return sorted(base, key=lambda t: threads[t].inflight_ops)
        if policy is FetchPolicy.BALANCE:
            if self.queues[Queue.SIMD].occupancy == 0:
                return sorted(
                    base, key=lambda t: not threads[t].fetched_vector_last
                )
            return sorted(base, key=lambda t: threads[t].fetched_vector_last)
        # Fall back to the reference implementation for any new policy.
        return order_threads(
            policy,
            n,
            self._rotation,
            [t.inflight_insts for t in threads],
            [t.inflight_ops for t in threads],
            [t.fetched_vector_last for t in threads],
            self.queues[Queue.SIMD].occupancy == 0,
        )

    # ------------------------------------------------------------------ driver

    def _skip_target(self) -> int:
        """Earliest future cycle at which anything can happen."""
        candidates = []
        if self._wake:
            candidates.append(min(self._wake))
        for ctx in self.threads:
            if ctx.trace is None or ctx.fetch_idx >= ctx.trace_len:
                continue
            if not ctx.fetch_blocked and ctx.fetch_stall_until > self.now:
                candidates.append(ctx.fetch_stall_until)
        if not candidates:
            return self.now + 1
        # ``step`` has already advanced ``now`` past the last processed
        # cycle, so the earliest candidate may be the *current* cycle —
        # never skip beyond it or its wake entries would be orphaned.
        return max(min(candidates), self.now)

    # codelint: hot-loop — the HOT-* rules hold this body to the
    # compiled-backend subset: hoisted locals, no per-iteration
    # allocation, no closures (docs/VERIFY.md).
    def step(self) -> bool:
        """Advance one cycle; returns whether any pipeline work happened.

        Exposed so multi-core drivers (the CMP extension) can advance
        several cores in lockstep against shared memory resources.

        The five pipeline stages — complete, commit, issue, dispatch,
        fetch — run fused in this one body.  The simulator executes this
        method tens of thousands of times per run, so the stages share a
        single set of hoisted locals (thread table, rotation order,
        graduation-window occupancy) instead of each paying its own call
        and prologue cost; stage boundaries are marked by comments.
        """
        now = self.now
        config = self.config
        threads = self.threads
        window = self.window
        fifos = window._fifos
        win_sanitizer = window.sanitizer
        observer = self.observer
        pools = self.pools
        scheduler = self.scheduler
        predictor = self.predictor
        per_program_committed = self.per_program_committed
        order = self._orders[self._rotation % config.n_threads]
        win_occ = window.occupancy

        # ---- complete: results arriving this cycle wake their dependents.
        entries = self._wake.pop(now, None)
        completed = 0
        if entries:
            redirect = config.mispredict_redirect
            for entry in entries:
                entry.state = _STATE_DONE
                dependents = entry.dependents
                if dependents is not None:
                    for dependent in dependents:
                        dependent.deps -= 1
                        if dependent.deps == 0 and not dependent.squashed:
                            dependent.queue.ready.append(dependent)
                    entry.dependents = None
                if entry.mispredicted:
                    ctx = threads[entry.thread]
                    ctx.fetch_blocked = False
                    stall = now + redirect
                    if stall > ctx.fetch_stall_until:
                        ctx.fetch_stall_until = stall
                if observer is not None:
                    observer.on_complete(entry, now)
            completed = len(entries)

        # ---- commit: in-order retirement from the per-thread FIFOs.
        budget = config.commit_width
        committed_any = 0
        committed = self.committed
        committed_equiv = self.committed_equiv
        by_thread = self.committed_by_thread
        for thread in order:
            if budget == 0:
                break
            ctx = threads[thread]
            fifo = fifos[thread]
            if fifo:
                rename = ctx.rename
                equiv = ctx.equiv_per_inst
                while budget > 0 and fifo:
                    head = fifo[0]
                    if head.state != _STATE_DONE:
                        break
                    fifo.popleft()
                    win_occ -= 1
                    if win_sanitizer is not None:
                        window.occupancy = win_occ
                        win_sanitizer.on_window_retire(window, thread, head)
                    if observer is not None:
                        observer.on_commit(thread, head, now)
                    inst = head.inst
                    dst = inst.dst
                    if dst != NO_REG:
                        pools[dst >> _CLASS_SHIFT] += 1
                        if rename[dst] is head:
                            rename[dst] = None
                    weight = inst.stream_length
                    committed += weight
                    by_thread[thread] += weight
                    committed_equiv += weight * equiv
                    budget -= 1
                    committed_any += 1
            # Program completion: everything fetched, dispatched, retired.
            # (``not fifo`` first: it is the cheapest test and almost
            # always false mid-program.)
            if (
                not fifo
                and ctx.trace is not None
                and ctx.fetch_idx >= ctx.trace_len
                and not ctx.decode
            ):
                name = ctx.trace.name
                per_program_committed[name] = (
                    per_program_committed.get(name, 0)
                    + ctx.trace_expanded
                )
                replacement = scheduler.on_completion()
                if replacement is None:
                    ctx.trace = None
                else:
                    ctx.assign(replacement.trace)
                    predictor.reset_thread(thread)
                if observer is not None:
                    observer.on_thread_assign(thread)
        self.committed = committed
        self.committed_equiv = committed_equiv

        # ---- warmup boundary: restart measurement with warm structures.
        if not self._warm and committed >= self._warmup_commits:
            self._warm = True
            self._base_cycles = now
            self._base_committed = committed
            self._base_equiv = committed_equiv
            self.memory.reset_stats()
            self.predictor.lookups = 0
            self.predictor.mispredicts = 0
            self.vector_only_cycles = 0
            self.active_cycles = 0
        if scheduler.done:
            window.occupancy = win_occ
            return bool(completed or committed_any)

        # ---- issue: drain ready queues into the execution resources.
        issued = 0
        issued_vector = False
        issued_scalar = False
        wake = self._wake
        floor = now + 1
        memory = self.memory
        vector_execute = self.vector_unit.execute
        is_mem = _IS_MEM
        is_stream = _IS_STREAM
        latency_of = _LATENCY
        mem_kind_of = _MEM_KIND_OF
        for queue, width, is_simd in self._issue_plan:
            ready = queue.ready
            if not ready:
                continue
            taken = 0
            q_occ = queue.occupancy
            q_issued = queue.issued_total
            while taken < width and ready:
                entry = ready.popleft()
                q_occ -= 1
                if entry.squashed:
                    continue
                q_issued += 1
                taken += 1
                ctx = threads[entry.thread]
                inst = entry.inst
                stream_length = inst.stream_length
                ctx.inflight_insts -= 1
                ctx.inflight_ops -= stream_length
                op = inst.op
                if is_mem[op]:
                    if stream_length > 1:
                        done = memory.access_stream(
                            entry.thread,
                            inst.mem_addr,
                            inst.stride,
                            stream_length,
                            mem_kind_of[op],
                            now,
                        )
                    else:
                        done = memory.access(
                            entry.thread, inst.mem_addr, mem_kind_of[op], now
                        )
                elif is_stream[op]:
                    done = vector_execute(
                        now,
                        stream_length,
                        latency_of[op],
                        reduction=(op is Opcode.MOM_REDUCE),
                    )
                else:
                    done = now + latency_of[op]
                if done < floor:
                    done = floor
                if observer is not None:
                    observer.on_issue(entry, now, done)
                lst = wake.get(done)
                if lst is None:
                    wake[done] = [entry]
                else:
                    lst.append(entry)
            queue.occupancy = q_occ
            queue.issued_total = q_issued
            if taken:
                issued += taken
                if is_simd:
                    issued_vector = True
                else:
                    issued_scalar = True

        # ---- dispatch: rename and insert decoded instructions.
        budget = config.dispatch_width
        dispatched = 0
        queue_of_op = self._queue_of_op
        win_cap = window.capacity
        inflight_new = InFlight.__new__
        # Round-robin, one instruction per thread per pass.  Every stall
        # condition (empty decode, full queue, full window, empty register
        # pool) is monotone within a cycle, so a thread that fails to
        # dispatch is dropped from the scan instead of being re-checked.
        live = [t for t in order if threads[t].decode]
        while budget > 0 and live:
            next_live = []
            for thread in live:
                if budget == 0:
                    break
                ctx = threads[thread]
                decode = ctx.decode
                if not decode:
                    continue
                inst, mispredicted = decode[0]
                queue = queue_of_op[inst.op]
                if queue.occupancy >= queue.capacity or win_occ >= win_cap:
                    if observer is not None:
                        observer.stall(
                            "dispatch_queue_full"
                            if queue.occupancy >= queue.capacity
                            else "dispatch_window_full",
                            thread,
                        )
                    continue
                dst = inst.dst
                if dst != NO_REG and pools[dst >> _CLASS_SHIFT] <= 0:
                    if observer is not None:
                        observer.stall("dispatch_pool_empty", thread)
                    continue
                decode.popleft()
                # InFlight construction, spelled out (the constructor is
                # the single hottest allocation site in the simulator).
                entry = inflight_new(InFlight)
                entry.inst = inst
                entry.thread = thread
                entry.state = _STATE_WAITING
                entry.dependents = None
                entry.mispredicted = mispredicted
                entry.squashed = False
                entry.queue = queue
                rename = ctx.rename
                deps = 0
                for src in inst.srcs:
                    producer = rename[src]
                    if producer is not None and producer.state != _STATE_DONE:
                        deps += 1
                        waiters = producer.dependents
                        if waiters is None:
                            producer.dependents = [entry]
                        else:
                            waiters.append(entry)
                entry.deps = deps
                if dst != NO_REG:
                    pools[dst >> _CLASS_SHIFT] -= 1
                    rename[dst] = entry
                fifos[thread].append(entry)
                win_occ += 1
                if win_sanitizer is not None:
                    window.occupancy = win_occ
                    win_sanitizer.on_window_insert(window, thread, entry)
                queue.occupancy += 1
                if deps == 0:
                    queue.ready.append(entry)
                if queue.sanitizer is not None:
                    queue.sanitizer.check_queue(queue)
                if observer is not None:
                    observer.on_dispatch(thread, entry, now)
                budget -= 1
                dispatched += 1
                next_live.append(thread)
            live = next_live
        window.occupancy = win_occ

        # ---- fetch: pull instruction groups into the decode buffers.
        groups = 0
        fetched = 0
        fetch_groups = config.fetch_groups
        group_size = config.fetch_group_size
        decode_room = self._decode_room
        memory_fetch = memory.fetch
        predict = self.predictor.predict_and_update
        is_branch_of = _IS_BRANCH
        is_simd_of = _IS_SIMD
        # Round-robin needs no per-thread sort; skip the policy dispatch.
        if self.fetch_policy is not FetchPolicy.RR:
            order = self._fetch_order()
        for thread in order:
            if groups == fetch_groups:
                if observer is None:
                    break
                # Stall attribution: remaining threads with fetchable
                # work lost this cycle's fetch-group arbitration.
                ctx = threads[thread]
                if (
                    ctx.trace is not None
                    and ctx.fetch_idx < ctx.trace_len
                    and not ctx.fetch_blocked
                    and ctx.fetch_stall_until <= now
                    and len(ctx.decode) <= decode_room
                ):
                    observer.stall("fetch_no_slot", thread)
                continue
            ctx = threads[thread]
            idx = ctx.fetch_idx
            if ctx.trace is None or idx >= ctx.trace_len:
                continue
            if ctx.fetch_blocked:
                # Wrong-path fetch: the front end does not know the branch
                # mispredicted, so the thread keeps consuming fetch slots
                # on instructions that will be squashed.
                if observer is not None:
                    observer.stall("fetch_blocked_branch", thread)
                groups += 1
                continue
            decode = ctx.decode
            if ctx.fetch_stall_until > now:
                if observer is not None:
                    observer.stall("fetch_icache", thread)
                continue
            if len(decode) > decode_room:
                if observer is not None:
                    observer.stall("fetch_decode_full", thread)
                continue
            groups += 1
            instructions = ctx.trace.instructions
            trace_len = ctx.trace_len
            pc = instructions[idx].pc
            ready = memory_fetch(thread, pc, now)
            if ready > now + 2:
                # A genuine I-cache miss: stall the thread until the fill
                # arrives.  One-cycle bank-conflict delays are absorbed in
                # place — re-attempting them would itself occupy the bank
                # and can livelock two threads against each other.
                ctx.fetch_stall_until = ready
                if observer is not None:
                    observer.stall("fetch_icache", thread)
                continue
            took_vector = False
            group_line = pc >> 5
            inflight_insts = 0
            inflight_ops = 0
            for __ in range(group_size):
                if idx >= trace_len:
                    break
                inst = instructions[idx]
                if inst.pc >> 5 != group_line:
                    # Fetch groups cannot cross an I-cache line boundary.
                    break
                idx += 1
                op = inst.op
                mispredicted = False
                is_branch = is_branch_of[op]
                if is_branch:
                    mispredicted = not predict(thread, inst.pc, inst.taken)
                decode.append((inst, mispredicted))
                if observer is not None:
                    observer.on_fetch(thread, inst, now, mispredicted)
                inflight_insts += 1
                inflight_ops += inst.stream_length
                fetched += 1
                if is_simd_of[op]:
                    took_vector = True
                if mispredicted:
                    ctx.fetch_blocked = True
                    break
                if is_branch and inst.taken:
                    break
            ctx.fetch_idx = idx
            ctx.inflight_insts += inflight_insts
            ctx.inflight_ops += inflight_ops
            ctx.fetched_vector_last = took_vector

        if issued:
            self.active_cycles += 1
            if issued_vector and not issued_scalar:
                self.vector_only_cycles += 1
        self._rotation += 1
        self.now = now + 1
        return bool(
            completed or committed_any or issued or dispatched or fetched
        )

    def run(self) -> RunResult:
        """Simulate until the completion target is reached."""
        if self.config.sampling is not None:
            return self._run_sampled()
        step = self.step
        scheduler = self.scheduler
        max_cycles = self.max_cycles
        while not scheduler.done and self.now < max_cycles:
            if not step() and not scheduler.done:
                target = self._skip_target()
                if target > self.now:
                    self.now = target
        self._check_livelock()
        self._finalize_sanitizer()
        return self._make_result(
            cycles=self.now - self._base_cycles,
            committed_instructions=self.committed - self._base_committed,
            committed_equivalent=self.committed_equiv - self._base_equiv,
        )

    def _check_livelock(self) -> None:
        if self.now >= self.max_cycles:
            raise RuntimeError(
                f"simulation exceeded {self.max_cycles} cycles — livelock?"
            )

    def _finalize_sanitizer(self) -> None:
        if self.sanitizer is not None:
            self.sanitizer.finalize(
                self.now, self.window, self.queues.values(), self.memory
            )

    def _make_result(
        self,
        cycles: int,
        committed_instructions: int,
        committed_equivalent: float,
        sampling: list | None = None,
        samples: list | None = None,
    ) -> RunResult:
        return RunResult(
            isa=self.config.isa,
            n_threads=self.config.n_threads,
            fetch_policy=self.fetch_policy.value,
            cycles=cycles,
            committed_instructions=committed_instructions,
            committed_equivalent=committed_equivalent,
            program_completions=self.scheduler.completions,
            memory=self.memory.stats,
            mispredict_rate=self.predictor.mispredict_rate,
            issue_counts={
                queue.name: queue.issued_total
                for queue in self.queues.values()
            },
            vector_only_cycles=self.vector_only_cycles,
            active_cycles=self.active_cycles,
            per_program_committed=dict(self.per_program_committed),
            sampling=sampling,
            samples=samples,
            observability=(
                self.observer.snapshot()
                if self.observer is not None
                else None
            ),
        )

    # ------------------------------------------------------------- sampling

    def _run_detailed_for(self, commits: int) -> None:
        """Advance the detailed model until ``commits`` more retire."""
        target = self.committed + commits
        step = self.step
        scheduler = self.scheduler
        max_cycles = self.max_cycles
        while (
            self.committed < target
            and not scheduler.done
            and self.now < max_cycles
        ):
            if not step() and not scheduler.done:
                skip = self._skip_target()
                if skip > self.now:
                    self.now = skip

    def _drain_pipeline(self) -> None:
        """Retire all in-flight work without fetching anything new.

        Runs the detailed model with fetch frozen (every thread's stall
        horizon pushed past ``max_cycles``) until the graduation window,
        the wake lists and the decode buffers are empty, so the
        fast-forward can take over at a clean instruction boundary — no
        dispatched instruction is ever skipped or double-counted.
        """
        threads = self.threads
        sentinel = self.max_cycles + 1
        saved = [ctx.fetch_stall_until for ctx in threads]
        for ctx in threads:
            ctx.fetch_stall_until = sentinel
        scheduler = self.scheduler
        max_cycles = self.max_cycles
        while (
            (
                self.window.occupancy
                or self._wake
                or any(ctx.decode for ctx in threads)
            )
            and not scheduler.done
            and self.now < max_cycles
        ):
            if not self.step() and not scheduler.done:
                # The frozen stall horizons must not drive the idle skip,
                # so only the wake lists are consulted here.
                if self._wake:
                    skip = min(self._wake)
                    if skip > self.now:
                        self.now = skip
        for ctx, stall in zip(threads, saved):
            ctx.fetch_stall_until = stall

    def _fast_forward(self, budget: int) -> None:
        """Functionally retire ``budget`` (expanded) instructions.

        No rename/issue/window bookkeeping and no cycle accounting —
        instructions retire straight off the traces, in round-robin
        chunks across threads so cache interleaving resembles the
        detailed execution.  Long-lived predictor and cache state stays
        live: branches train the shared gshare tables and memory
        references run the hierarchies' warming-only tag path.  Pure-ALU
        instructions carry no long-lived state, so each trace's memoized
        plan (:func:`_ff_plan`) lets a chunk retire as one prefix-sum
        subtraction plus a walk of only its eventful instructions.  Must
        be called with the pipeline drained (:meth:`_drain_pipeline`).
        """
        threads = self.threads
        scheduler = self.scheduler
        predictor = self.predictor
        predict = predictor.predict_and_update
        memory = self.memory
        warm = memory.warm
        warm_stream = memory.warm_stream
        warm_fetch = memory.warm_fetch
        by_thread = self.committed_by_thread
        n_threads = len(threads)
        plans: list[tuple | None] = [None] * n_threads
        positions = [0] * n_threads
        for ctx in threads:
            if ctx.trace is not None:
                plan = _ff_plan(ctx.trace)
                plans[ctx.index] = plan
                # Detailed windows advance fetch_idx without touching the
                # plan cursor, so re-seat it on every fast-forward entry.
                positions[ctx.index] = bisect_left(plan[1], ctx.fetch_idx)
        chunk = 128
        remaining = budget
        while remaining > 0 and not scheduler.done:
            progressed = False
            for ctx in threads:
                if remaining <= 0 or scheduler.done:
                    break
                trace = ctx.trace
                if trace is None:
                    continue
                thread = ctx.index
                idx = ctx.fetch_idx
                trace_len = ctx.trace_len
                if idx < trace_len:
                    _, ev_idx, events, prefix = plans[thread]
                    end = idx + chunk
                    if end > trace_len:
                        end = trace_len
                    pos = positions[thread]
                    n_events = len(ev_idx)
                    while pos < n_events and ev_idx[pos] < end:
                        event = events[pos]
                        pos += 1
                        tag = event[1]
                        if tag == _FF_FETCH:
                            warm_fetch(thread, event[2])
                        elif tag == _FF_BRANCH:
                            predict(thread, event[2], event[3])
                        elif tag == _FF_MEM:
                            warm(thread, event[2], event[5])
                        else:
                            warm_stream(
                                thread, event[2], event[3], event[4],
                                event[5],
                            )
                    positions[thread] = pos
                    committed = prefix[end] - prefix[idx]
                    idx = end
                    ctx.fetch_idx = end
                    remaining -= committed
                    self.committed += committed
                    by_thread[thread] += committed
                    self.committed_equiv += committed * ctx.equiv_per_inst
                    progressed = True
                if idx >= trace_len:
                    # Program fully consumed (pipeline is drained, so
                    # nothing of it is in flight): rotate the workload
                    # exactly as the commit stage does.
                    name = trace.name
                    self.per_program_committed[name] = (
                        self.per_program_committed.get(name, 0)
                        + ctx.trace_expanded
                    )
                    replacement = scheduler.on_completion()
                    if replacement is None:
                        ctx.trace = None
                        plans[thread] = None
                    else:
                        ctx.assign(replacement.trace)
                        predictor.reset_thread(thread)
                        plans[thread] = _ff_plan(replacement.trace)
                        positions[thread] = 0
                    progressed = True
            if not progressed:
                break

    def _reset_run_state(self) -> None:
        """Rewind the processor to its pristine post-construction state.

        Every window chunk starts from this state before reconstructing
        its own position, so a chunk's result is identical whether the
        processor is freshly built (pool worker) or reused across chunks
        (serial in-process schedule).  Long-lived structures that carry
        sanitizer/observer references (graduation window, issue queues,
        memory hierarchy) are reset in place; the rest are rebuilt.
        """
        config = self.config
        old = self.scheduler
        self.scheduler = MultiprogramScheduler(
            old.traces, config.n_threads,
            completions_target=old.completions_target,
        )
        self.predictor = GsharePredictor()
        self.vector_unit = VectorUnit(config.vector_lanes)
        for queue in self.queues.values():
            queue.occupancy = 0
            queue.ready.clear()
            queue.issued_total = 0
        self.window.occupancy = 0
        for fifo in self.window._fifos:
            fifo.clear()
        self.pools = dict(config.resources.rename_regs)
        self.threads = [ThreadContext(i) for i in range(config.n_threads)]
        for slot, assignment in zip(
            self.threads,
            self.scheduler.next_assignments(config.n_threads),
        ):
            slot.assign(assignment.trace)
        self._wake = {}
        self._rotation = 0
        self.now = 0
        self.committed = 0
        self.committed_by_thread = [0] * config.n_threads
        self.committed_equiv = 0.0
        self.per_program_committed = {}
        self.vector_only_cycles = 0
        self.active_cycles = 0
        self._base_cycles = 0
        self._base_committed = 0
        self._base_equiv = 0.0
        # Sampled-mode invariant (chunks only exist in sampled mode):
        # the global warmup-fraction machinery stays inert.
        self._warmup_commits = 0
        self._warm = True
        self.memory.reset()

    def _quiet_skip(self, target_committed: int) -> None:
        """Skim the traces to ``target_committed`` without warming.

        The architectural fast-forward minus its event walk: fetch
        indices, commit counters and the program rotation advance via
        the memoized prefix sums, but no predictor training and no cache
        warming happen.  Used for the cold prefix of a chunk's
        start-state reconstruction — state that far back is evicted or
        overwritten before the chunk's first window could observe it.
        """
        threads = self.threads
        scheduler = self.scheduler
        by_thread = self.committed_by_thread
        chunk = 128
        while self.committed < target_committed and not scheduler.done:
            progressed = False
            for ctx in threads:
                if self.committed >= target_committed or scheduler.done:
                    break
                trace = ctx.trace
                if trace is None:
                    continue
                thread = ctx.index
                idx = ctx.fetch_idx
                trace_len = ctx.trace_len
                if idx < trace_len:
                    prefix = _ff_plan(trace)[3]
                    end = idx + chunk
                    if end > trace_len:
                        end = trace_len
                    committed = prefix[end] - prefix[idx]
                    idx = end
                    ctx.fetch_idx = end
                    self.committed += committed
                    by_thread[thread] += committed
                    self.committed_equiv += committed * ctx.equiv_per_inst
                    progressed = True
                if idx >= trace_len:
                    name = trace.name
                    self.per_program_committed[name] = (
                        self.per_program_committed.get(name, 0)
                        + ctx.trace_expanded
                    )
                    replacement = scheduler.on_completion()
                    if replacement is None:
                        ctx.trace = None
                    else:
                        ctx.assign(replacement.trace)
                        self.predictor.reset_thread(thread)
                    progressed = True
            if not progressed:
                break

    def run_sampled_chunk(self, index: int, n_chunks: int) -> dict:
        """Execute one window chunk of the sampled schedule.

        Resets to pristine state, reconstructs the chunk's start
        position (quiet skim of the cold prefix, warming fast-forward
        over the final :data:`_WARM_SPAN_PERIODS` sampling periods),
        then runs the standard ff/warmup/window/drain loop until the
        chunk's committed-instruction boundary.  The returned payload is
        a plain JSON-safe dict so it survives a process-pool round trip;
        :func:`merge_sampled_chunks` combines the payloads into the
        final :class:`RunResult`.

        A chunk may overshoot its boundary by a partial period — the
        next chunk reconstructs to its own exact boundary regardless, so
        the schedule stays deterministic for every ``n_chunks``.
        """
        config = self.config
        self._reset_run_state()
        scheduler = self.scheduler
        ff_len, window_len, warmup_len, expected = _sampled_geometry(
            config.sampling, scheduler.traces, scheduler.completions_target
        )
        span = ff_len + window_len + warmup_len
        chunk_expanded = expected // n_chunks
        start = index * chunk_expanded
        end = None if index == n_chunks - 1 else (index + 1) * chunk_expanded
        if start:
            warm_span = min(start, _WARM_SPAN_PERIODS * span)
            self._quiet_skip(start - warm_span)
            budget = start - self.committed
            if budget > 0:
                self._fast_forward(budget)
        base_programs = dict(self.per_program_committed)
        samples: list[list] = []
        cycles = 0
        committed = 0
        equivalent = 0.0
        while (
            not scheduler.done
            and self.now < self.max_cycles
            and (end is None or self.committed < end)
        ):
            if ff_len:
                self._fast_forward(ff_len)
                if scheduler.done:
                    break
            if warmup_len:
                self._run_detailed_for(warmup_len)
                if scheduler.done:
                    break
            base_now = self.now
            base_committed = self.committed
            base_equiv = self.committed_equiv
            self._run_detailed_for(window_len)
            window_cycles = self.now - base_now
            window_committed = self.committed - base_committed
            if window_cycles and window_committed:
                window_equiv = self.committed_equiv - base_equiv
                samples.append(
                    [window_cycles, window_committed, window_equiv]
                )
                cycles += window_cycles
                committed += window_committed
                equivalent += window_equiv
            if scheduler.done:
                break
            self._drain_pipeline()
        self._check_livelock()
        self._finalize_sanitizer()
        per_program: dict[str, int] = {}
        for name, count in self.per_program_committed.items():
            delta = count - base_programs.get(name, 0)
            if delta:
                per_program[name] = delta
        predictor = self.predictor
        return {
            "index": index,
            "n_chunks": n_chunks,
            "samples": samples,
            "cycles": cycles,
            "committed": committed,
            "equivalent": equivalent,
            "completions": scheduler.completions,
            "per_program_committed": per_program,
            "memory": asdict(self.memory.stats),
            "predictor_lookups": predictor.lookups,
            "predictor_mispredicts": predictor.mispredicts,
            "issue_counts": {
                queue.name: queue.issued_total
                for queue in self.queues.values()
            },
            "vector_only_cycles": self.vector_only_cycles,
            "active_cycles": self.active_cycles,
        }

    def _run_sampled(self) -> RunResult:
        """SMARTS-style sampled run: fast-forward, warm up, measure.

        Each period functionally fast-forwards ``ff_len`` instructions
        (predictor/cache state warmed, no timing), runs ``warmup_len``
        instructions of unmeasured detailed execution to refill the
        pipeline and short-lived structures, then measures EIPC over a
        ``window_len``-instruction detailed window.  The reported
        ``cycles``/``committed``/``equivalent`` are sums over the
        measurement windows (ratio-of-sums EIPC); the per-window deltas
        are returned as ``samples`` for the confidence interval.

        The schedule is *chunked* (see :func:`sampled_chunk_count`): the
        run executes as a deterministic sequence of independent window
        chunks, merged in chunk order.  Running the same chunks in a
        process pool (``RunRequest.window_jobs``) therefore produces a
        bit-identical result — the parallel path is this method with the
        loop body farmed out.
        """
        scheduler = self.scheduler
        n_chunks = sampled_chunk_count(
            self.config.sampling, scheduler.traces,
            scheduler.completions_target,
        )
        chunks = [
            self.run_sampled_chunk(index, n_chunks)
            for index in range(n_chunks)
        ]
        return merge_sampled_chunks(
            self.config,
            self.fetch_policy,
            chunks,
            observability=(
                self.observer.snapshot()
                if self.observer is not None
                else None
            ),
        )
