"""The SMT processor model: fetch, rename, issue, execute, graduate.

Trace-driven and cycle-level.  Each cycle runs the stages back to front
(completion, commit, issue, dispatch, fetch) so results computed in a
cycle are visible one cycle later:

* **completion** — instructions finishing this cycle wake dependents;
  resolved mispredicted branches unblock their thread's fetch.
* **commit** — up to 8 instructions retire per cycle, in-order per
  thread; finished programs hand their context to the next program of
  the multiprogrammed list (section 5.1 methodology).
* **issue** — per-queue out-of-order issue: 4 int, 4 mem, 4 FP, and
  2 MMX or 1 MOM per cycle; memory operations query the memory system,
  MOM arithmetic occupies the 2-lane vector unit.
* **dispatch** — round-robin over threads, renaming onto the shared
  physical pools (Table 1 sizing) and inserting into queues + the shared
  graduation window.
* **fetch** — up to 2 threads x 4 instructions through the I-cache,
  thread order set by the fetch policy; branch mispredictions block the
  thread until resolution (trace-driven squash model).
"""

from __future__ import annotations


from repro.core.branch import GsharePredictor
from repro.core.execute import VectorUnit
from repro.core.fetch import FetchPolicy, order_threads
from repro.core.metrics import RunResult
from repro.core.params import SMTConfig
from repro.core.queues import IssueQueue
from repro.core.rob import GraduationWindow
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPCODE_INFO, Opcode, Queue
from repro.isa.registers import NO_REG, reg_class
from repro.memory.interface import AccessType, MemorySystem
from repro.tracegen.program import Trace
from repro.workloads.multiprog import MultiprogramScheduler

_STATE_WAITING = 0
_STATE_DONE = 2

# MMX packed loads/stores are single 64-bit references with no stream
# semantics; they travel the scalar ports (and L1) even in the decoupled
# organization.  Only MOM stream memory uses the vector ports.
_MEM_KIND = {
    Opcode.LOAD: AccessType.SCALAR_LOAD,
    Opcode.STORE: AccessType.SCALAR_STORE,
    Opcode.MMX_LOAD: AccessType.SCALAR_LOAD,
    Opcode.MMX_STORE: AccessType.SCALAR_STORE,
    Opcode.MOM_LOAD: AccessType.VECTOR_LOAD,
    Opcode.MOM_STORE: AccessType.VECTOR_STORE,
}


class InFlight:
    """Dynamic state of one dispatched instruction."""

    __slots__ = (
        "inst",
        "thread",
        "state",
        "deps",
        "dependents",
        "mispredicted",
        "squashed",
    )

    def __init__(self, inst: Instruction, thread: int, mispredicted: bool):
        self.inst = inst
        self.thread = thread
        self.state = _STATE_WAITING
        self.deps = 0
        self.dependents: list[InFlight] = []
        self.mispredicted = mispredicted
        self.squashed = False


class ThreadContext:
    """Per-hardware-context front-end and rename state."""

    __slots__ = (
        "index",
        "trace",
        "fetch_idx",
        "decode",
        "rename",
        "fetch_blocked",
        "fetch_stall_until",
        "fetched_vector_last",
        "inflight_insts",
        "inflight_ops",
        "equiv_per_inst",
        "trace_expanded",
    )

    def __init__(self, index: int):
        self.index = index
        self.trace: Trace | None = None
        self.fetch_idx = 0
        self.decode: list = []
        self.rename: dict[int, InFlight] = {}
        self.fetch_blocked = False
        self.fetch_stall_until = 0
        self.fetched_vector_last = False
        self.inflight_insts = 0
        self.inflight_ops = 0
        self.equiv_per_inst = 1.0
        self.trace_expanded = 1

    def assign(self, trace: Trace) -> None:
        self.trace = trace
        self.fetch_idx = 0
        self.decode.clear()
        self.rename.clear()
        self.fetch_blocked = False
        self.fetched_vector_last = False
        self.trace_expanded = trace.expanded_length
        self.equiv_per_inst = trace.mmx_equivalent / self.trace_expanded

    @property
    def fetch_done(self) -> bool:
        return self.trace is None or self.fetch_idx >= len(self.trace.instructions)


class SMTProcessor:
    """Runs a multiprogrammed workload on the configured SMT machine."""

    def __init__(
        self,
        config: SMTConfig,
        memory: MemorySystem,
        traces: list[Trace],
        fetch_policy: FetchPolicy = FetchPolicy.RR,
        completions_target: int = 8,
        max_cycles: int = 50_000_000,
        warmup_fraction: float = 0.3,
        scheduler: MultiprogramScheduler | None = None,
    ):
        for trace in traces:
            if trace.isa != config.isa:
                raise ValueError(
                    f"trace {trace.name} is {trace.isa}, machine is {config.isa}"
                )
        self.config = config
        self.memory = memory
        self.fetch_policy = fetch_policy
        self.max_cycles = max_cycles
        self.scheduler = scheduler or MultiprogramScheduler(
            traces, config.n_threads, completions_target=completions_target
        )
        self.predictor = GsharePredictor()
        self.vector_unit = VectorUnit(config.vector_lanes)
        sizes = config.resources.queue_sizes
        self.queues = {
            Queue.INT: IssueQueue("int", sizes["int"]),
            Queue.FP: IssueQueue("fp", sizes["fp"]),
            Queue.MEM: IssueQueue("mem", sizes["mem"]),
            Queue.SIMD: IssueQueue("simd", sizes["simd"]),
        }
        self._issue_width = {
            Queue.INT: config.issue_int,
            Queue.FP: config.issue_fp,
            Queue.MEM: config.issue_mem,
            Queue.SIMD: config.issue_simd,
        }
        self.window = GraduationWindow(
            config.resources.graduation_window, config.n_threads
        )
        self.sanitizer = None
        if config.sanitize:
            # Imported lazily so the core has no dependency on the
            # verify layer unless invariant checking is requested.
            from repro.verify.sanitizer import RuntimeSanitizer

            self.sanitizer = RuntimeSanitizer()
            self.window.sanitizer = self.sanitizer
            for queue in self.queues.values():
                queue.sanitizer = self.sanitizer
            memory.attach_sanitizer(self.sanitizer)
        self.pools = dict(config.resources.rename_regs)
        self.threads = [ThreadContext(i) for i in range(config.n_threads)]
        for slot, assignment in zip(
            self.threads,
            self.scheduler.next_assignments(config.n_threads),
        ):
            slot.assign(assignment.trace)
        self._wake: dict[int, list[InFlight]] = {}
        self._rotation = 0
        # Warmup: caches/predictor train on the first fraction of the
        # committed work; statistics cover only the measurement window
        # (standard trace-driven methodology — the scaled traces would
        # otherwise be dominated by cold misses the paper's
        # billion-instruction runs amortize away).
        expected_total = sum(t.expanded_length for t in traces)
        self._warmup_commits = int(warmup_fraction * expected_total)
        self._warm = self._warmup_commits == 0
        self._base_cycles = 0
        self._base_committed = 0
        self._base_equiv = 0.0
        # Statistics.
        self.now = 0
        self.committed = 0
        self.committed_by_thread = [0] * config.n_threads
        self.committed_equiv = 0.0
        self.per_program_committed: dict[str, int] = {}
        self.vector_only_cycles = 0
        self.active_cycles = 0

    # ------------------------------------------------------------------ stages

    def _complete(self) -> int:
        entries = self._wake.pop(self.now, None)
        if not entries:
            return 0
        for entry in entries:
            entry.state = _STATE_DONE
            for dependent in entry.dependents:
                dependent.deps -= 1
                if dependent.deps == 0 and not dependent.squashed:
                    self.queues[OPCODE_INFO[dependent.inst.op].queue].wake(
                        dependent
                    )
            entry.dependents.clear()
            if entry.mispredicted:
                ctx = self.threads[entry.thread]
                ctx.fetch_blocked = False
                ctx.fetch_stall_until = max(
                    ctx.fetch_stall_until,
                    self.now + self.config.mispredict_redirect,
                )
        return len(entries)

    def _commit(self) -> int:
        budget = self.config.commit_width
        done_any = 0
        n = self.config.n_threads
        for offset in range(n):
            if budget == 0:
                break
            thread = (self._rotation + offset) % n
            ctx = self.threads[thread]
            while budget > 0:
                head = self.window.head(thread)
                if head is None or head.state != _STATE_DONE:
                    break
                self.window.retire_head(thread)
                inst = head.inst
                if inst.dst != NO_REG:
                    self.pools[reg_class(inst.dst)] += 1
                    if ctx.rename.get(inst.dst) is head:
                        del ctx.rename[inst.dst]
                weight = inst.stream_length
                self.committed += weight
                self.committed_by_thread[thread] += weight
                self.committed_equiv += weight * ctx.equiv_per_inst
                budget -= 1
                done_any += 1
            # Program completion: everything fetched, dispatched, retired.
            if (
                ctx.trace is not None
                and ctx.fetch_done
                and not ctx.decode
                and self.window.is_empty(thread)
            ):
                name = ctx.trace.name
                self.per_program_committed[name] = (
                    self.per_program_committed.get(name, 0)
                    + ctx.trace_expanded
                )
                replacement = self.scheduler.on_completion()
                if replacement is None:
                    ctx.trace = None
                else:
                    ctx.assign(replacement.trace)
                    self.predictor.reset_thread(thread)
        return done_any

    def _issue_one(self, entry: InFlight) -> int:
        """Execute an issued instruction; returns its completion cycle."""
        inst = entry.inst
        info = OPCODE_INFO[inst.op]
        now = self.now
        if info.is_mem:
            kind = _MEM_KIND[inst.op]
            if inst.stream_length > 1:
                done = self.memory.access_stream(
                    entry.thread,
                    inst.mem_addr,
                    inst.stride,
                    inst.stream_length,
                    kind,
                    now,
                )
            else:
                done = self.memory.access(entry.thread, inst.mem_addr, kind, now)
        elif info.is_stream:
            done = self.vector_unit.execute(
                now,
                inst.stream_length,
                info.latency,
                reduction=(inst.op is Opcode.MOM_REDUCE),
            )
        else:
            done = now + info.latency
        return max(done, now + 1)

    def _issue(self) -> tuple[int, bool, bool]:
        issued = 0
        issued_vector = False
        issued_scalar = False
        for queue_id, queue in self.queues.items():
            width = self._issue_width[queue_id]
            for __ in range(width):
                entry = queue.pop_ready()
                if entry is None:
                    break
                ctx = self.threads[entry.thread]
                ctx.inflight_insts -= 1
                ctx.inflight_ops -= entry.inst.stream_length
                done = self._issue_one(entry)
                self._wake.setdefault(done, []).append(entry)
                issued += 1
                if queue_id is Queue.SIMD:
                    issued_vector = True
                else:
                    issued_scalar = True
        return issued, issued_vector, issued_scalar

    def _dispatch(self) -> int:
        budget = self.config.dispatch_width
        n = self.config.n_threads
        stalled = [False] * n
        dispatched = 0
        while budget > 0:
            progress = False
            for offset in range(n):
                if budget == 0:
                    break
                thread = (self._rotation + offset) % n
                if stalled[thread]:
                    continue
                ctx = self.threads[thread]
                if not ctx.decode:
                    stalled[thread] = True
                    continue
                inst, mispredicted = ctx.decode[0]
                info = OPCODE_INFO[inst.op]
                queue = self.queues[info.queue]
                if not queue.has_space or not self.window.has_space:
                    stalled[thread] = True
                    continue
                if inst.dst != NO_REG and self.pools[reg_class(inst.dst)] <= 0:
                    stalled[thread] = True
                    continue
                ctx.decode.pop(0)
                entry = InFlight(inst, thread, mispredicted)
                for src in inst.srcs:
                    producer = ctx.rename.get(src)
                    if producer is not None and producer.state != _STATE_DONE:
                        entry.deps += 1
                        producer.dependents.append(entry)
                if inst.dst != NO_REG:
                    self.pools[reg_class(inst.dst)] -= 1
                    ctx.rename[inst.dst] = entry
                self.window.insert(thread, entry)
                queue.insert(entry)
                budget -= 1
                dispatched += 1
                progress = True
            if not progress:
                break
        return dispatched

    def _fetch(self) -> int:
        cfg = self.config
        n = cfg.n_threads
        order = order_threads(
            self.fetch_policy,
            n,
            self._rotation,
            [t.inflight_insts for t in self.threads],
            [t.inflight_ops for t in self.threads],
            [t.fetched_vector_last for t in self.threads],
            self.queues[Queue.SIMD].occupancy == 0,
        )
        groups = 0
        fetched = 0
        for thread in order:
            if groups == cfg.fetch_groups:
                break
            ctx = self.threads[thread]
            if ctx.trace is None or ctx.fetch_done:
                continue
            if ctx.fetch_blocked:
                # Wrong-path fetch: the front end does not know the branch
                # mispredicted, so the thread keeps consuming fetch slots
                # on instructions that will be squashed.
                groups += 1
                continue
            if (
                ctx.fetch_stall_until > self.now
                or len(ctx.decode) > cfg.decode_buffer - cfg.fetch_group_size
            ):
                continue
            groups += 1
            instructions = ctx.trace.instructions
            pc = instructions[ctx.fetch_idx].pc
            ready = self.memory.fetch(thread, pc, self.now)
            if ready > self.now + 2:
                # A genuine I-cache miss: stall the thread until the fill
                # arrives.  One-cycle bank-conflict delays are absorbed in
                # place — re-attempting them would itself occupy the bank
                # and can livelock two threads against each other.
                ctx.fetch_stall_until = ready
                continue
            took_vector = False
            group_line = pc >> 5
            for __ in range(cfg.fetch_group_size):
                if ctx.fetch_idx >= len(instructions):
                    break
                inst = instructions[ctx.fetch_idx]
                if inst.pc >> 5 != group_line:
                    # Fetch groups cannot cross an I-cache line boundary.
                    break
                ctx.fetch_idx += 1
                mispredicted = False
                if inst.is_branch:
                    correct = self.predictor.predict_and_update(
                        thread, inst.pc, inst.taken
                    )
                    mispredicted = not correct
                ctx.decode.append((inst, mispredicted))
                ctx.inflight_insts += 1
                ctx.inflight_ops += inst.stream_length
                fetched += 1
                if inst.is_simd:
                    took_vector = True
                if mispredicted:
                    ctx.fetch_blocked = True
                    break
                if inst.is_branch and inst.taken:
                    break
            ctx.fetched_vector_last = took_vector
        return fetched

    # ------------------------------------------------------------------ driver

    def _skip_target(self) -> int:
        """Earliest future cycle at which anything can happen."""
        candidates = []
        if self._wake:
            candidates.append(min(self._wake))
        for ctx in self.threads:
            if ctx.trace is None or ctx.fetch_done:
                continue
            if not ctx.fetch_blocked and ctx.fetch_stall_until > self.now:
                candidates.append(ctx.fetch_stall_until)
        if not candidates:
            return self.now + 1
        # ``step`` has already advanced ``now`` past the last processed
        # cycle, so the earliest candidate may be the *current* cycle —
        # never skip beyond it or its wake entries would be orphaned.
        return max(min(candidates), self.now)

    def step(self) -> bool:
        """Advance one cycle; returns whether any pipeline work happened.

        Exposed so multi-core drivers (the CMP extension) can advance
        several cores in lockstep against shared memory resources.
        """
        completed = self._complete()
        committed = self._commit()
        if not self._warm and self.committed >= self._warmup_commits:
            self._warm = True
            self._base_cycles = self.now
            self._base_committed = self.committed
            self._base_equiv = self.committed_equiv
            self.memory.reset_stats()
            self.predictor.lookups = 0
            self.predictor.mispredicts = 0
            self.vector_only_cycles = 0
            self.active_cycles = 0
        if self.scheduler.done:
            return bool(completed or committed)
        issued, issued_vector, issued_scalar = self._issue()
        dispatched = self._dispatch()
        fetched = self._fetch()
        if issued:
            self.active_cycles += 1
            if issued_vector and not issued_scalar:
                self.vector_only_cycles += 1
        self._rotation += 1
        self.now += 1
        return bool(completed or committed or issued or dispatched or fetched)

    def run(self) -> RunResult:
        """Simulate until the completion target is reached."""
        while not self.scheduler.done and self.now < self.max_cycles:
            worked = self.step()
            if not worked and not self.scheduler.done:
                self.now = max(self.now, self._skip_target())
        if self.now >= self.max_cycles:
            raise RuntimeError(
                f"simulation exceeded {self.max_cycles} cycles — livelock?"
            )
        if self.sanitizer is not None:
            self.sanitizer.finalize(
                self.now, self.window, self.queues.values(), self.memory
            )
        return RunResult(
            isa=self.config.isa,
            n_threads=self.config.n_threads,
            fetch_policy=self.fetch_policy.value,
            cycles=self.now - self._base_cycles,
            committed_instructions=self.committed - self._base_committed,
            committed_equivalent=self.committed_equiv - self._base_equiv,
            program_completions=self.scheduler.completions,
            memory=self.memory.stats,
            mispredict_rate=self.predictor.mispredict_rate,
            issue_counts={
                queue.name: queue.issued_total
                for queue in self.queues.values()
            },
            vector_only_cycles=self.vector_only_cycles,
            active_cycles=self.active_cycles,
            per_program_committed=dict(self.per_program_committed),
        )
