"""Pipeline instrumentation: utilization histograms and fairness.

An opt-in sampler that rides along with an :class:`SMTProcessor` run and
collects the microarchitectural detail the summary metrics flatten out:
per-queue issue-slot utilization, graduation-window occupancy, per-thread
committed work (SMT fairness), and the scalar/vector issue mix the
BALANCE fetch policy targets.  Used by ``examples/pipeline_report.py``
and the test suite; costs one callback per simulated cycle when enabled.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.core.smt import SMTProcessor

# ------------------------------------------------------------------ sampling

#: Two-sided 95 % Student-t critical values by degrees of freedom.  The
#: sampled-simulation windows are few (tens per run), so the normal 1.96
#: would understate the interval; beyond df=30 the table converges to
#: the asymptote fast enough that the last entry serves.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}


def t_critical_95(df: int) -> float:
    """Two-sided 95 % Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("need at least one degree of freedom")
    if df in _T95:
        return _T95[df]
    for bound in (40, 60, 120):
        if df <= bound:
            return _T95[bound]
    return 1.960


def mean_ci95(samples: list[float]) -> tuple[float, float]:
    """Sample mean and 95 % confidence half-width.

    Aggregates the per-window EIPC samples of a sampled simulation run
    (SMARTS-style: the window means are treated as i.i.d. draws from the
    program's phase mixture).  With fewer than two samples the interval
    is undefined and the half-width is ``inf`` — callers must not claim
    convergence from a single window.
    """
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(samples) / n
    if n < 2:
        return mean, math.inf
    variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
    half = t_critical_95(n - 1) * math.sqrt(variance / n)
    return mean, half


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of ``samples``.

    The serving scenario's latency tails (p50/p95/p99) use the
    nearest-rank definition — ``ceil(fraction * n)``-th smallest value —
    because it always returns an observed sample: no interpolation, so
    integer cycle counts stay integers and pinned goldens stay exact.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(samples)
    if fraction == 0.0:
        return ordered[0]
    rank = math.ceil(fraction * len(ordered))
    return ordered[rank - 1]


@dataclass
class PipelineStats:
    """Aggregated per-cycle samples from one instrumented run."""

    cycles_sampled: int = 0
    issue_histogram: dict[str, Counter] = field(default_factory=dict)
    window_occupancy_sum: int = 0
    window_capacity: int = 0
    per_thread_committed: Counter = field(default_factory=Counter)
    decode_occupancy_sum: int = 0

    def issue_utilization(self, queue_name: str, width: int) -> float:
        """Mean fraction of the queue's issue slots used per cycle."""
        histogram = self.issue_histogram.get(queue_name)
        if not histogram or not self.cycles_sampled:
            return 0.0
        issued = sum(count * slots for slots, count in histogram.items())
        return issued / (self.cycles_sampled * width)

    @property
    def mean_window_occupancy(self) -> float:
        if not self.cycles_sampled:
            return 0.0
        return self.window_occupancy_sum / self.cycles_sampled

    def fairness_index(self) -> float:
        """Jain's fairness index over per-thread committed work (0..1]."""
        values = [v for v in self.per_thread_committed.values() if v > 0]
        if not values:
            return 1.0
        total = sum(values)
        squares = sum(v * v for v in values)
        return (total * total) / (len(values) * squares)

    def report(self, widths: dict[str, int]) -> str:
        """Human-readable utilization summary."""
        lines = [f"cycles sampled: {self.cycles_sampled}"]
        for name, width in widths.items():
            util = self.issue_utilization(name, width)
            bar = "#" * int(round(util * 30))
            lines.append(f"  {name:>5s} issue {util:6.1%} |{bar:<30s}|")
        lines.append(
            f"  window occupancy {self.mean_window_occupancy:6.1f}"
            f" / {self.window_capacity}"
        )
        lines.append(f"  SMT fairness (Jain) {self.fairness_index():.3f}")
        return "\n".join(lines)


class InstrumentedRun:
    """Drives a processor cycle by cycle, sampling pipeline state."""

    def __init__(self, processor: SMTProcessor):
        self.processor = processor
        self.stats = PipelineStats(
            window_capacity=processor.window.capacity,
            issue_histogram={
                queue.name: Counter() for queue in processor.queues.values()
            },
        )
        self._issued_before = {
            queue.name: queue.issued_total
            for queue in processor.queues.values()
        }

    def run(self):
        """Run to completion, sampling each active cycle; returns RunResult."""
        processor = self.processor
        stats = self.stats
        while not processor.scheduler.done and processor.now < processor.max_cycles:
            worked = processor.step()
            stats.cycles_sampled += 1
            for queue in processor.queues.values():
                issued = queue.issued_total - self._issued_before[queue.name]
                self._issued_before[queue.name] = queue.issued_total
                stats.issue_histogram[queue.name][issued] += 1
            stats.window_occupancy_sum += processor.window.occupancy
            stats.decode_occupancy_sum += sum(
                len(ctx.decode) for ctx in processor.threads
            )
            if not worked and not processor.scheduler.done:
                processor.now = max(processor.now, processor._skip_target())
        if processor.now >= processor.max_cycles:
            raise RuntimeError("instrumented run exceeded max_cycles")
        return self._finish()

    def _finish(self):
        for thread, committed in enumerate(
            self.processor.committed_by_thread
        ):
            self.stats.per_thread_committed[thread] = committed
        # Reuse the normal result assembly by calling run() on the
        # already-finished processor (its loop exits immediately).
        return self.processor.run()
