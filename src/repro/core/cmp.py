"""Chip multiprocessor (CMP) extension — the paper's discussed alternative.

Section 3 of the paper weighs two TLP architectures: SMT ("better usage
of the available resources") and CMP ("does not have the traditional
implementation problems of aggressive out-of-order architectures",
citing Power4 and Piranha), and argues SMT suits media workloads better
because it delivers "moderate performance even in serial fragments of
code or with low number of threads" — minimizing Amdahl's law.  The
paper evaluates only SMT; this module builds the comparison machine so
the claim can be tested.

A :class:`CmpSystem` is ``n_cores`` single-threaded cores, each a scaled
-down out-of-order pipeline (half the issue width and a quarter of the
rename/window resources of the 8-thread SMT), with *private* L1 data and
instruction caches and a *shared* L2 and DRDRAM channel.  All cores step
in lockstep against the shared memory, and programs rotate through cores
with the same §5.1 methodology the SMT uses, so CMP and SMT results are
directly comparable EIPC-for-EIPC.
"""

from __future__ import annotations

import dataclasses

from repro.core.fetch import FetchPolicy
from repro.core.metrics import RunResult
from repro.core.params import Resources, SMTConfig
from repro.core.smt import SMTProcessor
from repro.isa.registers import RegisterClass
from repro.memory.cache import CacheConfig, L2Cache
from repro.memory.decoupled import DecoupledHierarchy
from repro.memory.dram import RambusChannel
from repro.memory.hierarchy import ConventionalHierarchy
from repro.memory.interface import MemoryStats
from repro.tracegen.program import Trace
from repro.workloads.multiprog import MultiprogramScheduler

#: Private per-core L1: half the SMT's shared 32 KB (Piranha-style).
CMP_L1 = CacheConfig("L1D", size=16 << 10, assoc=1, line=32, banks=4, latency=1)

#: Memory hierarchies a CMP core can be built with.  Both share the
#: system L2 and DRDRAM channel; only the per-core L1 side differs
#: (private conventional L1 vs the decoupled scalar/vector split).
CMP_MEMORY_KINDS = ("conventional", "decoupled")

#: Per-core resources: a modest 4-wide-ish out-of-order core.
CMP_CORE_RESOURCES = Resources(
    rename_regs={
        RegisterClass.INT: 40,
        RegisterClass.FP: 24,
        RegisterClass.MMX: 24,
        RegisterClass.STREAM: 12,
        RegisterClass.ACC: 4,
    },
    queue_sizes={"int": 20, "fp": 12, "mem": 20, "simd": 12},
    graduation_window=48,
)


def cmp_core_resources(contexts: int = 1) -> Resources:
    """Per-core resources, scaled for ``contexts`` SMT contexts.

    A single-context core is exactly :data:`CMP_CORE_RESOURCES`.  Adding
    hardware contexts grows rename registers, issue queues and the
    graduation window sublinearly (factor ``1 + (contexts - 1) / 2`` —
    shared structures amortize, the SMT argument), so per-context share
    shrinks as contexts are added while totals grow monotonically.
    """
    if contexts < 1:
        raise ValueError("need at least one hardware context per core")
    if contexts == 1:
        return CMP_CORE_RESOURCES
    factor = 1 + (contexts - 1) / 2
    return Resources(
        rename_regs={
            cls: int(count * factor)
            for cls, count in CMP_CORE_RESOURCES.rename_regs.items()
        },
        queue_sizes={
            name: int(size * factor)
            for name, size in CMP_CORE_RESOURCES.queue_sizes.items()
        },
        graduation_window=int(CMP_CORE_RESOURCES.graduation_window * factor),
    )


def cmp_core_config(isa: str, contexts: int = 1) -> SMTConfig:
    """The configuration of one CMP core.

    Narrower than the SMT machine everywhere: one 4-instruction fetch
    group, half the issue bandwidth, one µ-SIMD FU (or a single-lane MOM
    pipe) — the "simple processors" CMP proposals join on a die.  With
    ``contexts > 1`` the core is itself a small SMT (the CMP×SMT design
    point the serving scenario sweeps): pipeline widths stay fixed,
    shared resources scale per :func:`cmp_core_resources`.
    """
    return SMTConfig(
        isa=isa,
        n_threads=contexts,
        fetch_groups=1,
        fetch_group_size=4,
        dispatch_width=4,
        commit_width=4,
        issue_int=2,
        issue_mem=2,
        issue_fp=2,
        issue_simd=1,
        vector_lanes=2,
        resources=cmp_core_resources(contexts),
    )


class CmpSystem:
    """``n_cores`` private-L1 cores over a shared L2 and memory channel."""

    def __init__(
        self,
        isa: str,
        n_cores: int,
        traces: list[Trace],
        completions_target: int = 8,
        max_cycles: int = 50_000_000,
        warmup_fraction: float = 0.3,
        contexts_per_core: int = 1,
        memory: str = "conventional",
        sanitize: bool = False,
        observe=None,
        scheduler=None,
    ):
        if n_cores < 1:
            raise ValueError("need at least one core")
        if memory not in CMP_MEMORY_KINDS:
            raise ValueError(
                f"unknown CMP memory kind {memory!r}; "
                f"expected one of {CMP_MEMORY_KINDS}"
            )
        if observe not in (None, False, True, "metrics"):
            # A ready observer instance would be shared by every core and
            # its per-thread records would collide across cores.  Each
            # core builds its own from the spec instead.
            raise ValueError(
                "CmpSystem accepts only observer *specs* "
                "(None/False/True/'metrics'): each core builds a private "
                "observer; per-core snapshots are merged under "
                "result.observability['cores']"
            )
        self.n_cores = n_cores
        self.contexts_per_core = contexts_per_core
        self.max_cycles = max_cycles
        self.dram = RambusChannel()
        self.l2 = L2Cache(self.dram)
        self.scheduler = scheduler or MultiprogramScheduler(
            traces,
            n_cores * contexts_per_core,
            completions_target=completions_target,
        )
        config = cmp_core_config(isa, contexts_per_core)
        if sanitize or observe not in (None, False):
            config = dataclasses.replace(
                config, sanitize=sanitize, observe=observe
            )
        self.cores: list[SMTProcessor] = []
        for __ in range(n_cores):
            if memory == "decoupled":
                hierarchy = DecoupledHierarchy(l2=self.l2, dram=self.dram)
            else:
                hierarchy = ConventionalHierarchy(
                    n_ports=2, l1_config=CMP_L1, l2=self.l2
                )
            # Each core's constructor pulls its initial programs from the
            # shared scheduler, so core i starts workload slots
            # [i*contexts, (i+1)*contexts).
            core = SMTProcessor(
                config,
                hierarchy,
                traces,
                fetch_policy=FetchPolicy.RR,
                max_cycles=max_cycles,
                warmup_fraction=0.0,      # warmup handled system-wide
                scheduler=self.scheduler,
            )
            self.cores.append(core)
        expected_total = sum(t.expanded_length for t in traces)
        self._warmup_commits = int(warmup_fraction * expected_total)
        self._warm = self._warmup_commits == 0
        self._base = (0, 0, 0.0)
        self.now = 0

    def _total_committed(self) -> tuple[int, float]:
        committed = sum(core.committed for core in self.cores)
        equiv = sum(core.committed_equiv for core in self.cores)
        return committed, equiv

    def step_cycle(self) -> bool:
        """Advance every core one lockstep cycle; True if any worked.

        External drivers (``repro.serving``) interleave arrivals and
        departures between calls; :meth:`run` uses the same primitive.
        """
        worked = False
        for core in self.cores:
            core.now = self.now
            if core.step():
                worked = True
        if not self.scheduler.done:
            # SMTProcessor.step returns before advancing its clock once
            # the scheduler finishes; mirroring that here keeps a 1-core
            # system cycle-identical to a standalone core.
            self.now += 1
        return worked

    def idle_skip_target(self) -> int | None:
        """Earliest cycle any busy core can make progress, or None.

        None means every hardware context in the system is idle — a
        driver may jump ``now`` straight to its next external event.
        """
        targets = [
            core._skip_target()
            for core in self.cores
            if any(ctx.trace is not None for ctx in core.threads)
        ]
        if not targets:
            return None
        return min(targets)

    def finalize(self) -> None:
        """Run end-of-simulation invariant checks on every core."""
        for core in self.cores:
            core._finalize_sanitizer()

    def observability(self) -> dict | None:
        """Merged per-core observer snapshots (None when unobserved)."""
        snapshots = []
        for core in self.cores:
            observer = core.observer
            if observer is not None:
                snapshots.append(observer.snapshot())
        if not snapshots:
            return None
        return {"cores": snapshots}

    def run(self) -> RunResult:
        """Step all cores in lockstep until the completion target."""
        while not self.scheduler.done and self.now < self.max_cycles:
            worked = self.step_cycle()
            if not self._warm:
                committed, equiv = self._total_committed()
                if committed >= self._warmup_commits:
                    self._warm = True
                    self._base = (self.now, committed, equiv)
                    for core in self.cores:
                        core.memory.reset_stats()
            if not worked:
                target = self.idle_skip_target()
                if target is not None:
                    self.now = max(self.now, target)
        if self.now >= self.max_cycles:
            raise RuntimeError(
                f"CMP simulation exceeded {self.max_cycles} cycles"
            )
        self.finalize()
        base_cycles, base_committed, base_equiv = self._base
        committed, equiv = self._total_committed()
        memory = self._merged_memory_stats()
        mispredicts = sum(core.predictor.mispredicts for core in self.cores)
        lookups = sum(core.predictor.lookups for core in self.cores)
        return RunResult(
            isa=self.cores[0].config.isa,
            n_threads=self.n_cores * self.contexts_per_core,
            fetch_policy="cmp",
            cycles=self.now - base_cycles,
            committed_instructions=committed - base_committed,
            committed_equivalent=equiv - base_equiv,
            program_completions=self.scheduler.completions,
            memory=memory,
            mispredict_rate=mispredicts / lookups if lookups else 0.0,
            observability=self.observability(),
        )

    def _merged_memory_stats(self) -> MemoryStats:
        merged = MemoryStats()
        for core in self.cores:
            stats = core.memory.stats
            for name in ("icache", "l1"):
                mine = getattr(merged, name)
                theirs = getattr(stats, name)
                mine.accesses += theirs.accesses
                mine.hits += theirs.hits
                mine.latency_sum += theirs.latency_sum
            merged.bank_conflict_cycles += stats.bank_conflict_cycles
        merged.l2 = self.l2.stats
        return merged
