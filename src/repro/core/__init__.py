"""The paper's contribution: an SMT out-of-order core with µ-SIMD units.

An 8-fetch-wide MIPS R10000-style out-of-order superscalar extended with

* simultaneous multithreading (shared physical register pools, per-thread
  rename tables, per-thread in-order graduation, 2x4 fetch per cycle), and
* a multimedia instruction queue with either two MMX-like packed FUs or
  one 2-lane MOM streaming vector unit.

``SMTProcessor`` is trace-driven: it consumes the decoded instruction
traces of :mod:`repro.tracegen` under the multiprogramming methodology of
:mod:`repro.workloads` and any memory model from :mod:`repro.memory`.
"""

from repro.core.params import SMTConfig, scaled_resources
from repro.core.fetch import FetchPolicy
from repro.core.smt import SMTProcessor
from repro.core.metrics import RunResult

__all__ = [
    "SMTConfig",
    "scaled_resources",
    "FetchPolicy",
    "SMTProcessor",
    "RunResult",
]
