"""Out-of-order issue queues.

Each of the four queues (integer, FP, memory, SIMD) holds dispatched
instructions until their source operands are ready, then offers them to
the issue stage oldest-first.  Wakeup is event-driven: completing
producers decrement their dependents' outstanding-source counts and move
newly-ready instructions onto the ready list.
"""

from __future__ import annotations

from collections import deque


class IssueQueue:
    """One issue queue with bounded capacity and a FIFO ready list.

    The SMT core's issue/dispatch stages inline the bookkeeping these
    methods perform (including the sanitizer hooks) for speed; the
    methods remain the reference implementation and the API other
    drivers and the tests use.  ``__slots__`` keeps the per-queue
    attribute access cheap.
    """

    __slots__ = (
        "name",
        "capacity",
        "occupancy",
        "ready",
        "issued_total",
        "sanitizer",
    )

    def __init__(self, name: str, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.occupancy = 0
        self.ready: deque = deque()
        # Issue-bandwidth accounting for utilization reporting.
        self.issued_total = 0
        #: Optional :class:`repro.verify.sanitizer.RuntimeSanitizer`.
        self.sanitizer = None

    @property
    def has_space(self) -> bool:
        return self.occupancy < self.capacity

    def insert(self, entry) -> None:
        """Dispatch an instruction into the queue.

        ``entry`` is an ``InFlight`` record; entries with no outstanding
        sources go straight onto the ready list.
        """
        if not self.has_space:
            raise RuntimeError(f"{self.name} queue overflow")
        self.occupancy += 1
        if entry.deps == 0:
            self.ready.append(entry)
        if self.sanitizer is not None:
            self.sanitizer.check_queue(self)

    def wake(self, entry) -> None:
        """A dependent became ready (called by the completion stage)."""
        self.ready.append(entry)

    def pop_ready(self):
        """Oldest ready instruction, or ``None``; frees the queue slot."""
        while self.ready:
            entry = self.ready.popleft()
            if entry.squashed:
                self.occupancy -= 1
                continue
            self.occupancy -= 1
            self.issued_total += 1
            return entry
        return None
