"""Run results and the paper's performance metrics.

IPC alone cannot compare ISAs that need different instruction counts for
the same work, so the paper defines EIPC (Equivalent IPC) for the MOM
machine::

    EIPC = (instructions_MMX / instructions_MOM) x IPC_MOM

i.e. the IPC an SMT+MMX processor would need to match the SMT+MOM
processor's throughput.  We compute it per program: every committed
instruction contributes its share of the program's MMX-equivalent
instruction count, so partially-completed programs are accounted
correctly.  For MMX runs EIPC equals IPC (up to generation noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.interface import MemoryStats


@dataclass
class RunResult:
    """Everything a simulation run reports."""

    isa: str
    n_threads: int
    fetch_policy: str
    cycles: int
    committed_instructions: int          # MOM streams counted expanded
    committed_equivalent: float          # MMX-equivalent work
    program_completions: int
    memory: MemoryStats
    mispredict_rate: float
    issue_counts: dict[str, int] = field(default_factory=dict)
    vector_only_cycles: int = 0
    active_cycles: int = 0
    per_program_committed: dict[str, int] = field(default_factory=dict)
    #: Sampling parameters ``[ff_len, window_len, warmup_len]`` of a
    #: sampled run (``None`` for full-detail runs).  Stored as a list so
    #: the value survives the runner's JSON round-trip bit-identically.
    sampling: list | None = None
    #: Per-measurement-window ``[cycles, committed, equivalent]`` deltas
    #: of a sampled run.  ``cycles``/``committed_instructions``/
    #: ``committed_equivalent`` above are the sums over these windows, so
    #: ``eipc`` is the ratio-of-sums estimator; the per-window samples
    #: carry the dispersion for the confidence interval.
    samples: list | None = None
    #: Observability snapshot (:meth:`repro.obs.events.PipelineObserver.
    #: snapshot`) of an observed run: the metrics tree (including the
    #: ``smt.stall`` stall-cause breakdown) plus event-stream accounting.
    #: ``None`` for unobserved runs — and serialized *absent*, not null,
    #: so ``observe=None`` result JSON stays byte-identical to pre-
    #: observability trees (``tests/test_obs_bitident.py``).
    observability: dict | None = None

    @property
    def ipc(self) -> float:
        """Committed (expanded) instructions per cycle."""
        return self.committed_instructions / self.cycles if self.cycles else 0.0

    @property
    def eipc(self) -> float:
        """Equivalent IPC: MMX-equivalent work per cycle."""
        return self.committed_equivalent / self.cycles if self.cycles else 0.0

    @property
    def eipc_samples(self) -> list[float]:
        """Per-window EIPC values of a sampled run (empty if full-detail)."""
        if not self.samples:
            return []
        return [equiv / cycles for cycles, __, equiv in self.samples]

    @property
    def eipc_mean(self) -> float:
        """Mean of the per-window EIPCs (``eipc`` itself for full detail)."""
        samples = self.eipc_samples
        if not samples:
            return self.eipc
        return sum(samples) / len(samples)

    @property
    def eipc_ci95(self) -> float:
        """95 % confidence half-width around :attr:`eipc_mean`.

        Zero for full-detail runs (the estimate is exact for the trace),
        ``inf`` for a sampled run with a single measurement window.
        """
        samples = self.eipc_samples
        if not samples:
            return 0.0
        # Imported lazily: stats imports the processor, which imports us.
        from repro.core.stats import mean_ci95

        return mean_ci95(samples)[1]

    @property
    def vector_only_fraction(self) -> float:
        """Fraction of issuing cycles that issued only vector work."""
        if not self.active_cycles:
            return 0.0
        return self.vector_only_cycles / self.active_cycles

    def speedup_over(self, baseline: "RunResult") -> float:
        """Throughput speed-up versus a baseline run (EIPC ratio)."""
        if baseline.eipc == 0:
            raise ValueError("baseline did no work")
        return self.eipc / baseline.eipc

    def summary(self) -> str:
        mem = self.memory
        return (
            f"{self.isa.upper()} T={self.n_threads} {self.fetch_policy}: "
            f"EIPC={self.eipc:.2f} IPC={self.ipc:.2f} "
            f"cycles={self.cycles} "
            f"I$={mem.icache.hit_rate:.1%} L1={mem.l1.hit_rate:.1%} "
            f"L1lat={mem.l1.mean_latency:.2f} "
            f"bpred-miss={self.mispredict_rate:.1%}"
        )
