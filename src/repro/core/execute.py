"""Functional-unit timing: issue bandwidth and the MOM vector pipes.

Scalar units (4 integer ALUs, 4 FP units, 4 memory ports) are fully
pipelined, so their constraint is issue bandwidth per cycle.  The SIMD
side differs per ISA:

* **MMX** — two independent packed FUs, both pipelined: up to two MMX
  instructions issue per cycle.
* **MOM** — one vector unit with two parallel pipes: one stream
  instruction issues per cycle, and the unit is then *occupied* for
  ``ceil(stream_length / lanes)`` cycles executing the packed
  sub-instructions (two per cycle).  This occupancy — not issue width —
  is MOM's structural throughput limit, and is exactly why MOM relieves
  fetch/issue bandwidth: 16 operations enter the window as one entry.
"""

from __future__ import annotations

import math

from repro.isa.opcodes import Opcode, OPCODE_INFO


class VectorUnit:
    """The MOM media functional unit: ``lanes`` parallel vector pipes."""

    #: Dead cycles between issue and the first sub-instruction (operand
    #: fan-out across the stream register file banks).
    STARTUP = 2

    def __init__(self, lanes: int = 2):
        if lanes < 1:
            raise ValueError("need at least one vector pipe")
        self.lanes = lanes
        self._busy_until = 0
        self.busy_cycles = 0

    def occupancy_of(self, stream_length: int, reduction: bool = False) -> int:
        """Pipe cycles one stream instruction holds the unit.

        Element-wise operations run ``lanes`` sub-instructions per cycle;
        accumulator reductions fold serially into the packed accumulator
        (one element per cycle) — the price of the dependence chain the
        accumulator hardware internalizes.
        """
        if reduction:
            return max(1, stream_length)
        return max(1, math.ceil(stream_length / self.lanes))

    def execute(self, now: int, stream_length: int, latency: int,
                reduction: bool = False) -> int:
        """Run one stream instruction; returns its completion cycle."""
        start = max(now, self._busy_until)
        occupancy = self.occupancy_of(stream_length, reduction)
        self._busy_until = start + occupancy
        self.busy_cycles += occupancy
        return start + self.STARTUP + occupancy + latency - 1

    @property
    def busy_until(self) -> int:
        return self._busy_until


def scalar_latency(op: Opcode) -> int:
    """Execution latency of a non-memory opcode class."""
    return OPCODE_INFO[op].latency
