"""Fetch thread-selection policies (paper section 5.3).

The fetch engine selects up to two threads per cycle and takes up to four
instructions from each.  The policy decides the order in which candidate
threads are offered the two fetch slots:

* **RR** (round-robin): the baseline rotation.
* **ICOUNT** (Tullsen et al.): prefer threads with the fewest
  instructions in the front end and issue queues — starves queue-clogging
  threads of fetch bandwidth.
* **OCOUNT**: like ICOUNT but counts *operations*: a MOM stream
  instruction holding the queue counts as its stream length, using the
  stream-length register's information.  Only meaningful for MOM.
* **BALANCE**: mixes scalar and vector work: when the vector pipeline is
  empty, threads that fetched vector instructions last time get priority;
  otherwise threads that did not.  Ties break round-robin.
"""

from __future__ import annotations

import enum


class FetchPolicy(enum.Enum):
    RR = "rr"
    ICOUNT = "icount"
    OCOUNT = "ocount"
    BALANCE = "balance"


def order_threads(
    policy: FetchPolicy,
    n_threads: int,
    rotation: int,
    inflight_insts: list[int],
    inflight_ops: list[int],
    fetched_vector_last: list[bool],
    simd_queue_empty: bool,
) -> list[int]:
    """Thread indices in fetch-priority order for this cycle.

    ``inflight_insts``/``inflight_ops`` count front-end + queued (not yet
    issued) instructions/operations per thread; ``fetched_vector_last``
    records whether each thread's previous fetch group contained a vector
    instruction.
    """
    base = [(i + rotation) % n_threads for i in range(n_threads)]
    if policy is FetchPolicy.RR:
        return base
    if policy is FetchPolicy.ICOUNT:
        return sorted(base, key=lambda t: inflight_insts[t])
    if policy is FetchPolicy.OCOUNT:
        return sorted(base, key=lambda t: inflight_ops[t])
    if policy is FetchPolicy.BALANCE:
        if simd_queue_empty:
            return sorted(base, key=lambda t: not fetched_vector_last[t])
        return sorted(base, key=lambda t: fetched_vector_last[t])
    raise ValueError(f"unknown fetch policy {policy}")
