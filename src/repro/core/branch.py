"""Branch prediction: a gshare predictor shared by all threads.

The SMT core shares one pattern-history table among contexts (as the
Alpha 21464 proposal did); each thread keeps its own global-history
register.  Mispredictions stall the offending thread's fetch until the
branch resolves, plus a front-end redirect penalty — the standard
trace-driven squash model (wrong-path instructions cannot be fetched from
a trace, so their resource pollution is approximated by the stall).
"""

from __future__ import annotations


class GsharePredictor:
    """Classic gshare: PC xor global-history indexes 2-bit counters."""

    __slots__ = (
        "table_bits",
        "history_bits",
        "_table",
        "_table_mask",
        "_history_mask",
        "_history",
        "lookups",
        "mispredicts",
    )

    def __init__(self, table_bits: int = 12, history_bits: int = 6):
        if table_bits < 2 or history_bits < 1:
            raise ValueError("bad predictor geometry")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._table = [2] * (1 << table_bits)   # weakly taken
        self._table_mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._history: dict[int, int] = {}
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, thread: int, pc: int) -> int:
        history = self._history.get(thread, 0)
        return ((pc >> 2) ^ history) & self._table_mask

    def predict_and_update(self, thread: int, pc: int, taken: bool) -> bool:
        """Predict a branch, train the tables, return correctness."""
        history = self._history.get(thread, 0)
        index = ((pc >> 2) ^ history) & self._table_mask
        table = self._table
        counter = table[index]
        correct = (counter >= 2) == taken
        self.lookups += 1
        if not correct:
            self.mispredicts += 1
        # 2-bit saturating counter update.
        if taken:
            if counter < 3:
                table[index] = counter + 1
        elif counter > 0:
            table[index] = counter - 1
        self._history[thread] = (
            (history << 1) | (1 if taken else 0)
        ) & self._history_mask
        return correct

    def reset_thread(self, thread: int) -> None:
        """Clear a context's history (new program assigned to the slot)."""
        self._history[thread] = 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.lookups if self.lookups else 0.0
