"""Flat-buffer hot-loop kernel for the table-driven pipeline engine.

This module holds the per-cycle kernel of
:class:`repro.core.engine_flat.FlatSMTProcessor` as a *module-level*
function so the optional compiled build (mypyc/Cython, see
``scripts/build_flat_backend.py``) can compile it without inheriting
from an interpreted class.  When the compiled sibling
``repro.core._flatstep_c`` is importable it shadows this module; the
pure-Python definition below is the always-available fallback.

The kernel is semantically the same five fused stages as
:meth:`repro.core.smt.SMTProcessor.step` — complete, commit, issue,
dispatch, fetch, back to front — but every per-instruction object the
object engine allocates (``InFlight``) or chases (``Instruction``
attributes) is replaced by integer ids into preallocated flat buffers:

* **slot tables** — one slot per graduation-window entry, recycled
  through a free list.  ``array('q')`` buffers hold state, dependency
  counts, destination register, weight, address and stride; small
  object lists hold the opcode enum, the issue-queue reference and the
  reused waiter lists.  The issue-queue ``ready`` deques and the
  graduation-window FIFOs carry slot ids instead of ``InFlight``
  objects.
* **trace tables** — per-trace tuples (:func:`trace_tables`) of opcode,
  pc, registers, weights and branch metadata, so the pipeline never
  touches an :class:`~repro.isa.instruction.Instruction` after fetch.
  The decode buffers carry ``(index << 1) | mispredicted`` packed ints.

Equivalence is bit-exact by construction: the kernel performs the same
memory/predictor/vector-unit calls in the same order with the same
arguments as the object engine, and the shared counters (queues, window
occupancy, thread contexts, commit statistics) are maintained
identically.  ``tests/test_engine_flat.py`` pins the contract against
the golden bitident hashes.  The object engine's ``squashed`` flag is
omitted: the trace-driven squash model blocks fetch at the mispredicted
branch, so no dispatched instruction is ever squashed and the object
engine's check is vacuous (asserted by the cross-backend pins).
"""

from __future__ import annotations

from repro.core.fetch import FetchPolicy
from repro.core.smt import (
    _CLASS_SHIFT,
    _IS_BRANCH,
    _IS_MEM,
    _IS_SIMD,
    _IS_STREAM,
    _LATENCY,
    _MEM_KIND_OF,
    _STATE_DONE,
    _STATE_WAITING,
)
from repro.isa.opcodes import Opcode
from repro.tracegen.program import Trace

#: table cache: id(trace) -> (trace, ops, pcs, dsts, srcs, addrs,
#: strides, weights, takens, branch_flags, simd_flags).  Entries hold
#: the trace itself, so a live table's id() can never be reused by a
#: different trace; FIFO-bounded like ``smt._FF_PLANS`` so huge traces
#: from many scales do not accumulate.
_TRACE_TABLES: dict[int, tuple] = {}
_TRACE_TABLE_LIMIT = 64


def trace_tables(trace: Trace) -> tuple:
    """Memoized flat per-instruction tables for one trace."""
    key = id(trace)
    cached = _TRACE_TABLES.get(key)
    if cached is not None and cached[0] is trace:
        return cached
    instructions = trace.instructions
    ops = tuple(inst.op for inst in instructions)
    tables = (
        trace,
        ops,
        tuple(inst.pc for inst in instructions),
        tuple(inst.dst for inst in instructions),
        tuple(inst.srcs for inst in instructions),
        tuple(inst.mem_addr for inst in instructions),
        tuple(inst.stride for inst in instructions),
        tuple(inst.stream_length for inst in instructions),
        tuple(inst.taken for inst in instructions),
        tuple(_IS_BRANCH[op] for op in ops),
        tuple(_IS_SIMD[op] for op in ops),
    )
    if len(_TRACE_TABLES) >= _TRACE_TABLE_LIMIT:
        _TRACE_TABLES.pop(next(iter(_TRACE_TABLES)))
    _TRACE_TABLES[key] = tables
    return tables


# codelint: hot-loop — the HOT-* rules hold this body to the
# compiled-backend subset: hoisted locals, no per-iteration
# allocation, no closures (docs/VERIFY.md).
def flat_step(self) -> bool:
    """Advance one cycle of a FlatSMTProcessor; see module docstring.

    ``self`` is a :class:`~repro.core.engine_flat.FlatSMTProcessor`;
    keeping the kernel free-standing (instead of a method) is what lets
    the compiled build replace it wholesale.
    """
    now = self.now
    config = self.config
    threads = self.threads
    window = self.window
    fifos = window._fifos
    pools = self._pool_table
    scheduler = self.scheduler
    predictor = self.predictor
    per_program_committed = self.per_program_committed
    order = self._orders[self._rotation % config.n_threads]
    win_occ = window.occupancy
    s_state = self._slot_state
    s_deps = self._slot_deps
    s_misp = self._slot_mispredicted
    s_thread = self._slot_thread
    s_dst = self._slot_dst
    s_weight = self._slot_weight
    s_addr = self._slot_addr
    s_stride = self._slot_stride
    s_op = self._slot_op
    s_queue = self._slot_queue
    s_waiters = self._slot_waiters
    free_slots = self._free_slots

    # ---- complete: results arriving this cycle wake their dependents.
    entries = self._wake.pop(now, None)
    completed = 0
    if entries:
        redirect = config.mispredict_redirect
        for slot in entries:
            s_state[slot] = _STATE_DONE
            waiters = s_waiters[slot]
            if waiters:
                for dep in waiters:
                    remaining = s_deps[dep] - 1
                    s_deps[dep] = remaining
                    if remaining == 0:
                        s_queue[dep].ready.append(dep)
                del waiters[:]
            if s_misp[slot]:
                ctx = threads[s_thread[slot]]
                ctx.fetch_blocked = False
                stall = now + redirect
                if stall > ctx.fetch_stall_until:
                    ctx.fetch_stall_until = stall
        completed = len(entries)

    # ---- commit: in-order retirement from the per-thread FIFOs.
    budget = config.commit_width
    committed_any = 0
    committed = self.committed
    committed_equiv = self.committed_equiv
    by_thread = self.committed_by_thread
    for thread in order:
        if budget == 0:
            break
        ctx = threads[thread]
        fifo = fifos[thread]
        if fifo:
            rename = ctx.rename
            equiv = ctx.equiv_per_inst
            while budget > 0 and fifo:
                head = fifo[0]
                if s_state[head] != _STATE_DONE:
                    break
                fifo.popleft()
                win_occ -= 1
                dst = s_dst[head]
                if dst >= 0:
                    pools[dst >> _CLASS_SHIFT] += 1
                    if rename[dst] == head:
                        rename[dst] = -1
                weight = s_weight[head]
                committed += weight
                by_thread[thread] += weight
                committed_equiv += weight * equiv
                free_slots.append(head)
                budget -= 1
                committed_any += 1
        # Program completion: everything fetched, dispatched, retired.
        if (
            not fifo
            and ctx.trace is not None
            and ctx.fetch_idx >= ctx.trace_len
            and not ctx.decode
        ):
            name = ctx.trace.name
            per_program_committed[name] = (
                per_program_committed.get(name, 0)
                + ctx.trace_expanded
            )
            replacement = scheduler.on_completion()
            if replacement is None:
                ctx.trace = None
            else:
                ctx.assign(replacement.trace)
                predictor.reset_thread(thread)
    self.committed = committed
    self.committed_equiv = committed_equiv

    # ---- warmup boundary: restart measurement with warm structures.
    if not self._warm and committed >= self._warmup_commits:
        self._warm = True
        self._base_cycles = now
        self._base_committed = committed
        self._base_equiv = committed_equiv
        self.memory.reset_stats()
        self.predictor.lookups = 0
        self.predictor.mispredicts = 0
        self.vector_only_cycles = 0
        self.active_cycles = 0
    if scheduler.done:
        window.occupancy = win_occ
        return bool(completed or committed_any)

    # ---- issue: drain ready queues into the execution resources.
    issued = 0
    issued_vector = False
    issued_scalar = False
    wake = self._wake
    floor = now + 1
    memory = self.memory
    vector_execute = self.vector_unit.execute
    is_mem = _IS_MEM
    is_stream = _IS_STREAM
    latency_of = _LATENCY
    mem_kind_of = _MEM_KIND_OF
    mom_reduce = Opcode.MOM_REDUCE
    for queue, width, is_simd in self._issue_plan:
        ready = queue.ready
        if not ready:
            continue
        taken = 0
        q_occ = queue.occupancy
        q_issued = queue.issued_total
        while taken < width and ready:
            entry = ready.popleft()
            q_occ -= 1
            q_issued += 1
            taken += 1
            thread = s_thread[entry]
            ctx = threads[thread]
            stream_length = s_weight[entry]
            ctx.inflight_insts -= 1
            ctx.inflight_ops -= stream_length
            op = s_op[entry]
            if is_mem[op]:
                if stream_length > 1:
                    done = memory.access_stream(
                        thread,
                        s_addr[entry],
                        s_stride[entry],
                        stream_length,
                        mem_kind_of[op],
                        now,
                    )
                else:
                    done = memory.access(
                        thread, s_addr[entry], mem_kind_of[op], now
                    )
            elif is_stream[op]:
                done = vector_execute(
                    now,
                    stream_length,
                    latency_of[op],
                    reduction=(op is mom_reduce),
                )
            else:
                done = now + latency_of[op]
            if done < floor:
                done = floor
            lst = wake.get(done)
            if lst is None:
                wake[done] = [entry]
            else:
                lst.append(entry)
        queue.occupancy = q_occ
        queue.issued_total = q_issued
        if taken:
            issued += taken
            if is_simd:
                issued_vector = True
            else:
                issued_scalar = True

    # ---- dispatch: rename and insert decoded instructions.
    budget = config.dispatch_width
    dispatched = 0
    queue_of_op = self._queue_of_op
    win_cap = window.capacity
    # Round-robin, one instruction per thread per pass; stall conditions
    # are monotone within a cycle, so a stalled thread drops out.
    live = [t for t in order if threads[t].decode]
    while budget > 0 and live:
        next_live = []
        for thread in live:
            if budget == 0:
                break
            ctx = threads[thread]
            decode = ctx.decode
            if not decode:
                continue
            packed = decode[0]
            idx = packed >> 1
            op = ctx.t_ops[idx]
            queue = queue_of_op[op]
            if queue.occupancy >= queue.capacity or win_occ >= win_cap:
                continue
            dst = ctx.t_dsts[idx]
            if dst >= 0 and pools[dst >> _CLASS_SHIFT] <= 0:
                continue
            decode.popleft()
            slot = free_slots.pop()
            s_state[slot] = _STATE_WAITING
            s_misp[slot] = packed & 1
            s_thread[slot] = thread
            s_op[slot] = op
            s_dst[slot] = dst
            s_weight[slot] = ctx.t_weights[idx]
            s_addr[slot] = ctx.t_addrs[idx]
            s_stride[slot] = ctx.t_strides[idx]
            s_queue[slot] = queue
            rename = ctx.rename
            deps = 0
            for src in ctx.t_srcs[idx]:
                producer = rename[src]
                if producer >= 0 and s_state[producer] != _STATE_DONE:
                    deps += 1
                    s_waiters[producer].append(slot)
            s_deps[slot] = deps
            if dst >= 0:
                pools[dst >> _CLASS_SHIFT] -= 1
                rename[dst] = slot
            fifos[thread].append(slot)
            win_occ += 1
            queue.occupancy += 1
            if deps == 0:
                queue.ready.append(slot)
            budget -= 1
            dispatched += 1
            next_live.append(thread)
        live = next_live
    window.occupancy = win_occ

    # ---- fetch: pull instruction groups into the decode buffers.
    groups = 0
    fetched = 0
    fetch_groups = config.fetch_groups
    group_size = config.fetch_group_size
    decode_room = self._decode_room
    memory_fetch = memory.fetch
    predict = predictor.predict_and_update
    if self.fetch_policy is not FetchPolicy.RR:
        order = self._fetch_order()
    for thread in order:
        if groups == fetch_groups:
            break
        ctx = threads[thread]
        idx = ctx.fetch_idx
        if ctx.trace is None or idx >= ctx.trace_len:
            continue
        if ctx.fetch_blocked:
            # Wrong-path fetch: the thread keeps consuming fetch slots
            # on instructions that will be squashed.
            groups += 1
            continue
        decode = ctx.decode
        if ctx.fetch_stall_until > now:
            continue
        if len(decode) > decode_room:
            continue
        groups += 1
        pcs = ctx.t_pcs
        ops = ctx.t_ops
        takens = ctx.t_takens
        weights = ctx.t_weights
        branch_flags = ctx.t_br
        simd_flags = ctx.t_simd
        trace_len = ctx.trace_len
        pc = pcs[idx]
        ready = memory_fetch(thread, pc, now)
        if ready > now + 2:
            # A genuine I-cache miss: stall the thread until the fill
            # arrives (one-cycle bank conflicts are absorbed in place).
            ctx.fetch_stall_until = ready
            continue
        took_vector = False
        group_line = pc >> 5
        inflight_insts = 0
        inflight_ops = 0
        for __ in range(group_size):
            if idx >= trace_len:
                break
            pc = pcs[idx]
            if pc >> 5 != group_line:
                # Fetch groups cannot cross an I-cache line boundary.
                break
            mispredicted = False
            taken_branch = False
            if branch_flags[idx]:
                taken_branch = takens[idx]
                mispredicted = not predict(thread, pc, taken_branch)
            decode.append((idx << 1) | mispredicted)
            inflight_insts += 1
            inflight_ops += weights[idx]
            fetched += 1
            if simd_flags[idx]:
                took_vector = True
            idx += 1
            if mispredicted:
                ctx.fetch_blocked = True
                break
            if taken_branch:
                break
        ctx.fetch_idx = idx
        ctx.inflight_insts += inflight_insts
        ctx.inflight_ops += inflight_ops
        ctx.fetched_vector_last = took_vector

    if issued:
        self.active_cycles += 1
        if issued_vector and not issued_scalar:
            self.vector_only_cycles += 1
    self._rotation += 1
    self.now = now + 1
    return bool(
        completed or committed_any or issued or dispatched or fetched
    )
