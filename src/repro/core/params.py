"""Machine configuration and Table 1 resource scaling.

The paper sized physical register files and instruction windows by
preliminary simulation "to achieve reasonable (near saturation) processor
performance for 1, 2, 4 and 8 threads" (their Table 1, largely illegible
in the scanned copy).  ``scaled_resources`` encodes our equivalent sizing,
validated by the saturation-sweep ablation bench
(``benchmarks/bench_table1_scaling.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.registers import RegisterClass


@dataclass(frozen=True)
class Resources:
    """Shared renaming/window resources for one thread count."""

    rename_regs: dict[RegisterClass, int]
    queue_sizes: dict[str, int]          # keys: int, fp, mem, simd
    graduation_window: int


#: Near-saturation resource sizing per thread count (our Table 1).
_RESOURCE_TABLE: dict[int, Resources] = {
    1: Resources(
        rename_regs={
            RegisterClass.INT: 48,
            RegisterClass.FP: 32,
            RegisterClass.MMX: 32,
            RegisterClass.STREAM: 16,
            RegisterClass.ACC: 4,
        },
        queue_sizes={"int": 32, "fp": 16, "mem": 32, "simd": 16},
        graduation_window=64,
    ),
    2: Resources(
        rename_regs={
            RegisterClass.INT: 80,
            RegisterClass.FP: 48,
            RegisterClass.MMX: 48,
            RegisterClass.STREAM: 24,
            RegisterClass.ACC: 8,
        },
        queue_sizes={"int": 36, "fp": 20, "mem": 36, "simd": 20},
        graduation_window=96,
    ),
    4: Resources(
        rename_regs={
            RegisterClass.INT: 144,
            RegisterClass.FP: 80,
            RegisterClass.MMX: 80,
            RegisterClass.STREAM: 40,
            RegisterClass.ACC: 16,
        },
        queue_sizes={"int": 40, "fp": 24, "mem": 40, "simd": 24},
        graduation_window=160,
    ),
    8: Resources(
        rename_regs={
            RegisterClass.INT: 256,
            RegisterClass.FP: 128,
            RegisterClass.MMX: 128,
            RegisterClass.STREAM: 64,
            RegisterClass.ACC: 24,
        },
        queue_sizes={"int": 48, "fp": 32, "mem": 48, "simd": 32},
        graduation_window=224,
    ),
}


def scaled_resources(n_threads: int) -> Resources:
    """Table 1 resources for a thread count (interpolating odd counts)."""
    if n_threads in _RESOURCE_TABLE:
        return _RESOURCE_TABLE[n_threads]
    for candidate in sorted(_RESOURCE_TABLE):
        if candidate >= n_threads:
            return _RESOURCE_TABLE[candidate]
    return _RESOURCE_TABLE[max(_RESOURCE_TABLE)]


@dataclass(frozen=True)
class SMTConfig:
    """Full machine configuration (paper section 3).

    The core fetches up to two groups of four instructions per cycle,
    issues up to 4 integer, 4 memory and 4 FP operations per cycle, and —
    depending on the ISA — up to 2 MMX instructions per cycle (two packed
    FUs) or 1 MOM instruction per cycle into a vector unit with two
    parallel pipes.
    """

    isa: str = "mmx"
    n_threads: int = 1
    fetch_groups: int = 2
    fetch_group_size: int = 4
    dispatch_width: int = 8
    commit_width: int = 8
    issue_int: int = 4
    issue_mem: int = 4
    issue_fp: int = 4
    #: SIMD queue issue width: 2 for MMX (two FUs), 1 for MOM.
    issue_simd: int = field(default=-1)
    #: Parallel pipes of the MOM vector unit (sub-instructions per cycle).
    vector_lanes: int = 2
    decode_buffer: int = 16
    mispredict_redirect: int = 3
    resources: Resources = field(default=None)
    #: Enable the runtime invariant sanitizer
    #: (:mod:`repro.verify.sanitizer`).  Off by default: when disabled
    #: the hooks are a single attribute test, so there is no overhead.
    sanitize: bool = False
    #: Statistical sampling (SMARTS-style): ``(ff_len, window_len,
    #: warmup_len)`` in committed (stream-expanded) instructions.  The
    #: run alternates a functional fast-forward of ``ff_len``
    #: instructions (branch predictor and cache tags warmed, no pipeline
    #: timing) with a detailed stretch of ``warmup_len`` unmeasured plus
    #: ``window_len`` measured instructions; per-window EIPC samples are
    #: aggregated into a mean and 95 % confidence interval.  ``None``
    #: (the default) runs full detail end to end.
    sampling: tuple[int, int, int] | None = None
    #: Observability (:mod:`repro.obs`): ``None`` (default) disables all
    #: event collection — every hook is a single attribute test, the
    #: same zero-overhead contract as ``sanitize``.  ``True`` records
    #: the full pipeline event stream, ``"metrics"`` keeps only the
    #: metrics registry, or pass a ready
    #: :class:`~repro.obs.events.PipelineObserver`.
    observe: object = None
    #: Pipeline engine selection.  ``"object"`` runs the reference
    #: engine (:class:`~repro.core.smt.SMTProcessor` object graph);
    #: ``"flat"`` runs the table-driven flat-buffer engine
    #: (:mod:`repro.core.engine_flat`), bit-identical by contract;
    #: ``"auto"`` (the default) picks the flat engine only when its
    #: compiled kernel is installed, else the object engine.  Runs with
    #: ``sanitize`` or ``observe`` enabled always use the object engine
    #: (the hooks only exist there; see docs/MODEL.md).
    backend: str = "auto"

    def __post_init__(self):
        if self.backend not in ("object", "flat", "auto"):
            raise ValueError(
                "backend must be 'object', 'flat' or 'auto', "
                f"not {self.backend!r}"
            )
        if self.observe not in (None, True, False, "metrics") and not hasattr(
            self.observe, "on_fetch"
        ):
            raise ValueError(
                "observe must be None, True, 'metrics', or a "
                f"PipelineObserver-like object, not {self.observe!r}"
            )
        if self.isa not in ("mmx", "mom"):
            raise ValueError(f"unknown ISA {self.isa!r}")
        if self.n_threads < 1:
            raise ValueError("need at least one thread context")
        if self.sampling is not None:
            sampling = tuple(int(v) for v in self.sampling)
            if len(sampling) != 3:
                raise ValueError(
                    "sampling must be (ff_len, window_len, warmup_len)"
                )
            ff_len, window_len, warmup_len = sampling
            if window_len < 1:
                raise ValueError("sampling window must be positive")
            if ff_len < 0 or warmup_len < 0:
                raise ValueError("sampling lengths must be non-negative")
            object.__setattr__(self, "sampling", sampling)
        if self.issue_simd == -1:
            object.__setattr__(
                self, "issue_simd", 2 if self.isa == "mmx" else 1
            )
        if self.resources is None:
            object.__setattr__(
                self, "resources", scaled_resources(self.n_threads)
            )

    @property
    def fetch_width(self) -> int:
        return self.fetch_groups * self.fetch_group_size
