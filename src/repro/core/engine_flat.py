"""Table-driven flat-buffer pipeline engine (``backend="flat"``).

:class:`FlatSMTProcessor` is a drop-in engine for
:class:`~repro.core.smt.SMTProcessor` whose per-cycle architectural
state lives in preallocated flat buffers indexed by integer slot ids
instead of per-instruction Python objects.  The cycle kernel itself is
:func:`repro.core._flatstep.flat_step` — a module-level function so the
optional compiled build (``pip install .[compiled]`` +
``scripts/build_flat_backend.py``) can replace it with a
mypyc/Cython-compiled ``repro.core._flatstep_c`` without compiling the
interpreted class hierarchy.

Selection is driven by :attr:`SMTConfig.backend
<repro.core.params.SMTConfig>`:

* ``"object"`` — always the reference object engine.
* ``"flat"`` — this engine (pure-Python kernel when the compiled
  module is absent).
* ``"auto"`` (default) — this engine only when the compiled kernel is
  installed, else the object engine; a missing or broken compiled
  build degrades cleanly with no behavior change (the contract is
  bit-identity either way).

Runs with ``sanitize=True`` or ``observe`` set always use the object
engine: the sanitizer/observer hooks exist only there, and silently
dropping events would be worse than the overhead the flat engine
removes.  The forced fallback lives in ``SMTProcessor.__new__`` and is
audited by ``tests/test_engine_flat.py``; see docs/MODEL.md
("Compiled backend").

Everything outside ``step()`` — the run drivers, sampled-chunk
schedule, fast-forward, drain, result assembly — is inherited
unchanged from the object engine and operates on the same shared
structures (issue queues, graduation window, thread contexts), which
the flat kernel keeps bit-exactly in sync.
"""

from __future__ import annotations

from array import array

from repro.core.smt import _RENAME_SLOTS, SMTProcessor, ThreadContext
from repro.isa.registers import RegisterClass
from repro.tracegen.program import Trace

try:  # pragma: no cover - exercised via subprocess in the fallback test
    from repro.core._flatstep_c import flat_step as _flat_step

    COMPILED = True
except ImportError:
    from repro.core._flatstep import flat_step as _flat_step

    COMPILED = False

from repro.core._flatstep import trace_tables


def resolve_flat_engine(backend: str) -> type | None:
    """Engine class for ``backend``, or ``None`` for the object engine.

    ``"flat"`` always selects :class:`FlatSMTProcessor` (pure-Python
    kernel if need be); ``"auto"`` selects it only when the compiled
    kernel imported successfully.
    """
    if backend == "flat" or (backend == "auto" and COMPILED):
        return FlatSMTProcessor
    return None


class FlatThreadContext(ThreadContext):
    """Thread context whose rename map and trace views are flat tables.

    The rename map holds integer slot ids with ``-1`` for "no live
    producer" (the object engine holds ``InFlight`` references with
    ``None``), and each assigned trace is mirrored by the memoized
    per-instruction tuples from :func:`repro.core._flatstep.trace_tables`
    so the kernel never reads ``Instruction`` attributes.
    """

    __slots__ = (
        "t_ops",
        "t_pcs",
        "t_dsts",
        "t_srcs",
        "t_addrs",
        "t_strides",
        "t_weights",
        "t_takens",
        "t_br",
        "t_simd",
    )

    def __init__(self, index: int):
        super().__init__(index)
        self.rename = [-1] * _RENAME_SLOTS
        self.t_ops = ()
        self.t_pcs = ()
        self.t_dsts = ()
        self.t_srcs = ()
        self.t_addrs = ()
        self.t_strides = ()
        self.t_weights = ()
        self.t_takens = ()
        self.t_br = ()
        self.t_simd = ()

    def assign(self, trace: Trace) -> None:
        super().assign(trace)
        self.rename = [-1] * _RENAME_SLOTS
        (
            _,
            self.t_ops,
            self.t_pcs,
            self.t_dsts,
            self.t_srcs,
            self.t_addrs,
            self.t_strides,
            self.t_weights,
            self.t_takens,
            self.t_br,
            self.t_simd,
        ) = trace_tables(trace)


class FlatSMTProcessor(SMTProcessor):
    """SMT processor with the flat-buffer cycle kernel.

    Construction, run drivers and result assembly are inherited; only
    the per-cycle ``step()`` and the state it touches are replaced.
    Slot tables are sized to the graduation window: dispatch is gated
    on window occupancy, and every dispatched instruction occupies
    exactly one window entry until commit, so live slots can never
    exceed the window capacity and the free list can never underflow.
    """

    def __init__(self, config, memory, traces, *args, **kwargs):
        if config.sanitize or (
            config.observe is not None and config.observe is not False
        ):
            raise ValueError(
                "the flat engine has no sanitizer/observer hooks; "
                "sanitize/observe runs must use the object engine "
                "(SMTConfig(backend='object'), which backend='auto'/'flat' "
                "dispatch already forces for such configs)"
            )
        super().__init__(config, memory, traces, *args, **kwargs)
        self._flatten_threads()
        self._build_flat_state()

    def _flatten_threads(self) -> None:
        """Swap freshly-built ThreadContexts for flat equivalents.

        Only valid right after construction or ``_reset_run_state``,
        when every context is at its pristine post-``assign`` state
        (``fetch_idx`` 0, decode empty, nothing in flight) — the swap
        re-runs ``assign`` on the same trace, which reproduces that
        state exactly.
        """
        flat = []
        for ctx in self.threads:
            fctx = FlatThreadContext(ctx.index)
            if ctx.trace is not None:
                fctx.assign(ctx.trace)
            flat.append(fctx)
        self.threads = flat

    def _build_flat_state(self) -> None:
        capacity = self.window.capacity
        zeros = array("q", [0]) * capacity
        #: per-slot scalar state: 64-bit signed flat buffers.
        self._slot_state = array("q", zeros)
        self._slot_deps = array("q", zeros)
        self._slot_mispredicted = array("q", zeros)
        self._slot_thread = array("q", zeros)
        self._slot_dst = array("q", zeros)
        self._slot_weight = array("q", zeros)
        self._slot_addr = array("q", zeros)
        self._slot_stride = array("q", zeros)
        #: per-slot object state: opcode enum, issue-queue reference,
        #: and the reused (cleared-on-complete) waiter lists.
        self._slot_op = [None] * capacity
        self._slot_queue = [None] * capacity
        self._slot_waiters = [[] for _ in range(capacity)]
        self._free_slots = list(range(capacity - 1, -1, -1))
        #: rename pools as a flat list indexed by the register class
        #: (the object engine's ``pools`` dict stays untouched/unused).
        table = [0] * len(RegisterClass)
        for cls, count in self.config.resources.rename_regs.items():
            table[cls] = count
        self._pool_table = table

    def _reset_run_state(self) -> None:
        super()._reset_run_state()
        self._flatten_threads()
        self._build_flat_state()

    def step(self) -> bool:
        return _flat_step(self)
