"""Deterministic fault injection for the experiment run engine.

Large simulation sweeps only earn trust in their fault handling when
every failure path is exercised on purpose.  This module lets tests and
the ``chaos-smoke`` CI job make a chosen fraction of runs *hang*,
*crash their worker process*, or *corrupt their cache entry* — all
deterministically, so a chaos run is exactly reproducible:

* A :class:`FaultPlan` assigns each run a uniform draw derived from
  ``sha256(seed, salt, fingerprint)``.  The same seed and the same run
  fingerprint always produce the same fault, independent of scheduling,
  process layout or wall-clock time.
* Faults fire only on the plan's ``fault_attempt`` (default: the first
  attempt), so a retried run succeeds and the sweep converges to the
  same bit-identical results as a fault-free run.
* Plans propagate to worker processes through the
  ``REPRO_FAULTINJECT`` environment variable; :func:`install` sets (or
  clears) both the in-process plan and the variable.

The hooks are called by :mod:`repro.analysis.runner`:
:func:`fire_execution_fault` at the top of every simulation attempt and
:func:`corrupt_cache_entry` after every result-cache write.  With no
plan installed both are a single ``None`` check.

Fault semantics:

* ``hang`` — the attempt sleeps ``hang_seconds`` before proceeding.
  In a worker process the resilience layer's wall-clock timeout kills
  the worker long before the sleep ends; in-process (serial) execution
  has no preemption, so the sleep is finite and the run then completes
  normally.
* ``crash`` — in a worker process the attempt calls ``os._exit`` (the
  worker dies exactly like an OOM kill or segfault and the pool
  breaks); in-process it raises :class:`SimulatedWorkerCrash`, which
  the resilience layer classifies as transient.
* ``corrupt`` — the just-written cache entry is overwritten with a
  truncated, checksum-violating payload, exercising the quarantine
  path on the next read.
* ``disconnect`` — a service-layer fault: the sweep server consults
  :meth:`FaultPlan.drops_connection` before delivering a result frame
  and, on a hit, aborts the client's connection instead, exercising
  the reconnect/resubmit path (see ``repro.service``).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import asdict, dataclass

#: Environment variable carrying a JSON-serialized plan to workers.
ENV_VAR = "REPRO_FAULTINJECT"

#: Exit status of a worker killed by an injected crash (distinctive in
#: logs; any abnormal exit breaks the pool the same way).
CRASH_EXIT_CODE = 71

#: Bytes an injected corruption leaves in the victim file.  Valid JSON
#: in the cache's own envelope shape, on purpose: the corruption must be
#: caught by the checksum verification, not by lucky parse errors (and
#: not waved through as a pre-checksum legacy entry).
CORRUPT_PAYLOAD = (
    b'{"checksum": "faultinject", '
    b'"payload": {"faultinject": "corrupted cache entry"}}'
)


class SimulatedWorkerCrash(RuntimeError):
    """In-process stand-in for a worker process dying mid-run."""


@dataclass(frozen=True)
class FaultPlan:
    """Which runs fail, how, and on which attempt — all from a seed.

    ``hang_fraction + crash_fraction`` must not exceed 1; the two
    execution faults are carved from one uniform draw so a run never
    both hangs and crashes.  Cache corruption uses an independent draw.
    """

    seed: int = 0
    hang_fraction: float = 0.0
    crash_fraction: float = 0.0
    corrupt_fraction: float = 0.0
    #: Fraction of result deliveries the sweep service aborts mid-wire
    #: (independent draw, salt ``"net"``; no effect outside the
    #: service layer).
    disconnect_fraction: float = 0.0
    #: Attempt number (0-based) on which faults fire.
    fault_attempt: int = 0
    #: How long an injected hang sleeps.  Should comfortably exceed the
    #: resilience timeout so hangs are always timeout-killed in workers.
    hang_seconds: float = 600.0

    def __post_init__(self):
        for name in ("hang_fraction", "crash_fraction", "corrupt_fraction",
                     "disconnect_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.hang_fraction + self.crash_fraction > 1.0:
            raise ValueError(
                "hang_fraction + crash_fraction must not exceed 1"
            )

    def _draw(self, salt: str, fingerprint: str) -> float:
        """Uniform [0, 1) draw, a pure function of (seed, salt, key)."""
        blob = f"{self.seed}:{salt}:{fingerprint}".encode()
        digest = hashlib.sha256(blob).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def execution_fault(self, fingerprint: str, attempt: int) -> str | None:
        """``"crash"``, ``"hang"`` or ``None`` for this attempt."""
        if attempt != self.fault_attempt:
            return None
        draw = self._draw("run", fingerprint)
        if draw < self.crash_fraction:
            return "crash"
        if draw < self.crash_fraction + self.hang_fraction:
            return "hang"
        return None

    def corrupts_cache(self, fingerprint: str, attempt: int) -> bool:
        """Whether this attempt's cache write gets corrupted."""
        if attempt != self.fault_attempt:
            return False
        return self._draw("cache", fingerprint) < self.corrupt_fraction

    def drops_connection(self, fingerprint: str, attempt: int) -> bool:
        """Whether delivery number ``attempt`` of this result drops.

        ``attempt`` counts *deliveries* of the fingerprint (the sweep
        server keeps the count), not execution attempts — so with the
        default ``fault_attempt=0`` the first delivery is aborted and
        the redelivery after the client reconnects goes through,
        guaranteeing chaos runs converge.
        """
        if attempt != self.fault_attempt:
            return False
        return self._draw("net", fingerprint) < self.disconnect_fraction

    # ----- (de)serialization -------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        return cls(**json.loads(blob))


# ---------------------------------------------------------------- activation

_installed: FaultPlan | None = None
_env_cache: tuple[str, FaultPlan] | None = None


def install(plan: FaultPlan | None) -> FaultPlan | None:
    """Install (or, with ``None``, clear) the active plan.

    Also sets/clears :data:`ENV_VAR` so worker processes spawned after
    the call inherit the plan.  Returns the previously installed plan
    so tests can restore it.
    """
    global _installed
    previous = _installed
    _installed = plan
    if plan is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = plan.to_json()
    return previous


def active_plan() -> FaultPlan | None:
    """The installed plan, else one parsed from the environment.

    A malformed environment value raises immediately — a chaos run with
    a typo'd plan must not silently run fault-free.
    """
    global _env_cache
    if _installed is not None:
        return _installed
    blob = os.environ.get(ENV_VAR)
    if not blob:
        return None
    if _env_cache is not None and _env_cache[0] == blob:
        return _env_cache[1]
    plan = FaultPlan.from_json(blob)
    _env_cache = (blob, plan)
    return plan


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


# ---------------------------------------------------------------- fire hooks


def fire_execution_fault(fingerprint: str, attempt: int) -> None:
    """Hook called at the top of every simulation attempt."""
    plan = active_plan()
    if plan is None:
        return
    fault = plan.execution_fault(fingerprint, attempt)
    if fault == "crash":
        if _in_worker_process():
            os._exit(CRASH_EXIT_CODE)
        raise SimulatedWorkerCrash(
            f"injected crash (fingerprint {fingerprint[:12]}, "
            f"attempt {attempt})"
        )
    if fault == "hang":
        time.sleep(plan.hang_seconds)


def corrupt_cache_entry(path: str, fingerprint: str, attempt: int) -> bool:
    """Hook called after every result-cache write; True if corrupted."""
    plan = active_plan()
    if plan is None or not plan.corrupts_cache(fingerprint, attempt):
        return False
    with open(path, "wb") as handle:
        handle.write(CORRUPT_PAYLOAD)
    return True
