"""Validation of dynamic traces produced by :mod:`repro.tracegen`.

A malformed trace (a register identifier outside the logical pools, a
stream length on a scalar opcode, a SIMD class in a trace declared
scalar-only) makes the simulator silently model the wrong machine.  This
checker validates a :class:`~repro.tracegen.program.Trace` — whether
freshly built or loaded through :mod:`repro.tracegen.serialize` —
against the ISA's static structure:

* every ``dst``/``srcs`` register identifier (the trace's dependency
  indices) decodes to a known class and an in-range architectural index;
* stream lengths are within 1..16 and only stream opcode classes carry
  a length greater than one;
* opcode classes are consistent with the trace's declared ISA
  (``"mmx"`` traces must not contain MOM classes and vice versa, and a
  scalar-only check is available for scalar configurations);
* memory operations have sensible sizes, multi-element stream memory
  operations a non-zero stride;
* the workload mix the trace was built from has class fractions that
  sum to one.
"""

from __future__ import annotations

from repro.isa.mom import MOM_MAX_STREAM_LENGTH
from repro.isa.opcodes import Opcode
from repro.isa.registers import (
    LOGICAL_COUNTS,
    NO_REG,
    reg_class,
    reg_index,
)
from repro.tracegen.program import Trace
from repro.verify.diagnostics import Diagnostic, error, warning

CHECKER = "tracecheck"

_MMX_ONLY = frozenset(
    {Opcode.MMX_ALU, Opcode.MMX_MUL, Opcode.MMX_LOAD, Opcode.MMX_STORE}
)
_MOM_ONLY = frozenset(
    {
        Opcode.MOM_ALU, Opcode.MOM_MUL, Opcode.MOM_LOAD, Opcode.MOM_STORE,
        Opcode.MOM_REDUCE, Opcode.MOM_SETSLR,
    }
)

#: Opcode classes permitted per declared trace ISA.
FORBIDDEN_CLASSES: dict[str, frozenset[Opcode]] = {
    "mmx": _MOM_ONLY,
    "mom": _MMX_ONLY,
    "scalar": _MMX_ONLY | _MOM_ONLY,
}


def _check_reg(reg: int) -> str | None:
    """None if the identifier decodes cleanly, else a description."""
    if reg < 0:
        return f"negative register identifier {reg}"
    try:
        rclass = reg_class(reg)
    except ValueError:
        return f"identifier {reg:#x} has unknown register class"
    index = reg_index(reg)
    limit = LOGICAL_COUNTS[rclass]
    if index >= limit:
        return (
            f"{rclass.name} index {index} out of range "
            f"(class has {limit} registers)"
        )
    return None


def check_instructions(trace: Trace) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    name = trace.name
    forbidden = FORBIDDEN_CLASSES.get(trace.isa)
    if forbidden is None:
        findings.append(error(
            CHECKER, "TRACE-ISA",
            f"unknown trace ISA {trace.isa!r}",
            location=name,
        ))
        forbidden = frozenset()

    for position, inst in enumerate(trace.instructions, start=1):
        if inst.op in forbidden:
            findings.append(error(
                CHECKER, "TRACE-CLASS-FORBIDDEN",
                f"{inst.op.name} not allowed in an {trace.isa!r} trace",
                location=name, line=position,
            ))
        if inst.dst != NO_REG:
            problem = _check_reg(inst.dst)
            if problem is not None:
                findings.append(error(
                    CHECKER, "TRACE-DST-RANGE",
                    f"{inst.op.name} dst: {problem}",
                    location=name, line=position,
                ))
        for src in inst.srcs:
            problem = _check_reg(src)
            if problem is not None:
                findings.append(error(
                    CHECKER, "TRACE-SRC-RANGE",
                    f"{inst.op.name} src: {problem}",
                    location=name, line=position,
                ))
        if not 1 <= inst.stream_length <= MOM_MAX_STREAM_LENGTH:
            findings.append(error(
                CHECKER, "TRACE-STREAM-LENGTH",
                f"{inst.op.name} stream_length {inst.stream_length} "
                f"outside 1..{MOM_MAX_STREAM_LENGTH}",
                location=name, line=position,
            ))
        elif inst.stream_length > 1 and not inst.is_stream:
            findings.append(error(
                CHECKER, "TRACE-STREAM-SCALAR",
                f"{inst.op.name} is not a stream class but carries "
                f"stream_length {inst.stream_length}",
                location=name, line=position,
            ))
        if inst.is_mem:
            if inst.mem_size <= 0:
                findings.append(error(
                    CHECKER, "TRACE-MEM-SIZE",
                    f"{inst.op.name} has non-positive mem_size "
                    f"{inst.mem_size}",
                    location=name, line=position,
                ))
            if inst.stream_length > 1 and inst.stride == 0:
                findings.append(warning(
                    CHECKER, "TRACE-ZERO-STRIDE",
                    f"{inst.op.name} touches {inst.stream_length} "
                    "elements with stride 0 (all the same address)",
                    location=name, line=position,
                ))
    return findings


def check_mix(trace: Trace) -> list[Diagnostic]:
    """The mix a trace was built from must have fractions summing to 1."""
    findings: list[Diagnostic] = []
    mix = trace.mix
    total = mix.frac_int + mix.frac_fp + mix.frac_mem + mix.frac_simd
    if abs(total - 1.0) > 1e-6:
        findings.append(error(
            CHECKER, "TRACE-MIX-SUM",
            f"mix fractions sum to {total:.6f}, expected 1.0",
            location=trace.name,
        ))
    if trace.mmx_equivalent <= 0:
        findings.append(error(
            CHECKER, "TRACE-MMX-EQUIV",
            f"mmx_equivalent must be positive, got {trace.mmx_equivalent}",
            location=trace.name,
        ))
    return findings


def check_trace(trace: Trace) -> list[Diagnostic]:
    """Run every trace validation check on one trace."""
    findings = check_mix(trace)
    findings.extend(check_instructions(trace))
    return findings
