"""Structured diagnostics shared by all static checkers.

Every checker in :mod:`repro.verify` returns a list of
:class:`Diagnostic` records rather than printing or raising, so callers
(the test suite, ``scripts/verify_tool.py``, CI) can filter by severity,
count by checker, or render with source locations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How bad a finding is; only ``ERROR`` fails a verification run."""

    WARNING = 0
    ERROR = 1


@dataclass(frozen=True)
class Diagnostic:
    """One checker finding, with enough structure to locate and triage it.

    ``checker`` names the producing checker (``asmcheck``, ``isacheck``,
    ``tracecheck``); ``code`` is a short stable identifier for the rule
    (``ASM-DEF-BEFORE-USE``, ``ISA-COUNT``, ...); ``location`` is a
    human-readable anchor (a program name, a mnemonic, a trace name) and
    ``line`` the 1-based source line for assembly findings.
    """

    checker: str
    code: str
    message: str
    severity: Severity = Severity.ERROR
    location: str | None = None
    line: int | None = None

    def __str__(self) -> str:
        where = self.location or ""
        if self.line is not None:
            where = f"{where}:{self.line}" if where else f"line {self.line}"
        tag = "error" if self.severity is Severity.ERROR else "warning"
        prefix = f"{where}: " if where else ""
        return f"{prefix}{tag}: [{self.code}] {self.message}"


@dataclass
class Report:
    """An accumulating collection of diagnostics from one or more checkers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, findings: list[Diagnostic]) -> None:
        self.diagnostics.extend(findings)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostics were collected."""
        return not self.errors

    def render(self) -> str:
        """All diagnostics, one per line, errors first."""
        ordered = sorted(
            self.diagnostics, key=lambda d: (-int(d.severity), str(d))
        )
        return "\n".join(str(d) for d in ordered)


def error(checker: str, code: str, message: str, *,
          location: str | None = None, line: int | None = None) -> Diagnostic:
    """Shorthand for an ERROR diagnostic."""
    return Diagnostic(checker, code, message, Severity.ERROR, location, line)


def warning(checker: str, code: str, message: str, *,
            location: str | None = None, line: int | None = None) -> Diagnostic:
    """Shorthand for a WARNING diagnostic."""
    return Diagnostic(checker, code, message, Severity.WARNING, location, line)
