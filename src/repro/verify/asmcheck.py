"""Static linter for MOM/MMX assembly programs.

Checks performed (all reported as structured diagnostics, never raised):

* unknown mnemonics, operand arity and operand register classes against
  the ISA tables (:mod:`repro.isa.mmx`, :mod:`repro.isa.mom`);
* register indices within each class's logical count;
* def-before-use for ``r``/``mm``/``v``/``a`` registers (linear
  program-order pass; the ``pxor mm0, mm0, mm0`` self-xor zeroing idiom
  counts as a definition);
* stream-length register set (``setslri``/``mtslr``) before any stream
  load, store or prefetch;
* accumulator discipline: reading (``vrdacc*``) an accumulator that was
  never written is an error, accumulating into one never cleared is a
  warning;
* control flow: ``loop``/``jmp`` targets must exist, defined labels
  should be targeted by something.

Two front ends share the same rule engine: :func:`lint_source` parses
assembly text (keeping line numbers and register-class prefixes), while
:func:`lint_program` checks an already-assembled
:class:`~repro.isa.assembler.Program`, recovering operand classes
positionally from the mnemonic signatures (the assembler erases the
class prefixes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import Program
from repro.isa.machine import (
    CONTROL_MNEMONICS,
    SCALAR_MNEMONICS,
)
from repro.isa.mmx import MMX_LOGICAL_REGISTERS, MMX_OPCODES
from repro.isa.mom import (
    MOM_ACCUMULATORS,
    MOM_MAX_STREAM_LENGTH,
    MOM_OPCODES,
    MOM_STREAM_REGISTERS,
)
from repro.verify.diagnostics import Diagnostic, error, warning

CHECKER = "asmcheck"

# Operand roles within a signature.
DEF, USE, BOTH, IMM = "def", "use", "both", "imm"

#: Logical register count per operand class prefix.
REGISTER_LIMITS = {
    "r": 32,
    "mm": MMX_LOGICAL_REGISTERS,
    "v": MOM_STREAM_REGISTERS,
    "a": MOM_ACCUMULATORS,
}

#: Mnemonics whose all-operands-identical form architecturally zeroes
#: the destination, making it a definition rather than a use.
ZEROING_IDIOMS = frozenset(
    {"pxor", "vxor", "psubb", "psubw", "psubd", "vsubb", "vsubw", "vsubd"}
)

#: Stream memory operations that consume the stream-length register.
_STREAM_MEMORY = frozenset(
    {
        "vldq", "vldw", "vldd", "vldb", "vldub", "vlduw", "vprefetch",
        "vstq", "vstw", "vstd", "vstb",
    }
)


@dataclass(frozen=True)
class Signature:
    """Expected operands of one mnemonic: (class, role) pairs."""

    required: tuple[tuple[str, str], ...]
    optional: tuple[tuple[str, str], ...] = ()

    @property
    def min_arity(self) -> int:
        return len(self.required)

    @property
    def max_arity(self) -> int:
        return len(self.required) + len(self.optional)

    def slots(self, count: int) -> tuple[tuple[str, str], ...]:
        """The (class, role) pairs covering ``count`` operands."""
        return (self.required + self.optional)[:count]


def _build_signatures() -> dict[str, Signature]:
    sigs: dict[str, Signature] = {
        # Scalar base ISA.
        "li": Signature((("r", DEF), ("imm", IMM))),
        "add": Signature((("r", DEF), ("r", USE), ("r", USE))),
        "sub": Signature((("r", DEF), ("r", USE), ("r", USE))),
        "mul": Signature((("r", DEF), ("r", USE), ("r", USE))),
        "addi": Signature((("r", DEF), ("r", USE), ("imm", IMM))),
        "ld": Signature((("r", DEF), ("r", USE), ("imm", IMM))),
        "st": Signature((("r", USE), ("r", USE), ("imm", IMM))),
        # Control flow (label operand handled separately).
        "loop": Signature((("r", BOTH),)),
        "jmp": Signature(()),
        # MMX memory and hint forms.
        "movq_ld": Signature((("mm", DEF), ("r", USE), ("imm", IMM))),
        "movd_ld": Signature((("mm", DEF), ("r", USE), ("imm", IMM))),
        "movq_st": Signature((("mm", USE), ("r", USE), ("imm", IMM))),
        "movd_st": Signature((("mm", USE), ("r", USE), ("imm", IMM))),
        "movntq": Signature((("mm", USE), ("r", USE), ("imm", IMM))),
        "prefetcht0": Signature((("r", USE), ("imm", IMM))),
        # MOM stream-length register.
        "setslri": Signature((("imm", IMM),)),
        "mtslr": Signature((("r", USE),)),
        "mfslr": Signature((("r", DEF),)),
        # MOM stream memory: dst/src, base register, offset [, stride].
        "vprefetch": Signature(
            (("r", USE), ("imm", IMM)), (("imm", IMM),)
        ),
        # MOM accumulator ops.
        "vclracc": Signature((("a", DEF),)),
        "vsadab": Signature((("a", BOTH), ("v", USE), ("v", USE))),
        "vmulaw": Signature((("a", BOTH), ("v", USE), ("v", USE))),
        "vmaddawd": Signature((("a", BOTH), ("v", USE), ("v", USE))),
        "vmsubawd": Signature((("a", BOTH), ("v", USE), ("v", USE))),
        # Whole-stream reductions into a scalar register.
        "vsadbw": Signature((("r", DEF), ("v", USE), ("v", USE))),
        # Moves between register classes.
        "vsplatq": Signature((("v", DEF), ("mm", USE))),
        "vmov": Signature((("v", DEF), ("v", USE))),
        "vzero": Signature((("v", DEF),)),
    }
    for mnemonic in ("vldq", "vldw", "vldd", "vldb", "vldub", "vlduw"):
        sigs[mnemonic] = Signature(
            (("v", DEF), ("r", USE), ("imm", IMM)), (("imm", IMM),)
        )
    for mnemonic in ("vstq", "vstw", "vstd", "vstb"):
        sigs[mnemonic] = Signature(
            (("v", USE), ("r", USE), ("imm", IMM)), (("imm", IMM),)
        )
    for prefix in ("vaddab", "vaddaw", "vaddad", "vsubab", "vsubaw", "vsubad"):
        sigs[prefix] = Signature((("a", BOTH), ("v", USE)))
    for suffix in ("sb", "sw", "sd", "ub", "uw", "ud"):
        sigs["vrdacc" + suffix] = Signature((("mm", DEF), ("a", USE)))
    for mnemonic in (
        "vsumb", "vsumw", "vsumd",
        "vminredb", "vminredw", "vminredd",
        "vmaxredb", "vmaxredw", "vmaxredd",
    ):
        sigs[mnemonic] = Signature((("r", DEF), ("v", USE)))
    # Everything else follows the generic register-to-register shape of
    # its table entry: dst + `sources` register sources + optional imm.
    for table, rclass in ((MMX_OPCODES, "mm"), (MOM_OPCODES, "v")):
        for mnemonic, spec in table.items():
            if mnemonic in sigs:
                continue
            required = ((rclass, DEF),) + ((rclass, USE),) * spec.sources
            optional = (("imm", IMM),) if spec.sources < 3 else ()
            sigs[mnemonic] = Signature(required, optional)
    return sigs


SIGNATURES: dict[str, Signature] = _build_signatures()


@dataclass(frozen=True)
class _Inst:
    """A lint-ready instruction: classed operands plus source anchor."""

    line: int
    mnemonic: str
    operands: tuple           # (class, value) pairs; class "imm" for literals
    label_target: str | None = None


def _known(mnemonic: str) -> bool:
    return (
        mnemonic in SCALAR_MNEMONICS
        or mnemonic in CONTROL_MNEMONICS
        or mnemonic in MMX_OPCODES
        or mnemonic in MOM_OPCODES
    )


def _lint_instructions(
    name: str,
    instructions: list[_Inst],
    labels: dict[str, int],
    *,
    classes_checked: bool,
) -> list[Diagnostic]:
    """The shared rule engine behind both front ends."""
    findings: list[Diagnostic] = []
    defined: dict[str, set[int]] = {cls: set() for cls in REGISTER_LIMITS}
    acc_written: set[int] = set()
    slr_set = False
    targeted: set[str] = set()

    def report(diag: Diagnostic) -> None:
        findings.append(diag)

    for inst in instructions:
        mnemonic = inst.mnemonic
        if not _known(mnemonic):
            report(error(
                CHECKER, "ASM-UNKNOWN-MNEMONIC",
                f"unknown mnemonic {mnemonic!r}",
                location=name, line=inst.line,
            ))
            continue

        if mnemonic in CONTROL_MNEMONICS:
            target = inst.label_target
            if target is None or target not in labels:
                report(error(
                    CHECKER, "ASM-UNDEF-LABEL",
                    f"{mnemonic} targets undefined label {target!r}",
                    location=name, line=inst.line,
                ))
            else:
                targeted.add(target)

        sig = SIGNATURES.get(mnemonic)
        if sig is None:                     # pragma: no cover - defensive
            continue
        count = len(inst.operands)
        if not sig.min_arity <= count <= sig.max_arity:
            expected = (
                str(sig.min_arity) if sig.min_arity == sig.max_arity
                else f"{sig.min_arity}..{sig.max_arity}"
            )
            report(error(
                CHECKER, "ASM-ARITY",
                f"{mnemonic} takes {expected} operands, got {count}",
                location=name, line=inst.line,
            ))
            continue

        slots = sig.slots(count)
        zeroing = (
            mnemonic in ZEROING_IDIOMS
            and len(set(inst.operands)) == 1
        )

        # Pass 1: class/range checks and uses against current defs.
        resolved: list[tuple[str, str, int]] = []   # (class, role, index)
        for position, ((cls, value), (want_cls, role)) in enumerate(
            zip(inst.operands, slots), start=1
        ):
            if classes_checked:
                if cls != want_cls:
                    shown = f"{cls}{value}" if cls != "imm" else str(value)
                    report(error(
                        CHECKER, "ASM-OPERAND-TYPE",
                        f"{mnemonic} operand {position} should be "
                        f"{want_cls!r}, got {shown!r}",
                        location=name, line=inst.line,
                    ))
                    continue
            if want_cls == "imm":
                continue
            index = value
            limit = REGISTER_LIMITS[want_cls]
            if not 0 <= index < limit:
                report(error(
                    CHECKER, "ASM-REG-RANGE",
                    f"{want_cls}{index} out of range (class has "
                    f"{limit} registers)",
                    location=name, line=inst.line,
                ))
                continue
            resolved.append((want_cls, role, index))

        for want_cls, role, index in resolved:
            if role in (USE, BOTH) and not zeroing:
                if want_cls == "a":
                    if index not in acc_written and role == USE:
                        report(error(
                            CHECKER, "ASM-ACC-READ-UNWRITTEN",
                            f"read of accumulator a{index} before any "
                            "write (vclracc or accumulate)",
                            location=name, line=inst.line,
                        ))
                    elif index not in acc_written:
                        report(warning(
                            CHECKER, "ASM-ACC-UNCLEARED",
                            f"accumulating into a{index} before vclracc; "
                            "initial contents are undefined",
                            location=name, line=inst.line,
                        ))
                elif index not in defined[want_cls]:
                    report(error(
                        CHECKER, "ASM-DEF-BEFORE-USE",
                        f"{want_cls}{index} read before any definition",
                        location=name, line=inst.line,
                    ))

        # SLR discipline: stream memory needs an explicit length first.
        if mnemonic in ("setslri", "mtslr"):
            slr_set = True
            if mnemonic == "setslri" and inst.operands:
                cls, value = inst.operands[0]
                if cls == "imm" and not 1 <= value <= MOM_MAX_STREAM_LENGTH:
                    report(error(
                        CHECKER, "ASM-SLR-RANGE",
                        f"setslri {value} outside "
                        f"1..{MOM_MAX_STREAM_LENGTH}",
                        location=name, line=inst.line,
                    ))
        elif mnemonic in _STREAM_MEMORY and not slr_set:
            report(error(
                CHECKER, "ASM-SLR-UNSET",
                f"{mnemonic} before the stream length register is set "
                "(setslri/mtslr)",
                location=name, line=inst.line,
            ))

        # Pass 2: record definitions (after uses of the same instruction).
        for want_cls, role, index in resolved:
            if role in (DEF, BOTH) or zeroing:
                if want_cls == "a":
                    acc_written.add(index)
                else:
                    defined[want_cls].add(index)

    for label in sorted(set(labels) - targeted):
        report(warning(
            CHECKER, "ASM-UNUSED-LABEL",
            f"label {label!r} is never targeted",
            location=name,
            line=None,
        ))
    return findings


# ----- source front end ------------------------------------------------------


def _parse_operand_token(token: str) -> tuple[str, int] | None:
    for prefix in ("mm", "r", "v", "a"):
        if token.startswith(prefix) and token[len(prefix):].isdigit():
            return prefix, int(token[len(prefix):])
    try:
        return "imm", int(token, 0)
    except ValueError:
        return None


def lint_source(source: str, name: str = "<asm>") -> list[Diagnostic]:
    """Lint assembly source text, with line-accurate diagnostics."""
    findings: list[Diagnostic] = []
    instructions: list[_Inst] = []
    labels: dict[str, int] = {}

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label.isidentifier():
                findings.append(error(
                    CHECKER, "ASM-BAD-LABEL",
                    f"malformed label {label!r}",
                    location=name, line=line_no,
                ))
            elif label in labels:
                findings.append(error(
                    CHECKER, "ASM-DUP-LABEL",
                    f"duplicate label {label!r}",
                    location=name, line=line_no,
                ))
            else:
                labels[label] = len(instructions)
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        tokens = [
            t for t in (s.strip() for s in (
                parts[1].split(",") if len(parts) > 1 else []
            )) if t
        ]
        label_target = None
        if mnemonic in CONTROL_MNEMONICS and tokens:
            label_target = tokens.pop()     # last operand is the label
        operands = []
        bad = False
        for token in tokens:
            parsed = _parse_operand_token(token)
            if parsed is None:
                findings.append(error(
                    CHECKER, "ASM-BAD-OPERAND",
                    f"cannot parse operand {token!r}",
                    location=name, line=line_no,
                ))
                bad = True
                break
            operands.append(parsed)
        if bad:
            continue
        instructions.append(
            _Inst(line_no, mnemonic, tuple(operands), label_target)
        )

    findings.extend(_lint_instructions(
        name, instructions, labels, classes_checked=True
    ))
    return findings


# ----- program front end -----------------------------------------------------


def lint_program(program: Program, name: str = "<program>") -> list[Diagnostic]:
    """Lint an assembled Program.

    The assembler erases register-class prefixes, so operand classes are
    recovered positionally from the mnemonic signature; class-mismatch
    checks are only possible on source text.
    """
    instructions: list[_Inst] = []
    for index, inst in enumerate(program.instructions):
        sig = SIGNATURES.get(inst.mnemonic)
        slots = (
            sig.slots(len(inst.operands)) if sig is not None else ()
        )
        operands = []
        for position, value in enumerate(inst.operands):
            cls = slots[position][0] if position < len(slots) else "imm"
            operands.append((cls, value))
        instructions.append(_Inst(
            index + 1, inst.mnemonic, tuple(operands), inst.label_target
        ))
    return _lint_instructions(
        name, instructions, dict(program.labels), classes_checked=False
    )
