"""Opt-in runtime invariant checking for the cycle-level core.

Enabled with ``SMTConfig(sanitize=True)``; disabled (the default) the
hooks are a single ``is None`` test on a component attribute, so the
simulator's hot loops keep their speed.  When enabled, the sanitizer is
attached to the graduation window, the issue queues and the memory
hierarchy's MSHR files and write buffers, and raises a structured
:class:`InvariantViolation` the moment a microarchitectural invariant
breaks — rather than letting a modeling bug silently skew results:

* **retirement order** — entries leave the graduation window in
  per-thread program order (the paper's per-thread in-order graduate);
* **window/queue occupancy** — shared-capacity structures never exceed
  capacity, and their occupancy counters agree with their contents;
* **MSHR leaks** — a cache never tracks more outstanding misses than it
  has MSHRs, and no fill is pending past the end of the run;
* **write-buffer drain** — the coalescing buffer never exceeds its
  depth and fully drains within its worst-case horizon;
* **stream bypass** — under the decoupled organization a stream access
  must never leave its line resident in L1 (exclusive-bit rule).

The sanitizer is duck-typed: it imports nothing from :mod:`repro.core`
or :mod:`repro.memory`, so those packages can hook it without import
cycles.
"""

from __future__ import annotations

from typing import Any


class InvariantViolation(AssertionError):
    """A runtime microarchitectural invariant was broken.

    Carries the violating ``component`` (e.g. ``"rob"``), a stable
    ``code`` (e.g. ``"SAN-RETIRE-ORDER"``) and a ``details`` mapping
    with the observed values, so tests and tools can assert on the
    exact failure rather than parse a message.
    """

    def __init__(
        self,
        component: str,
        code: str,
        message: str,
        details: dict[str, Any] | None = None,
    ):
        super().__init__(f"[{code}] {component}: {message}")
        self.component = component
        self.code = code
        self.message = message
        self.details = details or {}

    def __reduce__(self):
        # The default BaseException reduction pickles only ``args`` (the
        # formatted message) and reconstructs via ``cls(*args)`` — which
        # for this signature is a TypeError at unpickle time.  A worker
        # process raising a violation would then surface in the parent
        # as a bare pickling error with the structured payload lost;
        # rebuild from the real fields instead.
        return (
            self.__class__,
            (self.component, self.code, self.message, self.details),
        )


class RuntimeSanitizer:
    """Invariant checker shared by every hooked component of one core."""

    def __init__(self):
        self.checks = 0                       # checks executed (for tests)
        self._insert_seq: dict[int, int] = {}     # thread -> next seq to assign
        self._retire_seq: dict[int, int] = {}     # thread -> last retired seq
        self._entry_seq: dict[int, int] = {}      # id(entry) -> seq

    # ----- graduation window -------------------------------------------------

    def on_window_insert(self, window, thread: int, entry) -> None:
        seq = self._insert_seq.get(thread, 0)
        self._insert_seq[thread] = seq + 1
        self._entry_seq[id(entry)] = seq
        self.check_window(window)

    def on_window_retire(self, window, thread: int, entry) -> None:
        seq = self._entry_seq.pop(id(entry), None)
        if seq is not None:
            last = self._retire_seq.get(thread)
            if last is not None and seq <= last:
                raise InvariantViolation(
                    "rob", "SAN-RETIRE-ORDER",
                    f"thread {thread} retired dispatch-order #{seq} after "
                    f"#{last}; per-thread retirement must be in program "
                    "order",
                    {"thread": thread, "seq": seq, "last": last},
                )
            self._retire_seq[thread] = seq
        self.check_window(window)

    def on_window_flush(self, thread: int, entries) -> None:
        for entry in entries:
            self._entry_seq.pop(id(entry), None)

    def check_window(self, window) -> None:
        self.checks += 1
        actual = sum(len(fifo) for fifo in window._fifos)
        if window.occupancy != actual:
            raise InvariantViolation(
                "rob", "SAN-WINDOW-COUNT",
                f"occupancy counter {window.occupancy} disagrees with "
                f"{actual} resident entries",
                {"counter": window.occupancy, "entries": actual},
            )
        if window.occupancy > window.capacity:
            raise InvariantViolation(
                "rob", "SAN-WINDOW-OVERFLOW",
                f"occupancy {window.occupancy} exceeds capacity "
                f"{window.capacity}",
                {"occupancy": window.occupancy, "capacity": window.capacity},
            )

    # ----- issue queues ------------------------------------------------------

    def check_queue(self, queue) -> None:
        self.checks += 1
        if not 0 <= queue.occupancy <= queue.capacity:
            raise InvariantViolation(
                "queue", "SAN-QUEUE-OCCUPANCY",
                f"{queue.name} queue occupancy {queue.occupancy} outside "
                f"0..{queue.capacity}",
                {
                    "queue": queue.name,
                    "occupancy": queue.occupancy,
                    "capacity": queue.capacity,
                },
            )
        if len(queue.ready) > queue.occupancy:
            raise InvariantViolation(
                "queue", "SAN-QUEUE-READY",
                f"{queue.name} queue has {len(queue.ready)} ready entries "
                f"but occupancy {queue.occupancy}",
                {
                    "queue": queue.name,
                    "ready": len(queue.ready),
                    "occupancy": queue.occupancy,
                },
            )

    # ----- MSHRs -------------------------------------------------------------

    def check_mshr(self, mshr, now: int) -> None:
        self.checks += 1
        outstanding = mshr.outstanding(now)
        if outstanding > mshr.n_entries:
            raise InvariantViolation(
                "mshr", "SAN-MSHR-LEAK",
                f"{outstanding} outstanding misses exceed the "
                f"{mshr.n_entries} MSHR entries",
                {"outstanding": outstanding, "entries": mshr.n_entries},
            )

    # ----- write buffer ------------------------------------------------------

    def check_writebuffer(self, buffer, now: int) -> None:
        self.checks += 1
        occupancy = buffer.occupancy(now)
        if occupancy > buffer.depth:
            raise InvariantViolation(
                "writebuffer", "SAN-WB-OVERFLOW",
                f"occupancy {occupancy} exceeds depth {buffer.depth}",
                {"occupancy": occupancy, "depth": buffer.depth},
            )

    # ----- decoupled stream bypass -------------------------------------------

    def check_stream_bypass(self, l1, phys: int) -> None:
        self.checks += 1
        if l1.contains(phys):
            raise InvariantViolation(
                "decoupled", "SAN-STREAM-L1-RESIDENT",
                f"stream access left line {phys:#x} resident in L1; the "
                "exclusive-bit rule requires invalidation before bypass",
                {"phys": phys},
            )

    # ----- end of run --------------------------------------------------------

    def finalize(self, now: int, window, queues, memory) -> None:
        """End-of-run checks: everything retired, drained and filled.

        ``now`` is the final simulation cycle.  Timestamp-based MSHRs and
        write buffers legitimately have entries draining just past the
        end of the run, so drain checks use each component's worst-case
        horizon rather than ``now`` itself.
        """
        # The run ends when the scheduler's completion target is reached;
        # other threads legitimately still hold in-flight work, so the
        # window and queues need not be empty — only consistent.
        self.check_window(window)
        for queue in queues:
            self.check_queue(queue)
        for name in ("l1", "l2", "icache"):
            cache = getattr(memory, name, None)
            if cache is None:
                continue
            mshr = getattr(cache, "mshr", None)
            if mshr is not None:
                # A miss can complete its fill shortly after the last
                # commit (store-allocated lines); far-future fills mean a
                # corrupted timestamp, i.e. a leaked entry.
                horizon = now + 100_000
                leaked = mshr.outstanding(horizon)
                if leaked:
                    raise InvariantViolation(
                        "mshr", "SAN-MSHR-LEAK",
                        f"{name}: {leaked} misses still pending "
                        f"{horizon - now} cycles past the end of the run",
                        {"cache": name, "leaked": leaked},
                    )
            buffer = getattr(cache, "write_buffer", None)
            if buffer is not None:
                # Stores accepted near the end of the run drain shortly
                # after it; every entry must drain by the buffer's own
                # drain high-water mark, else its timestamp is corrupt
                # and the entry would never leave.
                undrained = buffer.occupancy(buffer._last_drain)
                if undrained:
                    raise InvariantViolation(
                        "writebuffer", "SAN-WB-UNDRAINED",
                        f"{name}: {undrained} entries drain after the "
                        "buffer's last scheduled drain slot",
                        {"cache": name, "undrained": undrained},
                    )
