"""The codelint engine: file model, checker registry, suppressions, baseline.

``repro.verify.codelint`` is a whole-repo static analysis: AST visitors
walk every Python file under ``src/repro`` and ``scripts/`` and enforce
the structural invariants the rest of the harness leans on (determinism,
fingerprint completeness, zero-overhead hooks, pool safety, hot-loop
purity).  This module is the rule-agnostic machinery; the rules live in
the sibling ``rules_*`` modules and register themselves here.

Key pieces:

* :class:`SourceFile` — one parsed file (canonical repo-relative path,
  source lines, lazily parsed AST, suppression comments);
* :func:`checker` — registration decorator.  A checker declares the
  diagnostic codes it may emit (with one-line rationales that feed the
  rule catalog in ``docs/VERIFY.md``), a path scope, and whether it is
  per-file or *project-level* (sees every file at once — the FPR
  fingerprint-completeness analysis is cross-module by nature);
* suppressions — ``# codelint: disable=CODE[,CODE...]`` trailing a
  flagged line, or a whole-file ``# codelint: disable-file=CODE`` comment
  line.  A bare family name (``DET``) suppresses the whole family;
* baseline — a checked-in JSON file of accepted pre-existing findings,
  matched by ``(path, code, stripped source line)`` so entries survive
  unrelated line drift.  The repo lands with an **empty** baseline; the
  mechanism exists so a future rule can be introduced before its last
  true positive is fixed;
* reporters — :func:`render_text` and :func:`json_report`.

Canonical paths: files under ``src/repro`` are keyed relative to the
package (``core/smt.py``); driver scripts are keyed ``scripts/<name>.py``.
Scopes are simple prefix matches over these keys.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.verify.diagnostics import Diagnostic, Severity

#: Trailing per-line suppression: ``x = ...  # codelint: disable=DET-RNG``.
_SUPPRESS_LINE = re.compile(r"#\s*codelint:\s*disable=([A-Z*][A-Z0-9*,-]*)")
#: Whole-file suppression on a comment line of its own.
_SUPPRESS_FILE = re.compile(r"#\s*codelint:\s*disable-file=([A-Z*][A-Z0-9*,-]*)")
#: Marks a function as hot-loop code for the HOT-* compilable-subset rules.
HOT_MARKER = re.compile(r"#\s*codelint:\s*hot-loop\b")

#: Path prefixes of the packages whose code determines simulated
#: outcomes (mirrors ``runner._SIMULATION_PACKAGES``; the DET rules and
#: the determinism audit in ``tests/test_determinism_audit.py`` both
#: scope to these).
SIM_SCOPE = ("core/", "memory/", "isa/", "tracegen/", "workloads/")


class SourceFile:
    """One Python source file under analysis."""

    def __init__(self, path: str, text: str):
        self.path = path                      # canonical repo-relative key
        self.text = text
        self.lines = text.splitlines()
        self.parse_error: str | None = None
        try:
            self.tree: ast.Module | None = ast.parse(text)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = f"line {exc.lineno}: {exc.msg}"
        self._line_disables: dict[int, set[str]] | None = None
        self._file_disables: set[str] | None = None

    # ----- suppressions ---------------------------------------------------

    def _scan_suppressions(self) -> None:
        line_disables: dict[int, set[str]] = {}
        file_disables: set[str] = set()
        for lineno, line in enumerate(self.lines, 1):
            match = _SUPPRESS_FILE.search(line)
            if match and line.lstrip().startswith("#"):
                file_disables.update(match.group(1).split(","))
                continue
            match = _SUPPRESS_LINE.search(line)
            if match:
                line_disables.setdefault(lineno, set()).update(
                    match.group(1).split(",")
                )
        self._line_disables = line_disables
        self._file_disables = file_disables

    def suppressed(self, code: str, line: int | None) -> bool:
        """True when ``code`` at ``line`` is silenced by a comment."""
        if self._line_disables is None:
            self._scan_suppressions()
        family = code.split("-", 1)[0]
        for entry in self._file_disables:
            if entry in ("*", code, family):
                return True
        if line is not None:
            for entry in self._line_disables.get(line, ()):
                if entry in ("*", code, family):
                    return True
        return False

    def is_hot_function(self, node: ast.AST) -> bool:
        """True when ``node`` (a FunctionDef) carries the hot-loop marker.

        The marker is a ``# codelint: hot-loop`` comment on the ``def``
        line or anywhere in the contiguous comment block directly above
        it (above any decorators).
        """
        first = getattr(node, "lineno", None)
        if first is None:
            return False
        decorators = getattr(node, "decorator_list", [])
        if decorators:
            first = min(first, min(d.lineno for d in decorators))
        if 1 <= node.lineno <= len(self.lines) and HOT_MARKER.search(
            self.lines[node.lineno - 1]
        ):
            return True
        lineno = first - 1
        while 1 <= lineno <= len(self.lines):
            line = self.lines[lineno - 1].strip()
            if not line.startswith("#"):
                break
            if HOT_MARKER.search(line):
                return True
            lineno -= 1
        return False

    def line_text(self, lineno: int | None) -> str:
        if lineno is None or not 1 <= lineno <= len(self.lines):
            return ""
        return self.lines[lineno - 1].strip()


# ------------------------------------------------------------------ registry


@dataclass(frozen=True)
class Checker:
    """One registered analysis pass."""

    name: str
    family: str
    codes: tuple[str, ...]
    scope: tuple[str, ...]       # path prefixes; empty = every file
    project: bool                # sees the whole file dict at once
    fn: Callable

    def applies_to(self, path: str) -> bool:
        return not self.scope or any(path.startswith(p) for p in self.scope)


#: Registered checkers, in registration order (rule modules import-time).
CHECKERS: list[Checker] = []

#: code -> one-line rationale; the machine-readable rule catalog.
CATALOG: dict[str, str] = {}


def checker(
    name: str,
    family: str,
    codes: dict[str, str],
    scope: tuple[str, ...] = (),
    project: bool = False,
):
    """Register an analysis pass emitting the declared ``codes``.

    Per-file checkers are called as ``fn(source_file)``; project-level
    checkers as ``fn(files_dict)``.  Both return an iterable of
    :class:`~repro.verify.diagnostics.Diagnostic`.
    """

    def decorate(fn):
        CHECKERS.append(
            Checker(name, family, tuple(codes), tuple(scope), project, fn)
        )
        CATALOG.update(codes)
        return fn

    return decorate


def lint_error(
    code: str, path: str, line: int | None, message: str
) -> Diagnostic:
    return Diagnostic("codelint", code, message, Severity.ERROR, path, line)


def lint_warning(
    code: str, path: str, line: int | None, message: str
) -> Diagnostic:
    return Diagnostic("codelint", code, message, Severity.WARNING, path, line)


# ------------------------------------------------------------------ running


def repo_root(start: str | None = None) -> str:
    """The repository root: the directory holding ``src/repro``."""
    here = start or os.path.dirname(os.path.abspath(__file__))
    probe = here
    while True:
        if os.path.isdir(os.path.join(probe, "src", "repro")):
            return probe
        parent = os.path.dirname(probe)
        if parent == probe:
            raise FileNotFoundError(
                f"no src/repro above {here!r}; pass root= explicitly"
            )
        probe = parent


def collect_repo_files(root: str | None = None) -> dict[str, SourceFile]:
    """Every lintable file, keyed by canonical path."""
    root = root or repo_root()
    files: dict[str, SourceFile] = {}
    package = os.path.join(root, "src", "repro")
    for dirpath, dirnames, filenames in sorted(os.walk(package)):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            full = os.path.join(dirpath, name)
            key = os.path.relpath(full, package).replace(os.sep, "/")
            with open(full, encoding="utf-8") as handle:
                files[key] = SourceFile(key, handle.read())
    scripts = os.path.join(root, "scripts")
    if os.path.isdir(scripts):
        for name in sorted(os.listdir(scripts)):
            if not name.endswith(".py"):
                continue
            with open(os.path.join(scripts, name), encoding="utf-8") as handle:
                files[f"scripts/{name}"] = SourceFile(
                    f"scripts/{name}", handle.read()
                )
    return files


def lint_files(
    files: dict[str, SourceFile],
    families: tuple[str, ...] = (),
) -> list[Diagnostic]:
    """Run every registered checker; suppression-filtered, sorted."""
    diagnostics: list[Diagnostic] = []
    for path, source in sorted(files.items()):
        if source.parse_error is not None:
            diagnostics.append(
                lint_error(
                    "CL-SYNTAX", path, None,
                    f"file does not parse: {source.parse_error}",
                )
            )
    for check in CHECKERS:
        if families and check.family not in families:
            continue
        if check.project:
            diagnostics.extend(check.fn(files))
        else:
            for path, source in sorted(files.items()):
                if source.tree is None or not check.applies_to(path):
                    continue
                diagnostics.extend(check.fn(source))
    kept = []
    for diag in diagnostics:
        source = files.get(diag.location or "")
        if source is not None and source.suppressed(diag.code, diag.line):
            continue
        kept.append(diag)
    kept.sort(key=lambda d: (d.location or "", d.line or 0, d.code, d.message))
    return kept


def lint_sources(
    sources: dict[str, str], families: tuple[str, ...] = ()
) -> list[Diagnostic]:
    """Lint in-memory sources (tests and the determinism audit)."""
    files = {path: SourceFile(path, text) for path, text in sources.items()}
    return lint_files(files, families)


def lint_repo(
    root: str | None = None, families: tuple[str, ...] = ()
) -> tuple[list[Diagnostic], dict[str, SourceFile]]:
    """Lint the whole repository; returns (diagnostics, files)."""
    files = collect_repo_files(root)
    return lint_files(files, families), files


# ------------------------------------------------------------------ baseline

BASELINE_NAME = ".codelint-baseline.json"


def baseline_entry(diag: Diagnostic, files: dict[str, SourceFile]) -> dict:
    source = files.get(diag.location or "")
    return {
        "path": diag.location or "",
        "code": diag.code,
        "content": source.line_text(diag.line) if source else "",
    }


def load_baseline(path: str) -> list[dict]:
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = payload.get("entries", [])
    for entry in entries:
        if not {"path", "code", "content"} <= set(entry):
            raise ValueError(f"malformed baseline entry in {path}: {entry}")
    return entries


def save_baseline(
    path: str, diagnostics: list[Diagnostic], files: dict[str, SourceFile]
) -> None:
    entries = sorted(
        (baseline_entry(d, files) for d in diagnostics),
        key=lambda e: (e["path"], e["code"], e["content"]),
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "entries": entries}, handle, indent=2)
        handle.write("\n")


def apply_baseline(
    diagnostics: list[Diagnostic],
    files: dict[str, SourceFile],
    entries: list[dict],
) -> tuple[list[Diagnostic], list[Diagnostic], list[dict]]:
    """Split findings into (new, baselined); also return stale entries.

    Matching is by ``(path, code, stripped line content)`` — a multiset,
    so N identical accepted findings absorb exactly N diagnostics.
    Stale entries (nothing matched them — the finding was fixed) are
    returned so callers can prompt for a baseline refresh.
    """
    budget: dict[tuple, int] = {}
    for entry in entries:
        key = (entry["path"], entry["code"], entry["content"])
        budget[key] = budget.get(key, 0) + 1
    new: list[Diagnostic] = []
    matched: list[Diagnostic] = []
    for diag in diagnostics:
        entry = baseline_entry(diag, files)
        key = (entry["path"], entry["code"], entry["content"])
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched.append(diag)
        else:
            new.append(diag)
    stale = [
        {"path": path, "code": code, "content": content}
        for (path, code, content), count in sorted(budget.items())
        for __ in range(count)
    ]
    return new, matched, stale


# ------------------------------------------------------------------ reports


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    return "\n".join(str(d) for d in diagnostics)


def json_report(
    diagnostics: list[Diagnostic],
    files: dict[str, SourceFile],
    baselined: list[Diagnostic] = (),
    stale_baseline: list[dict] = (),
) -> dict:
    """Machine-readable report (the CI artifact)."""
    by_code: dict[str, int] = {}
    for diag in diagnostics:
        by_code[diag.code] = by_code.get(diag.code, 0) + 1
    return {
        "version": 1,
        "files_scanned": len(files),
        "diagnostics": [
            {
                "path": diag.location,
                "line": diag.line,
                "code": diag.code,
                "severity": diag.severity.name.lower(),
                "message": diag.message,
                "content": (
                    files[diag.location].line_text(diag.line)
                    if diag.location in files
                    else ""
                ),
            }
            for diag in diagnostics
        ],
        "baselined": len(list(baselined)),
        "stale_baseline_entries": list(stale_baseline),
        "summary": dict(sorted(by_code.items())),
    }
