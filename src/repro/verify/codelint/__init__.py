"""``repro.verify.codelint`` — whole-repo AST invariant linter.

Five rule families guard the structural invariants the harness depends
on (see ``docs/VERIFY.md`` for the full catalog and suppression syntax):

* **DET-*** — simulation code is entropy- and wall-clock-free, with
  alias-aware data flow and set-iteration-order analysis;
* **FPR-*** — every ``SMTConfig``/``RunRequest`` field reaches the run
  fingerprint or sits in the audited volatile-exemption table;
* **HOOK-*** — observer/sanitizer hook sites keep the zero-overhead
  ``is not None`` guard pattern; no eager obs/verify imports in core;
* **POOL-*** — exceptions and callables crossing the ProcessPool
  survive pickling; module-level mutable state is named as audited;
* **HOT-*** — functions marked ``# codelint: hot-loop`` stay within the
  compiled-backend subset (hoisted locals, no per-iteration allocation,
  no closures).

Entry points: :func:`lint_repo` (the real tree),
:func:`lint_sources` (in-memory fixtures — the test suite and the
determinism audit), and the baseline/report helpers re-exported from
:mod:`~repro.verify.codelint.engine`.  ``scripts/verify_tool.py lint``
is the CLI.
"""

from repro.verify.codelint.engine import (
    BASELINE_NAME,
    CATALOG,
    CHECKERS,
    SIM_SCOPE,
    SourceFile,
    apply_baseline,
    collect_repo_files,
    json_report,
    lint_files,
    lint_repo,
    lint_sources,
    load_baseline,
    render_text,
    repo_root,
    save_baseline,
)

# Importing the rule modules registers their checkers.
from repro.verify.codelint import rules_det    # noqa: E402,F401
from repro.verify.codelint import rules_fpr    # noqa: E402,F401
from repro.verify.codelint import rules_hook   # noqa: E402,F401
from repro.verify.codelint import rules_hot    # noqa: E402,F401
from repro.verify.codelint import rules_pool   # noqa: E402,F401

__all__ = [
    "BASELINE_NAME",
    "CATALOG",
    "CHECKERS",
    "SIM_SCOPE",
    "SourceFile",
    "apply_baseline",
    "collect_repo_files",
    "json_report",
    "lint_files",
    "lint_repo",
    "lint_sources",
    "load_baseline",
    "render_text",
    "repo_root",
    "save_baseline",
]
