"""FPR-* — fingerprint completeness across params.py and runner.py.

The runcache is only sound if two requests with equal fingerprints are
guaranteed bit-identical results.  PR 3 hit the failure mode by hand:
``sampling`` was added to :class:`SMTConfig` and initially did not ride
the fingerprint, so a sampled result could shadow a full-detail one.
This cross-module analysis closes the loop structurally.  Every
``SMTConfig`` field must either

* **flow from the request**: appear as a keyword of the ``SMTConfig(...)``
  construction inside ``runner.execute_request`` with a ``request.<field>``
  value (``RunRequest`` fields all ride the fingerprint via
  ``asdict(self)`` — which FPR-FINGERPRINT-MISSING verifies), or
* **be exempt**: appear in ``runner.FINGERPRINT_EXEMPT_CONFIG_FIELDS``
  with a stated reason — derived fields (``resources``, ``issue_simd``),
  observer-only flags proven result-neutral by tests (``sanitize``,
  ``observe``), and structural constants only changeable by editing
  ``core/params.py`` itself, which the fingerprint's code-version hash
  already covers.

The exemption table is itself audited (stale or contradictory entries
are errors), mirroring ``TIMING_ONLY_MNEMONICS`` from PR 1's isacheck.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.verify.codelint.engine import SourceFile, checker, lint_error
from repro.verify.diagnostics import Diagnostic

PARAMS_PATH = "core/params.py"
RUNNER_PATH = "analysis/runner.py"
EXEMPT_TABLE = "FINGERPRINT_EXEMPT_CONFIG_FIELDS"


def _dataclass_fields(tree: ast.Module, class_name: str) -> dict[str, int]:
    """Annotated field names -> line numbers of a (data)class body."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                stmt.target.id: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
    return {}


def _find_function(tree: ast.Module, name: str) -> ast.FunctionDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _exemption_table(tree: ast.Module) -> tuple[dict[str, int], int | None]:
    """(field -> line) of the exemption table, plus the table's line."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == EXEMPT_TABLE
            for t in node.targets
        ):
            continue
        value = node.value
        entries: dict[str, int] = {}
        keys = []
        if isinstance(value, ast.Dict):
            keys = value.keys
        elif isinstance(value, ast.Set):
            keys = value.elts
        elif isinstance(value, ast.Call) and value.args:
            # frozenset({...}) / dict(...) wrapper
            inner = value.args[0]
            keys = getattr(inner, "keys", None) or getattr(inner, "elts", [])
        for key in keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                entries[key.value] = key.lineno
        return entries, node.lineno
    return {}, None


@checker(
    name="fingerprint",
    family="FPR",
    codes={
        "FPR-CONFIG-UNFINGERPRINTED": (
            "SMTConfig field neither forwarded from the RunRequest in "
            "execute_request nor listed in the volatile-exemption table "
            "— a run varying it would reuse a stale cached result"
        ),
        "FPR-EXEMPT-STALE": (
            "exemption-table entry naming a field SMTConfig no longer has"
        ),
        "FPR-EXEMPT-CONTRADICTION": (
            "field both forwarded from the request and marked exempt "
            "(one of the two is wrong)"
        ),
        "FPR-REQUEST-UNUSED": (
            "RunRequest field never read inside execute_request: it "
            "fragments the cache without influencing the simulation"
        ),
        "FPR-FINGERPRINT-MISSING": (
            "RunRequest.fingerprint no longer covers every request field "
            "(asdict(self) removed without enumerating replacements)"
        ),
    },
    project=True,
)
def check_fingerprint_completeness(
    files: dict[str, SourceFile],
) -> Iterator[Diagnostic]:
    params = files.get(PARAMS_PATH)
    runner = files.get(RUNNER_PATH)
    if params is None or runner is None:
        return  # fixture set without the fingerprint layer: nothing to say
    if params.tree is None or runner.tree is None:
        return

    config_fields = _dataclass_fields(params.tree, "SMTConfig")
    request_fields = _dataclass_fields(runner.tree, "RunRequest")
    exempt, table_line = _exemption_table(runner.tree)
    execute = _find_function(runner.tree, "execute_request")

    # --- which SMTConfig fields does execute_request set from the request?
    forwarded: set[str] = set()
    request_reads: set[str] = set()
    if execute is not None:
        for node in ast.walk(execute):
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ) and node.value.id == "request":
                request_reads.add(node.attr)
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "SMTConfig"
            ):
                for kw in node.keywords:
                    if kw.arg is not None:
                        forwarded.add(kw.arg)

    # --- every config field accounted for exactly once
    for name, lineno in sorted(config_fields.items()):
        if name in forwarded and name in exempt:
            yield lint_error(
                "FPR-EXEMPT-CONTRADICTION", RUNNER_PATH,
                exempt[name],
                f"SMTConfig.{name} is forwarded from the request in "
                f"execute_request AND listed in {EXEMPT_TABLE}",
            )
        elif name not in forwarded and name not in exempt:
            yield lint_error(
                "FPR-CONFIG-UNFINGERPRINTED", PARAMS_PATH, lineno,
                f"SMTConfig.{name} does not reach the run fingerprint: "
                "forward it from a RunRequest field in execute_request "
                f"or add it to runner.{EXEMPT_TABLE} with a reason "
                "(the PR 3 'sampling' bug class)",
            )

    # --- stale exemptions
    for name, lineno in sorted(exempt.items()):
        if name not in config_fields:
            yield lint_error(
                "FPR-EXEMPT-STALE", RUNNER_PATH, lineno,
                f"{EXEMPT_TABLE} lists {name!r}, which is not an "
                "SMTConfig field",
            )

    # --- every request field must influence the simulation
    if execute is not None:
        for name, lineno in sorted(request_fields.items()):
            if name not in request_reads:
                yield lint_error(
                    "FPR-REQUEST-UNUSED", RUNNER_PATH, lineno,
                    f"RunRequest.{name} is fingerprinted but never read "
                    "in execute_request; it splits the cache without "
                    "affecting results",
                )

    # --- the fingerprint must cover every request field
    fingerprint = None
    for node in ast.walk(runner.tree):
        if isinstance(node, ast.ClassDef) and node.name == "RunRequest":
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "fingerprint"
                ):
                    fingerprint = stmt
    if fingerprint is not None:
        uses_asdict = any(
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == "asdict"
            for n in ast.walk(fingerprint)
        )
        if not uses_asdict:
            covered = {
                n.attr
                for n in ast.walk(fingerprint)
                if isinstance(n, ast.Attribute)
                and isinstance(n.value, ast.Name)
                and n.value.id == "self"
            }
            for name, lineno in sorted(request_fields.items()):
                if name not in covered:
                    yield lint_error(
                        "FPR-FINGERPRINT-MISSING", RUNNER_PATH,
                        fingerprint.lineno,
                        f"RunRequest.fingerprint covers neither "
                        f"asdict(self) nor self.{name}: the field can "
                        "vary without changing the cache key",
                    )
    elif request_fields and table_line is not None:
        yield lint_error(
            "FPR-FINGERPRINT-MISSING", RUNNER_PATH, table_line,
            "RunRequest defines no fingerprint() method",
        )
