"""DET-* — determinism: no entropy, no wall clock, no set-order leaks.

Simulated outcomes must be pure functions of the request (the runcache,
bit-identity suite, goldens and chaos harness all assume it — policy in
``docs/TESTING.md``).  These rules promote the old regex scan of
``tests/test_determinism_audit.py`` into a real AST analysis: imports
are resolved through aliases (``from time import perf_counter as pc``),
and simple assignments that re-bind a banned callable or a set value are
tracked, so the classic laundering patterns are caught too::

    import time as t; t.time()           # DET-CLOCK
    clock = time.perf_counter; clock()   # DET-CLOCK (alias data-flow)
    from random import randint           # DET-RNG on the call
    random.Random()                      # DET-UNSEEDED-RANDOM
    for x in {a, b}: ...                 # DET-SET-ORDER

The only sanctioned randomness in simulation code is an explicitly
seeded ``random.Random(seed)`` instance; the only sanctioned clock is
``obs/profile.py`` (file-level suppression — its output is declared
volatile and never enters reports or cache keys).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.verify.codelint.engine import (
    SIM_SCOPE,
    SourceFile,
    checker,
    lint_error,
)
from repro.verify.diagnostics import Diagnostic

#: DET applies to the simulation packages plus ``obs`` (observed
#: snapshots ride results, so they must be reproducible too).
DET_SCOPE = SIM_SCOPE + ("obs/",)

#: ``random`` module-level functions (shared hidden global state).
_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "randbytes", "getrandbits",
        "choice", "choices", "shuffle", "sample", "seed", "uniform",
        "triangular", "betavariate", "expovariate", "gammavariate",
        "gauss", "lognormvariate", "normalvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate",
    }
)

_CLOCK_NAMES = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns", "time.localtime",
        "time.gmtime", "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

_ENTROPY_NAMES = frozenset(
    {"os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid3",
     "uuid.uuid4", "uuid.uuid5"}
)

#: Builtins whose call on a set consumes its (arbitrary) iteration order.
_ORDER_SENSITIVE_CONSUMERS = frozenset(
    {"list", "tuple", "enumerate", "iter", "next", "reversed"}
)


def _classify(qualname: str) -> tuple[str, str] | None:
    """Map a resolved dotted name to (code, label), or None if benign."""
    if qualname in _CLOCK_NAMES:
        return "DET-CLOCK", "wall-clock read"
    if qualname in _ENTROPY_NAMES or qualname.startswith("secrets."):
        return "DET-ENTROPY", "OS entropy source"
    if qualname.startswith("random."):
        if qualname.rsplit(".", 1)[1] in _RANDOM_FUNCS:
            return "DET-RNG", "module-level RNG (hidden global state)"
    if qualname.startswith(("numpy.random.", "np.random.")):
        return "DET-RNG", "NumPy global RNG"
    return None


class _DetVisitor(ast.NodeVisitor):
    """One pass: alias resolution + banned-call + set-order analysis."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.diags: list[Diagnostic] = []
        #: local name -> canonical dotted prefix ("t" -> "time",
        #: "pc" -> "time.perf_counter", "clock" -> "time.time").
        self.aliases: dict[str, str] = {}
        #: names currently bound to a set-valued expression.
        self.set_vars: set[str] = set()
        #: node ids already accounted for (call sites, tracked aliases),
        #: so the bare-reference sweep does not re-flag them.
        self.handled: set[int] = set()

    # ----- name resolution ------------------------------------------------

    def resolve(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.aliases[alias.asname] = alias.name
            else:
                top = alias.name.split(".", 1)[0]
                self.aliases[top] = top
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # ----- banned calls ---------------------------------------------------

    def _flag(self, code: str, node: ast.AST, message: str) -> None:
        self.diags.append(
            lint_error(code, self.source.path, node.lineno, message)
        )

    def visit_Call(self, node: ast.Call) -> None:
        qualname = self.resolve(node.func)
        if qualname is not None:
            self.handled.add(id(node.func))
        if qualname == "random.Random" and not node.args and not node.keywords:
            self._flag(
                "DET-UNSEEDED-RANDOM", node,
                "random.Random() without a seed reseeds from the OS; "
                "pass an explicit seed expression",
            )
        elif qualname is not None:
            hit = _classify(qualname)
            if hit is not None:
                code, label = hit
                self._flag(
                    code, node,
                    f"{label}: {qualname}() must not be called from "
                    "simulation code (docs/TESTING.md determinism policy)",
                )
        self._check_set_consumer(node)
        self.generic_visit(node)

    # ----- assignment tracking --------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            qualname = self.resolve(node.value)
            if qualname is not None:
                self.aliases[name] = qualname
                self.handled.add(id(node.value))
            else:
                self.aliases.pop(name, None)
            if self._is_set_expr(node.value):
                self.set_vars.add(name)
            else:
                self.set_vars.discard(name)
        self.generic_visit(node)

    # ----- set iteration order --------------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset") and (
                node.func.id not in self.aliases
            ):
                return True
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) and self._is_set_expr(
                node.right
            )
        return False

    def _flag_set_order(self, node: ast.AST, how: str) -> None:
        self._flag(
            "DET-SET-ORDER", node,
            f"{how} depends on set iteration order; wrap in sorted() or "
            "use an order-stable container (docs/TESTING.md)",
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag_set_order(node, "for-loop over a set")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            if self._is_set_expr(gen.iter):
                self._flag_set_order(node, "comprehension over a set")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _check_set_consumer(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _ORDER_SENSITIVE_CONSUMERS and node.args:
                if self._is_set_expr(node.args[0]):
                    self._flag_set_order(
                        node, f"{func.id}() over a set"
                    )
        elif isinstance(func, ast.Attribute) and func.attr == "pop":
            if self._is_set_expr(func.value) and not node.args:
                self._flag_set_order(node, "set.pop()")


@checker(
    name="det",
    family="DET",
    codes={
        "DET-RNG": (
            "module-level random.* / numpy.random.* call in simulation "
            "code (hidden global RNG state breaks reproducibility)"
        ),
        "DET-CLOCK": (
            "wall-clock read in simulation code (results must not depend "
            "on host time; obs/profile.py is the one sanctioned consumer)"
        ),
        "DET-ENTROPY": (
            "OS entropy source (os.urandom / uuid / secrets) in "
            "simulation code"
        ),
        "DET-UNSEEDED-RANDOM": (
            "random.Random() constructed without an explicit seed"
        ),
        "DET-SET-ORDER": (
            "iteration over a set (arbitrary order) feeding simulation "
            "state; wrap in sorted()"
        ),
    },
    scope=DET_SCOPE,
)
def check_determinism(source: SourceFile) -> Iterator[Diagnostic]:
    visitor = _DetVisitor(source)
    visitor.visit(source.tree)
    # Bare references: passing time.perf_counter (or an alias of it)
    # around as a value launders the clock past call-site analysis —
    # profile.py's `clock=time.perf_counter` default is exactly this
    # shape, and carries the sanctioned file-level suppression.
    stack = list(ast.iter_child_nodes(source.tree))
    while stack:
        node = stack.pop()
        if (
            isinstance(node, (ast.Attribute, ast.Name))
            and isinstance(node.ctx, ast.Load)
            and id(node) not in visitor.handled
        ):
            qualname = visitor.resolve(node)
            hit = _classify(qualname) if qualname else None
            if hit is not None:
                code, label = hit
                visitor._flag(
                    code, node,
                    f"{label}: reference to {qualname} passed around as "
                    "a value (laundered non-determinism)",
                )
                continue  # the chain is reported once
        stack.extend(ast.iter_child_nodes(node))
    return iter(visitor.diags)
