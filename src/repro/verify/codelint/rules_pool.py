"""POOL-* — objects crossing the ProcessPool must survive the trip.

PR 4 fixed a live bug in this class: ``InvariantViolation`` defined a
multi-argument ``__init__``, so the default ``BaseException`` reduction
(``cls(*args)`` with ``args`` = the formatted message) raised a
``TypeError`` at unpickle time and worker-raised violations surfaced in
the parent as bare pickling errors with the structured payload lost.
These rules make that whole class of defect machine-checked:

* **POOL-EXC-REDUCE** — any exception-like class whose ``__init__``
  takes more than ``(self, message)`` must define ``__reduce__`` (or
  ``__reduce_ex__``/``__getstate__``) so it round-trips through pickle
  with its payload intact;
* **POOL-LOCAL-CALLABLE** — ``pool.submit(...)`` / ``executor.map(...)``
  must ship module-level callables; lambdas and function-local defs
  cannot be pickled by reference and die (or worse, silently capture
  stale closure state);
* **POOL-MUTABLE-GLOBAL** — module-level mutable containers must be
  named like constants (UPPER_CASE, optionally underscore-prefixed for
  audited per-process memos such as ``_WORKLOAD_MEMO``).  A lowercase
  module-level dict/list/set reads as shared state — but every worker
  process gets its own copy, so mutations in the parent never reach
  workers and vice versa; the naming convention keeps that trap visible.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.verify.codelint.engine import SourceFile, checker, lint_error
from repro.verify.diagnostics import Diagnostic

#: Base-class terminals that mark a class as exception-like.
_EXC_BASES = frozenset(
    {
        "Exception", "BaseException", "RuntimeError", "ValueError",
        "TypeError", "KeyError", "OSError", "IOError", "AssertionError",
        "ArithmeticError", "LookupError", "Warning", "UserWarning",
        "RuntimeWarning", "DeprecationWarning",
    }
)
_EXC_SUFFIXES = ("Error", "Exception", "Warning", "Violation", "Failure",
                 "Crash", "Interrupt")

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "Counter",
     "OrderedDict", "bytearray"}
)


def _terminal(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_exception_like(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = _terminal(base)
        if name is None:
            continue
        if name in _EXC_BASES or name.endswith(_EXC_SUFFIXES):
            return True
    return False


@checker(
    name="pool-exceptions",
    family="POOL",
    codes={
        "POOL-EXC-REDUCE": (
            "exception class with a multi-argument __init__ but no "
            "__reduce__: the default reduction reconstructs via "
            "cls(message) and dies (or loses the payload) when a worker "
            "raises it across the ProcessPool"
        ),
    },
)
def check_exception_reduce(source: SourceFile) -> Iterator[Diagnostic]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef) or not _is_exception_like(node):
            continue
        init = None
        has_reduce = False
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "__init__":
                    init = stmt
                elif stmt.name in ("__reduce__", "__reduce_ex__",
                                   "__getstate__", "__getnewargs__"):
                    has_reduce = True
        if init is None or has_reduce:
            continue
        args = init.args
        extra = len(args.args) - 2 + len(args.kwonlyargs)
        if extra > 0 or args.vararg is not None:
            yield lint_error(
                "POOL-EXC-REDUCE", source.path, node.lineno,
                f"exception class {node.name!r} takes "
                f"{len(args.args) - 1 + len(args.kwonlyargs)} __init__ "
                "arguments but defines no __reduce__; it will not "
                "round-trip through pickle when raised in a pool worker "
                "(the InvariantViolation bug, docs/RESILIENCE.md)",
            )


class _SubmitVisitor(ast.NodeVisitor):
    """Per-function scan for non-module-level callables fed to pools."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.diags: list[Diagnostic] = []
        self._local_callables: list[set[str]] = []

    def _visit_function(self, node) -> None:
        local: set[str] = set()
        for stmt in ast.walk(node):
            if stmt is node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local.add(stmt.name)
            elif isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Lambda
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        local.add(target.id)
        self._local_callables.append(local)
        self.generic_visit(node)
        self._local_callables.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("submit", "map")
            and node.args
        ):
            receiver = (_terminal(func.value) or "").lower()
            if "pool" in receiver or "executor" in receiver:
                task = node.args[0]
                bad = None
                if isinstance(task, ast.Lambda):
                    bad = "a lambda"
                elif isinstance(task, ast.Name) and any(
                    task.id in scope for scope in self._local_callables
                ):
                    bad = f"function-local callable {task.id!r}"
                if bad is not None:
                    self.diags.append(
                        lint_error(
                            "POOL-LOCAL-CALLABLE", self.source.path,
                            node.lineno,
                            f"{bad} shipped to {func.attr}(): pool tasks "
                            "must be module-level functions (pickled by "
                            "reference)",
                        )
                    )
        self.generic_visit(node)


@checker(
    name="pool-callables",
    family="POOL",
    codes={
        "POOL-LOCAL-CALLABLE": (
            "lambda or function-local def submitted to a "
            "ProcessPoolExecutor (unpicklable by reference)"
        ),
    },
)
def check_pool_callables(source: SourceFile) -> Iterator[Diagnostic]:
    visitor = _SubmitVisitor(source)
    visitor.visit(source.tree)
    return iter(visitor.diags)


@checker(
    name="pool-globals",
    family="POOL",
    codes={
        "POOL-MUTABLE-GLOBAL": (
            "module-level mutable container with a non-constant name; "
            "per-process copies make cross-pool mutation silently "
            "ineffective — name it UPPER_CASE to mark it an audited "
            "constant/per-process memo"
        ),
    },
    scope=tuple(
        p for p in ("core/", "memory/", "isa/", "tracegen/", "workloads/",
                    "obs/", "analysis/", "verify/", "kernels/", "service/")
    ),
)
def check_mutable_globals(source: SourceFile) -> Iterator[Diagnostic]:
    def is_mutable(value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CALLS
        )

    for stmt in source.tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not is_mutable(value):
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.startswith("__") or name == name.upper():
                continue
            yield lint_error(
                "POOL-MUTABLE-GLOBAL", source.path, stmt.lineno,
                f"module-level mutable {name!r}: each pool worker gets "
                "its own copy, so this cannot act as shared state; "
                "rename UPPER_CASE if it is a constant or per-process "
                "memo, else move it into an object",
            )
