"""HOOK-* — observer/sanitizer hook-site discipline in core and memory.

The zero-overhead-when-disabled contract (PR 1's sanitizer, PR 5's
observability layer) rests on two structural rules:

* every call **on** an observer/sanitizer object must sit under an
  ``<receiver> is not None`` guard — either the hoisted-local pattern of
  the fused hot loop (``observer = self.observer; ... if observer is not
  None: observer.on_issue(...)``) or a direct ``if self.observer is not
  None:`` — so a disabled run pays one attribute test per hook site and
  nothing else.  Truthiness guards (``if self.observer:``) are rejected
  too: they cost a ``__bool__`` dispatch and break the documented idiom;
* :mod:`repro.obs` and :mod:`repro.verify` must never be imported at
  module scope from ``core/`` or ``memory/`` — the simulator only
  depends on those layers when a run opts in (the bit-identity suite
  proves ``observe=None`` never imports ``repro.obs``; an eager import
  would silently break that).

The guard analysis is flow-aware enough for the patterns the code base
uses: ``and`` chains, conditional expressions, and the inverted
early-exit guard (``if observer is None: break`` followed by unguarded
use later in the same block).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.verify.codelint.engine import SourceFile, checker, lint_error
from repro.verify.diagnostics import Diagnostic

HOOK_SCOPE = ("core/", "memory/")

#: Layers that must stay lazily imported from core/memory.
_LAZY_LAYERS = ("repro.obs", "repro.verify")


def _receiver_tag(node: ast.AST) -> str | None:
    """The hook receiver name if ``node`` looks like an observer/sanitizer."""
    if isinstance(node, ast.Name):
        terminal = node.id
    elif isinstance(node, ast.Attribute):
        terminal = node.attr
    else:
        return None
    lowered = terminal.lower()
    if "observer" in lowered or "sanitizer" in lowered:
        return terminal
    return None


def _key(node: ast.AST) -> str:
    """Structural identity for guard matching (src-location-free dump)."""
    return ast.dump(node)


def _guard_sets(test: ast.AST) -> tuple[set[str], set[str]]:
    """(non-None-when-true, non-None-when-false) receiver keys of a test."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, op, right = test.left, test.ops[0], test.comparators[0]
        is_none = isinstance(right, ast.Constant) and right.value is None
        if is_none and _receiver_tag(left) is not None:
            if isinstance(op, ast.IsNot):
                return {_key(left)}, set()
            if isinstance(op, ast.Is):
                return set(), {_key(left)}
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        true_set: set[str] = set()
        for value in test.values:
            t, __ = _guard_sets(value)
            true_set |= t
        return true_set, set()
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        t, f = _guard_sets(test.operand)
        return f, t
    return set(), set()


def _terminates(body: list[ast.stmt]) -> bool:
    """Whether a block always exits its enclosing statement list."""
    return bool(body) and isinstance(
        body[-1], (ast.Break, ast.Continue, ast.Return, ast.Raise)
    )


class _GuardWalker:
    """Flow-sensitive scan for unguarded hook calls in one function."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.diags: list[Diagnostic] = []

    def _flag(self, node: ast.Call, receiver: str) -> None:
        self.diags.append(
            lint_error(
                "HOOK-UNGUARDED-CALL", self.source.path, node.lineno,
                f"call on {receiver!r} without an enclosing "
                f"'<receiver> is not None' guard; hook sites must follow "
                "the hoisted-local zero-overhead pattern "
                "(docs/VERIFY.md, docs/OBSERVABILITY.md)",
            )
        )

    # ----- expressions ----------------------------------------------------

    def check_expr(self, node: ast.AST | None, guarded: set[str]) -> None:
        if node is None:
            return
        if isinstance(node, ast.BoolOp):
            acc = set(guarded)
            for value in node.values:
                self.check_expr(value, acc)
                t, f = _guard_sets(value)
                acc |= t if isinstance(node.op, ast.And) else f
            return
        if isinstance(node, ast.IfExp):
            self.check_expr(node.test, guarded)
            t, f = _guard_sets(node.test)
            self.check_expr(node.body, guarded | t)
            self.check_expr(node.orelse, guarded | f)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver = _receiver_tag(func.value)
                if receiver is not None and _key(func.value) not in guarded:
                    self._flag(node, receiver)
            for child in ast.iter_child_nodes(node):
                self.check_expr(child, guarded)
            return
        if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # separate scope; walked independently
        for child in ast.iter_child_nodes(node):
            self.check_expr(child, guarded)

    # ----- statements -----------------------------------------------------

    def check_stmts(self, stmts: list[ast.stmt], guarded: set[str]) -> None:
        guarded = set(guarded)
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                self.check_expr(stmt.test, guarded)
                t, f = _guard_sets(stmt.test)
                self.check_stmts(stmt.body, guarded | t)
                self.check_stmts(stmt.orelse, guarded | f)
                # Inverted guard: `if x is None: break` proves x for the
                # rest of this block; symmetrically for the else arm.
                if f and _terminates(stmt.body):
                    guarded |= f
                elif t and _terminates(stmt.orelse):
                    guarded |= t
            elif isinstance(stmt, ast.While):
                self.check_expr(stmt.test, guarded)
                t, __ = _guard_sets(stmt.test)
                self.check_stmts(stmt.body, guarded | t)
                self.check_stmts(stmt.orelse, guarded)
            elif isinstance(stmt, ast.For):
                self.check_expr(stmt.iter, guarded)
                self.check_stmts(stmt.body, guarded)
                self.check_stmts(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.With, ast.Try)):
                for item in getattr(stmt, "items", []):
                    self.check_expr(item.context_expr, guarded)
                self.check_stmts(stmt.body, guarded)
                for handler in getattr(stmt, "handlers", []):
                    self.check_stmts(handler.body, guarded)
                self.check_stmts(getattr(stmt, "orelse", []), guarded)
                self.check_stmts(getattr(stmt, "finalbody", []), guarded)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scopes are walked as their own roots
            else:
                for child in ast.iter_child_nodes(stmt):
                    self.check_expr(child, guarded)


@checker(
    name="hook-guards",
    family="HOOK",
    codes={
        "HOOK-UNGUARDED-CALL": (
            "observer/sanitizer method call not under an 'is not None' "
            "guard (breaks the zero-overhead-when-disabled contract)"
        ),
    },
    scope=HOOK_SCOPE,
)
def check_hook_guards(source: SourceFile) -> Iterator[Diagnostic]:
    walker = _GuardWalker(source)
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walker.check_stmts(node.body, set())
    return iter(walker.diags)


@checker(
    name="hook-imports",
    family="HOOK",
    codes={
        "HOOK-EAGER-IMPORT": (
            "module-scope import of repro.obs / repro.verify from "
            "core/ or memory/ (these layers must load only when a run "
            "opts in; import lazily inside the enabling branch)"
        ),
    },
    scope=HOOK_SCOPE,
)
def check_hook_imports(source: SourceFile) -> Iterator[Diagnostic]:
    def module_level(stmts):
        for stmt in stmts:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                yield stmt
            elif isinstance(stmt, (ast.If, ast.Try)):
                yield from module_level(stmt.body)
                yield from module_level(getattr(stmt, "orelse", []))
                for handler in getattr(stmt, "handlers", []):
                    yield from module_level(handler.body)
                yield from module_level(getattr(stmt, "finalbody", []))

    for stmt in module_level(source.tree.body):
        offenders = []
        if isinstance(stmt, ast.Import):
            offenders = [
                alias.name
                for alias in stmt.names
                if alias.name.startswith(_LAZY_LAYERS)
            ]
        elif stmt.module is not None and stmt.level == 0:
            if stmt.module.startswith(_LAZY_LAYERS):
                offenders = [stmt.module]
        for module in offenders:
            yield lint_error(
                "HOOK-EAGER-IMPORT", source.path, stmt.lineno,
                f"{module} imported at module scope; core/memory must "
                "import the verify/obs layers lazily inside the "
                "enabling branch (sanitize=/observe=)",
            )
