"""HOT-* — the compilable-subset gate for marked hot-loop functions.

The fused ``step()`` in ``core/smt.py`` bought ~2x by hoisting every
``self.*`` lookup out of the per-cycle loops (PR 2), and the ROADMAP's
compiled backend needs ``step()`` to stay within a subset a table-driven
/ mypyc / Cython engine can digest: flat locals, no dict/set allocation
per iteration, no closures.  Regressions in that discipline are silent
— a single re-introduced ``self.config.commit_width`` inside the commit
loop costs two dict lookups per cycle and nothing fails.

A function opts into these rules with a marker comment on (or directly
above) its ``def`` line::

    # codelint: hot-loop
    def step(self) -> bool: ...

Inside a marked function the rules flag, within ``for``/``while``
bodies: ``self.<attr>`` lookups and stores (HOT-SELF-LOOP — hoist to a
local before the loop / write back after), ``self.a.b`` attribute
chains (HOT-ATTR-CHAIN), and dict/set/comprehension allocation
(HOT-ALLOC); and anywhere in the function: lambdas and nested defs
(HOT-CLOSURE).  Rare-path exceptions take a per-line suppression with
its rationale in the comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.verify.codelint.engine import SourceFile, checker, lint_error
from repro.verify.diagnostics import Diagnostic

_ALLOC_NODES = (ast.Dict, ast.Set, ast.DictComp, ast.SetComp,
                ast.ListComp, ast.GeneratorExp)


def _self_chain_depth(node: ast.Attribute) -> int:
    """Attribute count of a chain rooted at ``self``; 0 if not self-rooted."""
    depth = 0
    probe: ast.AST = node
    while isinstance(probe, ast.Attribute):
        depth += 1
        probe = probe.value
    if isinstance(probe, ast.Name) and probe.id == "self":
        return depth
    return 0


class _HotVisitor:
    def __init__(self, source: SourceFile, func: ast.FunctionDef):
        self.source = source
        self.func = func
        self.diags: list[Diagnostic] = []

    def _flag(self, code: str, node: ast.AST, message: str) -> None:
        self.diags.append(
            lint_error(code, self.source.path, node.lineno, message)
        )

    def run(self) -> list[Diagnostic]:
        name = self.func.name
        for stmt in ast.walk(self.func):
            if stmt is self.func:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._flag(
                    "HOT-CLOSURE", stmt,
                    f"nested function {stmt.name!r} in hot loop {name!r}: "
                    "closures are outside the compilable subset; move it "
                    "to module scope",
                )
            elif isinstance(stmt, ast.Lambda):
                self._flag(
                    "HOT-CLOSURE", stmt,
                    f"lambda in hot loop {name!r} allocates a closure per "
                    "evaluation; use a module-level function or "
                    "precomputed table",
                )
        for loop in self._loops(self.func):
            for body in self._loop_exprs(loop):
                self._scan_loop_body(body, name)
        return self.diags

    def _loops(self, root: ast.AST):
        for node in ast.walk(root):
            if isinstance(node, (ast.For, ast.While)):
                yield node

    def _loop_exprs(self, loop: ast.AST):
        """Nodes evaluated per-iteration: the body (+ a while's test)."""
        if isinstance(loop, ast.While):
            yield loop.test
        for stmt in loop.body:
            yield stmt

    def _scan_loop_body(self, root: ast.AST, name: str) -> None:
        stack = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue  # nested scope; HOT-CLOSURE already fired
            if isinstance(node, ast.Attribute):
                depth = _self_chain_depth(node)
                if depth >= 2:
                    self._flag(
                        "HOT-ATTR-CHAIN", node,
                        f"attribute chain "
                        f"{ast.unparse(node)!r} inside a loop of hot "
                        f"function {name!r}: hoist to a local before the "
                        "loop (self is loop-invariant)",
                    )
                elif depth == 1:
                    verb = (
                        "store to" if isinstance(node.ctx, ast.Store)
                        else "lookup of"
                    )
                    self._flag(
                        "HOT-SELF-LOOP", node,
                        f"{verb} self.{node.attr} inside a loop of hot "
                        f"function {name!r}: hoist to a local "
                        "(accumulate and write back after the loop)",
                    )
                if depth:
                    # The chain is reported once; still scan subscripts
                    # and call arguments hanging off it.
                    stack.extend(
                        child for child in ast.iter_child_nodes(node)
                        if child is not node.value
                    )
                    probe = node.value
                    while isinstance(probe, ast.Attribute):
                        stack.extend(
                            child for child in ast.iter_child_nodes(probe)
                            if child is not probe.value
                        )
                        probe = probe.value
                    continue
            if isinstance(node, _ALLOC_NODES):
                self._flag(
                    "HOT-ALLOC", node,
                    f"{type(node).__name__} allocation inside a loop of "
                    f"hot function {name!r}: preallocate outside the loop "
                    "or use flat tables (compiled-backend subset)",
                )
            stack.extend(ast.iter_child_nodes(node))


@checker(
    name="hot-loop",
    family="HOT",
    codes={
        "HOT-SELF-LOOP": (
            "self.<attr> lookup/store inside a marked hot loop "
            "(hoist to a local; PR 2's fused-step discipline)"
        ),
        "HOT-ATTR-CHAIN": (
            "self.a.b attribute chain inside a marked hot loop "
            "(two dict lookups per iteration; hoist)"
        ),
        "HOT-ALLOC": (
            "dict/set/comprehension allocation inside a marked hot loop "
            "(per-iteration allocation; outside the compilable subset)"
        ),
        "HOT-CLOSURE": (
            "lambda or nested def in a marked hot-loop function "
            "(closures block the compiled backend)"
        ),
    },
)
def check_hot_loops(source: SourceFile) -> Iterator[Diagnostic]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.FunctionDef) and source.is_hot_function(node):
            yield from _HotVisitor(source, node).run()
