"""Static ISA/assembly checking and runtime invariant sanitizing.

Static checkers (pure functions returning
:class:`~repro.verify.diagnostics.Diagnostic` lists):

* :mod:`repro.verify.asmcheck` — lints MOM/MMX assembly (def-before-use,
  SLR discipline, accumulator discipline, arity/classes, labels);
* :mod:`repro.verify.isacheck` — cross-validates the ISA tables against
  the opcode classes and the semantics handlers;
* :mod:`repro.verify.tracecheck` — validates generated dynamic traces.

Runtime layer:

* :mod:`repro.verify.sanitizer` — opt-in invariant checks wired into the
  core and memory models via ``SMTConfig(sanitize=True)``;
* :mod:`repro.verify.faultinject` — deterministic seeded fault injection
  (worker hangs, crashes, cache corruption) for exercising the
  resilience layer of :mod:`repro.analysis.runner` in tests and CI.

``scripts/verify_tool.py`` runs all static checks over the examples,
the kernel library and the trace generator; see ``docs/VERIFY.md``.
"""

from repro.verify.asmcheck import lint_program, lint_source
from repro.verify.diagnostics import Diagnostic, Report, Severity
from repro.verify.faultinject import FaultPlan, SimulatedWorkerCrash
from repro.verify.isacheck import check_isa
from repro.verify.sanitizer import InvariantViolation, RuntimeSanitizer
from repro.verify.tracecheck import check_trace

__all__ = [
    "Diagnostic",
    "FaultPlan",
    "InvariantViolation",
    "Report",
    "RuntimeSanitizer",
    "Severity",
    "SimulatedWorkerCrash",
    "check_isa",
    "check_trace",
    "lint_program",
    "lint_source",
]
