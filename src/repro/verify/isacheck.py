"""Cross-validation of the ISA tables against the simulator and semantics.

The paper's ISA is spread over four modules that can silently drift:
:mod:`repro.isa.mmx` and :mod:`repro.isa.mom` (mnemonic tables),
:mod:`repro.isa.opcodes` (opcode classes, FU mapping, latencies) and
:mod:`repro.isa.semantics` (architectural execution).  This checker
asserts their joint invariants:

* exact opcode counts (the paper's 67 MMX / 121 MOM);
* no mnemonic appears in both tables;
* every mnemonic's ``sim_class`` has an FU class and positive latency in
  ``OPCODE_INFO``, and belongs to the right extension family;
* every mnemonic is *executable* — it has a dedicated machine handler,
  reaches a semantics handler through the generic element-wise path, or
  is explicitly documented in ``TIMING_ONLY_MNEMONICS`` (and that set
  contains no stale entries);
* every mnemonic has an :mod:`repro.verify.asmcheck` operand signature;
* no semantics handler is orphaned (unreachable from any table entry).

Executability is determined by *probing* ``execute_mmx``/``execute_mmx3``
with zero operands (handlers are pure; ``KeyError`` means no handler)
rather than by a parallel list that could itself drift.
"""

from __future__ import annotations

from repro.isa.machine import (
    MMX_SPECIAL_FORMS,
    MOM_SPECIAL_FORMS,
    TIMING_ONLY_MNEMONICS,
)
from repro.isa.mmx import EXPECTED_MMX_OPCODE_COUNT, MMX_OPCODES
from repro.isa.mom import EXPECTED_MOM_OPCODE_COUNT, MOM_OPCODES
from repro.isa.opcodes import OPCODE_INFO, Opcode
from repro.isa.semantics import (
    BINARY_MNEMONICS,
    UNARY_MNEMONICS,
    execute_mmx,
    execute_mmx3,
)
from repro.verify.diagnostics import Diagnostic, error, warning

CHECKER = "isacheck"

_MMX_CLASSES = frozenset(
    {Opcode.MMX_ALU, Opcode.MMX_MUL, Opcode.MMX_LOAD, Opcode.MMX_STORE}
)
_MOM_CLASSES = frozenset(
    {
        Opcode.MOM_ALU, Opcode.MOM_MUL, Opcode.MOM_LOAD, Opcode.MOM_STORE,
        Opcode.MOM_REDUCE, Opcode.MOM_SETSLR,
    }
)
_GENERIC_CLASSES = frozenset({Opcode.MOM_ALU, Opcode.MOM_MUL})


def _handler_exists(base: str, sources: int) -> bool:
    """Probe the semantics dispatcher for a handler (handlers are pure)."""
    try:
        if sources == 3:
            execute_mmx3(base, 0, 0, 0)
        else:
            execute_mmx(base, 0, 0, imm=0)
    except KeyError:
        return False
    except Exception:
        return True                  # handler exists but rejects zeros
    return True


def mom_base_mnemonic(mnemonic: str) -> str:
    """The MMX semantics mnemonic a generic MOM op applies element-wise."""
    suffix = mnemonic[1:]
    return suffix if suffix.startswith("p") else "p" + suffix


def check_counts() -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for name, table, expected in (
        ("MMX", MMX_OPCODES, EXPECTED_MMX_OPCODE_COUNT),
        ("MOM", MOM_OPCODES, EXPECTED_MOM_OPCODE_COUNT),
    ):
        if len(table) != expected:
            findings.append(error(
                CHECKER, "ISA-COUNT",
                f"{name} table has {len(table)} opcodes, paper specifies "
                f"{expected}",
                location=name,
            ))
    overlap = sorted(set(MMX_OPCODES) & set(MOM_OPCODES))
    for mnemonic in overlap:
        findings.append(error(
            CHECKER, "ISA-DUP",
            f"mnemonic {mnemonic!r} appears in both the MMX and MOM tables",
            location=mnemonic,
        ))
    return findings


def check_classes() -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for name, table, family in (
        ("MMX", MMX_OPCODES, _MMX_CLASSES),
        ("MOM", MOM_OPCODES, _MOM_CLASSES),
    ):
        for mnemonic, spec in table.items():
            info = OPCODE_INFO.get(spec.sim_class)
            if info is None:
                findings.append(error(
                    CHECKER, "ISA-NO-CLASS-INFO",
                    f"{mnemonic}: sim_class {spec.sim_class!r} missing "
                    "from OPCODE_INFO",
                    location=mnemonic,
                ))
                continue
            if info.latency < 1:
                findings.append(error(
                    CHECKER, "ISA-LATENCY",
                    f"{mnemonic}: class {spec.sim_class.name} has "
                    f"non-positive latency {info.latency}",
                    location=mnemonic,
                ))
            if spec.sim_class not in family:
                findings.append(error(
                    CHECKER, "ISA-FAMILY",
                    f"{mnemonic}: {name} mnemonic maps to foreign class "
                    f"{spec.sim_class.name}",
                    location=mnemonic,
                ))
    return findings


def check_semantics() -> list[Diagnostic]:
    """Every mnemonic executable or documented timing-only; no stale docs."""
    findings: list[Diagnostic] = []
    reachable_handlers: set[str] = set()

    for mnemonic, spec in MMX_OPCODES.items():
        if mnemonic in MMX_SPECIAL_FORMS:
            continue
        if _handler_exists(mnemonic, spec.sources):
            reachable_handlers.add(mnemonic)
        elif mnemonic not in TIMING_ONLY_MNEMONICS:
            findings.append(error(
                CHECKER, "ISA-ORPHAN",
                f"MMX mnemonic {mnemonic!r} has no semantics handler and "
                "is not documented as timing-only",
                location=mnemonic,
            ))

    for mnemonic, spec in MOM_OPCODES.items():
        if mnemonic in MOM_SPECIAL_FORMS:
            continue
        base = mom_base_mnemonic(mnemonic)
        generic_ok = (
            spec.sim_class in _GENERIC_CLASSES
            and _handler_exists(base, spec.sources)
        )
        if generic_ok:
            reachable_handlers.add(base)
        if mnemonic in TIMING_ONLY_MNEMONICS:
            if generic_ok:
                findings.append(error(
                    CHECKER, "ISA-STALE-TIMING-ONLY",
                    f"{mnemonic!r} is documented timing-only but its "
                    f"element-wise base {base!r} is executable",
                    location=mnemonic,
                ))
        elif not generic_ok:
            findings.append(error(
                CHECKER, "ISA-ORPHAN",
                f"MOM mnemonic {mnemonic!r} has neither a dedicated "
                f"handler nor an executable element-wise base {base!r}, "
                "and is not documented as timing-only",
                location=mnemonic,
            ))

    known = set(MMX_OPCODES) | set(MOM_OPCODES)
    for name, members in (
        ("MMX_SPECIAL_FORMS", MMX_SPECIAL_FORMS),
        ("MOM_SPECIAL_FORMS", MOM_SPECIAL_FORMS),
        ("TIMING_ONLY_MNEMONICS", TIMING_ONLY_MNEMONICS),
    ):
        for mnemonic in sorted(set(members) - known):
            findings.append(error(
                CHECKER, "ISA-STALE-SET",
                f"{name} lists {mnemonic!r}, which is in neither ISA table",
                location=mnemonic,
            ))

    # Handlers nobody can reach (direct MMX use or via a MOM base).
    for handler in sorted(
        (BINARY_MNEMONICS | UNARY_MNEMONICS) - reachable_handlers
    ):
        findings.append(warning(
            CHECKER, "ISA-UNREACHED-HANDLER",
            f"semantics handler {handler!r} is not reachable from any "
            "ISA table entry",
            location=handler,
        ))
    return findings


def check_signatures() -> list[Diagnostic]:
    """Every table mnemonic must have an asmcheck operand signature."""
    from repro.verify.asmcheck import SIGNATURES

    findings: list[Diagnostic] = []
    for table in (MMX_OPCODES, MOM_OPCODES):
        for mnemonic in table:
            if mnemonic not in SIGNATURES:
                findings.append(error(
                    CHECKER, "ISA-NO-SIGNATURE",
                    f"{mnemonic!r} has no asmcheck operand signature",
                    location=mnemonic,
                ))
    return findings


def check_isa() -> list[Diagnostic]:
    """Run every ISA cross-validation check."""
    findings: list[Diagnostic] = []
    findings.extend(check_counts())
    findings.extend(check_classes())
    findings.extend(check_semantics())
    findings.extend(check_signatures())
    return findings
