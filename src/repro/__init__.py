"""Reproduction of "DLP + TLP Processors for the Next Generation of
Media Workloads" (Corbal, Espasa, Valero — HPCA 2001).

The package is organized bottom-up:

* :mod:`repro.isa` — the scalar/MMX/MOM instruction sets, executable
  packed semantics, an architectural machine and an assembler;
* :mod:`repro.kernels` — functional media kernels and codecs (DCT,
  motion estimation, JPEG, GSM, MPEG-2, a Mesa-like 3D pipeline);
* :mod:`repro.tracegen` — the trace compiler calibrated to the paper's
  Table 3 instruction breakdown;
* :mod:`repro.workloads` — the Mediabench-derived multiprogrammed
  workload and the §5.1 rotation methodology;
* :mod:`repro.memory` — the cache hierarchies (conventional and
  decoupled) and the DRDRAM channel;
* :mod:`repro.core` — the SMT out-of-order core (and a CMP extension);
* :mod:`repro.analysis` — experiment drivers for every table/figure.

Quickstart::

    from repro import SMTProcessor, SMTConfig, build_workload_traces
    from repro.memory import ConventionalHierarchy

    traces = build_workload_traces("mom", scale=5e-5)
    cpu = SMTProcessor(SMTConfig(isa="mom", n_threads=8),
                       ConventionalHierarchy(), traces)
    print(cpu.run().summary())
"""

from repro.core import FetchPolicy, RunResult, SMTConfig, SMTProcessor
from repro.workloads import build_workload_traces

__version__ = "1.0.0"

__all__ = [
    "FetchPolicy",
    "RunResult",
    "SMTConfig",
    "SMTProcessor",
    "build_workload_traces",
    "__version__",
]
