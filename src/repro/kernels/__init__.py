"""Media kernels underlying the paper's Mediabench workload.

These are real, functional implementations of the algorithms that dominate
the seven workload programs (table 2 of the paper): DCT/IDCT and
quantization (JPEG, MPEG-2), block-matching motion estimation (MPEG-2
encode), colour conversion and downsampling (JPEG), LPC/LTP filters (GSM),
entropy coding (all codecs — the hard-to-vectorize "protocol overhead"),
and 3D geometry/rasterization (Mesa).

They serve three purposes:

* the example applications run them end-to-end (encode/decode real frames),
* the packed variants exercise the executable µ-SIMD semantics of
  :mod:`repro.isa.semantics` and validate them against scalar references,
* the trace compiler (:mod:`repro.tracegen`) lowers their loop structures
  into the instruction traces the SMT simulator consumes.
"""

from repro.kernels.dct import dct2d, idct2d, fdct_fixed, idct_fixed
from repro.kernels.blockmatch import (
    sad_block,
    sad_block_packed,
    full_search,
    three_step_search,
)
from repro.kernels.quant import quantize, dequantize, quantize_packed
from repro.kernels.color import rgb_to_ycbcr, ycbcr_to_rgb, downsample_420
from repro.kernels.fir import fir_filter, fir_filter_packed, iir_biquad
from repro.kernels.gsm import (
    preprocess,
    autocorrelation,
    reflection_coefficients,
    ltp_search,
    ltp_search_packed,
)
from repro.kernels.jpeg import zigzag, inverse_zigzag, rle_encode, rle_decode
from repro.kernels.mesa3d import (
    Vertex,
    transform_vertices,
    perspective_divide,
    rasterize_triangle,
)

__all__ = [
    "dct2d",
    "idct2d",
    "fdct_fixed",
    "idct_fixed",
    "sad_block",
    "sad_block_packed",
    "full_search",
    "three_step_search",
    "quantize",
    "dequantize",
    "quantize_packed",
    "rgb_to_ycbcr",
    "ycbcr_to_rgb",
    "downsample_420",
    "fir_filter",
    "fir_filter_packed",
    "iir_biquad",
    "preprocess",
    "autocorrelation",
    "reflection_coefficients",
    "ltp_search",
    "ltp_search_packed",
    "zigzag",
    "inverse_zigzag",
    "rle_encode",
    "rle_decode",
    "Vertex",
    "transform_vertices",
    "perspective_divide",
    "rasterize_triangle",
]
