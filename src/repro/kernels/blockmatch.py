"""Block-matching motion estimation (the MPEG-2 encoder's dominant kernel).

Motion estimation is where the encoder spends most of its cycles and where
``psadbw`` (MMX) / ``vsadab`` (MOM packed-accumulator SAD) pay off.  The
packed SAD here is computed through the executable ISA semantics so the
kernel doubles as a validation of :mod:`repro.isa.semantics`.
"""

from __future__ import annotations

import numpy as np

from repro.isa.datatypes import ElementType as ET, pack_lanes
from repro.isa.semantics import PackedAccumulator, psadbw

MACROBLOCK = 16


def sad_block(current: np.ndarray, reference: np.ndarray) -> int:
    """Sum of absolute differences between two equally-shaped blocks."""
    current = np.asarray(current, dtype=np.int64)
    reference = np.asarray(reference, dtype=np.int64)
    if current.shape != reference.shape:
        raise ValueError("block shapes differ")
    return int(np.abs(current - reference).sum())


def _pack_row_u8(row: np.ndarray) -> list[int]:
    """Pack a row of uint8 samples into 64-bit register images."""
    if len(row) % 8:
        raise ValueError("row length must be a multiple of 8")
    return [
        pack_lanes([int(v) for v in row[i : i + 8]], ET.UINT8)
        for i in range(0, len(row), 8)
    ]


def sad_block_packed(current: np.ndarray, reference: np.ndarray) -> int:
    """SAD computed with packed-accumulator ISA semantics (vsadab).

    Each 16-pixel row packs into two 64-bit words; a MOM ``vsadab`` stream
    folds the absolute differences of all words into accumulator lane 0.
    """
    current = np.asarray(current, dtype=np.uint8)
    reference = np.asarray(reference, dtype=np.uint8)
    if current.shape != reference.shape:
        raise ValueError("block shapes differ")
    acc = PackedAccumulator()
    for cur_row, ref_row in zip(current, reference):
        acc.sad_stream(_pack_row_u8(cur_row), _pack_row_u8(ref_row))
    return acc.lanes[0]


def sad_block_mmx(current: np.ndarray, reference: np.ndarray) -> int:
    """SAD accumulated word-by-word with the MMX ``psadbw`` semantics."""
    current = np.asarray(current, dtype=np.uint8)
    reference = np.asarray(reference, dtype=np.uint8)
    total = 0
    for cur_row, ref_row in zip(current, reference):
        for wa, wb in zip(_pack_row_u8(cur_row), _pack_row_u8(ref_row)):
            total += psadbw(wa, wb)
    return total


def full_search(
    current: np.ndarray,
    reference: np.ndarray,
    block_y: int,
    block_x: int,
    search_range: int = 7,
    block_size: int = MACROBLOCK,
) -> tuple[tuple[int, int], int]:
    """Exhaustive motion search around a macroblock position.

    Returns ``((dy, dx), best_sad)`` for the best-matching block of the
    reference frame within ``±search_range`` pixels.
    """
    current = np.asarray(current, dtype=np.int64)
    reference = np.asarray(reference, dtype=np.int64)
    height, width = reference.shape
    block = current[block_y : block_y + block_size, block_x : block_x + block_size]
    best = (0, 0)
    best_sad = None
    for dy in range(-search_range, search_range + 1):
        for dx in range(-search_range, search_range + 1):
            y = block_y + dy
            x = block_x + dx
            if y < 0 or x < 0 or y + block_size > height or x + block_size > width:
                continue
            candidate = reference[y : y + block_size, x : x + block_size]
            sad = int(np.abs(block - candidate).sum())
            if best_sad is None or sad < best_sad:
                best_sad = sad
                best = (dy, dx)
    if best_sad is None:
        raise ValueError("search window empty — block outside the frame?")
    return best, best_sad


def three_step_search(
    current: np.ndarray,
    reference: np.ndarray,
    block_y: int,
    block_x: int,
    block_size: int = MACROBLOCK,
) -> tuple[tuple[int, int], int]:
    """Logarithmic three-step motion search (the fast-encoder baseline)."""
    current = np.asarray(current, dtype=np.int64)
    reference = np.asarray(reference, dtype=np.int64)
    height, width = reference.shape
    block = current[block_y : block_y + block_size, block_x : block_x + block_size]

    def sad_at(y: int, x: int):
        if y < 0 or x < 0 or y + block_size > height or x + block_size > width:
            return None
        candidate = reference[y : y + block_size, x : x + block_size]
        return int(np.abs(block - candidate).sum())

    center_y, center_x = block_y, block_x
    best_sad = sad_at(center_y, center_x)
    if best_sad is None:
        raise ValueError("block outside the frame")
    step = 4
    while step >= 1:
        for dy in (-step, 0, step):
            for dx in (-step, 0, step):
                sad = sad_at(center_y + dy, center_x + dx)
                if sad is not None and sad < best_sad:
                    best_sad = sad
                    center_y += dy
                    center_x += dx
        step //= 2
    return (center_y - block_y, center_x - block_x), best_sad


def motion_compensate(
    reference: np.ndarray, vectors: dict[tuple[int, int], tuple[int, int]],
    block_size: int = MACROBLOCK,
) -> np.ndarray:
    """Build a predicted frame from per-macroblock motion vectors."""
    reference = np.asarray(reference)
    predicted = np.zeros_like(reference)
    for (block_y, block_x), (dy, dx) in vectors.items():
        src = reference[
            block_y + dy : block_y + dy + block_size,
            block_x + dx : block_x + dx + block_size,
        ]
        predicted[
            block_y : block_y + block_size, block_x : block_x + block_size
        ] = src
    return predicted
