"""Colour-space conversion and chroma downsampling (JPEG front end).

Fixed-point ITU-R BT.601 RGB <-> YCbCr conversion, the classic packed
multiply-accumulate kernel, plus 4:2:0 chroma downsampling (packed
averaging, ``pavgb``).
"""

from __future__ import annotations

import numpy as np

#: Fixed-point fractional bits for the conversion matrices.
CSC_BITS = 16
_HALF = 1 << (CSC_BITS - 1)

# BT.601 full-range coefficients, scaled to 16-bit fixed point.
_Y_COEF = (
    round(0.299 * (1 << CSC_BITS)),
    round(0.587 * (1 << CSC_BITS)),
    round(0.114 * (1 << CSC_BITS)),
)
_CB_COEF = (
    round(-0.168736 * (1 << CSC_BITS)),
    round(-0.331264 * (1 << CSC_BITS)),
    round(0.5 * (1 << CSC_BITS)),
)
_CR_COEF = (
    round(0.5 * (1 << CSC_BITS)),
    round(-0.418688 * (1 << CSC_BITS)),
    round(-0.081312 * (1 << CSC_BITS)),
)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert an (H, W, 3) uint8 RGB image to YCbCr (uint8)."""
    rgb = np.asarray(rgb, dtype=np.int64)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError("expected an (H, W, 3) image")
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    y = (_Y_COEF[0] * r + _Y_COEF[1] * g + _Y_COEF[2] * b + _HALF) >> CSC_BITS
    cb = 128 + (
        (_CB_COEF[0] * r + _CB_COEF[1] * g + _CB_COEF[2] * b + _HALF) >> CSC_BITS
    )
    cr = 128 + (
        (_CR_COEF[0] * r + _CR_COEF[1] * g + _CR_COEF[2] * b + _HALF) >> CSC_BITS
    )
    out = np.stack([y, cb, cr], axis=-1)
    return np.clip(out, 0, 255).astype(np.uint8)


def ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    """Convert an (H, W, 3) uint8 YCbCr image back to RGB (uint8)."""
    ycbcr = np.asarray(ycbcr, dtype=np.int64)
    if ycbcr.ndim != 3 or ycbcr.shape[2] != 3:
        raise ValueError("expected an (H, W, 3) image")
    y = ycbcr[..., 0]
    cb = ycbcr[..., 1] - 128
    cr = ycbcr[..., 2] - 128
    one = 1 << CSC_BITS
    r = (y * one + round(1.402 * one) * cr + _HALF) >> CSC_BITS
    g = (
        y * one - round(0.344136 * one) * cb - round(0.714136 * one) * cr + _HALF
    ) >> CSC_BITS
    b = (y * one + round(1.772 * one) * cb + _HALF) >> CSC_BITS
    out = np.stack([r, g, b], axis=-1)
    return np.clip(out, 0, 255).astype(np.uint8)


def downsample_420(plane: np.ndarray) -> np.ndarray:
    """2x2 rounded-average chroma downsampling (4:4:4 -> 4:2:0).

    The rounded average of four neighbours is two chained ``pavgb``
    operations in the packed implementation.
    """
    plane = np.asarray(plane, dtype=np.int64)
    height, width = plane.shape
    if height % 2 or width % 2:
        raise ValueError("plane dimensions must be even")
    quad = (
        plane[0::2, 0::2]
        + plane[0::2, 1::2]
        + plane[1::2, 0::2]
        + plane[1::2, 1::2]
    )
    return ((quad + 2) >> 2).astype(np.uint8)


def upsample_420(plane: np.ndarray) -> np.ndarray:
    """Nearest-neighbour chroma upsampling (4:2:0 -> 4:4:4)."""
    plane = np.asarray(plane)
    return np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)
