"""Coefficient quantization kernels (JPEG / MPEG-2).

Quantization divides DCT coefficients by a perceptual step matrix and is
implemented in codecs as fixed-point multiply + shift with saturating
narrowing — the pattern that maps onto ``pmulhw``/``packsswb``.
"""

from __future__ import annotations

import numpy as np

from repro.isa.datatypes import ElementType as ET, pack_lanes, saturate, unpack_lanes
from repro.isa.semantics import execute_mmx

#: The JPEG Annex K luminance quantization matrix (quality 50 baseline).
JPEG_LUMA_QTABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int64,
)


def scale_qtable(qtable: np.ndarray, quality: int) -> np.ndarray:
    """Scale a base quantization table to a JPEG quality factor (1..100)."""
    if not 1 <= quality <= 100:
        raise ValueError("quality must be in 1..100")
    if quality < 50:
        scale = 5000 // quality
    else:
        scale = 200 - 2 * quality
    scaled = (np.asarray(qtable, dtype=np.int64) * scale + 50) // 100
    return np.clip(scaled, 1, 255)


def quantize(coeffs: np.ndarray, qtable: np.ndarray) -> np.ndarray:
    """Quantize DCT coefficients with round-half-away-from-zero."""
    coeffs = np.asarray(coeffs, dtype=np.int64)
    qtable = np.asarray(qtable, dtype=np.int64)
    if coeffs.shape != qtable.shape:
        raise ValueError("coefficient and table shapes differ")
    sign = np.sign(coeffs)
    return sign * ((np.abs(coeffs) + qtable // 2) // qtable)


def dequantize(levels: np.ndarray, qtable: np.ndarray) -> np.ndarray:
    """Reconstruct coefficients from quantized levels."""
    levels = np.asarray(levels, dtype=np.int64)
    qtable = np.asarray(qtable, dtype=np.int64)
    if levels.shape != qtable.shape:
        raise ValueError("level and table shapes differ")
    return levels * qtable


#: Fractional bits of the packed reciprocal table.
RECIP_BITS = 15


def reciprocal_table(qtable: np.ndarray) -> np.ndarray:
    """Fixed-point reciprocals 2^15/q used by the packed quantizer."""
    qtable = np.asarray(qtable, dtype=np.int64)
    return (1 << RECIP_BITS) // qtable


def quantize_packed(coeffs: np.ndarray, qtable: np.ndarray) -> np.ndarray:
    """Quantize one 8x8 block through packed ``pmulhw`` semantics.

    Codecs replace the per-coefficient division by a multiply with a
    fixed-point reciprocal followed by a shift; here each row of four
    16-bit coefficients is processed through the executable MMX semantics
    (``pmulhw`` keeps the high 16 bits, i.e. a built-in >>16).

    The result is a truncating quantizer: it differs from
    :func:`quantize` by at most one level, which is the same accuracy
    trade-off production MMX quantizers make.
    """
    coeffs = np.asarray(coeffs, dtype=np.int64)
    recip = reciprocal_table(qtable) * 2  # pre-shift: pmulhw drops 16 bits
    out = np.zeros_like(coeffs)
    height, width = coeffs.shape
    if width % 4:
        raise ValueError("row length must be a multiple of 4")
    for y in range(height):
        for x in range(0, width, 4):
            quad = [int(v) for v in coeffs[y, x : x + 4]]
            signs = [1 if v >= 0 else -1 for v in quad]
            mags = [saturate(abs(v), ET.INT16) for v in quad]
            rquad = [int(v) for v in recip[y, x : x + 4]]
            packed = execute_mmx(
                "pmulhw",
                pack_lanes(mags, ET.INT16),
                pack_lanes(rquad, ET.INT16),
            )
            lanes = unpack_lanes(packed, ET.INT16)
            out[y, x : x + 4] = [s * q for s, q in zip(signs, lanes)]
    return out
