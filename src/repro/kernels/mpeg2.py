"""A miniature MPEG-2-style video codec built from the kernel substrate.

Intra frames are JPEG-like (DCT + quantization + zigzag/RLE); inter frames
add block-matching motion estimation and residual coding.  This is the
end-to-end pipeline the `mpeg2enc`/`mpeg2dec` workload programs model and
the example applications run on synthetic video.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels.blockmatch import MACROBLOCK, full_search, motion_compensate
from repro.kernels.dct import BLOCK, blocks_of, fdct_fixed, idct_fixed
from repro.kernels.jpeg import inverse_zigzag, rle_decode, rle_encode, zigzag
from repro.kernels.quant import JPEG_LUMA_QTABLE, dequantize, quantize, scale_qtable


@dataclass
class EncodedFrame:
    """One encoded frame: coded blocks plus (for P frames) motion vectors."""

    frame_type: str                       # "I" or "P"
    height: int
    width: int
    blocks: list[list[tuple[int, int]]]   # RLE pairs per 8x8 block, raster order
    motion_vectors: dict[tuple[int, int], tuple[int, int]] = field(
        default_factory=dict
    )

    @property
    def coded_block_count(self) -> int:
        return len(self.blocks)


class Mpeg2Encoder:
    """Encode a sequence of greyscale frames with an IPPP... GOP pattern."""

    def __init__(self, quality: int = 50, gop: int = 4, search_range: int = 4):
        if gop < 1:
            raise ValueError("GOP length must be >= 1")
        self.qtable = scale_qtable(JPEG_LUMA_QTABLE, quality)
        self.gop = gop
        self.search_range = search_range
        self._reference: np.ndarray | None = None
        self._frame_index = 0

    def _code_plane(self, plane: np.ndarray) -> list[list[tuple[int, int]]]:
        coded = []
        for __, __, block in blocks_of(plane):
            coeffs = fdct_fixed(block.astype(np.int64) - 128)
            levels = quantize(coeffs, self.qtable)
            coded.append(rle_encode(zigzag(levels)))
        return coded

    def _decode_plane(self, coded, height: int, width: int) -> np.ndarray:
        plane = np.zeros((height, width), dtype=np.int64)
        index = 0
        for y in range(0, height, BLOCK):
            for x in range(0, width, BLOCK):
                levels = inverse_zigzag(rle_decode(coded[index]))
                coeffs = dequantize(levels, self.qtable)
                plane[y : y + BLOCK, x : x + BLOCK] = idct_fixed(coeffs) + 128
                index += 1
        return np.clip(plane, -255, 510)

    def encode_frame(self, frame: np.ndarray) -> EncodedFrame:
        """Encode the next frame; I/P decision follows the GOP pattern."""
        frame = np.asarray(frame, dtype=np.int64)
        height, width = frame.shape
        if height % MACROBLOCK or width % MACROBLOCK:
            raise ValueError("frame dimensions must be multiples of 16")
        is_intra = self._frame_index % self.gop == 0 or self._reference is None
        self._frame_index += 1
        if is_intra:
            coded = self._code_plane(frame)
            self._reference = self._decode_plane(coded, height, width)
            self._reference = np.clip(self._reference, 0, 255)
            return EncodedFrame("I", height, width, coded)
        # P frame: motion estimate against the reconstructed reference.
        vectors = {}
        for by in range(0, height, MACROBLOCK):
            for bx in range(0, width, MACROBLOCK):
                (dy, dx), __ = full_search(
                    frame, self._reference, by, bx, self.search_range
                )
                vectors[(by, bx)] = (dy, dx)
        predicted = motion_compensate(self._reference, vectors)
        residual = frame - predicted
        coded = self._code_plane(residual + 128)
        decoded_residual = self._decode_plane(coded, height, width) - 128
        self._reference = np.clip(predicted + decoded_residual, 0, 255)
        return EncodedFrame("P", height, width, coded, vectors)


class Mpeg2Decoder:
    """Decode the stream produced by :class:`Mpeg2Encoder`."""

    def __init__(self, quality: int = 50):
        self.qtable = scale_qtable(JPEG_LUMA_QTABLE, quality)
        self._reference: np.ndarray | None = None

    def _decode_plane(self, coded, height: int, width: int) -> np.ndarray:
        plane = np.zeros((height, width), dtype=np.int64)
        index = 0
        for y in range(0, height, BLOCK):
            for x in range(0, width, BLOCK):
                levels = inverse_zigzag(rle_decode(coded[index]))
                coeffs = dequantize(levels, self.qtable)
                plane[y : y + BLOCK, x : x + BLOCK] = idct_fixed(coeffs) + 128
                index += 1
        return plane

    def decode_frame(self, encoded: EncodedFrame) -> np.ndarray:
        if encoded.frame_type == "I":
            frame = np.clip(
                self._decode_plane(encoded.blocks, encoded.height, encoded.width),
                0,
                255,
            )
            self._reference = frame
            return frame.astype(np.uint8)
        if self._reference is None:
            raise ValueError("P frame before any I frame")
        predicted = motion_compensate(self._reference, encoded.motion_vectors)
        residual = (
            self._decode_plane(encoded.blocks, encoded.height, encoded.width) - 128
        )
        frame = np.clip(predicted + residual, 0, 255)
        self._reference = frame
        return frame.astype(np.uint8)


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio between two 8-bit frames (dB)."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    mse = np.mean((original - reconstructed) ** 2)
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0**2 / mse)


def synthetic_video(
    frames: int, height: int = 32, width: int = 32, seed: int = 7
) -> list[np.ndarray]:
    """A moving-gradient-plus-texture test sequence (deterministic)."""
    rng = np.random.default_rng(seed)
    texture = rng.integers(0, 48, size=(height, width))
    ys, xs = np.mgrid[0:height, 0:width]
    video = []
    for t in range(frames):
        gradient = (ys * 3 + xs * 2 + t * 5) % 160
        frame = np.clip(gradient + np.roll(texture, t, axis=1), 0, 255)
        video.append(frame.astype(np.uint8))
    return video
