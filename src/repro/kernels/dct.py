"""8x8 discrete cosine transform kernels (JPEG / MPEG-2).

Provides a float reference DCT-II/DCT-III pair and the fixed-point 16-bit
variants real codecs use — the fixed-point forward transform is the loop
the trace compiler lowers to ``pmaddwd``/``vmaddawd`` sequences.
"""

from __future__ import annotations

import math

import numpy as np

BLOCK = 8

#: Fixed-point fractional bits used by the integer transforms.
FIXED_BITS = 13
FIXED_ONE = 1 << FIXED_BITS


def _dct_matrix() -> np.ndarray:
    """The orthonormal 8x8 DCT-II basis matrix."""
    mat = np.zeros((BLOCK, BLOCK))
    for k in range(BLOCK):
        scale = math.sqrt(1.0 / BLOCK) if k == 0 else math.sqrt(2.0 / BLOCK)
        for n in range(BLOCK):
            mat[k, n] = scale * math.cos(math.pi * (2 * n + 1) * k / (2 * BLOCK))
    return mat


_DCT = _dct_matrix()
_DCT_FIXED = np.round(_DCT * FIXED_ONE).astype(np.int64)


def dct2d(block: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT of an 8x8 block (float reference)."""
    block = np.asarray(block, dtype=np.float64)
    if block.shape != (BLOCK, BLOCK):
        raise ValueError(f"expected an {BLOCK}x{BLOCK} block, got {block.shape}")
    return _DCT @ block @ _DCT.T


def idct2d(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of an 8x8 coefficient block (float reference)."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.shape != (BLOCK, BLOCK):
        raise ValueError(f"expected an {BLOCK}x{BLOCK} block, got {coeffs.shape}")
    return _DCT.T @ coeffs @ _DCT


def fdct_fixed(block: np.ndarray) -> np.ndarray:
    """Fixed-point forward DCT, as an integer codec computes it.

    Each output coefficient is a sum of products of 16-bit samples with
    13-bit fixed-point cosines — exactly the multiply-accumulate pattern
    that maps onto packed ``pmaddwd`` (MMX) or a single accumulator-based
    stream instruction (MOM).
    """
    block = np.asarray(block, dtype=np.int64)
    if block.shape != (BLOCK, BLOCK):
        raise ValueError(f"expected an {BLOCK}x{BLOCK} block, got {block.shape}")
    rows = (_DCT_FIXED @ block + (FIXED_ONE >> 1)) >> FIXED_BITS
    full = (rows @ _DCT_FIXED.T + (FIXED_ONE >> 1)) >> FIXED_BITS
    return full.astype(np.int64)


def idct_fixed(coeffs: np.ndarray) -> np.ndarray:
    """Fixed-point inverse DCT matching :func:`fdct_fixed`."""
    coeffs = np.asarray(coeffs, dtype=np.int64)
    if coeffs.shape != (BLOCK, BLOCK):
        raise ValueError(f"expected an {BLOCK}x{BLOCK} block, got {coeffs.shape}")
    rows = (_DCT_FIXED.T @ coeffs + (FIXED_ONE >> 1)) >> FIXED_BITS
    full = (rows @ _DCT_FIXED + (FIXED_ONE >> 1)) >> FIXED_BITS
    return full.astype(np.int64)


def blocks_of(image: np.ndarray):
    """Iterate (y, x, block) over the 8x8 tiling of an image.

    The image dimensions must be multiples of 8 (codecs pad beforehand).
    """
    image = np.asarray(image)
    height, width = image.shape
    if height % BLOCK or width % BLOCK:
        raise ValueError("image dimensions must be multiples of 8")
    for y in range(0, height, BLOCK):
        for x in range(0, width, BLOCK):
            yield y, x, image[y : y + BLOCK, x : x + BLOCK]
