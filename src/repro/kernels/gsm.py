"""GSM full-rate (06.10-style) speech codec kernels.

The GSM encoder/decoder pair represents the MPEG-4 audio/speech profile in
the paper's workload.  Its hot kernels are:

* input preprocessing (DC offset compensation + pre-emphasis — recursive,
  scalar),
* LPC analysis: autocorrelation (vectorizable multiply-accumulate) and
  Schur/Levinson reflection coefficients (scalar, data-dependent),
* long-term prediction (LTP) lag search: a cross-correlation maximum over
  40-sample windows — the most SIMD-friendly loop of the codec.
"""

from __future__ import annotations

import numpy as np

from repro.isa.datatypes import ElementType as ET, pack_lanes, saturate, unpack_lanes
from repro.isa.semantics import execute_mmx

FRAME_SIZE = 160     # samples per 20 ms frame at 8 kHz
SUBFRAME = 40        # LTP operates on 5 ms subframes
LTP_MIN_LAG = 40
LTP_MAX_LAG = 120
LPC_ORDER = 8


def preprocess(samples) -> np.ndarray:
    """Offset compensation and pre-emphasis (GSM 06.10 section 4.2.1).

    Both filters are first-order recursions — inherently serial, part of
    the scalar fraction the paper highlights.
    """
    samples = np.asarray(samples, dtype=np.int64)
    out = np.zeros(len(samples), dtype=np.int64)
    z1 = 0
    l_z2 = 0
    mp = 0
    for i, sample in enumerate(samples):
        # Offset compensation: y[n] = x[n] - x[n-1] + alpha*y[n-1].
        s1 = (int(sample) << 15) - (z1 << 15)
        z1 = int(sample)
        l_s2 = s1 + ((l_z2 * 32735) >> 15)
        l_z2 = l_s2
        offset_free = saturate((l_s2 + (1 << 14)) >> 15, ET.INT16)
        # Pre-emphasis: y[n] = x[n] - 28180/32768 * x[n-1].
        emphasized = saturate(offset_free - ((mp * 28180) >> 15), ET.INT16)
        mp = offset_free
        out[i] = emphasized
    return out


def autocorrelation(samples, order: int = LPC_ORDER) -> np.ndarray:
    """Autocorrelation sequence r[0..order] of a frame.

    The inner products are the vectorizable multiply-accumulate loops the
    trace compiler lowers to ``pmaddwd``/``vmaddawd``.
    """
    samples = np.asarray(samples, dtype=np.int64)
    if len(samples) < order + 1:
        raise ValueError("frame shorter than LPC order")
    return np.array(
        [int(np.dot(samples[k:], samples[: len(samples) - k])) for k in range(order + 1)],
        dtype=np.int64,
    )


def reflection_coefficients(acf: np.ndarray, order: int = LPC_ORDER) -> np.ndarray:
    """Levinson-Durbin recursion: ACF -> reflection coefficients.

    Returns the PARCOR coefficients k[1..order]; the prediction
    polynomial follows by the step-up recursion (see
    :func:`repro.kernels.gsm_codec._direct_form_coefficients`).  Silence
    (zero energy) yields all-zero coefficients.
    """
    acf = np.asarray(acf, dtype=np.float64)
    if len(acf) < order + 1:
        raise ValueError("ACF shorter than LPC order")
    if acf[0] <= 0:
        return np.zeros(order)
    a = np.zeros(order + 1)
    a[0] = 1.0
    error = acf[0]
    refl = np.zeros(order)
    for m in range(1, order + 1):
        if error <= 1e-12:
            break
        acc = float(sum(a[i] * acf[m - i] for i in range(m)))
        k = -acc / error
        k = max(-0.9999, min(0.9999, k))
        refl[m - 1] = k
        updated = a.copy()
        for i in range(1, m):
            updated[i] = a[i] + k * a[m - i]
        updated[m] = k
        a = updated
        error *= 1.0 - k * k
    return refl


def ltp_search(subframe, history) -> tuple[int, int]:
    """Long-term-prediction lag search (scalar reference).

    Finds the lag in ``[LTP_MIN_LAG, LTP_MAX_LAG]`` maximizing the
    cross-correlation between the current subframe and the reconstructed
    history.  Returns ``(lag, peak_correlation)``.
    """
    subframe = np.asarray(subframe, dtype=np.int64)
    history = np.asarray(history, dtype=np.int64)
    if len(subframe) != SUBFRAME:
        raise ValueError(f"subframe must be {SUBFRAME} samples")
    if len(history) < LTP_MAX_LAG + SUBFRAME:
        raise ValueError("history too short for maximum lag")
    best_lag = LTP_MIN_LAG
    best_corr = None
    anchor = len(history) - SUBFRAME
    for lag in range(LTP_MIN_LAG, LTP_MAX_LAG + 1):
        window = history[anchor - lag : anchor - lag + SUBFRAME]
        corr = int(np.dot(subframe, window))
        if best_corr is None or corr > best_corr:
            best_corr = corr
            best_lag = lag
    return best_lag, int(best_corr)


def ltp_search_packed(subframe, history) -> tuple[int, int]:
    """LTP lag search with the correlation inner product done via pmaddwd.

    Samples are saturated to 16 bits (as the codec's fixed-point pipeline
    guarantees) and multiplied 4 lanes at a time.
    """
    subframe = [saturate(int(v), ET.INT16) for v in np.asarray(subframe)]
    history = [saturate(int(v), ET.INT16) for v in np.asarray(history)]
    if len(subframe) % 4:
        raise ValueError("subframe length must be a multiple of 4")
    packed_sub = [
        pack_lanes(subframe[i : i + 4], ET.INT16)
        for i in range(0, len(subframe), 4)
    ]
    best_lag = LTP_MIN_LAG
    best_corr = None
    anchor = len(history) - SUBFRAME
    for lag in range(LTP_MIN_LAG, LTP_MAX_LAG + 1):
        window = history[anchor - lag : anchor - lag + SUBFRAME]
        corr = 0
        for i, word in enumerate(packed_sub):
            packed_win = pack_lanes(window[i * 4 : i * 4 + 4], ET.INT16)
            partial = execute_mmx("pmaddwd", word, packed_win)
            corr += sum(unpack_lanes(partial, ET.INT32))
        if best_corr is None or corr > best_corr:
            best_corr = corr
            best_lag = lag
    return best_lag, best_corr


def synthesize(residual, refl: np.ndarray) -> np.ndarray:
    """Short-term synthesis (lattice) filter — the decoder's scalar core."""
    residual = np.asarray(residual, dtype=np.float64)
    order = len(refl)
    state = np.zeros(order)
    out = np.zeros(len(residual))
    for n, sample in enumerate(residual):
        acc = float(sample)
        for i in range(order - 1, -1, -1):
            acc -= refl[i] * state[i]
            if i > 0:
                state[i] = state[i - 1] + refl[i] * acc
        state[0] = acc
        out[n] = acc
    return out
