"""Fixed-point filter kernels (speech/audio processing substrate).

GSM and most speech codecs are built from short FIR convolutions and
biquad IIR sections over 16-bit samples with saturating accumulation.
``fir_filter_packed`` runs the same convolution through the executable
``pmaddwd`` semantics, demonstrating (and validating) the 4-tap-at-a-time
packed formulation.
"""

from __future__ import annotations

import numpy as np

from repro.isa.datatypes import ElementType as ET, pack_lanes, saturate, unpack_lanes
from repro.isa.semantics import execute_mmx


def fir_filter(samples, taps, shift: int = 15) -> np.ndarray:
    """Fixed-point FIR convolution with saturating 16-bit output.

    ``taps`` are Q(shift) fixed-point coefficients; each output is
    ``sat16(round(sum(samples[n-k] * taps[k]) / 2^shift))``.
    """
    samples = np.asarray(samples, dtype=np.int64)
    taps = np.asarray(taps, dtype=np.int64)
    if taps.ndim != 1 or samples.ndim != 1:
        raise ValueError("samples and taps must be 1-D")
    half = 1 << (shift - 1) if shift > 0 else 0
    out = np.zeros(len(samples), dtype=np.int64)
    for n in range(len(samples)):
        acc = 0
        for k, tap in enumerate(taps):
            if n - k >= 0:
                acc += int(samples[n - k]) * int(tap)
        out[n] = saturate((acc + half) >> shift, ET.INT16)
    return out


def fir_filter_packed(samples, taps, shift: int = 15) -> np.ndarray:
    """FIR convolution computed 4 taps at a time via ``pmaddwd``.

    The tap count is padded to a multiple of 4; each group of four
    (sample, tap) products is fused by one packed multiply-add, and the
    two 32-bit partial sums are folded scalar-side — the standard MMX
    filter formulation.
    """
    samples = np.asarray(samples, dtype=np.int64)
    taps = list(np.asarray(taps, dtype=np.int64))
    while len(taps) % 4:
        taps.append(0)
    half = 1 << (shift - 1) if shift > 0 else 0
    out = np.zeros(len(samples), dtype=np.int64)
    for n in range(len(samples)):
        acc = 0
        for base in range(0, len(taps), 4):
            window = []
            for k in range(base, base + 4):
                value = int(samples[n - k]) if n - k >= 0 else 0
                window.append(saturate(value, ET.INT16))
            tap_quad = [saturate(int(t), ET.INT16) for t in taps[base : base + 4]]
            packed = execute_mmx(
                "pmaddwd",
                pack_lanes(window, ET.INT16),
                pack_lanes(tap_quad, ET.INT16),
            )
            acc += sum(unpack_lanes(packed, ET.INT32))
        out[n] = saturate((acc + half) >> shift, ET.INT16)
    return out


def iir_biquad(samples, b_coeffs, a_coeffs, shift: int = 14) -> np.ndarray:
    """Direct-form-I biquad section with fixed-point coefficients.

    ``b_coeffs`` = (b0, b1, b2), ``a_coeffs`` = (a1, a2); all Q(shift).
    The recursive dependency makes this kernel non-vectorizable — it is
    part of the scalar fraction of the GSM workload.
    """
    samples = np.asarray(samples, dtype=np.int64)
    b0, b1, b2 = (int(b) for b in b_coeffs)
    a1, a2 = (int(a) for a in a_coeffs)
    half = 1 << (shift - 1)
    out = np.zeros(len(samples), dtype=np.int64)
    x1 = x2 = y1 = y2 = 0
    for n, x0 in enumerate(samples):
        x0 = int(x0)
        acc = b0 * x0 + b1 * x1 + b2 * x2 - a1 * y1 - a2 * y2
        y0 = saturate((acc + half) >> shift, ET.INT16)
        out[n] = y0
        x2, x1 = x1, x0
        y2, y1 = y1, y0
    return out
