"""A complete baseline-JPEG-style image codec built from the kernels.

The full pipeline of the workload's ``jpegenc``/``jpegdec`` programs:
RGB -> YCbCr conversion, 4:2:0 chroma subsampling, 8x8 DCT, quality-scaled
quantization, zigzag + run-length coding, and Huffman entropy coding to
an actual bit string — then the exact inverse.  Grey-scale ("luma only")
mode is also supported.

This is functional code (used by the examples and to ground the trace
model); it is not meant to be bit-compatible with ITU T.81 files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels.color import (
    downsample_420,
    rgb_to_ycbcr,
    upsample_420,
    ycbcr_to_rgb,
)
from repro.kernels.dct import BLOCK, blocks_of, fdct_fixed, idct_fixed
from repro.kernels.jpeg import (
    HuffmanCodec,
    inverse_zigzag,
    rle_decode,
    rle_encode,
    zigzag,
)
from repro.kernels.quant import (
    JPEG_LUMA_QTABLE,
    dequantize,
    quantize,
    scale_qtable,
)


@dataclass
class EncodedImage:
    """A coded image: per-plane bitstreams plus the symbol codec."""

    height: int
    width: int
    quality: int
    color: bool
    plane_bits: dict[str, str]
    plane_block_counts: dict[str, int] = field(default_factory=dict)
    codec: HuffmanCodec | None = None

    @property
    def total_bits(self) -> int:
        return sum(len(bits) for bits in self.plane_bits.values())

    def compression_ratio(self) -> float:
        raw_bits = self.height * self.width * (24 if self.color else 8)
        return raw_bits / max(self.total_bits, 1)


def _pad_to_block_multiple(plane: np.ndarray) -> np.ndarray:
    height, width = plane.shape
    pad_y = (-height) % BLOCK
    pad_x = (-width) % BLOCK
    if pad_y or pad_x:
        plane = np.pad(plane, ((0, pad_y), (0, pad_x)), mode="edge")
    return plane


def _code_plane(plane: np.ndarray, qtable: np.ndarray) -> list[tuple[int, int]]:
    """DCT + quantize + zigzag + RLE a whole plane into symbols."""
    symbols: list[tuple[int, int]] = []
    for __, __, block in blocks_of(plane):
        coeffs = fdct_fixed(block.astype(np.int64) - 128)
        levels = quantize(coeffs, qtable)
        symbols.extend(rle_encode(zigzag(levels)))
    return symbols


def _decode_plane(
    symbols: list[tuple[int, int]],
    height: int,
    width: int,
    qtable: np.ndarray,
) -> np.ndarray:
    plane = np.zeros((height, width), dtype=np.int64)
    index = 0
    for y in range(0, height, BLOCK):
        for x in range(0, width, BLOCK):
            block_symbols = []
            while True:
                pair = symbols[index]
                index += 1
                block_symbols.append(pair)
                if pair == (0, 0):
                    break
            levels = inverse_zigzag(rle_decode(block_symbols))
            coeffs = dequantize(levels, qtable)
            plane[y : y + BLOCK, x : x + BLOCK] = idct_fixed(coeffs) + 128
    return np.clip(plane, 0, 255).astype(np.uint8)


class JpegCodec:
    """Encode/decode grey-scale or RGB images end to end."""

    def __init__(self, quality: int = 75):
        self.quality = quality
        self.qtable = scale_qtable(JPEG_LUMA_QTABLE, quality)

    def encode(self, image: np.ndarray) -> EncodedImage:
        image = np.asarray(image)
        color = image.ndim == 3
        height, width = image.shape[:2]
        planes: dict[str, np.ndarray] = {}
        if color:
            ycc = rgb_to_ycbcr(image)
            planes["y"] = _pad_to_block_multiple(ycc[..., 0])
            planes["cb"] = _pad_to_block_multiple(
                downsample_420(_pad_even(ycc[..., 1]))
            )
            planes["cr"] = _pad_to_block_multiple(
                downsample_420(_pad_even(ycc[..., 2]))
            )
        else:
            planes["y"] = _pad_to_block_multiple(image)
        symbols_per_plane = {
            name: _code_plane(plane, self.qtable)
            for name, plane in planes.items()
        }
        all_symbols = [s for syms in symbols_per_plane.values() for s in syms]
        codec = HuffmanCodec.from_symbols(all_symbols)
        plane_bits = {
            name: codec.encode(symbols)
            for name, symbols in symbols_per_plane.items()
        }
        counts = {
            name: (plane.shape[0] // BLOCK) * (plane.shape[1] // BLOCK)
            for name, plane in planes.items()
        }
        return EncodedImage(
            height=height,
            width=width,
            quality=self.quality,
            color=color,
            plane_bits=plane_bits,
            plane_block_counts=counts,
            codec=codec,
        )

    def decode(self, encoded: EncodedImage) -> np.ndarray:
        if encoded.codec is None:
            raise ValueError("encoded image carries no symbol codec")
        qtable = scale_qtable(JPEG_LUMA_QTABLE, encoded.quality)
        padded_h = encoded.height + (-encoded.height) % BLOCK
        padded_w = encoded.width + (-encoded.width) % BLOCK
        luma_symbols = encoded.codec.decode(encoded.plane_bits["y"])
        luma = _decode_plane(luma_symbols, padded_h, padded_w, qtable)
        luma = luma[: encoded.height, : encoded.width]
        if not encoded.color:
            return luma
        ch = (encoded.height + 1) // 2
        cw = (encoded.width + 1) // 2
        chroma_h = ch + (-ch) % BLOCK
        chroma_w = cw + (-cw) % BLOCK
        chroma = {}
        for name in ("cb", "cr"):
            symbols = encoded.codec.decode(encoded.plane_bits[name])
            plane = _decode_plane(symbols, chroma_h, chroma_w, qtable)
            chroma[name] = upsample_420(plane[:ch, :cw])[
                : encoded.height, : encoded.width
            ]
        ycc = np.stack([luma, chroma["cb"], chroma["cr"]], axis=-1)
        return ycbcr_to_rgb(ycc)


def _pad_even(plane: np.ndarray) -> np.ndarray:
    height, width = plane.shape
    return np.pad(
        plane, ((0, height % 2), (0, width % 2)), mode="edge"
    )


def image_psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """PSNR in dB between two images of equal shape."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    mse = np.mean((original - reconstructed) ** 2)
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0**2 / mse)


def synthetic_image(height: int = 64, width: int = 64, color: bool = False,
                    seed: int = 3) -> np.ndarray:
    """A deterministic gradient-plus-texture test image."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:height, 0:width]
    base = (ys * 2 + xs * 3) % 200 + rng.integers(0, 32, (height, width))
    grey = np.clip(base, 0, 255).astype(np.uint8)
    if not color:
        return grey
    red = grey
    green = np.clip(255 - base, 0, 255).astype(np.uint8)
    blue = np.clip((xs * 4) % 256 + rng.integers(0, 16, (height, width)), 0, 255)
    return np.stack([red, green, blue.astype(np.uint8)], axis=-1)
