"""Mesa-like 3D pipeline kernels (the MPEG-4 still-image / 3D profile).

The paper's mesa benchmark (OpenGL software rendering) is *not*
vectorized — their emulation library lacked FP µ-SIMD — so these kernels
contribute floating-point and integer work to the traces under both ISAs.
The implementation is a miniature fixed-function pipeline: model-view
transform, perspective divide + viewport mapping, and z-buffered
flat-shaded triangle rasterization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Vertex:
    """A pipeline vertex in homogeneous coordinates with an RGB colour."""

    position: tuple[float, float, float, float]
    color: tuple[float, float, float] = (1.0, 1.0, 1.0)


def look_at(eye, center, up) -> np.ndarray:
    """Right-handed look-at view matrix."""
    eye = np.asarray(eye, dtype=np.float64)
    center = np.asarray(center, dtype=np.float64)
    up = np.asarray(up, dtype=np.float64)
    forward = center - eye
    forward /= np.linalg.norm(forward)
    side = np.cross(forward, up)
    side /= np.linalg.norm(side)
    true_up = np.cross(side, forward)
    view = np.eye(4)
    view[0, :3] = side
    view[1, :3] = true_up
    view[2, :3] = -forward
    view[:3, 3] = -view[:3, :3] @ eye
    return view


def perspective(fov_y_deg: float, aspect: float, near: float, far: float) -> np.ndarray:
    """OpenGL-style perspective projection matrix."""
    if near <= 0 or far <= near:
        raise ValueError("require 0 < near < far")
    f = 1.0 / np.tan(np.radians(fov_y_deg) / 2.0)
    proj = np.zeros((4, 4))
    proj[0, 0] = f / aspect
    proj[1, 1] = f
    proj[2, 2] = (far + near) / (near - far)
    proj[2, 3] = 2 * far * near / (near - far)
    proj[3, 2] = -1.0
    return proj


def transform_vertices(vertices: list[Vertex], matrix: np.ndarray) -> list[Vertex]:
    """Apply a 4x4 transform to every vertex (the FP-heavy geometry stage)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape != (4, 4):
        raise ValueError("expected a 4x4 matrix")
    out = []
    for vertex in vertices:
        pos = matrix @ np.asarray(vertex.position, dtype=np.float64)
        out.append(Vertex(tuple(pos), vertex.color))
    return out


def perspective_divide(
    vertices: list[Vertex], width: int, height: int
) -> list[tuple[float, float, float, tuple[float, float, float]]]:
    """Clip-space -> screen-space: divide by w and map to the viewport.

    Vertices behind the eye (w <= 0) are dropped (cheap near-plane clip).
    Returns ``(x, y, depth, color)`` tuples.
    """
    screen = []
    for vertex in vertices:
        x, y, z, w = vertex.position
        if w <= 1e-9:
            continue
        ndc_x, ndc_y, ndc_z = x / w, y / w, z / w
        screen.append(
            (
                (ndc_x + 1.0) * 0.5 * (width - 1),
                (1.0 - ndc_y) * 0.5 * (height - 1),
                ndc_z,
                vertex.color,
            )
        )
    return screen


def rasterize_triangle(
    framebuffer: np.ndarray,
    zbuffer: np.ndarray,
    p0, p1, p2,
) -> int:
    """Z-buffered flat-shaded rasterization via edge functions.

    ``p*`` are ``(x, y, depth, color)`` screen-space tuples; the triangle
    colour is the mean of the vertex colours.  Returns the number of
    pixels written (useful for workload accounting).
    """
    height, width = zbuffer.shape
    if framebuffer.shape[:2] != (height, width):
        raise ValueError("framebuffer and zbuffer sizes differ")
    x0, y0, z0, c0 = p0
    x1, y1, z1, c1 = p1
    x2, y2, z2, c2 = p2
    area = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0)
    if abs(area) < 1e-12:
        return 0
    color = np.clip(
        (np.asarray(c0) + np.asarray(c1) + np.asarray(c2)) / 3.0, 0.0, 1.0
    )
    rgb = (color * 255).astype(np.uint8)
    min_x = max(int(np.floor(min(x0, x1, x2))), 0)
    max_x = min(int(np.ceil(max(x0, x1, x2))), width - 1)
    min_y = max(int(np.floor(min(y0, y1, y2))), 0)
    max_y = min(int(np.ceil(max(y0, y1, y2))), height - 1)
    written = 0
    for py in range(min_y, max_y + 1):
        for px in range(min_x, max_x + 1):
            cx, cy = px + 0.5, py + 0.5
            w0 = (x1 - x0) * (cy - y0) - (cx - x0) * (y1 - y0)
            w1 = (x2 - x1) * (cy - y1) - (cx - x1) * (y2 - y1)
            w2 = (x0 - x2) * (cy - y2) - (cx - x2) * (y0 - y2)
            if area > 0:
                inside = w0 >= 0 and w1 >= 0 and w2 >= 0
            else:
                inside = w0 <= 0 and w1 <= 0 and w2 <= 0
            if not inside:
                continue
            # Barycentric depth interpolation.
            b1 = w2 / area if area > 0 else w2 / area
            b2 = w0 / area
            b0 = 1.0 - b1 - b2
            depth = b0 * z0 + b1 * z1 + b2 * z2
            if depth < zbuffer[py, px]:
                zbuffer[py, px] = depth
                framebuffer[py, px] = rgb
                written += 1
    return written


def render_mesh(
    vertices: list[Vertex],
    triangles: list[tuple[int, int, int]],
    matrix: np.ndarray,
    width: int = 64,
    height: int = 64,
) -> tuple[np.ndarray, int]:
    """Run the full mini-pipeline over an indexed mesh.

    Returns ``(framebuffer, pixels_written)``.
    """
    framebuffer = np.zeros((height, width, 3), dtype=np.uint8)
    zbuffer = np.full((height, width), np.inf)
    transformed = transform_vertices(vertices, matrix)
    screen = perspective_divide(transformed, width, height)
    written = 0
    for i0, i1, i2 in triangles:
        if max(i0, i1, i2) >= len(screen):
            continue  # vertex clipped away
        written += rasterize_triangle(
            framebuffer, zbuffer, screen[i0], screen[i1], screen[i2]
        )
    return framebuffer, written
