"""A GSM-06.10-style speech codec assembled from the GSM kernels.

Per 160-sample frame the encoder performs the stages of the real
full-rate codec: preprocessing (offset compensation + pre-emphasis),
LPC analysis (autocorrelation + Schur reflection coefficients),
short-term *analysis* filtering to a residual, and per-subframe long-term
prediction (lag + fixed-point gain) with a decimated residual pulse
train (a simplified RPE stage).  The decoder inverts each stage.

As with the other codec modules this is functional reference code: it
demonstrates and exercises the kernels the workload model is calibrated
on, trading bit-exactness with ETSI test vectors for clarity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.datatypes import ElementType as ET, saturate
from repro.kernels.gsm import (
    FRAME_SIZE,
    LTP_MAX_LAG,
    LTP_MIN_LAG,
    SUBFRAME,
    autocorrelation,
    ltp_search,
    preprocess,
    reflection_coefficients,
)

#: Residual pulses kept per subframe (grid decimation, RPE-style).
RPE_FACTOR = 3

#: Fixed-point bits of the quantized LTP gain.
GAIN_BITS = 6


@dataclass
class EncodedSubframe:
    lag: int
    gain_q: int                         # quantized gain, Q(GAIN_BITS)
    grid: int                           # decimation phase
    pulses: np.ndarray                  # quantized residual pulses


@dataclass
class EncodedFrame:
    reflection: np.ndarray              # LPC reflection coefficients
    subframes: list[EncodedSubframe]


def _direct_form_coefficients(refl: np.ndarray) -> np.ndarray:
    """Step-up recursion: reflection -> direct-form predictor a[1..p].

    The predictor polynomial A(z) = 1 + a1 z^-1 + ... satisfies the usual
    Levinson-Durbin update a_m(i) = a_{m-1}(i) + k_m a_{m-1}(m-i).
    """
    coeffs = np.zeros(0)
    for k in refl:
        order = len(coeffs) + 1
        updated = np.zeros(order)
        updated[: order - 1] = coeffs + k * coeffs[::-1]
        updated[order - 1] = k
        coeffs = updated
    return coeffs


def _analysis_filter(samples: np.ndarray, refl: np.ndarray) -> np.ndarray:
    """Short-term analysis: speech -> LPC residual, e = A(z) s."""
    a = _direct_form_coefficients(refl)
    order = len(a)
    out = np.zeros(len(samples))
    for n in range(len(samples)):
        acc = float(samples[n])
        for k in range(order):
            if n - k - 1 >= 0:
                acc += a[k] * samples[n - k - 1]
        out[n] = acc
    return out


def _synthesis_filter(residual: np.ndarray, refl: np.ndarray) -> np.ndarray:
    """Short-term synthesis: residual -> speech, s = e / A(z)."""
    a = _direct_form_coefficients(refl)
    order = len(a)
    out = np.zeros(len(residual))
    for n in range(len(residual)):
        acc = float(residual[n])
        for k in range(order):
            if n - k - 1 >= 0:
                acc -= a[k] * out[n - k - 1]
        out[n] = acc
    return out


class GsmEncoder:
    """Frame-by-frame speech encoder."""

    def __init__(self):
        self._history = np.zeros(LTP_MAX_LAG + SUBFRAME)

    def encode_frame(self, samples) -> EncodedFrame:
        samples = np.asarray(samples, dtype=np.int64)
        if len(samples) != FRAME_SIZE:
            raise ValueError(f"frame must be {FRAME_SIZE} samples")
        clean = preprocess(samples)
        refl = reflection_coefficients(autocorrelation(clean))
        residual = _analysis_filter(clean.astype(float), refl)
        subframes = []
        for start in range(0, FRAME_SIZE, SUBFRAME):
            sub = residual[start : start + SUBFRAME]
            history = self._history
            lag, __ = ltp_search(
                np.round(sub).astype(np.int64),
                np.round(history).astype(np.int64),
            )
            predicted = history[len(history) - lag : len(history) - lag + SUBFRAME]
            energy = float(np.dot(predicted, predicted))
            gain = float(np.dot(sub, predicted)) / energy if energy > 1e-9 else 0.0
            gain = max(0.0, min(gain, 1.984))
            gain_q = int(round(gain * (1 << GAIN_BITS)))
            gain = gain_q / (1 << GAIN_BITS)
            innovation = sub - gain * predicted
            # RPE grid selection: keep the decimated phase with most energy.
            grids = [innovation[g::RPE_FACTOR] for g in range(RPE_FACTOR)]
            grid = int(np.argmax([float(np.dot(g, g)) for g in grids]))
            pulses = np.array(
                [saturate(int(round(p)), ET.INT16) for p in grids[grid]]
            )
            # Local reconstruction keeps encoder/decoder history in sync.
            recon_innovation = np.zeros(SUBFRAME)
            recon_innovation[grid::RPE_FACTOR] = pulses
            recon = gain * predicted + recon_innovation
            self._history = np.concatenate([history[SUBFRAME:], recon])
            subframes.append(EncodedSubframe(lag, gain_q, grid, pulses))
        return EncodedFrame(refl, subframes)


class GsmDecoder:
    """Frame-by-frame speech decoder.

    The output is the reconstruction of the encoder's *preprocessed*
    signal followed by de-emphasis (the inverse of the encoder's
    pre-emphasis); the DC-offset compensation is intentionally not
    inverted, exactly as in GSM 06.10.
    """

    def __init__(self):
        self._history = np.zeros(LTP_MAX_LAG + SUBFRAME)
        self._deemph_state = 0.0

    def decode_frame(self, frame: EncodedFrame) -> np.ndarray:
        residual = np.zeros(FRAME_SIZE)
        for index, sub in enumerate(frame.subframes):
            if not LTP_MIN_LAG <= sub.lag <= LTP_MAX_LAG:
                raise ValueError(f"lag {sub.lag} out of range")
            history = self._history
            predicted = history[
                len(history) - sub.lag : len(history) - sub.lag + SUBFRAME
            ]
            gain = sub.gain_q / (1 << GAIN_BITS)
            innovation = np.zeros(SUBFRAME)
            innovation[sub.grid :: RPE_FACTOR] = sub.pulses
            recon = gain * predicted + innovation
            residual[index * SUBFRAME : (index + 1) * SUBFRAME] = recon
            self._history = np.concatenate([history[SUBFRAME:], recon])
        speech = _synthesis_filter(residual, frame.reflection)
        # De-emphasis: invert y[n] = x[n] - beta x[n-1].
        beta = 28180 / 32768
        out = np.zeros(len(speech))
        state = self._deemph_state
        for n, s in enumerate(speech):
            state = s + beta * state
            out[n] = state
        self._deemph_state = state
        return np.array(
            [saturate(int(round(s)), ET.INT16) for s in out], dtype=np.int64
        )


def synthetic_speech(n_frames: int, seed: int = 5) -> np.ndarray:
    """Voiced-like test signal: pitch pulses + formant-ish resonance."""
    rng = np.random.default_rng(seed)
    n = n_frames * FRAME_SIZE
    pitch = 57
    excitation = np.zeros(n)
    excitation[::pitch] = 2000
    excitation += rng.normal(0, 60, n)
    # One-pole resonance shapes the spectrum.
    speech = np.zeros(n)
    state = 0.0
    for i, e in enumerate(excitation):
        state = 0.72 * state + e
        speech[i] = state
    return np.clip(speech, -30000, 30000).astype(np.int64)


def segmental_snr(original, reconstructed, segment: int = SUBFRAME) -> float:
    """Mean per-segment SNR in dB (speech-codec quality metric)."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    snrs = []
    for start in range(0, len(original) - segment + 1, segment):
        ref = original[start : start + segment]
        err = ref - reconstructed[start : start + segment]
        signal = float(np.dot(ref, ref))
        noise = float(np.dot(err, err))
        if signal < 1e-9:
            continue
        snrs.append(10.0 * np.log10(signal / max(noise, 1e-9)))
    return float(np.mean(snrs)) if snrs else 0.0
