"""JPEG entropy-stage kernels: zigzag scan, run-length and Huffman coding.

These are the "protocol overhead" portions of the image codecs — table
lookups, bit twiddling and data-dependent branches that resist
vectorization and keep the integer pipeline busy (the paper's central
observation).
"""

from __future__ import annotations

import heapq
from collections import Counter

import numpy as np

BLOCK = 8


def _zigzag_order() -> list[tuple[int, int]]:
    """Visit order of the classic 8x8 zigzag scan."""
    order = []
    for s in range(2 * BLOCK - 1):
        if s % 2 == 0:
            y = min(s, BLOCK - 1)
            while y >= 0 and s - y < BLOCK:
                order.append((y, s - y))
                y -= 1
        else:
            x = min(s, BLOCK - 1)
            while x >= 0 and s - x < BLOCK:
                order.append((s - x, x))
                x -= 1
    return order


ZIGZAG_ORDER = _zigzag_order()


def zigzag(block: np.ndarray) -> np.ndarray:
    """Flatten an 8x8 block in zigzag order."""
    block = np.asarray(block)
    if block.shape != (BLOCK, BLOCK):
        raise ValueError("expected an 8x8 block")
    return np.array([block[y, x] for y, x in ZIGZAG_ORDER])


def inverse_zigzag(flat: np.ndarray) -> np.ndarray:
    """Rebuild an 8x8 block from its zigzag scan."""
    flat = np.asarray(flat)
    if flat.shape != (BLOCK * BLOCK,):
        raise ValueError("expected 64 coefficients")
    block = np.zeros((BLOCK, BLOCK), dtype=flat.dtype)
    for value, (y, x) in zip(flat, ZIGZAG_ORDER):
        block[y, x] = value
    return block


def rle_encode(flat: np.ndarray) -> list[tuple[int, int]]:
    """JPEG-style (zero-run, level) encoding with an end-of-block marker.

    Returns a list of ``(run, level)`` pairs; ``(0, 0)`` terminates the
    block.  Runs longer than 15 emit ``(15, 0)`` ZRL symbols as in the
    standard.
    """
    pairs: list[tuple[int, int]] = []
    run = 0
    for value in np.asarray(flat):
        value = int(value)
        if value == 0:
            run += 1
            continue
        while run > 15:
            pairs.append((15, 0))
            run -= 16
        pairs.append((run, value))
        run = 0
    pairs.append((0, 0))
    return pairs


def rle_decode(pairs: list[tuple[int, int]], length: int = 64) -> np.ndarray:
    """Invert :func:`rle_encode`."""
    out = np.zeros(length, dtype=np.int64)
    pos = 0
    for run, level in pairs:
        if (run, level) == (0, 0):
            break
        if run == 15 and level == 0:
            pos += 16
            continue
        pos += run
        if pos >= length:
            raise ValueError("run-length data overflows the block")
        out[pos] = level
        pos += 1
    return out


class HuffmanCodec:
    """Canonical Huffman codec over arbitrary hashable symbols.

    Bit-serial encode/decode with data-dependent table walks — the
    archetypal scalar media kernel.
    """

    def __init__(self, frequencies: dict):
        if not frequencies:
            raise ValueError("cannot build a code over no symbols")
        self.code: dict = {}
        if len(frequencies) == 1:
            symbol = next(iter(frequencies))
            self.code[symbol] = "0"
        else:
            heap = [
                (freq, i, symbol)
                for i, (symbol, freq) in enumerate(sorted(frequencies.items(), key=str))
            ]
            heapq.heapify(heap)
            next_id = len(heap)
            parents: dict = {}
            while len(heap) > 1:
                f1, i1, s1 = heapq.heappop(heap)
                f2, i2, s2 = heapq.heappop(heap)
                node = ("node", next_id)
                parents[node] = (s1, s2)
                heapq.heappush(heap, (f1 + f2, next_id, node))
                next_id += 1
            __, __, root = heap[0]
            self._assign(root, "", parents)
        self._decode_tree = {bits: symbol for symbol, bits in self.code.items()}

    def _assign(self, node, prefix: str, parents: dict) -> None:
        if isinstance(node, tuple) and node and node[0] == "node":
            left, right = parents[node]
            self._assign(left, prefix + "0", parents)
            self._assign(right, prefix + "1", parents)
        else:
            self.code[node] = prefix or "0"

    @classmethod
    def from_symbols(cls, symbols) -> "HuffmanCodec":
        return cls(Counter(symbols))

    def encode(self, symbols) -> str:
        """Encode an iterable of symbols to a bit string."""
        return "".join(self.code[s] for s in symbols)

    def decode(self, bits: str) -> list:
        """Decode a bit string back to the symbol list."""
        out = []
        current = ""
        for bit in bits:
            current += bit
            if current in self._decode_tree:
                out.append(self._decode_tree[current])
                current = ""
        if current:
            raise ValueError("trailing bits do not form a codeword")
        return out

    def mean_code_length(self, frequencies: dict) -> float:
        """Expected bits per symbol under this code."""
        total = sum(frequencies.values())
        return sum(
            freq * len(self.code[symbol]) for symbol, freq in frequencies.items()
        ) / total
