"""Opt-in observability: pipeline events, metrics, traces, profiling.

Request observation per run with ``SMTConfig(observe=...)``:

* ``observe=True`` — full :class:`~repro.obs.events.PipelineObserver`
  (per-instruction lifetime records + memory events + metrics);
* ``observe="metrics"`` — metrics registry only (what the stall-cause
  breakdown sweeps use; no per-instruction storage);
* ``observe=<PipelineObserver>`` — bring your own (e.g. with custom
  bounds), then inspect ``observer.records`` after the run;
* ``observe=None`` (default) — disabled.  Every hook in the simulator
  is a single ``is not None`` test; disabled runs are bit-identical to
  a tree without this package (enforced by ``tests/test_obs_bitident.py``
  and the ``check_hotloop.py`` drift gate).

See ``docs/OBSERVABILITY.md`` for the event schema and the
``scripts/pipetrace_tool.py`` walkthrough.
"""

from repro.obs.events import (
    STAGES,
    STALL_CAUSES,
    InstRecord,
    ObservabilityError,
    PipelineObserver,
    resolve_observer,
    validate_records,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.profile import PhaseProfiler
from repro.obs.trace import (
    chrome_trace,
    parse_ascii,
    render_ascii,
    validate_chrome_trace,
)

__all__ = [
    "STAGES",
    "STALL_CAUSES",
    "Counter",
    "Histogram",
    "InstRecord",
    "MetricsRegistry",
    "ObservabilityError",
    "PhaseProfiler",
    "PipelineObserver",
    "chrome_trace",
    "parse_ascii",
    "render_ascii",
    "resolve_observer",
    "validate_chrome_trace",
    "validate_records",
]
