"""Trace exporters: Chrome-trace JSON and a Konata-style ASCII pipeline.

Both operate on the :class:`repro.obs.events.InstRecord` stream captured
by a :class:`~repro.obs.events.PipelineObserver`; neither imports the
simulator, so ``scripts/pipetrace_tool.py`` can post-process a run
without touching core state.

Chrome trace format
-------------------
:func:`chrome_trace` emits the "JSON Object Format" of the Trace Event
specification (loadable in ``chrome://tracing`` and Perfetto): one
complete-duration event (``"ph": "X"``) per occupied pipeline interval
of each instruction, grouped into one process per hardware context
(``pid`` = thread) with one track per instruction (``tid`` = record
uid), plus instant events (``"ph": "i"``) for memory events and
metadata events (``"ph": "M"``) naming the tracks.  Timestamps are in
microseconds per the spec; we map one core cycle to one microsecond.

ASCII pipeline
--------------
:func:`render_ascii` draws one row per instruction::

    # base=1071
    #12 t3 pc=4198 op=17 sl=8 mp=0 sq=- | F.D.I..XC

with ``F``/``D``/``I``/``X``/``C`` marking the fetch, dispatch, issue,
complete and commit cycles.  The fused pipeline step can complete and
commit an instruction in the same cycle — the only possible stage
collision — in which case only ``C`` is drawn and
:func:`parse_ascii` restores ``complete == commit`` (a commit without a
completion is impossible).  Squash cycles live in the header (``sq=``),
so the renderer and parser form an exact round-trip over every legal
record stream.
"""

from __future__ import annotations

import re

from repro.obs.events import InstRecord

#: Intervals drawn/exported between consecutive stage timestamps.
_SPANS = (
    ("decode", "fetch", "dispatch"),
    ("queue", "dispatch", "issue"),
    ("execute", "issue", "complete"),
    ("window", "complete", "commit"),
)


# ------------------------------------------------------------- chrome trace


def chrome_trace(
    records: list[InstRecord],
    mem_events: list[tuple] = (),
    label: str = "repro",
) -> dict:
    """Build a Chrome-trace ("JSON Object Format") document."""
    events: list[dict] = []
    threads = set()
    for record in records:
        threads.add(record.thread)
        track = {"pid": record.thread, "tid": record.uid}
        args = {
            "uid": record.uid,
            "pc": record.pc,
            "op": record.op,
            "stream_length": record.stream_length,
            "mispredicted": record.mispredicted,
        }
        events.append({
            "name": "thread_name", "ph": "M",
            "pid": record.thread, "tid": record.uid,
            "args": {"name": f"inst {record.uid}"},
        })
        for name, start_stage, end_stage in _SPANS:
            start = getattr(record, start_stage)
            end = getattr(record, end_stage)
            if start is None or end is None:
                continue
            events.append({
                "name": name, "cat": "pipeline", "ph": "X",
                "ts": start, "dur": max(end - start, 0),
                "args": args, **track,
            })
        if record.squash is not None:
            events.append({
                "name": "squash", "cat": "pipeline", "ph": "i",
                "ts": record.squash, "s": "t", "args": args, **track,
            })
    for now, component, kind, thread, latency, hit in mem_events:
        events.append({
            "name": f"{component}:{kind}", "cat": "memory", "ph": "i",
            "ts": now, "s": "g", "pid": -1, "tid": hash(component) & 0xFFFF,
            "args": {"component": component, "kind": kind,
                     "thread": thread, "latency": latency, "hit": hit},
        })
    for thread in sorted(threads):
        events.append({
            "name": "process_name", "ph": "M", "pid": thread, "tid": 0,
            "args": {"name": f"hw context {thread}"},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "pipetrace_tool", "label": label},
    }


#: Required keys per event phase, per the Trace Event format spec.
_PHASE_REQUIRED = {
    "X": ("name", "ph", "ts", "dur", "pid", "tid"),
    "i": ("name", "ph", "ts", "s", "pid", "tid"),
    "M": ("name", "ph", "pid", "args"),
}


def validate_chrome_trace(document: dict) -> int:
    """Validate a document against the trace-event schema subset we emit.

    Returns the number of events checked; raises ``ValueError`` with the
    offending event on the first violation.  Used by the pipetrace tests
    and by ``pipetrace_tool.py --check``.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a JSON-object-format trace: missing traceEvents")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for event in events:
        if not isinstance(event, dict):
            raise ValueError(f"event is not an object: {event!r}")
        phase = event.get("ph")
        if phase not in _PHASE_REQUIRED:
            raise ValueError(f"unknown event phase {phase!r}: {event!r}")
        for key in _PHASE_REQUIRED[phase]:
            if key not in event:
                raise ValueError(f"event missing {key!r}: {event!r}")
        if phase == "X":
            if not isinstance(event["ts"], int) or not isinstance(
                event["dur"], int
            ):
                raise ValueError(f"ts/dur must be integers: {event!r}")
            if event["dur"] < 0:
                raise ValueError(f"negative duration: {event!r}")
        if phase == "i" and event["s"] not in ("g", "p", "t"):
            raise ValueError(f"bad instant scope: {event!r}")
    return len(events)


# ---------------------------------------------------------- ascii pipeline

_ROW = re.compile(
    r"^#(?P<uid>\d+) t(?P<thread>\d+) pc=(?P<pc>\d+) op=(?P<op>\d+) "
    r"sl=(?P<sl>\d+) mp=(?P<mp>[01]) sq=(?P<sq>\d+|-) \| (?P<timeline>.*)$"
)

_STAGE_LETTER = (
    ("fetch", "F"),
    ("dispatch", "D"),
    ("issue", "I"),
    ("complete", "X"),
    ("commit", "C"),
)


def render_ascii(records: list[InstRecord], max_width: int = 4096) -> str:
    """Render records as a Konata-style ASCII pipeline diagram."""
    if not records:
        return "# base=0\n"
    base = min(record.fetch for record in records)
    lines = [f"# base={base}"]
    for record in records:
        cells: dict[int, str] = {}
        for stage, letter in _STAGE_LETTER:
            cycle = getattr(record, stage)
            if cycle is None:
                continue
            # Complete/commit in the same fused step is the only legal
            # collision; commit wins and the parser restores the pair.
            cells[cycle - base] = letter
        if not cells:
            continue
        first, last = min(cells), max(cells)
        if last >= max_width:
            raise ValueError(
                f"record #{record.uid} spans past column {max_width}; "
                "raise max_width or trace a narrower window"
            )
        timeline = "".join(
            cells.get(col, "." if first < col < last else " ")
            for col in range(last + 1)
        )
        squash = record.squash if record.squash is not None else "-"
        lines.append(
            f"#{record.uid} t{record.thread} pc={record.pc} "
            f"op={record.op} sl={record.stream_length} "
            f"mp={int(record.mispredicted)} sq={squash} | {timeline}"
        )
    return "\n".join(lines) + "\n"


def parse_ascii(text: str) -> list[InstRecord]:
    """Parse :func:`render_ascii` output back into records."""
    base = 0
    records: list[InstRecord] = []
    for line in text.splitlines():
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# base="):
            base = int(line[len("# base="):])
            continue
        match = _ROW.match(line)
        if match is None:
            raise ValueError(f"unparseable pipeline row: {line!r}")
        stages: dict[str, int] = {}
        for column, letter in enumerate(match["timeline"]):
            if letter in (" ", "."):
                continue
            for stage, stage_letter in _STAGE_LETTER:
                if letter == stage_letter:
                    stages[stage] = base + column
                    break
            else:
                raise ValueError(f"unknown stage letter {letter!r}: {line!r}")
        if "fetch" not in stages:
            raise ValueError(f"row without a fetch cycle: {line!r}")
        record = InstRecord(
            uid=int(match["uid"]),
            thread=int(match["thread"]),
            pc=int(match["pc"]),
            op=int(match["op"]),
            stream_length=int(match["sl"]),
            fetch=stages["fetch"],
            mispredicted=match["mp"] == "1",
        )
        record.dispatch = stages.get("dispatch")
        record.issue = stages.get("issue")
        record.complete = stages.get("complete")
        record.commit = stages.get("commit")
        if record.commit is not None and record.complete is None:
            record.complete = record.commit
        if match["sq"] != "-":
            record.squash = int(match["sq"])
        records.append(record)
    return records
