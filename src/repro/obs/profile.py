"""Lightweight phase-timing profiler for the driver scripts.

``scripts/run_experiments.py`` wraps each figure/table sweep in a
:class:`PhaseProfiler` phase; the resulting wall-time tree rides the
``profile`` key of ``results/BENCH_experiments.json`` so throughput
regressions can be localized to a phase without re-running anything.

The profiler measures host wall time only (``time.perf_counter``), so
it never participates in simulated state and is safe to use around
cached sweeps: the simulation outputs stay bit-identical whether or not
a profiler is active (the chaos-smoke harness strips volatile BENCH
keys, and ``profile`` is volatile by construction).
"""

from __future__ import annotations

# codelint: disable-file=DET-CLOCK — the profiler is the one sanctioned
# wall-clock consumer in repro.obs: its output is volatile by
# construction and never enters reports, goldens or cache keys
# (docs/TESTING.md; the chaos harness strips it before comparing).
import time
from contextlib import contextmanager


class _Phase:
    __slots__ = ("name", "seconds", "count", "children")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.count = 0
        self.children: dict[str, _Phase] = {}

    def to_dict(self) -> dict:
        payload: dict = {
            "seconds": round(self.seconds, 6),
            "count": self.count,
        }
        if self.children:
            payload["phases"] = {
                name: child.to_dict()
                for name, child in self.children.items()
            }
        return payload


class PhaseProfiler:
    """Nested named wall-clock phases with a JSON-safe snapshot.

    >>> profiler = PhaseProfiler()
    >>> with profiler.phase("figure4"):
    ...     with profiler.phase("simulate"):
    ...         pass
    >>> tree = profiler.to_dict()

    Re-entering a phase name at the same nesting level accumulates into
    the same node (``count`` tracks entries).  The profiler is not
    thread-safe; drivers are single-threaded orchestration loops.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._root = _Phase("<root>")
        self._stack = [self._root]
        self._started = self._clock()

    @contextmanager
    def phase(self, name: str):
        parent = self._stack[-1]
        node = parent.children.get(name)
        if node is None:
            node = parent.children[name] = _Phase(name)
        node.count += 1
        self._stack.append(node)
        start = self._clock()
        try:
            yield node
        finally:
            node.seconds += self._clock() - start
            self._stack.pop()

    @property
    def elapsed(self) -> float:
        return self._clock() - self._started

    def to_dict(self) -> dict:
        """``{"total_seconds": ..., "phases": {name: {...}}}`` tree."""
        return {
            "total_seconds": round(self.elapsed, 6),
            "phases": {
                name: child.to_dict()
                for name, child in self._root.children.items()
            },
        }
