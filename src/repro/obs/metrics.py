"""Hierarchical metrics registry: counters and histograms per component.

Every instrumented component (pipeline stages, caches, MSHRs, write
buffers, the stream-bypass path) publishes counters and latency
histograms under a two-level ``component / name`` namespace, with
per-thread resolution where the emitting site knows the hardware
context.  The registry is plain Python with no simulation dependencies,
so it can ride :class:`repro.core.metrics.RunResult` provenance through
the runner's JSON round-trip (``to_dict`` output is JSON-safe and
reconstructs losslessly).

The registry is only ever allocated when observability is requested
(``SMTConfig(observe=...)``); disabled runs never touch this module.
"""

from __future__ import annotations


class Counter:
    """A monotone event counter with per-thread resolution.

    Thread ``-1`` (the default) is the "no context" bucket used by
    components that do not know the requesting hardware context (the
    L2 banks, the DRAM channel).
    """

    __slots__ = ("per_thread", "untyped")

    def __init__(self):
        self.per_thread: list[int] = []
        self.untyped = 0

    def add(self, thread: int = -1, n: int = 1) -> None:
        if thread < 0:
            self.untyped += n
            return
        per_thread = self.per_thread
        if thread >= len(per_thread):
            per_thread.extend([0] * (thread + 1 - len(per_thread)))
        per_thread[thread] += n

    @property
    def total(self) -> int:
        return self.untyped + sum(self.per_thread)

    def to_dict(self) -> dict:
        payload: dict = {"total": self.total}
        if self.per_thread:
            payload["per_thread"] = list(self.per_thread)
        if self.untyped:
            payload["untyped"] = self.untyped
        return payload


#: Default histogram bucket upper bounds (cycles); the last bucket is
#: open-ended.  Chosen around the model's latency landmarks: L1 hit (1),
#: L2 hit (~12-16), DRAM fill (~60-120), queueing pile-ups beyond.
DEFAULT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Histogram:
    """Fixed-bucket latency histogram with count/sum/min/max and
    per-thread counts."""

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max",
                 "per_thread")

    def __init__(self, bounds: tuple = DEFAULT_BOUNDS):
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min: int | None = None
        self.max: int | None = None
        self.per_thread: list[int] = []

    def observe(self, value: int, thread: int = -1, n: int = 1) -> None:
        bucket = 0
        for bound in self.bounds:
            if value <= bound:
                break
            bucket += 1
        self.buckets[bucket] += n
        self.count += n
        self.sum += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if thread >= 0:
            per_thread = self.per_thread
            if thread >= len(per_thread):
                per_thread.extend([0] * (thread + 1 - len(per_thread)))
            per_thread[thread] += n

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        payload: dict = {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }
        if self.per_thread:
            payload["per_thread"] = list(self.per_thread)
        return payload


class MetricsRegistry:
    """Counters and histograms addressed by ``component / name``.

    Instruments call :meth:`counter` / :meth:`histogram` once per site
    (the returned object is cached) and then operate on the returned
    object directly, so the per-event cost is one method call with no
    dict lookup in the registry.
    """

    def __init__(self):
        self._counters: dict[tuple[str, str], Counter] = {}
        self._histograms: dict[tuple[str, str], Histogram] = {}

    def counter(self, component: str, name: str) -> Counter:
        key = (component, name)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def histogram(
        self, component: str, name: str, bounds: tuple = DEFAULT_BOUNDS
    ) -> Histogram:
        key = (component, name)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(bounds)
        return histogram

    def components(self) -> list[str]:
        return sorted(
            {key[0] for key in self._counters}
            | {key[0] for key in self._histograms}
        )

    def to_dict(self) -> dict:
        """Nested JSON-safe snapshot: ``{component: {name: {...}}}``.

        Counters and histograms share the namespace; a histogram entry
        is recognizable by its ``buckets`` key.
        """
        tree: dict[str, dict] = {}
        for (component, name), counter in sorted(self._counters.items()):
            tree.setdefault(component, {})[name] = counter.to_dict()
        for (component, name), histogram in sorted(self._histograms.items()):
            tree.setdefault(component, {})[name] = histogram.to_dict()
        return tree
