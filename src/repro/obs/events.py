"""Structured pipeline event stream and per-instruction lifetime records.

Enabled with ``SMTConfig(observe=...)``, a :class:`PipelineObserver` is
hooked into the five pipeline stages of :class:`repro.core.smt.SMTProcessor`
and into the memory hierarchy's L1/L2/I-cache/MSHR/write-buffer/stream-
bypass paths.  Disabled (the default) every hook site is a single
``is not None`` test — the observability layer must be provably free
when off, which the bit-identity suite (``tests/test_obs_bitident.py``)
and the hot-loop guard enforce.

Like the runtime sanitizer, the observer is duck-typed: it imports
nothing from :mod:`repro.core` or :mod:`repro.memory`, so those packages
hook it without import cycles, and the two layers share the same
attachment points (``window.observer``, ``queue``-side entries, the
memory walker — see :meth:`repro.memory.interface.MemorySystem.attach_observer`).

Event model
-----------

* **Per-instruction lifetime records** (:class:`InstRecord`): one record
  per fetched instruction carrying the cycle of each stage —
  ``fetch <= dispatch <= issue <= complete <= commit`` (strict except
  complete/commit, which the fused step can perform in one cycle).  A
  squashed instruction records its squash cycle and never receives
  further stage events.
* **Memory events**: ``(cycle, component, kind, thread, latency, hit)``
  tuples from the hierarchy hot paths (``thread == -1`` when the
  component does not know the requesting context, e.g. the L2 banks).
* **Metrics** (:class:`repro.obs.metrics.MetricsRegistry`): hierarchical
  counters/histograms per component per thread, including the
  ``smt.stall`` stall-cause breakdown the experiment reports surface.

Both event lists are bounded (``max_records`` / ``max_events``); past
the cap the metrics keep counting and the drop counts are reported, so
long runs stay observable without unbounded memory.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.obs.metrics import MetricsRegistry

#: Stage names in pipeline order (also the record attribute names).
STAGES = ("fetch", "dispatch", "issue", "complete", "commit")

#: Stall causes the core attributes, per thread per cycle (fetch side)
#: or per failed dispatch attempt (dispatch side).
STALL_CAUSES = (
    "fetch_blocked_branch",    # wrong-path fetch behind an unresolved branch
    "fetch_icache",            # waiting on an I-cache fill
    "fetch_decode_full",       # decode buffer back-pressure
    "fetch_no_slot",           # lost the fetch-group arbitration
    "dispatch_queue_full",     # target issue queue at capacity
    "dispatch_window_full",    # graduation window at capacity
    "dispatch_pool_empty",     # no free rename register of the class
)


class ObservabilityError(AssertionError):
    """An event-stream invariant was broken.

    Mirrors :class:`repro.verify.sanitizer.InvariantViolation`: carries
    the violating ``component``, a stable ``code`` (e.g.
    ``"OBS-STAGE-ORDER"``) and a ``details`` mapping so tests assert on
    the exact failure rather than parse a message.
    """

    def __init__(
        self,
        component: str,
        code: str,
        message: str,
        details: dict[str, Any] | None = None,
    ):
        super().__init__(f"[{code}] {component}: {message}")
        self.component = component
        self.code = code
        self.message = message
        self.details = details or {}

    def __reduce__(self):
        # Like InvariantViolation: the default BaseException reduction
        # reconstructs via ``cls(formatted_message)``, which for this
        # signature is a TypeError at unpickle time — an observed run
        # raising in a pool worker would surface as a bare pickling
        # error with the structured payload lost.
        return (
            self.__class__,
            (self.component, self.code, self.message, self.details),
        )


class InstRecord:
    """Lifetime of one fetched instruction through the pipeline."""

    __slots__ = (
        "uid",
        "thread",
        "pc",
        "op",
        "stream_length",
        "mispredicted",
        "fetch",
        "dispatch",
        "issue",
        "complete",
        "commit",
        "squash",
    )

    def __init__(
        self,
        uid: int,
        thread: int,
        pc: int,
        op: int,
        stream_length: int,
        fetch: int,
        mispredicted: bool,
    ):
        self.uid = uid
        self.thread = thread
        self.pc = pc
        self.op = op
        self.stream_length = stream_length
        self.mispredicted = mispredicted
        self.fetch = fetch
        self.dispatch: int | None = None
        self.issue: int | None = None
        self.complete: int | None = None
        self.commit: int | None = None
        self.squash: int | None = None

    @property
    def squashed(self) -> bool:
        return self.squash is not None

    @property
    def committed(self) -> bool:
        return self.commit is not None

    def to_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stages = " ".join(
            f"{stage[0].upper()}{getattr(self, stage)}"
            for stage in STAGES
            if getattr(self, stage) is not None
        )
        return f"<InstRecord #{self.uid} t{self.thread} {stages}>"


class PipelineObserver:
    """Collects the event stream and metrics of one simulated core.

    Parameters
    ----------
    events:
        Record per-instruction lifetimes and memory events.  ``False``
        keeps only the metrics registry (cheaper; what the stall-cause
        breakdown sweeps use).
    max_records / max_events:
        Bounds on the two event lists; past them the drop counters
        advance and metrics keep counting.
    """

    def __init__(
        self,
        events: bool = True,
        max_records: int = 1_000_000,
        max_events: int = 1_000_000,
    ):
        self.events = events
        self.max_records = max_records
        self.max_events = max_events
        self.registry = MetricsRegistry()
        self.records: list[InstRecord] = []
        self.mem_events: list[tuple] = []
        self.dropped_records = 0
        self.dropped_events = 0
        #: Per-thread queues of records mirroring the decode buffers
        #: (``None`` placeholders once ``max_records`` is reached).
        self._pending: list[deque] = []
        #: id(InFlight entry) -> record, for the post-dispatch stages.
        #: Entries are removed at commit/squash, before the core can
        #: free them, so a reused ``id()`` can never mis-associate.
        self._by_entry: dict[int, InstRecord] = {}
        self._next_uid = 0
        registry = self.registry
        self._stall = {
            cause: registry.counter("smt.stall", cause)
            for cause in STALL_CAUSES
        }
        self._fetched = registry.counter("smt.fetch", "instructions")
        self._dispatched = registry.counter("smt.dispatch", "instructions")
        self._issued = registry.counter("smt.issue", "instructions")
        self._completed = registry.counter("smt.complete", "instructions")
        self._committed = registry.counter("smt.commit", "instructions")
        self._squashed = registry.counter("smt.commit", "squashed")
        self._queue_wait = registry.histogram("smt.issue", "queue_wait")
        self._exec_latency = registry.histogram("smt.issue", "exec_latency")
        self._mem_counters: dict[tuple[str, str], Any] = {}
        self._mem_latency: dict[str, Any] = {}

    # ----- pipeline stages (called by the SMT core) -------------------------

    def _pending_of(self, thread: int) -> deque:
        pending = self._pending
        while thread >= len(pending):
            pending.append(deque())
        return pending[thread]

    def on_fetch(
        self, thread: int, inst, now: int, mispredicted: bool
    ) -> None:
        """One instruction entered a decode buffer this cycle."""
        self._fetched.add(thread)
        if not self.events:
            return
        if len(self.records) >= self.max_records:
            self.dropped_records += 1
            self._pending_of(thread).append(None)
            return
        record = InstRecord(
            self._next_uid,
            thread,
            inst.pc,
            int(inst.op),
            inst.stream_length,
            now,
            mispredicted,
        )
        self._next_uid += 1
        self.records.append(record)
        self._pending_of(thread).append(record)

    def on_thread_assign(self, thread: int) -> None:
        """The context was handed a new program (decode buffer cleared)."""
        if thread < len(self._pending):
            self._pending[thread].clear()

    def on_dispatch(self, thread: int, entry, now: int) -> None:
        """The decode head renamed and entered window + issue queue."""
        self._dispatched.add(thread)
        if not self.events:
            return
        pending = self._pending_of(thread)
        record = pending.popleft() if pending else None
        if record is not None:
            record.dispatch = now
            self._by_entry[id(entry)] = record


    def on_issue(self, entry, now: int, done: int) -> None:
        """The entry left its issue queue; results arrive at ``done``."""
        self._issued.add(entry.thread)
        self._queue_wait.observe(0, entry.thread, 0)  # keep thread row alive
        if not self.events:
            return
        record = self._by_entry.get(id(entry))
        if record is None or record.squash is not None:
            return
        record.issue = now
        if record.dispatch is not None:
            self._queue_wait.observe(now - record.dispatch, entry.thread)
        self._exec_latency.observe(done - now, entry.thread)

    def on_complete(self, entry, now: int) -> None:
        """The entry's result arrived and woke its dependents."""
        self._completed.add(entry.thread)
        if not self.events:
            return
        record = self._by_entry.get(id(entry))
        if record is None or record.squash is not None:
            return
        record.complete = now

    def on_commit(self, thread: int, entry, now: int) -> None:
        """The entry retired from the graduation window."""
        self._committed.add(thread)
        if not self.events:
            return
        record = self._by_entry.pop(id(entry), None)
        if record is None or record.squash is not None:
            return
        record.commit = now

    def on_squash(self, thread: int, entries, now: int) -> None:
        """A per-thread flush squashed these window entries."""
        self._squashed.add(thread, len(entries))
        if not self.events:
            return
        for entry in entries:
            record = self._by_entry.pop(id(entry), None)
            if record is not None:
                record.squash = now

    def stall(self, cause: str, thread: int, n: int = 1) -> None:
        """Attribute a stalled fetch/dispatch opportunity to a cause."""
        self._stall[cause].add(thread, n)

    # ----- memory events (called by the hierarchies) ------------------------

    def _mem_counter(self, component: str, kind: str):
        key = (component, kind)
        counter = self._mem_counters.get(key)
        if counter is None:
            counter = self._mem_counters[key] = self.registry.counter(
                f"memory.{component}", kind
            )
        return counter

    def mem_access(
        self,
        component: str,
        thread: int,
        kind: str,
        hit: bool | None,
        now: int,
        latency: int,
        n: int = 1,
    ) -> None:
        """A cache-level transaction (one coalesced line for streams).

        ``hit=None`` means the emitting path cannot tell (the stream-
        bypass port does not see the L2 tag outcome); the count is then
        recorded under the bare ``kind``.
        """
        name = kind if hit is None else kind + ("_hit" if hit else "_miss")
        self._mem_counter(component, name).add(thread, n)
        histogram = self._mem_latency.get(component)
        if histogram is None:
            histogram = self._mem_latency[component] = self.registry.histogram(
                f"memory.{component}", "latency"
            )
        histogram.observe(latency, thread, n)
        if self.events:
            if len(self.mem_events) < self.max_events:
                self.mem_events.append(
                    (now, component, kind, thread, latency, hit)
                )
            else:
                self.dropped_events += 1

    def mem_note(
        self, component: str, kind: str, thread: int, now: int
    ) -> None:
        """A structural memory event: MSHR allocation, write-buffer
        full stall, stream-bypass invalidation."""
        self._mem_counter(component, kind).add(thread)
        if self.events:
            if len(self.mem_events) < self.max_events:
                self.mem_events.append(
                    (now, component, kind, thread, 0, False)
                )
            else:
                self.dropped_events += 1

    # ----- output -----------------------------------------------------------

    def stall_breakdown(self) -> dict:
        """Per-thread stall-cause counts: ``{cause: [per-thread], ...}``."""
        breakdown = {}
        for cause in STALL_CAUSES:
            counter = self._stall[cause]
            if counter.total:
                breakdown[cause] = {
                    "total": counter.total,
                    "per_thread": list(counter.per_thread),
                }
        return breakdown

    def snapshot(self) -> dict:
        """JSON-safe provenance for :attr:`RunResult.observability`.

        Per-instruction records and raw memory events stay on the
        observer (they are bulky and tool-facing); the snapshot carries
        the metrics tree plus the event-stream accounting.
        """
        return {
            "metrics": self.registry.to_dict(),
            "records": len(self.records),
            "mem_events": len(self.mem_events),
            "dropped_records": self.dropped_records,
            "dropped_events": self.dropped_events,
        }


def resolve_observer(observe) -> PipelineObserver | None:
    """Normalize the ``SMTConfig.observe`` field into an observer.

    ``None``/``False`` disable observation; ``True`` builds a full
    observer; ``"metrics"`` builds a metrics-only observer (no event
    lists — what sweeps use); a ready :class:`PipelineObserver` (or any
    duck-typed equivalent) passes through.
    """
    if observe is None or observe is False:
        return None
    if observe is True:
        return PipelineObserver()
    if observe == "metrics":
        return PipelineObserver(events=False)
    return observe


# --------------------------------------------------------------- validation


def _check_order(record: InstRecord) -> None:
    previous_stage = "fetch"
    previous = record.fetch
    for stage in ("dispatch", "issue", "complete"):
        value = getattr(record, stage)
        if value is None:
            break
        if value <= previous:
            raise ObservabilityError(
                "events", "OBS-STAGE-ORDER",
                f"record #{record.uid}: {stage} at cycle {value} does not "
                f"follow {previous_stage} at cycle {previous}",
                {"uid": record.uid, "stage": stage,
                 "cycle": value, "previous": previous},
            )
        previous_stage = stage
        previous = value
    if record.commit is not None:
        # The fused step completes and commits back to front within one
        # cycle, so commit may equal complete — never precede it.
        if record.complete is None or record.commit < record.complete:
            raise ObservabilityError(
                "events", "OBS-STAGE-ORDER",
                f"record #{record.uid}: commit at cycle {record.commit} "
                f"precedes completion at {record.complete}",
                {"uid": record.uid, "stage": "commit",
                 "cycle": record.commit, "previous": record.complete},
            )


def validate_records(records: list[InstRecord]) -> int:
    """Check the event-stream invariants over a run's records.

    * stage ordering ``fetch < dispatch < issue < complete <= commit``
      per instruction (later stages may be unset for in-flight work);
    * a stage is only ever unset if every later stage is unset too;
    * per-thread fetch and commit cycles are monotone in program order
      (trace-driven front end, per-thread in-order retirement);
    * a squashed record carries no commit and no stage event after its
      squash cycle.

    Returns the number of records checked; raises
    :class:`ObservabilityError` on the first violation.
    """
    last_fetch: dict[int, tuple[int, int]] = {}
    last_commit: dict[int, tuple[int, int]] = {}
    for record in records:
        if record.fetch is None or record.fetch < 0:
            raise ObservabilityError(
                "events", "OBS-NO-FETCH",
                f"record #{record.uid} has no valid fetch cycle",
                {"uid": record.uid, "fetch": record.fetch},
            )
        seen_unset = False
        for stage in STAGES:
            value = getattr(record, stage)
            if value is None:
                seen_unset = True
            elif seen_unset:
                raise ObservabilityError(
                    "events", "OBS-STAGE-GAP",
                    f"record #{record.uid}: {stage} is set but an earlier "
                    "stage is missing",
                    {"uid": record.uid, "stage": stage},
                )
        _check_order(record)
        if record.squash is not None:
            if record.commit is not None:
                raise ObservabilityError(
                    "events", "OBS-POST-SQUASH",
                    f"record #{record.uid} committed at cycle "
                    f"{record.commit} despite being squashed at "
                    f"{record.squash}",
                    {"uid": record.uid, "commit": record.commit,
                     "squash": record.squash},
                )
            for stage in ("issue", "complete"):
                value = getattr(record, stage)
                if value is not None and value > record.squash:
                    raise ObservabilityError(
                        "events", "OBS-POST-SQUASH",
                        f"record #{record.uid}: {stage} event at cycle "
                        f"{value} after squash at {record.squash}",
                        {"uid": record.uid, "stage": stage, "cycle": value,
                         "squash": record.squash},
                    )
        previous = last_fetch.get(record.thread)
        if previous is not None and record.fetch < previous[1]:
            raise ObservabilityError(
                "events", "OBS-FETCH-ORDER",
                f"record #{record.uid} fetched at cycle {record.fetch}, "
                f"before #{previous[0]} of the same thread at "
                f"{previous[1]}",
                {"uid": record.uid, "thread": record.thread,
                 "fetch": record.fetch, "previous": previous},
            )
        last_fetch[record.thread] = (record.uid, record.fetch)
        if record.commit is not None:
            previous = last_commit.get(record.thread)
            if previous is not None and record.commit < previous[1]:
                raise ObservabilityError(
                    "events", "OBS-COMMIT-ORDER",
                    f"record #{record.uid} committed at cycle "
                    f"{record.commit}, before #{previous[0]} of the same "
                    f"thread at {previous[1]}",
                    {"uid": record.uid, "thread": record.thread,
                     "commit": record.commit, "previous": previous},
                )
            last_commit[record.thread] = (record.uid, record.commit)
    return len(records)
