"""Tag arrays: set-associative lookup with LRU replacement.

A minimal, fast tag store used by every cache level.  Data values are not
stored (the simulator is timing-only); a line is present or absent, and
write-back caches track a dirty bit per line.
"""

from __future__ import annotations


class TagArray:
    """Set-associative tag array with true-LRU replacement.

    Each set is an ordered list of (tag, dirty) pairs, most recently used
    last.  Associativity 1 gives a direct-mapped cache.

    This sits on the hot path of every simulated memory reference, so the
    methods index ``_sets`` directly instead of going through the
    ``_set_of``/``_tag_of`` helpers (kept for readability and tests).
    """

    __slots__ = ("n_sets", "assoc", "_sets", "_set_mask")

    def __init__(self, n_sets: int, assoc: int):
        if n_sets < 1 or assoc < 1:
            raise ValueError("need at least one set and one way")
        if n_sets & (n_sets - 1):
            raise ValueError("set count must be a power of two")
        self.n_sets = n_sets
        self.assoc = assoc
        self._set_mask = n_sets - 1
        self._sets: list[list[list]] = [[] for __ in range(n_sets)]

    def _set_of(self, line_addr: int) -> list[list]:
        return self._sets[line_addr & self._set_mask]

    @staticmethod
    def _tag_of(line_addr: int) -> int:
        return line_addr

    def lookup(self, line_addr: int, update_lru: bool = True) -> bool:
        """True if the line is present; touches LRU on hit by default."""
        entries = self._sets[line_addr & self._set_mask]
        for i, entry in enumerate(entries):
            if entry[0] == line_addr:
                if update_lru and i != len(entries) - 1:
                    entries.append(entries.pop(i))
                return True
        return False

    def fill(self, line_addr: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Insert a line; returns the evicted ``(line_addr, dirty)`` if any."""
        entries = self._sets[line_addr & self._set_mask]
        for i, entry in enumerate(entries):
            if entry[0] == line_addr:
                entry[1] = entry[1] or dirty
                entries.append(entries.pop(i))
                return None
        victim = None
        if len(entries) >= self.assoc:
            old = entries.pop(0)
            victim = (old[0], old[1])
        entries.append([line_addr, dirty])
        return victim

    def mark_dirty(self, line_addr: int) -> bool:
        """Set the dirty bit if present; returns presence."""
        entries = self._sets[line_addr & self._set_mask]
        for entry in entries:
            if entry[0] == line_addr:
                entry[1] = True
                return True
        return False

    def invalidate(self, line_addr: int) -> bool:
        """Remove a line if present; returns whether it was present."""
        entries = self._sets[line_addr & self._set_mask]
        for i, entry in enumerate(entries):
            if entry[0] == line_addr:
                entries.pop(i)
                return True
        return False

    def occupancy(self) -> int:
        """Total lines currently resident (for tests/diagnostics)."""
        return sum(len(entries) for entries in self._sets)
