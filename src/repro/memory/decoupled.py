"""The decoupled memory organization (paper figure 7b and section 5.4).

Scalar and vector working sets are decoupled: two scalar ports access the
L1 (single-banked, double-pumped as in the Alpha 21264), while two vector
ports connect straight to the two L2 banks through a crossbar — stream
accesses bypass L1 entirely.  This (a) separates the stream working set
from the scalar one, and (b) halves the ports per cache level, cutting
bank contention.

Bypassing creates a coherence problem between vector and scalar copies of
a line, solved as in the paper's reference [21] with an exclusive-bit
policy: a stream access to a line resident in L1 invalidates the L1 copy
(after draining any buffered store to it) before proceeding.
"""

from __future__ import annotations

from repro.memory.cache import (
    CacheConfig,
    InstructionCache,
    L1DataCache,
    L2Cache,
)
from repro.memory.dram import RambusChannel
from repro.memory.interface import (
    AccessType,
    MemorySystem,
    physical_address,
)

#: L1 in the decoupled organization: same 32 KB direct-mapped cache, but
#: single-banked and double-pumped — two scalar accesses per cycle.
L1_DECOUPLED = CacheConfig(
    "L1D", size=32 << 10, assoc=1, line=32, banks=2, latency=1
)

#: Extra cycles an exclusive-bit invalidation adds to a vector access.
INVALIDATION_PENALTY = 2


class DecoupledHierarchy(MemorySystem):
    """Scalar ports -> L1 -> L2; vector ports -> L2 directly."""

    def __init__(
        self,
        n_scalar_ports: int = 2,
        n_vector_ports: int = 2,
        write_buffer_depth: int = 8,
        dram: RambusChannel | None = None,
        l2: L2Cache | None = None,
    ):
        super().__init__()
        # An injected l2 is shared (CMP cores over one system L2); the
        # default builds a private one, as ConventionalHierarchy does.
        self.dram = dram or (l2.dram if l2 is not None else RambusChannel())
        self.l2 = l2 or L2Cache(self.dram)
        self.l1 = L1DataCache(
            self.l2, config=L1_DECOUPLED, write_buffer_depth=write_buffer_depth
        )
        self.icache = InstructionCache(self.l2)
        self._scalar_ports = [0] * n_scalar_ports
        self._vector_ports = [0] * n_vector_ports
        self.stats.l2 = self.l2.stats
        self._relink_stats()

    def _relink_stats(self) -> None:
        """Refresh hot-path stats references (see ConventionalHierarchy)."""
        self._l1_stats = self.stats.l1
        self._icache_stats = self.stats.icache

    @staticmethod
    def _acquire(ports: list[int], now: int) -> int:
        best = 0
        for i in range(1, len(ports)):
            if ports[i] < ports[best]:
                best = i
        start = max(now, ports[best])
        ports[best] = start + 1
        return start

    # ----- scalar path (through L1) ------------------------------------------

    def access(self, thread: int, addr: int, kind: AccessType, now: int) -> int:
        if kind in (AccessType.VECTOR_LOAD, AccessType.VECTOR_STORE):
            return self._vector_access(thread, addr, kind, now)
        phys = physical_address(thread, addr)
        start = self._acquire(self._scalar_ports, now)
        if kind == AccessType.SCALAR_STORE:
            done, hit, bank_wait = self.l1.store_line(phys, start)
            if self.observer is not None:
                self.observer.mem_access(
                    "l1", thread, "store", hit, now, done - now
                )
        else:
            done, hit, bank_wait = self.l1.load_line(phys, start)
            # Loads only: the write-through L1 does not allocate on stores.
            l1_stats = self._l1_stats
            l1_stats.accesses += 1
            if hit:
                l1_stats.hits += 1
            l1_stats.latency_sum += done - now
            if self.observer is not None:
                self.observer.mem_access(
                    "l1", thread, "load", hit, now, done - now
                )
        self.stats.bank_conflict_cycles += bank_wait
        return done

    # ----- vector path (straight to L2) ----------------------------------------

    def _vector_access(
        self, thread: int, addr: int, kind: AccessType, now: int
    ) -> int:
        phys = physical_address(thread, addr)
        start = self._acquire(self._vector_ports, now)
        start = self._coherence_check(phys, start, thread)
        if self.sanitizer is not None:
            self.sanitizer.check_stream_bypass(self.l1, phys)
        is_store = kind == AccessType.VECTOR_STORE
        done = self.l2.access(phys, start, is_store=is_store)
        # Vector references are counted in the L1 row of the statistics as
        # bypassing accesses: they neither hit nor miss L1; the paper's
        # Table 4 reports L1 behaviour of the *scalar* stream only under
        # the decoupled organization, so we keep them out of L1 stats.
        if self.observer is not None:
            # hit=None: the bypass port does not see the L2 tag outcome
            # (the L2's own observer hook records hit/miss, thread -1).
            self.observer.mem_access(
                "stream_bypass", thread,
                "store" if is_store else "load",
                None, now, done - now,
            )
        return done

    def _coherence_check(self, phys: int, now: int, thread: int = -1) -> int:
        """Exclusive-bit policy: evict a scalar-owned copy before streaming."""
        if self.l1.contains(phys):
            drained = self.l1.write_buffer.flush_line(
                phys >> self.l1._line_shift, now
            )
            self.l1.invalidate(phys)
            self.stats.coherence_invalidations += 1
            if self.observer is not None:
                self.observer.mem_note(
                    "stream_bypass", "invalidation", thread, now
                )
            return drained + INVALIDATION_PENALTY
        return now

    def access_stream(
        self,
        thread: int,
        base: int,
        stride: int,
        count: int,
        kind: AccessType,
        now: int,
    ) -> int:
        """Stream elements coalesce per 128-byte L2 line at the L2 banks."""
        line_shift = self.l2._line_shift
        is_store = kind == AccessType.VECTOR_STORE
        observer = self.observer
        done = now + 1
        index = 0
        while index < count:
            addr = base + index * stride
            line = addr >> line_shift
            group = 1
            while (
                index + group < count
                and (base + (index + group) * stride) >> line_shift == line
            ):
                group += 1
            phys = physical_address(thread, addr)
            start = self._acquire(self._vector_ports, now)
            start = self._coherence_check(phys, start, thread)
            if self.sanitizer is not None:
                self.sanitizer.check_stream_bypass(self.l1, phys)
            line_done = self.l2.access(phys, start, is_store=is_store)
            if observer is not None:
                observer.mem_access(
                    "stream_bypass", thread,
                    "stream_store" if is_store else "stream_load",
                    None, start, line_done - start, group,
                )
            if line_done > done:
                done = line_done
            index += group
        return done

    # ----- warming-only path (sampled simulation fast-forward) -------------

    def _warm_vector_line(self, phys: int, is_store: bool) -> None:
        """Timing-free vector access: exclusive-bit invalidate + L2 touch."""
        if self.l1.contains(phys):
            # The eviction is a genuine state change the detailed path
            # would also perform; the statistics counter, like all stats,
            # is not touched on the warming path.
            self.l1.invalidate(phys)
        self.l2.tags.fill(phys >> self.l2._line_shift, dirty=is_store)

    def warm(self, thread: int, addr: int, kind: AccessType) -> None:
        """Tag/replacement update matching :meth:`access`, no timing.

        Scalar references follow the conventional L1 policy (loads
        allocate and warm L2, stores touch LRU only); vector references
        bypass to L2 and apply the exclusive-bit invalidation the
        detailed path enforces — the coherence-state side of sampling
        must stay faithful or the sanitizer's stream-bypass rule breaks
        in the first detailed window.
        """
        phys = physical_address(thread, addr)
        if kind is AccessType.VECTOR_LOAD or kind is AccessType.VECTOR_STORE:
            self._warm_vector_line(phys, kind is AccessType.VECTOR_STORE)
            return
        line = phys >> self.l1._line_shift
        tags = self.l1.tags
        if kind is AccessType.SCALAR_STORE:
            tags.lookup(line)
        elif not tags.lookup(line):
            tags.fill(line)
            self.l2.tags.fill(phys >> self.l2._line_shift)

    def warm_stream(
        self, thread: int, base: int, stride: int, count: int, kind: AccessType
    ) -> None:
        """Per-L2-line coalesced warming, mirroring :meth:`access_stream`."""
        is_store = kind is AccessType.VECTOR_STORE
        line_shift = self.l2._line_shift
        index = 0
        while index < count:
            addr = base + index * stride
            line = addr >> line_shift
            group = 1
            while (
                index + group < count
                and (base + (index + group) * stride) >> line_shift == line
            ):
                group += 1
            self._warm_vector_line(physical_address(thread, addr), is_store)
            index += group

    def warm_fetch(self, thread: int, pc: int) -> None:
        """I-cache tag warming matching :meth:`fetch` (fills from L2)."""
        phys = physical_address(thread, pc)
        tags = self.icache.tags
        if not tags.lookup(phys >> self.icache._line_shift):
            tags.fill(phys >> self.icache._line_shift)
            self.l2.tags.fill(phys >> self.l2._line_shift)

    def reset_stats(self) -> None:
        from repro.memory.interface import CacheStats, MemoryStats

        self.stats = MemoryStats()
        self.l2.stats = CacheStats()
        self.stats.l2 = self.l2.stats
        self._relink_stats()
        self.write_buffer_reset()

    def write_buffer_reset(self) -> None:
        self.l1.write_buffer.coalesced = 0
        self.l1.write_buffer.full_stalls = 0

    def reset(self) -> None:
        """Rebuild as freshly constructed, keeping geometry and hooks.

        Same rationale as ``ConventionalHierarchy.reset``: tag, MSHR,
        port and DRAM state carry absolute timestamps, so the faithful
        reset is a re-run of ``__init__`` with the same geometry.
        """
        sanitizer = self.sanitizer
        observer = self.observer
        self.__init__(
            n_scalar_ports=len(self._scalar_ports),
            n_vector_ports=len(self._vector_ports),
            write_buffer_depth=self.l1.write_buffer.depth,
            dram=RambusChannel(
                latency=self.dram.latency,
                bytes_per_cycle=self.dram.bytes_per_cycle,
            ),
        )
        if sanitizer is not None:
            self.attach_sanitizer(sanitizer)
        if observer is not None:
            self.attach_observer(observer)

    # ----- instruction path ------------------------------------------------------

    def fetch(self, thread: int, pc: int, now: int) -> int:
        done, hit = self.icache.fetch_line(physical_address(thread, pc), now)
        icache_stats = self._icache_stats
        icache_stats.accesses += 1
        if hit:
            icache_stats.hits += 1
        icache_stats.latency_sum += done - now
        if self.observer is not None:
            self.observer.mem_access(
                "icache", thread, "fetch", hit, now, done - now
            )
        return done
